// Telemetry self-overhead benchmark: what does the lock-free scheduler
// telemetry registry cost on the real engine's hot path?
//
// The registry's design claim is "near-zero when no sink is attached, one
// relaxed fetch_add per event on a thread-private cache line when one is"
// (src/telemetry/telemetry.hpp).  This bench measures that claim on the
// two fine-grained recursive workloads shared with
// bench_queue_contention (fib and nqueens, cut-off-free), in four modes:
//
//   off          no sink, no hooks — the baseline every run pays
//   sink         telemetry registry attached (counters + gauges recorded)
//   hooks        no-op measurement hooks attached, no telemetry — the
//                event-emission cost alone, for reference
//   sink+timed   registry attached AND TimedHooks decorating the no-op
//                hooks — the full self-timing path; its own hook_ticks
//                counters report the measured per-event decorator cost
//
// The acceptance bar is sink-vs-off on fib < 5%.  Results go to stdout
// and to BENCH_telemetry_overhead.json (schema per bench/common.hpp).
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "common/concurrency.hpp"
#include "rt/real_runtime.hpp"
#include "telemetry/telemetry.hpp"

using namespace taskprof;

namespace {

struct Sizes {
  int fib_n;
  int nqueens_n;
};

Sizes sizes_for(bots::SizeClass size) {
  switch (size) {
    case bots::SizeClass::kTest: return {16, 6};
    case bots::SizeClass::kSmall: return {20, 8};
    case bots::SizeClass::kMedium: return {24, 10};
  }
  return {20, 8};
}

enum class Mode { kOff, kSink, kHooks, kSinkTimed };

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kOff: return "off";
    case Mode::kSink: return "sink";
    case Mode::kHooks: return "hooks";
    case Mode::kSinkTimed: return "sink+timed";
  }
  return "?";
}

struct Measurement {
  rt::TeamStats stats;
  std::uint64_t checksum = 0;
  double hook_ns_per_event = 0.0;  ///< sink+timed only: in-band number
};

Measurement run_once(const std::string& workload, Mode mode, int threads,
                     RegionHandle task, const Sizes& sz) {
  rt::RealRuntime runtime;
  telemetry::Registry registry;
  rt::SchedulerHooks noop;
  telemetry::TimedHooks timed(&noop, &registry);

  if (mode == Mode::kSink || mode == Mode::kSinkTimed) {
    runtime.set_telemetry(&registry);
  }
  if (mode == Mode::kHooks) runtime.set_hooks(&noop);
  if (mode == Mode::kSinkTimed) runtime.set_hooks(&timed);

  Measurement m;
  if (workload == "fib") {
    long result = 0;
    m.stats = runtime.parallel(threads, [&](rt::TaskContext& ctx) {
      if (ctx.single()) bench::fib_workload(ctx, task, sz.fib_n, &result);
    });
    m.checksum = static_cast<std::uint64_t>(result);
  } else {
    std::atomic<std::uint64_t> solutions{0};
    m.stats = runtime.parallel(threads, [&](rt::TaskContext& ctx) {
      if (ctx.single()) {
        bench::nqueens_workload(ctx, task, sz.nqueens_n, 0, 0, 0, 0,
                                solutions);
      }
    });
    m.checksum = solutions.load();
  }

  if (mode == Mode::kSinkTimed) {
    m.hook_ns_per_event = registry.snapshot().hook_mean_ticks();
  }
  return m;
}

/// Median-of-reps by span (same estimator rationale as
/// bench_queue_contention: preemption noise without filtering convoys).
Measurement measure(const std::string& workload, Mode mode, int threads,
                    RegionHandle task, const Sizes& sz, int reps) {
  std::vector<Measurement> runs;
  runs.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    runs.push_back(run_once(workload, mode, threads, task, sz));
    if (runs.back().checksum != runs.front().checksum) {
      std::fprintf(stderr, "FATAL: %s checksum varies across reps\n",
                   workload.c_str());
      std::exit(1);
    }
  }
  std::sort(runs.begin(), runs.end(),
            [](const Measurement& a, const Measurement& b) {
              return a.stats.parallel_ticks < b.stats.parallel_ticks;
            });
  return runs[runs.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const bench::TrajectoryOptions options = bench::parse_trajectory_options(
      argc, argv, "BENCH_telemetry_overhead.json");
  const Sizes sz = sizes_for(options.size);
  constexpr int kThreads = 4;
  constexpr Mode kModes[] = {Mode::kOff, Mode::kSink, Mode::kHooks,
                             Mode::kSinkTimed};

  std::printf("=== Telemetry registry self-overhead ===\n");
  std::printf(
      "engine: real threads x%d | size class: %s | host threads: %u | "
      "median of %d reps\n\n",
      kThreads, bench::size_name(options.size),
      taskprof::hardware_threads(), options.reps);

  RegionRegistry registry;
  const RegionHandle task = registry.register_region("t", RegionType::kTask);

  bench::JsonWriter json;
  json.begin_object();
  json.field("bench", "telemetry_overhead");
  json.field("size", bench::size_name(options.size));
  json.field("seed", options.seed);
  json.field("threads", kThreads);
  json.field("reps", options.reps);
  json.field("host_threads",
             static_cast<std::uint64_t>(taskprof::hardware_threads()));
  json.begin_array("results");

  double sink_overhead_fib = 0.0;
  double sink_overhead_nqueens = 0.0;
  double hook_ns_per_event = 0.0;

  for (const std::string workload : {"fib", "nqueens"}) {
    TextTable table({"workload", "mode", "tasks", "span ms", "overhead"});
    Ticks baseline = 0;
    for (const Mode mode : kModes) {
      const Measurement m =
          measure(workload, mode, kThreads, task, sz, options.reps);
      if (mode == Mode::kOff) baseline = m.stats.parallel_ticks;
      const double over = bench::overhead(baseline, m.stats.parallel_ticks);
      if (mode == Mode::kSink) {
        if (workload == "fib") sink_overhead_fib = over;
        if (workload == "nqueens") sink_overhead_nqueens = over;
      }
      if (mode == Mode::kSinkTimed && workload == "fib") {
        hook_ns_per_event = m.hook_ns_per_event;
      }
      table.add_row(
          {workload, mode_name(mode),
           std::to_string(m.stats.tasks_executed),
           bench::format_double(
               static_cast<double>(m.stats.parallel_ticks) / 1e6, 2),
           mode == Mode::kOff ? "-" : format_percent(over, 1)});

      json.begin_object();
      json.field("workload", workload);
      json.field("mode", mode_name(mode));
      json.field("tasks_executed", m.stats.tasks_executed);
      json.field("span_ns",
                 static_cast<std::int64_t>(m.stats.parallel_ticks));
      json.field("overhead_vs_off", over);
      if (mode == Mode::kSinkTimed) {
        json.field("hook_ns_per_event", m.hook_ns_per_event);
      }
      json.field("checksum", m.checksum);
      json.end_object();
    }
    std::fputs(table.str().c_str(), stdout);
    std::fputs("\n", stdout);
  }

  json.end_array();
  json.field("sink_overhead_fib", sink_overhead_fib);
  json.field("sink_overhead_nqueens", sink_overhead_nqueens);
  json.field("sink_overhead_fib_under_5pct", sink_overhead_fib < 0.05);
  json.field("timed_hook_ns_per_event", hook_ns_per_event);
  json.end_object();
  const bool wrote = json.write_file(options.out_path);

  std::printf("telemetry sink overhead, fib x%d:     %s (target < +5.0 %%)\n",
              kThreads, format_percent(sink_overhead_fib, 1).c_str());
  std::printf("telemetry sink overhead, nqueens x%d: %s\n", kThreads,
              format_percent(sink_overhead_nqueens, 1).c_str());
  std::printf("self-timed hook cost: %.0f ns/event (in-band measurement)\n",
              hook_ns_per_event);
  if (wrote) std::printf("wrote %s\n", options.out_path.c_str());
  return wrote ? 0 : 1;
}
