// Paper Table IV: parameter instrumentation of the nqueens task by
// recursion depth — per-depth mean inclusive time, summed time, and task
// count.
//
// Paper shapes to hold: mean task time decreases monotonically-ish with
// depth; the task count grows steeply with depth; the bulk of total time
// sits in the deep levels while the first few levels contribute almost
// nothing — which is why cutting task creation at level 3 wins (§VI).
#include "common.hpp"
#include "report/analysis.hpp"

int main(int argc, char** argv) {
  using namespace taskprof;
  const bench::Options options = bench::parse_options(argc, argv);
  bench::print_header(
      "=== Table IV: nqueens task statistics per recursion depth ===",
      "Lorenz et al. 2012, Table IV", options);

  auto kernel = bots::make_kernel("nqueens");
  bots::KernelConfig config;
  config.threads = 4;
  config.size = options.size;
  config.seed = options.seed;
  config.cutoff = false;
  config.depth_parameter = true;
  const auto run = bench::run_sim(*kernel, config, true);

  const RegionHandle region =
      run.registry->register_region("nqueens_task", RegionType::kTask);
  const auto rows = parameter_breakdown(*run.profile, *run.registry, region);
  if (rows.empty()) {
    std::fputs("no parameterized sub-trees found\n", stderr);
    return 1;
  }

  Ticks total_sum = 0;
  for (const auto& row : rows) total_sum += row.inclusive_total;

  TextTable table({"depth level", "mean time", "sum", "number of tasks",
                   "share of total"});
  for (const auto& row : rows) {
    char share[32];
    std::snprintf(share, sizeof(share), "%.1f %%",
                  100.0 * static_cast<double>(row.inclusive_total) /
                      static_cast<double>(total_sum));
    table.add_row({std::to_string(row.parameter),
                   format_ticks(static_cast<Ticks>(row.inclusive_mean)),
                   format_ticks(row.inclusive_total),
                   format_count(row.instances), share});
  }
  std::fputs(table.str().c_str(), stdout);
  std::puts(
      "\npaper reference (nqueens-14, medium): mean falls 25.5 us at depth "
      "0 to 0.33 us at depth 13; counts rise to ~9e7; depths 9-13 hold "
      "most of the total time; depth <= 3 is negligible yet yields enough "
      "tasks (~2000) to balance 8 threads -> cut off there.");
  return 0;
}
