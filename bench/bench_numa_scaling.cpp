// Topology-aware hierarchical stealing vs. flat victim selection on
// simulated NUMA machines — the 256-worker scaling study.
//
// The virtual-time engine prices a multi-domain machine (interconnect
// round trips, cold-cache refills, remote lock-line bouncing; see
// rt/topology.hpp and DESIGN.md #15), which lets us A/B the *victim
// policy* on machines the host does not have: for each BOTS kernel and
// each machine in {1x8, 2x32, 4x64} the same task graph runs once under
// the flat policy (every queue take is an individually paid, possibly
// remote, lock op) and once under the hierarchical policy (same-domain
// work preferred, cross-domain transfers claimed in batched leases).
// Both runs execute identical work — the task-count cross-check fails
// the bench if a policy ever changes the computation — so the
// virtual-span ratio isolates scheduling cost.
//
// The single-domain 1x8 machine is the control: both policies must
// price identically there (ratio exactly 1.0), because a one-domain
// topology is defined to be the pre-topology engine.
//
// Writes BENCH_numa_scaling.json (tracked across PRs; gated in CI by
// tools/check_bench_regression.py --check=numa_scaling).
#include <cstdio>
#include <string>
#include <vector>

#include "bots/kernel.hpp"
#include "common.hpp"
#include "common/format.hpp"
#include "rt/sim_runtime.hpp"
#include "rt/topology.hpp"

namespace taskprof {
namespace {

struct Machine {
  const char* name;
  std::uint32_t domains;
  std::uint32_t workers_per_domain;
};

// The sweep: one small SMP control and two progressively wider NUMA
// boxes, up to 256 virtual workers (4 sockets x 64).
constexpr Machine kMachines[] = {
    {"1x8", 1, 8},
    {"2x32", 2, 32},
    {"4x64", 4, 64},
};

// fib = deep binary recursion (steal-heavy ramp-up), nqueens = wide
// fan-out (every node spawns up to 8 children — the kernel the 1.5x
// floor at 4x64 is gated on), sparselu = coarse dependency phases
// (tasks big enough that topology should not matter; its ratio ~1.0 is
// the negative control).
constexpr const char* kKernels[] = {"fib", "nqueens", "sparselu"};
constexpr const char* kWideFanoutKernel = "nqueens";

rt::Topology make_topology(const Machine& machine, bool hierarchical) {
  rt::Topology topo;
  topo.domains = machine.domains;
  topo.workers_per_domain = machine.workers_per_domain;
  topo.hierarchical = hierarchical;
  return topo;
}

struct Cell {
  std::string kernel;
  std::string machine;
  std::uint32_t domains = 0;
  std::uint32_t workers = 0;
  Ticks flat_span = 0;
  Ticks hier_span = 0;
  std::uint64_t flat_tasks = 0;
  std::uint64_t hier_tasks = 0;

  [[nodiscard]] double ratio() const {
    return hier_span == 0 ? 0.0
                          : static_cast<double>(flat_span) /
                                static_cast<double>(hier_span);
  }
  [[nodiscard]] bool counts_match() const {
    return flat_tasks == hier_tasks && flat_tasks > 0;
  }
};

Ticks run_cell(bots::Kernel& kernel, const bots::KernelConfig& config,
               const rt::Topology& topo, std::uint64_t* tasks) {
  rt::SimConfig sim_config;
  sim_config.topology = topo;
  bench::SimRun run =
      bench::run_sim(kernel, config, /*instrumented=*/false, sim_config);
  *tasks = run.result.stats.tasks_executed;
  return run.result.stats.parallel_ticks;
}

}  // namespace
}  // namespace taskprof

int main(int argc, char** argv) {
  using namespace taskprof;
  const bench::TrajectoryOptions options =
      bench::parse_trajectory_options(argc, argv, "BENCH_numa_scaling.json");

  std::printf("=== NUMA scaling: hierarchical vs. flat victim policy ===\n");
  std::printf(
      "engine: virtual-time simulator (deterministic; reps are redundant\n"
      "and skipped) | size class: %s | seed: %llu\n\n",
      bench::size_name(options.size),
      static_cast<unsigned long long>(options.seed));

  const rt::Topology defaults;
  std::vector<Cell> cells;
  bool all_counts_match = true;

  for (const char* kernel_name : kKernels) {
    auto kernel = bots::make_kernel(kernel_name);
    if (kernel == nullptr) {
      std::fprintf(stderr, "FATAL: unknown kernel %s\n", kernel_name);
      return 1;
    }
    for (const Machine& machine : kMachines) {
      bots::KernelConfig config;
      config.size = options.size;
      config.seed = options.seed;
      config.threads =
          static_cast<int>(machine.domains * machine.workers_per_domain);

      Cell cell;
      cell.kernel = kernel_name;
      cell.machine = machine.name;
      cell.domains = machine.domains;
      cell.workers = machine.domains * machine.workers_per_domain;
      cell.flat_span = run_cell(*kernel, config,
                                make_topology(machine, /*hierarchical=*/false),
                                &cell.flat_tasks);
      cell.hier_span = run_cell(*kernel, config,
                                make_topology(machine, /*hierarchical=*/true),
                                &cell.hier_tasks);
      all_counts_match = all_counts_match && cell.counts_match();
      cells.push_back(cell);
    }
  }

  std::printf("%-10s %-6s %8s %14s %14s %8s\n", "kernel", "machine",
              "workers", "flat span", "hier span", "ratio");
  for (const Cell& cell : cells) {
    std::printf("%-10s %-6s %8u %14s %14s %7.2fx%s\n", cell.kernel.c_str(),
                cell.machine.c_str(), cell.workers,
                format_ticks(cell.flat_span).c_str(),
                format_ticks(cell.hier_span).c_str(), cell.ratio(),
                cell.counts_match() ? "" : "  COUNT MISMATCH");
  }
  std::printf(
      "\nratio = flat span / hierarchical span (> 1 means the hierarchical\n"
      "policy finished the same task graph sooner on the same machine).\n");
  if (!all_counts_match) {
    std::fprintf(stderr,
                 "FATAL: a victim policy changed the executed task count\n");
    return 1;
  }

  bench::JsonWriter json;
  json.begin_object();
  json.field("bench", "numa_scaling");
  json.field("engine", "sim");
  json.field("size", bench::size_name(options.size));
  json.field("seed", options.seed);
  json.field("wide_fanout_kernel", kWideFanoutKernel);
  json.begin_object("machine_model");
  json.field("remote_steal_latency_ticks",
             static_cast<std::uint64_t>(defaults.remote_steal_latency));
  json.field("cache_affinity_cost_ticks",
             static_cast<std::uint64_t>(defaults.cache_affinity_cost));
  json.field("remote_contention_weight", defaults.remote_contention_weight);
  json.field("steal_batch_max",
             static_cast<std::uint64_t>(defaults.steal_batch_max));
  json.end_object();
  json.begin_array("results");
  for (const Cell& cell : cells) {
    json.begin_object();
    json.field("kernel", cell.kernel);
    json.field("machine", cell.machine);
    json.field("domains", static_cast<std::uint64_t>(cell.domains));
    json.field("workers", static_cast<std::uint64_t>(cell.workers));
    json.field("tasks", cell.flat_tasks);
    json.field("flat_span_ticks", static_cast<std::uint64_t>(cell.flat_span));
    json.field("hier_span_ticks", static_cast<std::uint64_t>(cell.hier_span));
    json.field("ratio", cell.ratio());
    json.field("counts_match", cell.counts_match());
    json.end_object();
  }
  json.end_array();
  json.end_object();
  if (!json.write_file(options.out_path)) return 1;
  std::printf("wrote %s\n", options.out_path.c_str());
  return 0;
}
