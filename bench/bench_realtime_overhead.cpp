// Section V-A on the real-thread engine: wall-clock overhead of profiling
// for the BOTS kernels, instrumented vs. uninstrumented, on real threads.
//
// This bench runs on the actual host (the paper-style experiment), so the
// numbers are wall-clock and noisy — especially on an oversubscribed
// machine.  The host this repository targets has a single core, so only
// 1 and 2 threads are measured and the median of several repetitions is
// reported.  The virtual-time counterpart (bench_fig13/14) is the primary
// reproduction.
#include <algorithm>
#include <vector>

#include "common.hpp"
#include "rt/real_runtime.hpp"

namespace {

using namespace taskprof;

Ticks median_span(bots::Kernel& kernel, const bots::KernelConfig& config,
                  bool instrumented, int reps) {
  std::vector<Ticks> spans;
  for (int rep = 0; rep < reps; ++rep) {
    RegionRegistry registry;
    rt::RealRuntime runtime;
    bots::KernelResult result;
    if (instrumented) {
      Instrumentor instr(registry);
      runtime.set_hooks(&instr);
      result = kernel.run(runtime, registry, config);
      runtime.set_hooks(nullptr);
      instr.finalize();
    } else {
      result = kernel.run(runtime, registry, config);
    }
    if (!result.ok) {
      std::fprintf(stderr, "FATAL: %s failed self-check\n",
                   std::string(kernel.name()).c_str());
      std::exit(1);
    }
    spans.push_back(result.stats.parallel_ticks);
  }
  std::sort(spans.begin(), spans.end());
  return spans[spans.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  std::puts("=== Section V-A: wall-clock profiling overhead (real engine) ===");
  std::puts("reproduces: Lorenz et al. 2012, Figure 13 methodology");
  std::printf("engine: real threads (host wall clock) | size class: %s\n\n",
              bench::size_name(options.size));

  constexpr int kReps = 3;
  TextTable table({"code", "version", "plain (1t)", "instr (1t)",
                   "overhead (1t)", "overhead (2t)"});
  for (auto& kernel : bots::make_all_kernels()) {
    bots::KernelConfig config;
    config.size = options.size == bots::SizeClass::kMedium
                      ? bots::SizeClass::kSmall  // keep wall time bounded
                      : options.size;
    config.seed = options.seed;
    config.cutoff = kernel->has_cutoff_version();

    config.threads = 1;
    const Ticks plain1 = median_span(*kernel, config, false, kReps);
    const Ticks instr1 = median_span(*kernel, config, true, kReps);
    config.threads = 2;
    const Ticks plain2 = median_span(*kernel, config, false, kReps);
    const Ticks instr2 = median_span(*kernel, config, true, kReps);

    table.add_row({std::string(kernel->name()),
                   kernel->has_cutoff_version() ? "cut-off" : "plain",
                   format_ticks(plain1), format_ticks(instr1),
                   format_percent(bench::overhead(plain1, instr1)),
                   format_percent(bench::overhead(plain2, instr2))});
  }
  std::fputs(table.str().c_str(), stdout);
  std::puts(
      "\nexpected shape: fine-grained codes (fib) pay the most; coarse "
      "codes (alignment, strassen, sparselu) pay the least.  Wall-clock "
      "noise on a shared 1-core host can exceed small overheads.");
  return 0;
}
