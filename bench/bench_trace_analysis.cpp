// Paper §VII (future work), implemented: trace-based decomposition of
// synchronization time into *management* and *waiting*, the
// management-to-execution ratio, queue latencies, and the longest
// dependency chain — checked against the §V-B claim that the chain
// length estimates the concurrent-instance count of Table II.
#include "common.hpp"
#include "report/analysis.hpp"
#include "trace/analysis.hpp"
#include "trace/recorder.hpp"

using namespace taskprof;

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  bench::print_header(
      "=== Section VII: trace-based management/waiting decomposition ===",
      "Lorenz et al. 2012, Section VII (proposed future work)", options);

  TextTable table({"code", "threads", "task execution", "sync management",
                   "sync waiting", "mgmt/exec ratio", "mean queue latency",
                   "chain len", "max conc (profile)"});

  for (const std::string& name : {std::string("fib"), std::string("nqueens"),
                                  std::string("sort"),
                                  std::string("strassen")}) {
    auto kernel = bots::make_kernel(name);
    for (int threads : {1, 8}) {
      bots::KernelConfig config;
      config.threads = threads;
      config.size = options.size;
      config.seed = options.seed;
      config.cutoff = false;

      RegionRegistry registry;
      rt::SimRuntime sim;
      Instrumentor instr(registry);
      trace::TraceRecorder recorder;
      rt::FanoutHooks fanout{&instr, &recorder};
      sim.set_hooks(&fanout);
      const auto result = kernel->run(sim, registry, config);
      sim.set_hooks(nullptr);
      instr.finalize();
      if (!result.ok) {
        std::fprintf(stderr, "FATAL: %s failed self-check\n", name.c_str());
        return 1;
      }

      const trace::TraceAnalysis analysis =
          trace::analyze_trace(recorder.take());
      const AggregateProfile profile = instr.aggregate();
      table.add_row(
          {name, std::to_string(threads),
           format_ticks(analysis.total_active),
           format_ticks(analysis.sync_management),
           format_ticks(analysis.sync_waiting),
           format_percent(analysis.management_to_execution_ratio()),
           format_ticks(static_cast<Ticks>(analysis.queue_latency.mean())),
           std::to_string(analysis.critical_chain_length),
           std::to_string(profile.max_concurrent_any_thread)});
    }
  }
  std::fputs(table.str().c_str(), stdout);
  std::puts(
      "\nreadings: the management share of sync time grows with threads for "
      "the fine-grained codes (the profile alone cannot make this split, "
      "paper SS VII); the dependency-chain length upper-bounds the measured "
      "max concurrent instances (paper SS V-B's estimate).");
  return 0;
}
