// Paper Table II: maximum number of concurrently executing (active) task
// instances per thread, for all 14 BOTS code versions (with and without
// cut-off where provided).
//
// Paper shapes to hold: alignment = 1 (independent leaf tasks), sparselu
// tiny, recursive codes bounded by their recursion depth, and the cut-off
// versions far below their full counterparts (paper max was 20, 8 of 14
// cases below 5).
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace taskprof;
  const bench::Options options = bench::parse_options(argc, argv);
  bench::print_header(
      "=== Table II: max concurrently executing task instances per thread ===",
      "Lorenz et al. 2012, Table II", options);

  // Paper values for the medium inputs, for side-by-side comparison.
  const std::vector<std::tuple<std::string, bool, std::string>> versions = {
      {"alignment", false, "1"},  {"fft", false, "19"},
      {"fib", true, "4"},         {"floorplan", false, "20"},
      {"floorplan", true, "5"},   {"health", false, "4"},
      {"health", true, "3"},      {"nqueens", false, "14"},
      {"nqueens", true, "3"},     {"sort", false, "18"},
      {"sparselu", false, "2"},   {"strassen", false, "8"},
      {"strassen", true, "3"},    {"fib", false, "(not in paper)"},
  };

  TextTable table({"code", "max tasks", "paper (medium)", "profiler nodes",
                   "profiler memory"});
  for (const auto& [name, cutoff, paper_value] : versions) {
    auto kernel = bots::make_kernel(name);
    bots::KernelConfig config;
    config.threads = 8;
    config.size = options.size;
    config.seed = options.seed;
    config.cutoff = cutoff;
    const auto run = bench::run_sim(*kernel, config, true);
    std::string label = name;
    if (cutoff) label += " (cut-off)";
    char memory[32];
    std::snprintf(memory, sizeof(memory), "%.1f KiB",
                  static_cast<double>(run.memory.bytes) / 1024.0);
    table.add_row({label,
                   std::to_string(run.profile->max_concurrent_any_thread),
                   paper_value, format_count(run.memory.nodes), memory});
  }
  std::fputs(table.str().c_str(), stdout);
  std::puts(
      "\npaper reference: never above 20; alignment exactly 1; recursive "
      "codes track their recursion (or cut-off) depth.  Instance trees are "
      "recycled, so this count bounds the profiler's memory (paper SV-B).");
  return 0;
}
