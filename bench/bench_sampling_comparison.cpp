// Paper §II quantified: direct instrumentation vs. sampling.
//
// The paper dismisses sampling for task analysis: HPCToolkit-style tools
// "cannot identify those tasks that may cause overhead or imbalance".
// This bench reconstructs a sampling profiler from the trace and compares
// it with the direct-instrumentation profile on nqueens:
//
//  * aggregate task time per construct — sampling converges to the exact
//    value as the rate increases (sampling is fine for aggregates);
//  * instance-level statistics (count, min/mean/max, creation time) —
//    structurally unavailable to sampling at any rate, while §VI's
//    diagnosis rests exactly on them.
#include "common.hpp"
#include "trace/recorder.hpp"
#include "trace/sampling.hpp"

using namespace taskprof;

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  bench::print_header(
      "=== Sampling vs direct instrumentation (nqueens, 4 threads) ===",
      "Lorenz et al. 2012, Section II (sampling cannot identify tasks)",
      options);

  auto kernel = bots::make_kernel("nqueens");
  bots::KernelConfig config;
  config.threads = 4;
  config.size = options.size;
  config.seed = options.seed;

  RegionRegistry registry;
  rt::SimRuntime sim;
  Instrumentor instr(registry);
  trace::TraceRecorder recorder;
  rt::FanoutHooks fanout{&instr, &recorder};
  sim.set_hooks(&fanout);
  const auto result = kernel->run(sim, registry, config);
  sim.set_hooks(nullptr);
  instr.finalize();
  if (!result.ok) {
    std::fprintf(stderr, "FATAL: kernel self-check failed\n");
    return 1;
  }

  const trace::Trace trace = recorder.take();
  const AggregateProfile profile = instr.aggregate();
  const RegionHandle region =
      registry.register_region("nqueens_task", RegionType::kTask);
  const CallNode* merged = profile.task_root(region);
  if (merged == nullptr) {
    std::fputs("no task tree found\n", stderr);
    return 1;
  }
  const Ticks exact = merged->inclusive;

  TextTable table({"sampling period", "samples", "estimated task time",
                   "error vs exact", "instance stats?"});
  for (Ticks period : {Ticks{100'000}, Ticks{10'000}, Ticks{1'000},
                       Ticks{100}}) {
    const trace::SampleHistogram histogram =
        trace::sample_trace(trace, period);
    const Ticks estimate = histogram.estimated_time(region);
    const double error = exact == 0
                             ? 0.0
                             : static_cast<double>(estimate - exact) /
                                   static_cast<double>(exact);
    table.add_row({format_ticks(period),
                   format_count(histogram.total_samples),
                   format_ticks(estimate), format_percent(error),
                   "unavailable"});
  }
  std::fputs(table.str().c_str(), stdout);

  std::printf(
      "\ndirect instrumentation (exact): task time %s over %s instances, "
      "per-instance min %s / mean %s / max %s\n",
      format_ticks(exact).c_str(), format_count(merged->visits).c_str(),
      format_ticks(merged->visit_stats.min).c_str(),
      format_ticks(static_cast<Ticks>(merged->visit_stats.mean())).c_str(),
      format_ticks(merged->visit_stats.max).c_str());
  std::puts(
      "reading: sampling recovers the aggregate as the rate rises, but the "
      "instance-level columns the paper's SS VI tuning needs (counts, "
      "min/mean/max, creation cost) have no sampling equivalent — the "
      "paper's case for direct instrumentation.");
  return 0;
}
