// Measurement filtering: the Score-P workflow for the paper's fib
// scenario — when instrumentation of a hot, tiny function dominates the
// measurement ("these two events create large relative overhead", §V-A),
// the region is filtered out and its time folds into the parent.
//
// Real-engine wall-clock comparison: a task workload calling a tiny
// instrumented helper in a hot loop, measured uninstrumented, fully
// instrumented, and with the helper filtered.
#include <functional>

#include "common.hpp"
#include "rt/real_runtime.hpp"

using namespace taskprof;

namespace {

Ticks run(bool instrument, bool filter, int iterations) {
  RegionRegistry registry;
  const RegionHandle task =
      registry.register_region("loop_task", RegionType::kTask);
  const RegionHandle hot =
      registry.register_region("tiny_helper", RegionType::kFunction);

  rt::RealRuntime runtime;
  std::unique_ptr<Instrumentor> instr;
  if (instrument) {
    instr = std::make_unique<Instrumentor>(registry);
    if (filter) instr->filter_region(hot);
    runtime.set_hooks(instr.get());
  }
  volatile std::uint64_t sink = 0;
  auto stats = runtime.parallel(2, [&](rt::TaskContext& ctx) {
    if (!ctx.single()) return;
    for (int t = 0; t < 16; ++t) {
      rt::TaskAttrs attrs;
      attrs.region = task;
      ctx.create_task(
          [&, iterations](rt::TaskContext& c) {
            for (int i = 0; i < iterations; ++i) {
              rt::ScopedRegion helper(c, hot);
              sink = sink + static_cast<std::uint64_t>(i);
            }
          },
          attrs);
    }
    ctx.taskwait();
  });
  runtime.set_hooks(nullptr);
  if (instr != nullptr) instr->finalize();
  return stats.parallel_ticks;
}

Ticks median3(bool instrument, bool filter, int iterations) {
  Ticks a = run(instrument, filter, iterations);
  Ticks b = run(instrument, filter, iterations);
  Ticks c = run(instrument, filter, iterations);
  if (a > b) std::swap(a, b);
  if (b > c) std::swap(b, c);
  if (a > b) std::swap(a, b);
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  std::puts("=== Measurement filtering (real engine, wall clock) ===");
  std::puts(
      "reproduces: the Score-P mitigation for Lorenz et al. SS V-A's "
      "hot-tiny-region overhead\n");

  const int iterations =
      options.size == bots::SizeClass::kTest ? 20'000 : 200'000;
  const Ticks plain = median3(false, false, iterations);
  const Ticks instrumented = median3(true, false, iterations);
  const Ticks filtered = median3(true, true, iterations);

  TextTable table({"configuration", "span", "overhead vs uninstrumented"});
  table.add_row({"uninstrumented", format_ticks(plain), "-"});
  table.add_row({"instrumented (helper measured)", format_ticks(instrumented),
                 format_percent(bench::overhead(plain, instrumented))});
  table.add_row({"instrumented (helper filtered)", format_ticks(filtered),
                 format_percent(bench::overhead(plain, filtered))});
  std::fputs(table.str().c_str(), stdout);
  std::puts(
      "\nreading: filtering removes most of the per-call measurement cost "
      "of the hot helper while keeping the task-level profile intact (its "
      "time folds into the parent's exclusive time).");
  return 0;
}
