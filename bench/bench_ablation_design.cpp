// Ablation of the paper's design decisions (DESIGN.md §4), on nqueens:
//
//  1. stub nodes on/off       — §IV-B4: without stubs, barrier time cannot
//                               be split into task execution vs. waiting.
//  2. pause-on-suspend on/off — §IV-B3: without it, suspended tasks absorb
//                               the time of tasks executed in between
//                               (double counting: task tree > stub time).
//  3. execution- vs creation-site attribution — §IV-B2 / Fig. 3: the
//                               creation-site variant produces negative
//                               exclusive times (run single-threaded).
//  4. LIFO vs FIFO dequeue    — §V-B: breadth-first scheduling inflates
//                               the number of concurrently active
//                               instances (profiler memory) far beyond
//                               the recursion depth.
//  5. mutex deque vs Chase-Lev — RealConfig::scheduler: the real engine's
//                               lock-free work-stealing deque against the
//                               mutex baseline, same task counts, spans
//                               side by side (bench_queue_contention has
//                               the full sweep).
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "common.hpp"
#include "report/analysis.hpp"
#include "rt/real_runtime.hpp"

using namespace taskprof;

namespace {

struct VariantRun {
  rt::TeamStats stats;
  AggregateProfile profile;
  std::unique_ptr<RegionRegistry> registry;
};

VariantRun run_variant(bots::Kernel& kernel, const bots::KernelConfig& config,
                       const MeasureOptions& measure,
                       const rt::SimConfig& sim_config) {
  auto registry = std::make_unique<RegionRegistry>();
  rt::SimRuntime sim(sim_config);
  Instrumentor instr(*registry, measure);
  sim.set_hooks(&instr);
  const auto result = kernel.run(sim, *registry, config);
  sim.set_hooks(nullptr);
  instr.finalize();
  if (!result.ok) {
    std::fprintf(stderr, "FATAL: kernel self-check failed\n");
    std::exit(1);
  }
  return VariantRun{result.stats, instr.aggregate(), std::move(registry)};
}

Ticks stub_total(const AggregateProfile& profile) {
  Ticks total = 0;
  for_each_node(profile.implicit_root, [&](const CallNode& node, int) {
    if (node.is_stub) total += node.inclusive;
  });
  return total;
}

Ticks min_exclusive(const AggregateProfile& profile) {
  Ticks least = 0;
  auto scan = [&](const CallNode* root) {
    for_each_node(root, [&](const CallNode& node, int) {
      least = std::min(least, node.exclusive());
    });
  };
  scan(profile.implicit_root);
  for (const CallNode* root : profile.task_roots) scan(root);
  return least;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options options = bench::parse_options(argc, argv);
  bench::print_header("=== Ablation: the paper's design decisions ===",
                      "Lorenz et al. 2012, Section IV-B design rationale",
                      options);

  auto kernel = bots::make_kernel("nqueens");
  bots::KernelConfig config;
  config.threads = 4;
  config.size = options.size;
  config.seed = options.seed;
  config.cutoff = false;

  TextTable table({"variant", "barrier excl", "stub time", "task tree time",
                   "min excl anywhere", "span"});
  struct Variant {
    const char* name;
    MeasureOptions measure;
    int threads;
  };
  MeasureOptions defaults;
  MeasureOptions no_stubs;
  no_stubs.stub_nodes = false;
  MeasureOptions no_pause;
  no_pause.pause_on_suspend = false;
  MeasureOptions creation_site;
  creation_site.creation_site_attribution = true;
  const Variant variants[] = {
      {"paper design", defaults, 4},
      {"no stub nodes", no_stubs, 4},
      {"no pause on suspend", no_pause, 4},
      {"creation-site attribution (1 thread)", creation_site, 1},
  };
  for (const Variant& variant : variants) {
    bots::KernelConfig cfg = config;
    cfg.threads = variant.threads;
    const auto run = run_variant(*kernel, cfg, variant.measure, {});
    const auto summary =
        scheduling_point_summary(run.profile, *run.registry);
    Ticks task_total = 0;
    for (const CallNode* root : run.profile.task_roots) {
      task_total += root->inclusive;
    }
    table.add_row({variant.name, format_ticks(summary.barrier_exclusive),
                   format_ticks(stub_total(run.profile)),
                   format_ticks(task_total),
                   format_ticks(min_exclusive(run.profile)),
                   format_ticks(run.stats.parallel_ticks)});
  }
  std::fputs(table.str().c_str(), stdout);

  std::puts("\n--- scheduling-policy ablation (Table II memory bound) ---");
  std::puts(
      "(test-size input: breadth-first scheduling keeps tens of thousands "
      "of suspended task stacks alive at larger sizes — the memory "
      "explosion this ablation demonstrates)");
  TextTable sched({"scheduling policy", "max concurrent instances", "span"});
  // Relaxed policies suspend O(live tasks) fibers at once; keep the input
  // small so the breadth-first row stays within a laptop's memory.
  config.size = bots::SizeClass::kTest;
  struct Policy {
    const char* name;
    bool strict;
    bool lifo;
  };
  const Policy policies[] = {
      {"children-first taskwait + LIFO (default, libgomp-like)", true, true},
      {"any-task taskwait + LIFO (LLVM-like)", false, true},
      {"any-task taskwait + FIFO (breadth-first)", false, false},
  };
  for (const Policy& policy : policies) {
    rt::SimConfig sim_config;
    sim_config.strict_taskwait_scheduling = policy.strict;
    sim_config.lifo_dequeue = policy.lifo;
    const auto run =
        run_variant(*kernel, config, MeasureOptions{}, sim_config);
    sched.add_row({policy.name,
                   std::to_string(run.profile.max_concurrent_any_thread),
                   format_ticks(run.stats.parallel_ticks)});
  }
  std::fputs(sched.str().c_str(), stdout);

  std::puts("\n--- real-engine scheduler ablation (RealConfig::scheduler) ---");
  TextTable real_table({"scheduler", "tasks", "steals", "span"});
  {
    RegionRegistry real_registry;
    const RegionHandle task_region =
        real_registry.register_region("fib", RegionType::kTask);
    // Cut-off-free fib: fine-grained spawns plus taskwait pressure — the
    // shape where queue overhead dominates.
    const int fib_n = options.size == bots::SizeClass::kTest ? 16 : 20;
    std::function<void(rt::TaskContext&, int, long*)> fib =
        [&](rt::TaskContext& ctx, int n, long* out) {
          if (n < 2) {
            *out = n;
            return;
          }
          rt::TaskAttrs attrs;
          attrs.region = task_region;
          long a = 0;
          long b = 0;
          ctx.create_task(
              [&fib, n, &a](rt::TaskContext& c) { fib(c, n - 1, &a); }, attrs);
          ctx.create_task(
              [&fib, n, &b](rt::TaskContext& c) { fib(c, n - 2, &b); }, attrs);
          ctx.taskwait();
          *out = a + b;
        };
    std::uint64_t tasks_baseline = 0;
    const rt::SchedulerKind kinds[] = {rt::SchedulerKind::kMutexDeque,
                                       rt::SchedulerKind::kChaseLev};
    for (const rt::SchedulerKind kind : kinds) {
      rt::RealConfig real_config;
      real_config.scheduler = kind;
      rt::RealRuntime runtime(real_config);
      long result = 0;
      const auto stats = runtime.parallel(4, [&](rt::TaskContext& ctx) {
        if (ctx.single()) fib(ctx, fib_n, &result);
      });
      const char* name = kind == rt::SchedulerKind::kChaseLev
                             ? "chase_lev (lock-free deque)"
                             : "mutex_deque (baseline)";
      real_table.add_row({name, std::to_string(stats.tasks_executed),
                          std::to_string(stats.steals),
                          format_ticks(stats.parallel_ticks)});
      if (kind == rt::SchedulerKind::kMutexDeque) {
        tasks_baseline = stats.tasks_executed;
      } else if (stats.tasks_executed != tasks_baseline) {
        std::fprintf(stderr, "FATAL: scheduler task counts diverge\n");
        return 1;
      }
    }
  }
  std::fputs(real_table.str().c_str(), stdout);

  std::puts(
      "\nreadings: 'no stub nodes' zeroes the stub column and dumps task "
      "execution into barrier exclusive (waiting and working become "
      "indistinguishable); 'no pause' inflates task-tree time above stub "
      "time (suspension double-counted); creation-site attribution drives "
      "an exclusive time negative (Fig. 3); relaxed scheduling policies "
      "inflate concurrent instances (profiler memory) beyond the recursion "
      "depth; both real-engine schedulers execute the identical task "
      "count, the Chase-Lev deque just gets there without a lock.");
  return 0;
}
