// Microbenchmarks of the measurement-layer primitives (google-benchmark):
// the per-event costs that bound the instrumentation overhead the paper
// measures.  Score-P-era profilers aim for O(100 ns) per event; these
// benches verify our primitives are in that class.
#include <benchmark/benchmark.h>

#include "common/clock.hpp"
#include "measure/task_profiler.hpp"
#include "profile/region.hpp"

namespace {

using namespace taskprof;

struct Fixture {
  RegionRegistry registry;
  SteadyClock clock;
  RegionHandle implicit =
      registry.register_region("implicit task", RegionType::kImplicitTask);
  RegionHandle foo = registry.register_region("foo", RegionType::kFunction);
  RegionHandle barrier = registry.register_region(
      "implicit barrier", RegionType::kImplicitBarrier);
  RegionHandle task = registry.register_region("task", RegionType::kTask);
};

void BM_EnterExit(benchmark::State& state) {
  Fixture f;
  ThreadTaskProfiler prof(0, f.clock, f.implicit);
  for (auto _ : state) {
    prof.enter(f.foo);
    prof.exit(f.foo);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_EnterExit);

void BM_EnterExitDeepPath(benchmark::State& state) {
  Fixture f;
  ThreadTaskProfiler prof(0, f.clock, f.implicit);
  // Pre-build a path of depth 16, then measure hot enter/exit at the leaf.
  std::vector<RegionHandle> path;
  for (int i = 0; i < 16; ++i) {
    path.push_back(f.registry.register_region("level" + std::to_string(i),
                                              RegionType::kFunction));
    prof.enter(path.back());
  }
  for (auto _ : state) {
    prof.enter(f.foo);
    prof.exit(f.foo);
  }
  for (auto it = path.rbegin(); it != path.rend(); ++it) prof.exit(*it);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_EnterExitDeepPath);

void BM_TaskBeginEnd(benchmark::State& state) {
  Fixture f;
  ThreadTaskProfiler prof(0, f.clock, f.implicit);
  prof.enter(f.barrier);
  TaskInstanceId id = 1;
  for (auto _ : state) {
    prof.task_begin(f.task, id);
    prof.task_end(id);
    ++id;
  }
  prof.exit(f.barrier);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TaskBeginEnd);

void BM_TaskBeginEndWithBody(benchmark::State& state) {
  Fixture f;
  ThreadTaskProfiler prof(0, f.clock, f.implicit);
  prof.enter(f.barrier);
  TaskInstanceId id = 1;
  for (auto _ : state) {
    prof.task_begin(f.task, id);
    prof.enter(f.foo);
    prof.exit(f.foo);
    prof.task_end(id);
    ++id;
  }
  prof.exit(f.barrier);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TaskBeginEndWithBody);

void BM_TaskSwitchPingPong(benchmark::State& state) {
  Fixture f;
  ThreadTaskProfiler prof(0, f.clock, f.implicit);
  prof.enter(f.barrier);
  prof.task_begin(f.task, 1);
  prof.task_begin(f.task, 2);
  for (auto _ : state) {
    prof.task_switch(1);
    prof.task_switch(2);
  }
  prof.task_end(2);
  prof.task_switch(1);
  prof.task_end(1);
  prof.exit(f.barrier);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_TaskSwitchPingPong);

void BM_NodePoolAllocateRelease(benchmark::State& state) {
  NodePool pool;
  CallNode* root = pool.allocate(0, kNoParameter, false, nullptr);
  for (auto _ : state) {
    CallNode* node = pool.allocate(1, kNoParameter, false, root);
    pool.release_subtree(node);
    benchmark::DoNotOptimize(node);
  }
}
BENCHMARK(BM_NodePoolAllocateRelease);

void BM_MergeSmallTree(benchmark::State& state) {
  NodePool src_pool;
  CallNode* src = src_pool.allocate(0, kNoParameter, false, nullptr);
  for (RegionHandle r = 1; r <= 4; ++r) {
    CallNode* child = src_pool.allocate(r, kNoParameter, false, src);
    child->inclusive = 10;
    child->visits = 1;
  }
  NodePool dst_pool;
  CallNode* dst = dst_pool.allocate(0, kNoParameter, false, nullptr);
  for (auto _ : state) {
    merge_subtree(dst_pool, dst, src);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 5);
}
BENCHMARK(BM_MergeSmallTree);

void BM_ClockRead(benchmark::State& state) {
  SteadyClock clock;
  for (auto _ : state) {
    benchmark::DoNotOptimize(clock.now());
  }
}
BENCHMARK(BM_ClockRead);

}  // namespace

BENCHMARK_MAIN();
