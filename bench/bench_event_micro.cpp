// Microbenchmarks of the measurement-layer primitives (google-benchmark):
// the per-event costs that bound the instrumentation overhead the paper
// measures.  Score-P-era profilers aim for O(100 ns) per event; these
// benches verify our primitives are in that class.
#include <benchmark/benchmark.h>

#include "common/clock.hpp"
#include "measure/task_profiler.hpp"
#include "profile/region.hpp"

namespace {

using namespace taskprof;

struct Fixture {
  RegionRegistry registry;
  SteadyClock clock;
  RegionHandle implicit =
      registry.register_region("implicit task", RegionType::kImplicitTask);
  RegionHandle foo = registry.register_region("foo", RegionType::kFunction);
  RegionHandle barrier = registry.register_region(
      "implicit barrier", RegionType::kImplicitBarrier);
  RegionHandle task = registry.register_region("task", RegionType::kTask);
};

void BM_EnterExit(benchmark::State& state) {
  Fixture f;
  ThreadTaskProfiler prof(0, f.clock, f.implicit);
  for (auto _ : state) {
    prof.enter(f.foo);
    prof.exit(f.foo);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_EnterExit);

void BM_EnterExitDeepPath(benchmark::State& state) {
  Fixture f;
  ThreadTaskProfiler prof(0, f.clock, f.implicit);
  // Pre-build a path of depth 16, then measure hot enter/exit at the leaf.
  std::vector<RegionHandle> path;
  for (int i = 0; i < 16; ++i) {
    path.push_back(f.registry.register_region("level" + std::to_string(i),
                                              RegionType::kFunction));
    prof.enter(path.back());
  }
  for (auto _ : state) {
    prof.enter(f.foo);
    prof.exit(f.foo);
  }
  for (auto it = path.rbegin(); it != path.rend(); ++it) prof.exit(*it);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_EnterExitDeepPath);

// Wide fan-out: 256 parameter-distinguished children under one node, hit
// round-robin so the hot_child cache misses and the lookup cost is what's
// measured.  `accelerated=false` pins the engine to the plain sibling
// scan for the A/B.
void BM_EnterExitWideFanout(benchmark::State& state) {
  Fixture f;
  const bool accelerated = state.range(0) != 0;
  MeasureOptions options;
  options.child_lookup_acceleration = accelerated;
  ThreadTaskProfiler prof(0, f.clock, f.implicit, options);
  constexpr std::int64_t kFanout = 256;
  std::int64_t p = 0;
  for (auto _ : state) {
    prof.enter(f.foo, p);
    prof.exit(f.foo);
    p = (p + 1) % kFanout;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2);
  state.SetLabel(accelerated ? "indexed" : "linear-scan");
}
BENCHMARK(BM_EnterExitWideFanout)->Arg(1)->Arg(0);

void BM_TaskBeginEnd(benchmark::State& state) {
  Fixture f;
  ThreadTaskProfiler prof(0, f.clock, f.implicit);
  prof.enter(f.barrier);
  TaskInstanceId id = 1;
  for (auto _ : state) {
    prof.task_begin(f.task, id);
    prof.task_end(id);
    ++id;
  }
  prof.exit(f.barrier);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TaskBeginEnd);

// Same leaf-task stream with the merge fast path disabled: the delta is
// what the general merge walk costs per single-node instance tree.
void BM_TaskBeginEndNoLeafFastPath(benchmark::State& state) {
  Fixture f;
  MeasureOptions options;
  options.leaf_fast_path = false;
  ThreadTaskProfiler prof(0, f.clock, f.implicit, options);
  prof.enter(f.barrier);
  TaskInstanceId id = 1;
  for (auto _ : state) {
    prof.task_begin(f.task, id);
    prof.task_end(id);
    ++id;
  }
  prof.exit(f.barrier);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TaskBeginEndNoLeafFastPath);

void BM_TaskBeginEndWithBody(benchmark::State& state) {
  Fixture f;
  ThreadTaskProfiler prof(0, f.clock, f.implicit);
  prof.enter(f.barrier);
  TaskInstanceId id = 1;
  for (auto _ : state) {
    prof.task_begin(f.task, id);
    prof.enter(f.foo);
    prof.exit(f.foo);
    prof.task_end(id);
    ++id;
  }
  prof.exit(f.barrier);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TaskBeginEndWithBody);

void BM_TaskSwitchPingPong(benchmark::State& state) {
  Fixture f;
  ThreadTaskProfiler prof(0, f.clock, f.implicit);
  prof.enter(f.barrier);
  prof.task_begin(f.task, 1);
  prof.task_begin(f.task, 2);
  for (auto _ : state) {
    prof.task_switch(1);
    prof.task_switch(2);
  }
  prof.task_end(2);
  prof.task_switch(1);
  prof.task_end(1);
  prof.exit(f.barrier);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_TaskSwitchPingPong);

void BM_NodePoolAllocateRelease(benchmark::State& state) {
  NodePool pool;
  CallNode* root = pool.allocate(0, kNoParameter, false, nullptr);
  for (auto _ : state) {
    CallNode* node = pool.allocate(1, kNoParameter, false, root);
    pool.release_subtree(node);
    benchmark::DoNotOptimize(node);
  }
}
BENCHMARK(BM_NodePoolAllocateRelease);

void BM_MergeSmallTree(benchmark::State& state) {
  NodePool src_pool;
  CallNode* src = src_pool.allocate(0, kNoParameter, false, nullptr);
  for (RegionHandle r = 1; r <= 4; ++r) {
    CallNode* child = src_pool.allocate(r, kNoParameter, false, src);
    child->inclusive = 10;
    child->visits = 1;
  }
  NodePool dst_pool;
  CallNode* dst = dst_pool.allocate(0, kNoParameter, false, nullptr);
  for (auto _ : state) {
    merge_subtree(dst_pool, dst, src);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 5);
}
BENCHMARK(BM_MergeSmallTree);

// Merging a 64-way parameter fan-out into an existing same-shape tree:
// every child lookup in the destination hits the promoted index (or, at
// Arg(0), the linear scan).
void BM_MergeWideTree(benchmark::State& state) {
  const bool accelerated = state.range(0) != 0;
  constexpr std::int64_t kFanout = 64;
  NodePool src_pool;
  CallNode* src = src_pool.allocate(0, kNoParameter, false, nullptr);
  for (std::int64_t p = 0; p < kFanout; ++p) {
    CallNode* child = src_pool.allocate(1, p, false, src);
    child->inclusive = 10;
    child->visits = 1;
    child->visit_stats.add(10);
  }
  NodePool dst_pool;
  dst_pool.set_lookup_acceleration(accelerated);
  CallNode* dst = dst_pool.allocate(0, kNoParameter, false, nullptr);
  merge_subtree(dst_pool, dst, src);  // pre-build the destination shape
  for (auto _ : state) {
    merge_subtree(dst_pool, dst, src);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          (kFanout + 1));
  state.SetLabel(accelerated ? "indexed" : "linear-scan");
}
BENCHMARK(BM_MergeWideTree)->Arg(1)->Arg(0);

void BM_ClockRead(benchmark::State& state) {
  SteadyClock clock;
  for (auto _ : state) {
    benchmark::DoNotOptimize(clock.now());
  }
}
BENCHMARK(BM_ClockRead);

}  // namespace

BENCHMARK_MAIN();
