// Paper Fig. 13: runtime overhead of task profiling, per BOTS code and
// thread count (1/2/4/8), using the optimized (cut-off) version where one
// exists.  Overhead = (instrumented - uninstrumented) / uninstrumented of
// the parallel region span.
//
// Paper shapes to hold: alignment / sparselu / strassen ~0 %; nqueens and
// sort a few percent; fib is the pathological outlier (hundreds of %,
// paper: 310 % at 1 thread); fft and health start higher (17 % / 32 %) and
// decay with threads.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace taskprof;
  const bench::Options options = bench::parse_options(argc, argv);
  bench::print_header(
      "=== Fig. 13: profiling overhead, cut-off versions ===",
      "Lorenz et al. 2012, Figure 13", options);

  TextTable table({"code", "version", "1 thread", "2 threads", "4 threads",
                   "8 threads"});
  for (auto& kernel : bots::make_all_kernels()) {
    std::vector<std::string> row;
    row.push_back(std::string(kernel->name()));
    row.push_back(kernel->has_cutoff_version() ? "cut-off" : "plain");
    for (int threads : {1, 2, 4, 8}) {
      bots::KernelConfig config;
      config.threads = threads;
      config.size = options.size;
      config.seed = options.seed;
      config.cutoff = kernel->has_cutoff_version();
      const auto plain = bench::run_sim(*kernel, config, false);
      const auto instrumented = bench::run_sim(*kernel, config, true);
      row.push_back(format_percent(
          bench::overhead(plain.result.stats.parallel_ticks,
                          instrumented.result.stats.parallel_ticks)));
    }
    table.add_row(std::move(row));
  }
  std::fputs(table.str().c_str(), stdout);
  std::puts(
      "\npaper reference (Juropa, medium inputs): alignment/sparselu/"
      "strassen ~0%, nqueens/sort ~6%, floorplan 6-11%, fft 17->10%, "
      "health 32->6%, fib ~310%.");
  return 0;
}
