// Paper Fig. 15: runtime of the *uninstrumented* non-cut-off BOTS
// versions over 1/2/4/8 threads, each code normalized to its highest
// measured runtime (percent of max).
//
// Paper shape to hold: for the too-fine-grained codes the runtime
// *increases* with the thread count (task management contention outweighs
// parallelism) — the maximum sits at 8 threads; strassen is the
// exception and becomes faster with more threads.
//
// --max-workers=N extends the sweep past the paper's 8 threads by
// doubling (16, 32, ..., N; 256 is the scaling-study width) — the
// simulator runs any team width on one OS thread, so the figure's
// contention-collapse shape can be followed to machine sizes the paper's
// hosts never had.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace taskprof;
  const bench::Options options = bench::parse_options(argc, argv);
  bench::print_header(
      "=== Fig. 15: runtime vs threads, uninstrumented non-cut-off ===",
      "Lorenz et al. 2012, Figure 15", options);

  std::vector<int> thread_counts;
  for (int threads = 1; threads <= options.max_workers; threads *= 2) {
    thread_counts.push_back(threads);
  }

  std::vector<std::string> header{"code"};
  for (int threads : thread_counts) {
    header.push_back(std::to_string(threads) +
                     (threads == 1 ? " thread" : " threads"));
  }
  header.emplace_back("max runtime");
  TextTable table(std::move(header));

  for (const std::string& name : bots::nocutoff_study_kernels()) {
    auto kernel = bots::make_kernel(name);
    std::vector<Ticks> runtimes;
    for (int threads : thread_counts) {
      bots::KernelConfig config;
      config.threads = threads;
      config.size = options.size;
      config.seed = options.seed;
      config.cutoff = false;
      const auto run = bench::run_sim(*kernel, config, false);
      runtimes.push_back(run.result.stats.parallel_ticks);
    }
    const Ticks max_runtime =
        *std::max_element(runtimes.begin(), runtimes.end());
    std::vector<std::string> row{name};
    for (Ticks t : runtimes) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.0f %%",
                    100.0 * static_cast<double>(t) /
                        static_cast<double>(max_runtime));
      row.emplace_back(buf);
    }
    row.push_back(format_ticks(max_runtime));
    table.add_row(std::move(row));
  }
  std::fputs(table.str().c_str(), stdout);
  std::puts(
      "\npaper reference: runtimes grow with thread count for fib, "
      "floorplan, health, nqueens (100% of max at 8 threads); strassen "
      "shrinks instead.");
  return 0;
}
