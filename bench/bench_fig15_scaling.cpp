// Paper Fig. 15: runtime of the *uninstrumented* non-cut-off BOTS
// versions over 1/2/4/8 threads, each code normalized to its highest
// measured runtime (percent of max).
//
// Paper shape to hold: for the too-fine-grained codes the runtime
// *increases* with the thread count (task management contention outweighs
// parallelism) — the maximum sits at 8 threads; strassen is the
// exception and becomes faster with more threads.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace taskprof;
  const bench::Options options = bench::parse_options(argc, argv);
  bench::print_header(
      "=== Fig. 15: runtime vs threads, uninstrumented non-cut-off ===",
      "Lorenz et al. 2012, Figure 15", options);

  TextTable table({"code", "1 thread", "2 threads", "4 threads", "8 threads",
                   "max runtime"});
  for (const std::string& name : bots::nocutoff_study_kernels()) {
    auto kernel = bots::make_kernel(name);
    std::vector<Ticks> runtimes;
    for (int threads : {1, 2, 4, 8}) {
      bots::KernelConfig config;
      config.threads = threads;
      config.size = options.size;
      config.seed = options.seed;
      config.cutoff = false;
      const auto run = bench::run_sim(*kernel, config, false);
      runtimes.push_back(run.result.stats.parallel_ticks);
    }
    const Ticks max_runtime =
        *std::max_element(runtimes.begin(), runtimes.end());
    std::vector<std::string> row{name};
    for (Ticks t : runtimes) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.0f %%",
                    100.0 * static_cast<double>(t) /
                        static_cast<double>(max_runtime));
      row.emplace_back(buf);
    }
    row.push_back(format_ticks(max_runtime));
    table.add_row(std::move(row));
  }
  std::fputs(table.str().c_str(), stdout);
  std::puts(
      "\npaper reference: runtimes grow with thread count for fib, "
      "floorplan, health, nqueens (100% of max at 8 threads); strassen "
      "shrinks instead.");
  return 0;
}
