// Ablation of the simulator's instrumentation cost model: sweep the
// per-event cost and observe the overhead of profiling fib (non-cut-off)
// at 1 and 8 threads.
//
// Expected: at 1 thread, overhead grows ~linearly with the event cost; at
// 8 threads the management-lock bottleneck shadows it (paper §V-A:
// "instrumentation shifts some of the overhead from the OpenMP runtime
// system to the profiling system"), so the same event cost buys much less
// overhead — and the gap widens with the cost.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace taskprof;
  const bench::Options options = bench::parse_options(argc, argv);
  bench::print_header(
      "=== Ablation: per-event instrumentation cost sweep (fib, no cut-off) ===",
      "Lorenz et al. 2012, Section V-A overhead-shadowing mechanism",
      options);

  auto kernel = bots::make_kernel("fib");
  TextTable table({"event cost", "overhead @1 thread", "overhead @8 threads",
                   "shadowing factor"});
  for (Ticks event_cost : {Ticks{0}, Ticks{70}, Ticks{140}, Ticks{280},
                           Ticks{560}}) {
    bots::KernelConfig config;
    config.size = options.size;
    config.seed = options.seed;
    config.cutoff = false;

    double overheads[2] = {0.0, 0.0};
    int slot = 0;
    for (int threads : {1, 8}) {
      config.threads = threads;
      rt::SimConfig sim_config;
      sim_config.costs.instr_event = event_cost;
      const auto plain = bench::run_sim(*kernel, config, false, sim_config);
      const auto instrumented =
          bench::run_sim(*kernel, config, true, sim_config);
      overheads[slot++] =
          bench::overhead(plain.result.stats.parallel_ticks,
                          instrumented.result.stats.parallel_ticks);
    }
    const double shadow =
        overheads[1] <= 0.0 ? 0.0 : overheads[0] / overheads[1];
    char shadow_str[32];
    std::snprintf(shadow_str, sizeof(shadow_str), "%.1fx", shadow);
    table.add_row({format_ticks(event_cost), format_percent(overheads[0]),
                   format_percent(overheads[1]), shadow_str});
  }
  std::fputs(table.str().c_str(), stdout);
  std::puts(
      "\nreading: the 8-thread overhead stays far below the 1-thread "
      "overhead at every event cost — the contention shadowing that lets "
      "the paper's Fig. 14 overheads fall toward zero at scale.");
  return 0;
}
