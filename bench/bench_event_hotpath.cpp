// Event-engine hot-path trajectory bench (BENCH_event_hotpath.json).
//
// Drives ThreadTaskProfiler directly with synthetic event streams shaped
// like the paper's workloads — no engine, no scheduler, so the numbers
// isolate the measurement layer itself.  Every shape runs twice:
//
//   baseline  child_lookup_acceleration=false, leaf_fast_path=false
//             (the plain engine: linear sibling scans, full merge walks)
//   fastpath  the defaults (hot_child cache, promoted child indexes,
//             merged-root index, leaf merge fast path)
//
// The committed JSON is the before/after evidence for the fast-path work
// and the reference for tools/check_bench_regression.py: the per-shape
// fastpath/baseline speedup is machine-independent enough to gate CI on.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "common/clock.hpp"
#include "measure/task_profiler.hpp"
#include "profile/region.hpp"

namespace {

using namespace taskprof;

struct Regions {
  RegionRegistry registry;
  RegionHandle implicit =
      registry.register_region("implicit task", RegionType::kImplicitTask);
  RegionHandle fn = registry.register_region("work", RegionType::kFunction);
  RegionHandle barrier = registry.register_region(
      "implicit barrier", RegionType::kImplicitBarrier);
  RegionHandle taskwait =
      registry.register_region("taskwait", RegionType::kTaskwait);
  RegionHandle create =
      registry.register_region("create task", RegionType::kTaskCreate);
  RegionHandle task = registry.register_region("task", RegionType::kTask);
};

/// One measured event stream: returns the number of profiler calls made
/// ("events"); the driver times the call.
using Shape = std::uint64_t (*)(ThreadTaskProfiler&, const Regions&,
                                std::uint64_t n);

/// Tight enter/exit of one region: the hot_child happy path and the
/// per-event floor (dominated by the clock read).
std::uint64_t shape_enter_exit_hot(ThreadTaskProfiler& prof, const Regions& r,
                                   std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) {
    prof.enter(r.fn);
    prof.exit(r.fn);
  }
  return 2 * n;
}

/// 256 parameter-distinguished siblings hit round-robin: the promoted
/// child index vs. an O(256) scan per enter.
std::uint64_t shape_enter_exit_wide256(ThreadTaskProfiler& prof,
                                       const Regions& r, std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) {
    prof.enter(r.fn, static_cast<std::int64_t>(i % 256));
    prof.exit(r.fn);
  }
  return 2 * n;
}

/// Non-cut-off fib leaves with per-depth parameter profiling (paper
/// Table IV): every task is a single-node instance tree that begins and
/// immediately ends — the leaf merge fast path's case — and the depth
/// parameter spreads the merged roots and barrier stubs over ~40
/// identities, which the baseline engine rescans on every event.
std::uint64_t shape_fib_leaf_tasks(ThreadTaskProfiler& prof, const Regions& r,
                                   std::uint64_t n) {
  prof.enter(r.barrier);
  TaskInstanceId id = 1;
  for (std::uint64_t i = 0; i < n; ++i) {
    // Stride-7 walk over 40 depths: consecutive completions rarely share
    // a depth, as when the scheduler drains interleaved subtrees.
    const auto depth = static_cast<std::int64_t>((i * 7) % 40);
    prof.task_begin(r.task, id, depth);
    prof.task_end(id);
    ++id;
  }
  prof.exit(r.barrier);
  return 2 * n + 2;
}

/// Fib interior nodes under per-depth profiling: create/create/taskwait
/// inside each task, so the instance trees have children and take the
/// general merge into the per-depth merged tree.
std::uint64_t shape_fib_with_creates(ThreadTaskProfiler& prof,
                                     const Regions& r, std::uint64_t n) {
  prof.enter(r.barrier);
  TaskInstanceId id = 1;
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto depth = static_cast<std::int64_t>((i * 7) % 40);
    prof.task_begin(r.task, id, depth);
    prof.enter(r.create);
    prof.exit(r.create);
    prof.enter(r.create);
    prof.exit(r.create);
    prof.enter(r.taskwait);
    prof.exit(r.taskwait);
    prof.task_end(id);
    ++id;
  }
  prof.exit(r.barrier);
  return 8 * n + 2;
}

/// Per-depth parameter profiling (paper Table IV): tasks of 48 different
/// parameter values interleaved, so the merged-root lookup on every
/// task_end misses the last-hit pointer and hundreds of roots accumulate.
std::uint64_t shape_nqueens_param_tasks(ThreadTaskProfiler& prof,
                                        const Regions& r, std::uint64_t n) {
  prof.enter(r.barrier);
  TaskInstanceId id = 1;
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto p = static_cast<std::int64_t>(i % 48);
    prof.task_begin(r.task, id, p);
    prof.enter(r.fn, p);
    prof.exit(r.fn);
    prof.task_end(id);
    ++id;
  }
  prof.exit(r.barrier);
  return 4 * n + 2;
}

struct ShapeSpec {
  const char* name;
  Shape run;
  std::uint64_t n;  ///< iteration count at size=small
};

std::uint64_t scaled(std::uint64_t n, bots::SizeClass size) {
  switch (size) {
    case bots::SizeClass::kTest: return n / 20;
    case bots::SizeClass::kSmall: return n;
    case bots::SizeClass::kMedium: return n * 4;
  }
  return n;
}

struct Measurement {
  std::uint64_t events = 0;
  std::int64_t best_ns = 0;
};

Measurement measure(const ShapeSpec& spec, const MeasureOptions& options,
                    bots::SizeClass size, int reps) {
  Measurement m;
  const std::uint64_t n = std::max<std::uint64_t>(1, scaled(spec.n, size));
  for (int rep = 0; rep < reps; ++rep) {
    Regions r;
    SteadyClock clock;
    ThreadTaskProfiler prof(0, clock, r.implicit, options);
    const auto start = std::chrono::steady_clock::now();
    const std::uint64_t events = spec.run(prof, r, n);
    const auto stop = std::chrono::steady_clock::now();
    prof.finalize();
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
            .count();
    m.events = events;
    if (rep == 0 || ns < m.best_ns) m.best_ns = ns;
  }
  if (m.best_ns < 1) m.best_ns = 1;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::TrajectoryOptions options = bench::parse_trajectory_options(
      argc, argv, "BENCH_event_hotpath.json");

  const ShapeSpec shapes[] = {
      {"enter_exit_hot", shape_enter_exit_hot, 2'000'000},
      {"enter_exit_wide256", shape_enter_exit_wide256, 1'000'000},
      {"fib_leaf_tasks", shape_fib_leaf_tasks, 1'000'000},
      {"fib_with_creates", shape_fib_with_creates, 500'000},
      {"nqueens_param_tasks", shape_nqueens_param_tasks, 500'000},
  };

  MeasureOptions baseline;
  baseline.child_lookup_acceleration = false;
  baseline.leaf_fast_path = false;
  const MeasureOptions fastpath;  // defaults: acceleration on

  bench::JsonWriter json;
  json.begin_object();
  json.field("bench", "event_hotpath");
  json.field("size", bench::size_name(options.size));
  json.field("reps", options.reps);
  json.begin_array("results");

  std::printf("event-engine hot path: events/sec per shape (best of %d)\n\n",
              options.reps);
  std::printf("%-22s %14s %14s %8s\n", "shape", "baseline", "fastpath",
              "speedup");
  for (const ShapeSpec& spec : shapes) {
    const Measurement base = measure(spec, baseline, options.size,
                                     options.reps);
    const Measurement fast = measure(spec, fastpath, options.size,
                                     options.reps);
    const double base_eps = static_cast<double>(base.events) * 1e9 /
                            static_cast<double>(base.best_ns);
    const double fast_eps = static_cast<double>(fast.events) * 1e9 /
                            static_cast<double>(fast.best_ns);
    std::printf("%-22s %14.0f %14.0f %7.2fx\n", spec.name, base_eps, fast_eps,
                fast_eps / base_eps);
    for (int mode = 0; mode < 2; ++mode) {
      const Measurement& m = mode == 0 ? base : fast;
      json.begin_object();
      json.field("shape", spec.name);
      json.field("mode", mode == 0 ? "baseline" : "fastpath");
      json.field("events", m.events);
      json.field("best_ns", m.best_ns);
      json.field("events_per_sec", mode == 0 ? base_eps : fast_eps);
      json.end_object();
    }
  }
  json.end_array();
  json.end_object();
  if (!json.write_file(options.out_path)) return 1;
  std::printf("\nwrote %s\n", options.out_path.c_str());
  return 0;
}
