// Cut-off strategy comparison: none vs. BOTS' two cut-off styles —
// *manual* (stop creating tasks, call the serial code) and *if-clause*
// (keep creating tasks but undeferred below the cut-off, OpenMP `if(0)`).
//
// Context: the paper evaluates the manual versions (§V-A, "If a version
// with a cut-off for recursive task depth was provided ... we chose the
// cut-off version"); BOTS itself ships both strategies.  The comparison
// shows why: an undeferred task is cheaper than a deferred one (no queue,
// no load balancing) but still pays creation and switch bookkeeping, so
// if-clause lands between no-cut-off and manual.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace taskprof;
  const bench::Options options = bench::parse_options(argc, argv);
  bench::print_header(
      "=== Cut-off strategies: none vs manual vs if-clause (4 threads) ===",
      "BOTS cut-off styles (Duran et al. 2009), evaluated per Lorenz et "
      "al. SS V-A",
      options);

  TextTable table({"code", "strategy", "span", "tasks executed",
                   "speedup vs none"});
  for (const std::string& name :
       {std::string("fib"), std::string("nqueens"), std::string("health"),
        std::string("floorplan"), std::string("strassen")}) {
    auto kernel = bots::make_kernel(name);
    Ticks none_span = 0;
    struct Strategy {
      const char* label;
      bool cutoff;
      bool if_clause;
    };
    const Strategy strategies[] = {
        {"none", false, false},
        {"if-clause", true, true},
        {"manual", true, false},
    };
    for (const Strategy& strategy : strategies) {
      bots::KernelConfig config;
      config.threads = 4;
      config.size = options.size;
      config.seed = options.seed;
      config.cutoff = strategy.cutoff;
      config.if_clause = strategy.if_clause;
      const auto run = bench::run_sim(*kernel, config, false);
      const Ticks span = run.result.stats.parallel_ticks;
      if (!strategy.cutoff) none_span = span;
      char speedup[32];
      std::snprintf(speedup, sizeof(speedup), "%.2fx",
                    static_cast<double>(none_span) /
                        static_cast<double>(span));
      table.add_row({name, strategy.label, format_ticks(span),
                     format_count(run.result.stats.tasks_executed),
                     speedup});
    }
  }
  std::fputs(table.str().c_str(), stdout);
  std::puts(
      "\nreading: manual cut-offs win (no task bookkeeping at all below "
      "the cut-off); if-clause recovers part of the gain while keeping "
      "the program shape; both dwarf the no-cut-off versions for the "
      "fine-grained codes.");
  return 0;
}
