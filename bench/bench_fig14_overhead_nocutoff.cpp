// Paper Fig. 14: profiling overhead of the *non-cut-off* BOTS versions —
// the stress test with masses of tiny tasks.
//
// Paper shapes to hold: large single-thread overhead (fib 527 %) that
// *decreases* significantly with thread count, approaching (or crossing)
// zero, because the runtime's task-management lock becomes the bottleneck
// and shadows the instrumentation cost; strassen is the exception with
// uniformly low overhead.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace taskprof;
  const bench::Options options = bench::parse_options(argc, argv);
  bench::print_header(
      "=== Fig. 14: profiling overhead, non-cut-off versions ===",
      "Lorenz et al. 2012, Figure 14", options);

  TextTable table(
      {"code", "1 thread", "2 threads", "4 threads", "8 threads"});
  for (const std::string& name : bots::nocutoff_study_kernels()) {
    auto kernel = bots::make_kernel(name);
    std::vector<std::string> row{name};
    for (int threads : {1, 2, 4, 8}) {
      bots::KernelConfig config;
      config.threads = threads;
      config.size = options.size;
      config.seed = options.seed;
      config.cutoff = false;
      const auto plain = bench::run_sim(*kernel, config, false);
      const auto instrumented = bench::run_sim(*kernel, config, true);
      row.push_back(format_percent(
          bench::overhead(plain.result.stats.parallel_ticks,
                          instrumented.result.stats.parallel_ticks)));
    }
    table.add_row(std::move(row));
  }
  std::fputs(table.str().c_str(), stdout);
  std::puts(
      "\npaper reference: overhead starts large on 1 thread (fib 527%) and "
      "decreases towards ~0% at 8 threads (shadowed by runtime-internal "
      "contention); strassen stays low throughout.");
  return 0;
}
