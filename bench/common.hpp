// Shared helpers for the benchmark harness (one binary per paper
// table/figure).
//
// Every bench accepts:
//   --size=test|small|medium   problem size class (default small)
//   --seed=N                   workload seed (default 42)
//   --quick                    alias for --size=test
//
// The figures/tables are reproduced on the simulator engine: deterministic
// virtual time with the contention model that the host (one core,
// oversubscribed) cannot provide in wall-clock time.  bench_realtime_*
// uses the real engine.
#pragma once

#include <atomic>
#include <cstdio>
#include <cstring>
#include <exception>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bots/kernel.hpp"
#include "common/format.hpp"
#include "instrument/instrumentor.hpp"
#include "rt/sim_runtime.hpp"

namespace taskprof::bench {

struct Options {
  bots::SizeClass size = bots::SizeClass::kSmall;
  std::uint64_t seed = 42;
  /// Upper end of a bench's worker sweep (benches that sweep thread
  /// counts double 1, 2, 4, ... up to here).  The simulator runs any
  /// width on one OS thread, so 256+ virtual workers are fine.
  int max_workers = 8;
};

inline Options parse_options(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick" || arg == "--size=test") {
      options.size = bots::SizeClass::kTest;
    } else if (arg == "--size=small") {
      options.size = bots::SizeClass::kSmall;
    } else if (arg == "--size=medium") {
      options.size = bots::SizeClass::kMedium;
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::stoull(arg.substr(7));
    } else if (arg.rfind("--max-workers=", 0) == 0) {
      try {
        options.max_workers = std::stoi(arg.substr(14));
      } catch (const std::exception&) {
        std::fprintf(stderr, "bad --max-workers value: %s\n", arg.c_str());
        std::exit(2);
      }
      if (options.max_workers < 1 || options.max_workers > 1024) {
        std::fprintf(stderr, "--max-workers must be in [1, 1024]\n");
        std::exit(2);
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--size=test|small|medium] [--quick] [--seed=N] "
          "[--max-workers=N]\n",
          argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return options;
}

/// One simulator measurement of a kernel.
struct SimRun {
  bots::KernelResult result;
  std::optional<AggregateProfile> profile;  ///< set when instrumented
  std::unique_ptr<RegionRegistry> registry;
  Instrumentor::MemoryStats memory{};  ///< profiler footprint (instrumented)
};

/// Run `kernel` once on a fresh simulator; instrumented runs also return
/// the aggregated profile.
inline SimRun run_sim(bots::Kernel& kernel, const bots::KernelConfig& config,
                      bool instrumented,
                      const rt::SimConfig& sim_config = {}) {
  SimRun out;
  out.registry = std::make_unique<RegionRegistry>();
  rt::SimRuntime sim(sim_config);
  if (instrumented) {
    Instrumentor instr(*out.registry);
    sim.set_hooks(&instr);
    out.result = kernel.run(sim, *out.registry, config);
    sim.set_hooks(nullptr);
    instr.finalize();
    out.profile = instr.aggregate();
    out.memory = instr.memory_stats();
  } else {
    out.result = kernel.run(sim, *out.registry, config);
  }
  if (!out.result.ok) {
    std::fprintf(stderr, "FATAL: %s self-check failed (%s)\n",
                 std::string(kernel.name()).c_str(),
                 out.result.check.c_str());
    std::exit(1);
  }
  return out;
}

/// Overhead of instrumentation relative to the plain run, as a ratio.
inline double overhead(Ticks plain, Ticks instrumented) {
  return plain == 0 ? 0.0
                    : static_cast<double>(instrumented - plain) /
                          static_cast<double>(plain);
}

/// Fixed-decimal double formatting for bench tables ("12.34").
inline std::string format_double(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

/// Options for trajectory benches — the BENCH_<name>.json emitters that
/// track performance across PRs.  Extends the basic size/seed flags with
/// the shared --reps / --out flags, parsed identically in every bench.
struct TrajectoryOptions {
  bots::SizeClass size = bots::SizeClass::kSmall;
  std::uint64_t seed = 42;
  int reps = 3;
  std::string out_path;
};

/// Parse the trajectory-bench command line.  `default_out` names the
/// BENCH_<name>.json written when --out is absent.  Exits with a usage
/// message on bad input (malformed numbers included).
inline TrajectoryOptions parse_trajectory_options(int argc, char** argv,
                                                  const char* default_out) {
  TrajectoryOptions options;
  options.out_path = default_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick" || arg == "--size=test") {
      options.size = bots::SizeClass::kTest;
    } else if (arg == "--size=small") {
      options.size = bots::SizeClass::kSmall;
    } else if (arg == "--size=medium") {
      options.size = bots::SizeClass::kMedium;
    } else if (arg.rfind("--seed=", 0) == 0) {
      try {
        options.seed = std::stoull(arg.substr(7));
      } catch (const std::exception&) {
        std::fprintf(stderr, "bad --seed value: %s\n", arg.c_str());
        std::exit(2);
      }
    } else if (arg.rfind("--reps=", 0) == 0) {
      try {
        options.reps = std::stoi(arg.substr(7));
      } catch (const std::exception&) {
        std::fprintf(stderr, "bad --reps value: %s\n", arg.c_str());
        std::exit(2);
      }
      if (options.reps < 1) options.reps = 1;
    } else if (arg.rfind("--out=", 0) == 0) {
      options.out_path = arg.substr(6);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--size=test|small|medium] [--quick] [--seed=N] "
          "[--reps=N] [--out=FILE.json]\n",
          argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return options;
}

// ---------------------------------------------------------------------------
// Shared real-engine recursive workloads (engine-agnostic: they only use
// TaskContext).  bench_queue_contention and bench_telemetry_overhead
// measure the *same* task graphs so their numbers are comparable.
// ---------------------------------------------------------------------------

/// Cut-off-free fib recursion — the paper's fine-grained worst case
/// (Fig. 14): two child tasks plus a taskwait per node.
inline void fib_workload(rt::TaskContext& ctx, RegionHandle task, int n,
                         long* result) {
  if (n < 2) {
    *result = n;
    return;
  }
  rt::TaskAttrs attrs;
  attrs.region = task;
  long a = 0;
  long b = 0;
  ctx.create_task(
      [task, n, &a](rt::TaskContext& c) { fib_workload(c, task, n - 1, &a); },
      attrs);
  ctx.create_task(
      [task, n, &b](rt::TaskContext& c) { fib_workload(c, task, n - 2, &b); },
      attrs);
  ctx.taskwait();
  *result = a + b;
}

/// Cut-off-free nqueens recursion: wider fan-out, deeper taskwait nesting.
inline void nqueens_workload(rt::TaskContext& ctx, RegionHandle task, int n,
                             int row, std::uint32_t cols, std::uint32_t diag1,
                             std::uint32_t diag2,
                             std::atomic<std::uint64_t>& solutions) {
  if (row == n) {
    solutions.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  rt::TaskAttrs attrs;
  attrs.region = task;
  for (int col = 0; col < n; ++col) {
    const std::uint32_t c = 1u << col;
    const std::uint32_t d1 = 1u << (row + col);
    const std::uint32_t d2 = 1u << (row - col + n - 1);
    if ((cols & c) != 0 || (diag1 & d1) != 0 || (diag2 & d2) != 0) continue;
    ctx.create_task(
        [task, n, row, cols, diag1, diag2, c, d1, d2,
         &solutions](rt::TaskContext& child) {
          nqueens_workload(child, task, n, row + 1, cols | c, diag1 | d1,
                           diag2 | d2, solutions);
        },
        attrs);
  }
  ctx.taskwait();
}

inline const char* size_name(bots::SizeClass size) {
  switch (size) {
    case bots::SizeClass::kTest: return "test";
    case bots::SizeClass::kSmall: return "small";
    case bots::SizeClass::kMedium: return "medium";
  }
  return "?";
}

inline void print_header(const char* title, const char* paper_ref,
                         const Options& options) {
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("engine: virtual-time simulator | size class: %s | seed: %llu\n\n",
              size_name(options.size),
              static_cast<unsigned long long>(options.seed));
}

// ---------------------------------------------------------------------------
// Machine-readable output (the BENCH_<name>.json convention).
//
// Benches that track a performance trajectory across PRs write one flat
// JSON file per run: a top-level object with "bench", the harness options,
// and a "results" array of records.  JsonWriter is a minimal emitter for
// exactly that shape — keys are written verbatim, strings are escaped,
// commas and indentation are managed by the begin/end nesting.
// ---------------------------------------------------------------------------

class JsonWriter {
 public:
  JsonWriter() { out_.reserve(4096); }

  void begin_object(const char* key = nullptr) { open('{', '}', key); }
  void end_object() { close('}'); }
  void begin_array(const char* key = nullptr) { open('[', ']', key); }
  void end_array() { close(']'); }

  void field(const char* key, const std::string& value) {
    pre(key);
    out_ += '"';
    append_escaped(value);
    out_ += '"';
  }
  void field(const char* key, const char* value) {
    field(key, std::string(value));
  }
  void field(const char* key, std::uint64_t value) {
    pre(key);
    out_ += std::to_string(value);
  }
  void field(const char* key, std::int64_t value) {
    pre(key);
    out_ += std::to_string(value);
  }
  void field(const char* key, int value) {
    field(key, static_cast<std::int64_t>(value));
  }
  void field(const char* key, double value) {
    pre(key);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    out_ += buf;
  }
  void field(const char* key, bool value) {
    pre(key);
    out_ += value ? "true" : "false";
  }

  [[nodiscard]] const std::string& str() const { return out_; }

  /// Write the document to `path`; returns false (with a message on
  /// stderr) when the file cannot be written.
  bool write_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fwrite(out_.data(), 1, out_.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    return true;
  }

 private:
  void open(char bracket, char closer, const char* key) {
    pre(key);
    out_ += bracket;
    stack_.push_back(closer);
    first_ = true;
  }
  void close(char closer) {
    out_ += '\n';
    stack_.pop_back();
    indent();
    out_ += closer;
    first_ = false;
  }
  void pre(const char* key) {
    if (!stack_.empty()) {
      out_ += first_ ? "\n" : ",\n";
      indent();
    }
    first_ = false;
    if (key != nullptr) {
      out_ += '"';
      append_escaped(key);
      out_ += "\": ";
    }
  }
  void indent() {
    out_.append(2 * stack_.size(), ' ');
  }
  void append_escaped(const std::string& s) {
    for (char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\t': out_ += "\\t"; break;
        default: out_ += c;
      }
    }
  }

  std::string out_;
  std::vector<char> stack_;
  bool first_ = true;
};

}  // namespace taskprof::bench
