// Ingestion-throughput trajectory bench: an in-process taskprofd
// (src/ingest) fed by {1, 8, 32} concurrent producers, each streaming a
// deterministic chain of cumulative captures (one rebase, then real
// deltas) through IngestClient over a Unix-domain socket.
//
// Two kinds of numbers come out:
//
//   snapshots_per_sec / events_per_sec
//     Wall-clock pipeline throughput (capture encode -> wire -> frame
//     parse -> shard merge -> ack).  Machine-dependent; recorded for
//     the trajectory, gated only with --absolute on a same-machine run.
//
//   delta_to_rebase_ratio, totals_exact
//     Same-run, machine-independent quantities.  The synthetic capture
//     chain touches a small hot subset of a mostly-cold call tree, so
//     the wire cost of a delta must stay well below the full rebase —
//     that ratio is deterministic (same builder, same codec, same
//     difference encoder) and is the CI gate.  totals_exact asserts
//     that not one visit was lost or double-counted end to end:
//     total_visits(daemon export) == producers x per-producer total,
//     and the daemon's visits_ingested counter agrees.
//
// Writes BENCH_ingest.json (tracked across PRs; gated in CI by
// tools/check_bench_regression.py --check of the ingest family).
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "ingest/client.hpp"
#include "ingest/daemon.hpp"
#include "ingest/delta.hpp"
#include "snapshot/snapshot.hpp"

namespace taskprof::bench {
namespace {

using snapshot::SnapshotData;

// The producer sweep the ISSUE's experiment matrix asks for.
constexpr int kProducerSweep[] = {1, 8, 32};
constexpr int kShards = 4;

// Call-tree shape per producer: a cold startup subtree (never touched
// after the first capture) plus a small hot working set.  Deltas carry
// only the hot nodes; the rebase carries everything — the gap between
// the two is the delta_to_rebase_ratio the gate watches.
constexpr int kColdLeaves = 200;
constexpr int kHotLeaves = 8;
constexpr std::uint64_t kVisitsPerHotLeafStage = 25;

/// Deterministic cumulative capture for `producer` after `stage`
/// completed flush intervals (1-based).  Counters grow strictly with
/// stage, so the chain is pointwise monotone — exactly what a client
/// difference-encodes.
SnapshotData producer_capture(int producer, int stage) {
  SnapshotData data;
  data.registry = std::make_unique<RegionRegistry>();
  RegionRegistry& reg = *data.registry;
  const RegionHandle implicit =
      reg.register_region("implicit task", RegionType::kImplicitTask);
  const RegionHandle startup =
      reg.register_region("startup_phase", RegionType::kFunction);
  std::vector<RegionHandle> cold;
  cold.reserve(kColdLeaves);
  for (int i = 0; i < kColdLeaves; ++i) {
    cold.push_back(reg.register_region("init_step_" + std::to_string(i),
                                       RegionType::kFunction));
  }
  const RegionHandle steady =
      reg.register_region("steady_phase", RegionType::kFunction);
  std::vector<RegionHandle> hot;
  hot.reserve(kHotLeaves);
  for (int i = 0; i < kHotLeaves; ++i) {
    hot.push_back(reg.register_region("kernel_" + std::to_string(i),
                                      RegionType::kFunction));
  }
  const RegionHandle own = reg.register_region(
      "producer_" + std::to_string(producer), RegionType::kFunction);

  AggregateProfile& p = data.profile;
  p.thread_count = 1;
  p.max_concurrent_per_thread = {1};
  p.max_concurrent_any_thread = 1;
  p.total_task_switches = static_cast<std::uint64_t>(stage) * 4;
  const std::uint64_t s = static_cast<std::uint64_t>(stage);

  p.implicit_root = p.pool.allocate(implicit, kNoParameter, false, nullptr);
  p.implicit_root->visits = 2 * s;
  p.implicit_root->inclusive = static_cast<Ticks>(1000 * s);
  for (std::uint64_t v = 0; v < 2 * s; ++v) {
    p.implicit_root->visit_stats.add(500);
  }

  // Cold mass: written by the first capture, identical ever after, so
  // it never reappears in a delta.
  CallNode* boot =
      p.pool.allocate(startup, kNoParameter, false, p.implicit_root);
  boot->visits = 1;
  boot->inclusive = static_cast<Ticks>(kColdLeaves * 4);
  boot->visit_stats.add(boot->inclusive);
  for (int i = 0; i < kColdLeaves; ++i) {
    CallNode* leaf = p.pool.allocate(cold[static_cast<std::size_t>(i)],
                                     kNoParameter, false, boot);
    leaf->visits = 1;
    leaf->inclusive = static_cast<Ticks>(3 + i % 7);
    leaf->visit_stats.add(leaf->inclusive);
  }

  // Hot mass: every stage adds the same slab of visits per kernel leaf.
  CallNode* work =
      p.pool.allocate(steady, kNoParameter, false, p.implicit_root);
  work->visits = s;
  work->inclusive = static_cast<Ticks>(900 * s);
  for (std::uint64_t v = 0; v < s; ++v) work->visit_stats.add(900);
  for (int i = 0; i < kHotLeaves; ++i) {
    CallNode* leaf = p.pool.allocate(hot[static_cast<std::size_t>(i)],
                                     kNoParameter, false, work);
    leaf->visits = s * kVisitsPerHotLeafStage;
    const Ticks per_visit = static_cast<Ticks>(2 + i);
    leaf->inclusive = static_cast<Ticks>(leaf->visits) * per_visit;
    for (std::uint64_t v = 0; v < leaf->visits; ++v) {
      leaf->visit_stats.add(per_visit);
    }
  }
  CallNode* mine = p.pool.allocate(own, kNoParameter, false, work);
  mine->visits = s;
  mine->inclusive = static_cast<Ticks>(s) * (producer + 1);
  for (std::uint64_t v = 0; v < s; ++v) {
    mine->visit_stats.add(static_cast<Ticks>(producer + 1));
  }

  data.meta.flush_seq = s;
  data.meta.process_id = 1000 + static_cast<std::uint64_t>(producer);
  return data;
}

struct Cell {
  int producers = 0;
  std::uint64_t snapshots = 0;
  std::uint64_t visits = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t rebase_bytes = 0;
  std::uint64_t delta_bytes = 0;
  bool totals_exact = false;
  bool clean_stream = false;  ///< exactly one rebase per producer

  [[nodiscard]] double snapshots_per_sec() const {
    return wall_ns == 0 ? 0.0
                        : static_cast<double>(snapshots) * 1e9 /
                              static_cast<double>(wall_ns);
  }
  [[nodiscard]] double events_per_sec() const {
    return wall_ns == 0 ? 0.0
                        : static_cast<double>(visits) * 1e9 /
                              static_cast<double>(wall_ns);
  }
  /// Mean delta wire bytes over mean rebase wire bytes (deterministic).
  [[nodiscard]] double delta_to_rebase_ratio() const {
    const std::uint64_t deltas = snapshots - static_cast<std::uint64_t>(
                                                 producers);
    if (deltas == 0 || rebase_bytes == 0) return 0.0;
    const double mean_delta = static_cast<double>(delta_bytes) /
                              static_cast<double>(deltas);
    const double mean_rebase = static_cast<double>(rebase_bytes) /
                               static_cast<double>(producers);
    return mean_delta / mean_rebase;
  }
};

Cell run_cell(int producers, int flushes) {
  ingest::DaemonOptions options;
  options.socket_path = "/tmp/taskprofd_bench_" + std::to_string(::getpid()) +
                        "_" + std::to_string(producers) + ".sock";
  options.shards = kShards;
  std::remove(options.socket_path.c_str());
  ingest::IngestDaemon daemon(options);
  daemon.start();

  std::atomic<std::uint64_t> rebase_bytes{0};
  std::atomic<std::uint64_t> delta_bytes{0};
  std::atomic<int> failures{0};

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(producers));
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      try {
        ingest::ClientOptions copts;
        copts.socket_path = options.socket_path;
        copts.process_id = 1000 + static_cast<std::uint64_t>(p);
        copts.producer_name = "bench_" + std::to_string(p);
        ingest::IngestClient client(copts);
        for (int stage = 1; stage <= flushes; ++stage) {
          const ingest::SendResult sent =
              client.send_snapshot(producer_capture(p, stage));
          (sent.rebased ? rebase_bytes : delta_bytes)
              .fetch_add(sent.wire_bytes, std::memory_order_relaxed);
        }
        client.finish(nullptr);
      } catch (...) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();

  const SnapshotData exported = daemon.export_aggregate();
  const ingest::DaemonStats stats = daemon.stats();
  daemon.stop();
  std::remove(options.socket_path.c_str());

  // Every producer streams the same counter shape, so the fleet total
  // is producers x any one producer's final cumulative.
  const std::uint64_t per_producer =
      ingest::total_visits(producer_capture(0, flushes).profile);
  const std::uint64_t expected =
      per_producer * static_cast<std::uint64_t>(producers);

  Cell cell;
  cell.producers = producers;
  cell.snapshots = static_cast<std::uint64_t>(producers) *
                   static_cast<std::uint64_t>(flushes);
  cell.visits = ingest::total_visits(exported.profile);
  cell.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  cell.rebase_bytes = rebase_bytes.load();
  cell.delta_bytes = delta_bytes.load();
  cell.totals_exact =
      failures.load() == 0 && cell.visits == expected &&
      stats.visits_ingested == expected &&
      stats.sessions_closed_clean == static_cast<std::uint64_t>(producers);
  cell.clean_stream =
      stats.rebases == static_cast<std::uint64_t>(producers) &&
      stats.deltas_rejected == 0 && stats.sessions_dropped == 0;
  return cell;
}

int flushes_for(bots::SizeClass size) {
  switch (size) {
    case bots::SizeClass::kTest: return 6;
    case bots::SizeClass::kSmall: return 16;
    case bots::SizeClass::kMedium: return 32;
  }
  return 16;
}

}  // namespace
}  // namespace taskprof::bench

int main(int argc, char** argv) {
  using namespace taskprof;
  using namespace taskprof::bench;

  const TrajectoryOptions options =
      parse_trajectory_options(argc, argv, "BENCH_ingest.json");
  const int flushes = flushes_for(options.size);

  std::printf("ingestion throughput: in-process taskprofd, %d flushes per "
              "producer, %d shards\n",
              flushes, kShards);
  std::printf("%-9s %10s %12s %14s %14s %8s %6s\n", "producers", "snapshots",
              "visits", "snap/s", "events/s", "d/r", "exact");

  std::vector<Cell> cells;
  bool all_exact = true;
  double worst_ratio = 0.0;
  for (const int producers : kProducerSweep) {
    // Keep the best-throughput rep; the byte counts and totals are
    // deterministic, so every rep must agree on them.
    Cell best;
    for (int rep = 0; rep < options.reps; ++rep) {
      const Cell cell = run_cell(producers, flushes);
      if (rep == 0 || cell.snapshots_per_sec() > best.snapshots_per_sec()) {
        const std::uint64_t wall = cell.wall_ns;
        const bool deterministic_match =
            rep == 0 || (cell.rebase_bytes == best.rebase_bytes &&
                         cell.delta_bytes == best.delta_bytes &&
                         cell.visits == best.visits);
        best = cell;
        best.wall_ns = wall;
        if (!deterministic_match) best.clean_stream = false;
      }
    }
    all_exact = all_exact && best.totals_exact && best.clean_stream;
    worst_ratio = std::max(worst_ratio, best.delta_to_rebase_ratio());
    std::printf("%-9d %10llu %12llu %14.0f %14.0f %8.3f %6s\n",
                best.producers,
                static_cast<unsigned long long>(best.snapshots),
                static_cast<unsigned long long>(best.visits),
                best.snapshots_per_sec(), best.events_per_sec(),
                best.delta_to_rebase_ratio(),
                best.totals_exact ? "yes" : "NO");
    cells.push_back(best);
  }

  JsonWriter json;
  json.begin_object();
  json.field("bench", "ingest");
  json.field("size", size_name(options.size));
  json.field("seed", options.seed);
  json.field("reps", options.reps);
  json.field("flushes_per_producer", flushes);
  json.field("shards", kShards);
  json.begin_array("results");
  for (const Cell& cell : cells) {
    json.begin_object();
    json.field("producers", cell.producers);
    json.field("snapshots", cell.snapshots);
    json.field("visits_ingested", cell.visits);
    json.field("wall_ns", cell.wall_ns);
    json.field("snapshots_per_sec", cell.snapshots_per_sec());
    json.field("events_per_sec", cell.events_per_sec());
    json.field("rebase_bytes", cell.rebase_bytes);
    json.field("delta_bytes", cell.delta_bytes);
    json.field("delta_to_rebase_ratio", cell.delta_to_rebase_ratio());
    json.field("totals_exact", cell.totals_exact);
    json.field("clean_stream", cell.clean_stream);
    json.end_object();
  }
  json.end_array();
  json.field("delta_to_rebase_worst", worst_ratio);
  json.field("all_totals_exact", all_exact);
  json.end_object();
  if (!json.write_file(options.out_path)) return 1;
  std::printf("\nwrote %s\n", options.out_path.c_str());

  if (!all_exact) {
    std::fprintf(stderr,
                 "FATAL: ingestion lost or double-counted mass (see table)\n");
    return 1;
  }
  return 0;
}
