// Paper Figs. 1-4 (problem analysis) rendered as live profiles: replays
// the figures' event streams through the measurement layer and prints the
// resulting call trees, including the broken creation-site attribution of
// Fig. 3 as a counterfactual.
#include <cstdio>

#include "common/clock.hpp"
#include "measure/aggregate.hpp"
#include "measure/task_profiler.hpp"
#include "report/text_report.hpp"

using namespace taskprof;

namespace {

struct Regions {
  RegionRegistry registry;
  RegionHandle implicit = registry.register_region(
      "implicit task", RegionType::kImplicitTask);
  RegionHandle main_fn = registry.register_region("main",
                                                  RegionType::kFunction);
  RegionHandle foo = registry.register_region("foo", RegionType::kFunction);
  RegionHandle bar = registry.register_region("bar", RegionType::kFunction);
  RegionHandle barrier = registry.register_region(
      "implicit barrier", RegionType::kImplicitBarrier);
  RegionHandle taskwait = registry.register_region("taskwait",
                                                   RegionType::kTaskwait);
  RegionHandle create = registry.register_region("create task",
                                                 RegionType::kTaskCreate);
  RegionHandle task = registry.register_region("task", RegionType::kTask);
};

void print_view(const ThreadProfileView& view, const RegionRegistry& registry) {
  AggregateProfile agg = aggregate_profiles({&view, 1});
  std::fputs(render_profile(agg, registry).c_str(), stdout);
}

void fig1(Regions& r) {
  std::puts("--- Fig. 1: nested event stream of a serial program ---");
  ManualClock clock;
  ThreadTaskProfiler prof(0, clock, r.implicit);
  prof.enter(r.main_fn);
  clock.set(1'000);
  prof.enter(r.foo);
  clock.set(3'000);
  prof.exit(r.foo);
  clock.set(4'000);
  prof.enter(r.bar);
  clock.set(7'000);
  prof.exit(r.bar);
  clock.set(10'000);
  prof.exit(r.main_fn);
  prof.finalize();
  print_view(prof.view(), r.registry);
}

void fig2(Regions& r) {
  std::puts(
      "--- Fig. 2: two task instances interleaved inside foo() (needs "
      "instance tracking) ---");
  ManualClock clock;
  ThreadTaskProfiler prof(0, clock, r.implicit);
  prof.enter(r.barrier);
  clock.set(1'000);
  prof.task_begin(r.task, 1);
  prof.enter(r.foo);
  clock.set(2'000);
  prof.task_begin(r.task, 2);  // suspends instance 1 inside foo
  prof.enter(r.foo);
  clock.set(3'000);
  prof.task_switch(1);
  clock.set(5'000);
  prof.exit(r.foo);
  prof.task_end(1);
  clock.set(6'000);
  prof.task_switch(2);
  clock.set(9'000);
  prof.exit(r.foo);
  prof.task_end(2);
  clock.set(10'000);
  prof.exit(r.barrier);
  prof.finalize();
  print_view(prof.view(), r.registry);
}

void fig3(Regions& r, bool creation_site) {
  std::printf(
      "--- Fig. 3 (%s): a 10 us task executed in the barrier, created in "
      "1 us ---\n",
      creation_site ? "creation-site attribution, the broken alternative"
                    : "execution-site attribution, the paper's choice");
  MeasureOptions options;
  options.creation_site_attribution = creation_site;
  ManualClock clock;
  ThreadTaskProfiler prof(0, clock, r.implicit, options);
  prof.enter(r.create);
  prof.note_task_created(1);
  clock.set(1'000);
  prof.exit(r.create);
  prof.enter(r.barrier);
  clock.set(2'000);
  prof.task_begin(r.task, 1);
  clock.set(12'000);
  prof.task_end(1);
  clock.set(13'000);
  prof.exit(r.barrier);
  prof.finalize();
  print_view(prof.view(), r.registry);
  if (creation_site) {
    std::puts(
        "note the negative exclusive time of 'create task' (-9 us): the "
        "paper's argument for attributing execution to the executing node.");
  }
}

void fig4(Regions& r) {
  std::puts(
      "--- Fig. 4 / Figs. 6-11: suspension at a taskwait, second instance "
      "in between ---");
  ManualClock clock;
  ThreadTaskProfiler prof(0, clock, r.implicit);
  prof.enter(r.create);
  clock.set(500);
  prof.exit(r.create);
  prof.enter(r.create);
  clock.set(1'000);
  prof.exit(r.create);
  clock.set(2'000);
  prof.enter(r.barrier);
  prof.task_begin(r.task, 1);
  clock.set(4'000);
  prof.enter(r.taskwait);
  clock.set(4'500);
  prof.task_begin(r.task, 2);
  clock.set(8'000);
  prof.task_end(2);
  clock.set(8'500);
  prof.task_switch(1);
  clock.set(9'000);
  prof.exit(r.taskwait);
  clock.set(10'000);
  prof.task_end(1);
  clock.set(11'000);
  prof.exit(r.barrier);
  prof.finalize();
  print_view(prof.view(), r.registry);
  std::puts(
      "the task tree merges both instances (visits=2, min/max per "
      "instance); the barrier's stub node ('task *') counts three executed "
      "fragments; instance 1's taskwait excludes the 4 us suspension.");
}

}  // namespace

int main() {
  std::puts("=== Figs. 1-4: event streams and their profiles ===");
  std::puts("reproduces: Lorenz et al. 2012, Figures 1, 2, 3, 4 (and 6-11)\n");
  Regions regions;
  fig1(regions);
  std::puts("");
  fig2(regions);
  std::puts("");
  fig3(regions, false);
  std::puts("");
  fig3(regions, true);
  std::puts("");
  fig4(regions);
  return 0;
}
