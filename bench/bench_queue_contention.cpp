// Scheduler contention benchmark: spawn/steal throughput and taskwait
// latency of the real engine's three scheduler modes
// (RealConfig::scheduler), swept over 1–8 threads on five workload
// shapes:
//
//   spawn_drain   one producer, everyone else stealing at the barrier —
//                 pure spawn+steal throughput
//   fib           cut-off-free fib recursion (the paper's worst case,
//                 Fig. 14) — fine-grained tasks + taskwait pressure
//   nqueens       cut-off-free nqueens recursion — wider fan-out, deeper
//                 taskwait nesting
//   taskwait_ping one child + taskwait per round on every thread —
//                 taskwait round-trip latency
//   sweep         the recurring-iteration workload (sparselu/stencil
//                 style): one producer spawns a task per grid block,
//                 every iteration repeats the identical graph.  The
//                 first iteration is warmup — and, for the taskgraph
//                 scheduler, the recording pass — and is excluded from
//                 the measurement, so the A/B/C comparison is dynamic
//                 steady state vs. dynamic steady state vs. replay.
//
// Every (workload, threads) cell runs all three schedulers
// (mutex_deque / chase_lev / taskgraph) and verifies they executed the
// *identical* number of tasks; results go to stdout and to
// BENCH_queue_contention.json (the machine-readable trajectory file —
// schema per bench/common.hpp).
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "common/concurrency.hpp"
#include "rt/real_runtime.hpp"

using namespace taskprof;

namespace {

struct Sizes {
  std::uint64_t spawn_tasks;
  int fib_n;
  int nqueens_n;
  std::uint64_t ping_rounds;
  std::uint64_t sweep_blocks;
};

Sizes sizes_for(bots::SizeClass size) {
  switch (size) {
    case bots::SizeClass::kTest: return {20000, 16, 6, 2000, 8000};
    case bots::SizeClass::kSmall: return {50000, 20, 8, 5000, 40000};
    case bots::SizeClass::kMedium: return {200000, 25, 10, 20000, 100000};
  }
  return {50000, 20, 8, 5000, 40000};
}

/// Iterations of the recurring sweep: 1 warmup/record + the measured
/// steady state.
constexpr int kSweepMeasuredIters = 8;

const char* scheduler_name(rt::SchedulerKind kind) {
  switch (kind) {
    case rt::SchedulerKind::kMutexDeque: return "mutex_deque";
    case rt::SchedulerKind::kChaseLev: return "chase_lev";
    case rt::SchedulerKind::kTaskGraph: return "taskgraph";
  }
  return "?";
}

struct RunResult {
  rt::TeamStats stats;
  std::uint64_t checksum = 0;   ///< workload self-check value
  std::uint64_t rounds = 0;     ///< taskwait_ping: taskwait round-trips
  int measured_iters = 1;       ///< regions aggregated into stats
};

struct Workload {
  std::string name;
  std::int64_t param;
  std::function<RunResult(rt::RealRuntime&, int threads, RegionHandle task)>
      run;
};

void accumulate(rt::TeamStats& into, const rt::TeamStats& stats) {
  into.parallel_ticks += stats.parallel_ticks;
  into.tasks_executed += stats.tasks_executed;
  into.tasks_created += stats.tasks_created;
  into.steals += stats.steals;
  into.steal_attempts += stats.steal_attempts;
  into.migrations += stats.migrations;
}

RunResult run_spawn_drain(rt::RealRuntime& runtime, int threads,
                          RegionHandle task, std::uint64_t num_tasks) {
  std::atomic<std::uint64_t> executed{0};
  RunResult out;
  out.stats = runtime.parallel(threads, [&](rt::TaskContext& ctx) {
    if (!ctx.single()) return;
    rt::TaskAttrs attrs;
    attrs.region = task;
    for (std::uint64_t i = 0; i < num_tasks; ++i) {
      ctx.create_task(
          [&executed](rt::TaskContext&) {
            executed.fetch_add(1, std::memory_order_relaxed);
          },
          attrs);
    }
  });
  out.checksum = executed.load();
  return out;
}

RunResult run_fib(rt::RealRuntime& runtime, int threads, RegionHandle task,
                  int n) {
  long result = 0;
  RunResult out;
  out.stats = runtime.parallel(threads, [&](rt::TaskContext& ctx) {
    if (ctx.single()) bench::fib_workload(ctx, task, n, &result);
  });
  out.checksum = static_cast<std::uint64_t>(result);
  return out;
}

RunResult run_nqueens(rt::RealRuntime& runtime, int threads, RegionHandle task,
                      int n) {
  std::atomic<std::uint64_t> solutions{0};
  RunResult out;
  out.stats = runtime.parallel(threads, [&](rt::TaskContext& ctx) {
    if (ctx.single()) {
      bench::nqueens_workload(ctx, task, n, 0, 0, 0, 0, solutions);
    }
  });
  out.checksum = solutions.load();
  return out;
}

RunResult run_taskwait_ping(rt::RealRuntime& runtime, int threads,
                            RegionHandle task, std::uint64_t rounds) {
  std::atomic<std::uint64_t> children{0};
  RunResult out;
  out.stats = runtime.parallel(threads, [&](rt::TaskContext& ctx) {
    rt::TaskAttrs attrs;
    attrs.region = task;
    for (std::uint64_t r = 0; r < rounds; ++r) {
      ctx.create_task(
          [&children](rt::TaskContext&) {
            children.fetch_add(1, std::memory_order_relaxed);
          },
          attrs);
      ctx.taskwait();
    }
  });
  out.checksum = children.load();
  out.rounds = rounds * static_cast<std::uint64_t>(threads);
  return out;
}

/// The recurring workload: every iteration is one parallel region whose
/// producer spawns `blocks` leaf tasks, task b updating its own disjoint
/// 8-lane block of a persistent grid.  Per-task work is deliberately
/// tiny (8 FMAs) so the cell measures scheduling overhead, which is what
/// the taskgraph replay removes.  Iteration 0 (warmup / recording) is
/// excluded from the aggregated stats for every scheduler.
RunResult run_sweep(rt::RealRuntime& runtime, int threads, RegionHandle task,
                    std::uint64_t blocks) {
  constexpr std::uint64_t kLanes = 8;
  std::vector<double> grid(blocks * kLanes);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    grid[i] = 1.0 + static_cast<double>(i % 7);
  }
  double* data = grid.data();
  RunResult out;
  out.measured_iters = kSweepMeasuredIters;
  for (int iter = 0; iter <= kSweepMeasuredIters; ++iter) {
    const rt::TeamStats stats =
        runtime.parallel(threads, [&](rt::TaskContext& ctx) {
          if (!ctx.single()) return;
          rt::TaskAttrs attrs;
          attrs.region = task;
          for (std::uint64_t b = 0; b < blocks; ++b) {
            attrs.parameter = static_cast<std::int64_t>(b);
            ctx.create_task(
                [data, b](rt::TaskContext&) {
                  double* cell = data + b * kLanes;
                  for (std::uint64_t k = 0; k < kLanes; ++k) {
                    cell[k] = cell[k] * 1.0000001 + static_cast<double>(k);
                  }
                },
                attrs);
          }
        });
    if (iter == 0) continue;
    accumulate(out.stats, stats);
  }
  // Blocks are disjoint and each sees the same FP sequence regardless of
  // scheduling, so the folded bit pattern is identical across schedulers.
  std::uint64_t h = 1469598103934665603ull;
  for (const double d : grid) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof bits);
    h = (h ^ bits) * 1099511628211ull;
  }
  out.checksum = h;
  return out;
}

struct CellResult {
  RunResult run;
  double span_ms = 0.0;
  double tasks_per_sec = 0.0;
  double ns_per_round = 0.0;
};

CellResult measure_once(const Workload& workload, rt::SchedulerKind scheduler,
                        int threads, RegionHandle task) {
  rt::RealConfig config;
  config.scheduler = scheduler;
  rt::RealRuntime runtime(config);
  CellResult cell;
  cell.run = workload.run(runtime, threads, task);
  const double span_sec =
      static_cast<double>(cell.run.stats.parallel_ticks) / kTicksPerSec;
  cell.span_ms = span_sec * 1e3;
  if (span_sec > 0) {
    cell.tasks_per_sec =
        static_cast<double>(cell.run.stats.tasks_executed) / span_sec;
  }
  if (cell.run.rounds > 0) {
    cell.ns_per_round =
        static_cast<double>(cell.run.stats.parallel_ticks) /
        static_cast<double>(cell.run.rounds);
  }
  return cell;
}

/// Median-of-`reps` measurement for every scheduler of one
/// (workload, threads) cell, with reps interleaved across schedulers
/// (A,B,C, A,B,C, ...).  Two estimator choices, both deliberate:
///
///  * median by span, not min-of-N: min would filter out exactly the
///    lock-holder-preemption convoys that ARE the contention being
///    measured;
///  * interleaved rounds, not per-scheduler batches: the host can stall
///    for whole seconds (VM steal, background churn), longer than one
///    scheduler's entire batch.  Interleaving makes a burst degrade the
///    same rep round of every scheduler instead of one scheduler's whole
///    sample, so the cross-scheduler *ratios* stay honest even when the
///    absolute spans are inflated.
///
/// Task counts must agree across reps — they are deterministic per
/// workload.
void measure_cell(const Workload& workload, const rt::SchedulerKind* scheds,
                  int nscheds, int threads, RegionHandle task, int reps,
                  CellResult* out) {
  std::vector<std::vector<CellResult>> cells(
      static_cast<std::size_t>(nscheds));
  for (int r = 0; r < reps; ++r) {
    for (int s = 0; s < nscheds; ++s) {
      auto& sample = cells[static_cast<std::size_t>(s)];
      sample.push_back(measure_once(workload, scheds[s], threads, task));
      if (sample.back().run.stats.tasks_executed !=
          sample.front().run.stats.tasks_executed) {
        std::fprintf(stderr,
                     "FATAL: %s x%d (%s) task count varies across reps\n",
                     workload.name.c_str(), threads,
                     scheduler_name(scheds[s]));
        std::exit(1);
      }
    }
  }
  for (int s = 0; s < nscheds; ++s) {
    auto& sample = cells[static_cast<std::size_t>(s)];
    std::sort(sample.begin(), sample.end(),
              [](const CellResult& a, const CellResult& b) {
                return a.span_ms < b.span_ms;
              });
    out[s] = sample[sample.size() / 2];
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::TrajectoryOptions options = bench::parse_trajectory_options(
      argc, argv, "BENCH_queue_contention.json");
  const bots::SizeClass size = options.size;
  const std::uint64_t seed = options.seed;
  const int reps = options.reps;
  const std::string& out_path = options.out_path;

  const Sizes sz = sizes_for(size);
  std::printf(
      "=== Scheduler contention: mutex deque vs. Chase-Lev vs. "
      "taskgraph replay ===\n");
  std::printf(
      "engine: real threads | size class: %s | host threads: %u | "
      "median of %d reps\n\n",
      bench::size_name(size), taskprof::hardware_threads(), reps);

  RegionRegistry registry;
  const RegionHandle task = registry.register_region("t", RegionType::kTask);

  const Workload workloads[] = {
      {"spawn_drain", static_cast<std::int64_t>(sz.spawn_tasks),
       [&sz](rt::RealRuntime& r, int t, RegionHandle h) {
         return run_spawn_drain(r, t, h, sz.spawn_tasks);
       }},
      {"fib", sz.fib_n,
       [&sz](rt::RealRuntime& r, int t, RegionHandle h) {
         return run_fib(r, t, h, sz.fib_n);
       }},
      {"nqueens", sz.nqueens_n,
       [&sz](rt::RealRuntime& r, int t, RegionHandle h) {
         return run_nqueens(r, t, h, sz.nqueens_n);
       }},
      {"taskwait_ping", static_cast<std::int64_t>(sz.ping_rounds),
       [&sz](rt::RealRuntime& r, int t, RegionHandle h) {
         return run_taskwait_ping(r, t, h, sz.ping_rounds);
       }},
      {"sweep", static_cast<std::int64_t>(sz.sweep_blocks),
       [&sz](rt::RealRuntime& r, int t, RegionHandle h) {
         return run_sweep(r, t, h, sz.sweep_blocks);
       }},
  };
  const int thread_counts[] = {1, 2, 4, 8};
  const rt::SchedulerKind schedulers[] = {rt::SchedulerKind::kMutexDeque,
                                          rt::SchedulerKind::kChaseLev,
                                          rt::SchedulerKind::kTaskGraph};
  constexpr int kSchedulerCount = 3;

  bench::JsonWriter json;
  json.begin_object();
  json.field("bench", "queue_contention");
  json.field("size", bench::size_name(size));
  json.field("seed", seed);
  json.field("host_threads",
             static_cast<std::uint64_t>(taskprof::hardware_threads()));
  json.field("reps", reps);
  json.field("sweep_measured_iters",
             static_cast<std::uint64_t>(kSweepMeasuredIters));
  json.begin_array("results");

  bool counts_match = true;
  double ratio_fib_8 = 0.0;
  double ratio_spawn_8 = 0.0;
  double ratio_sweep_4 = 0.0;
  double ratio_sweep_8 = 0.0;

  // Profiling escape hatch: TASKPROF_BENCH_WORKLOAD=sweep runs a single
  // workload (summary ratios for the others read 0 — don't commit such a
  // JSON as the tracked baseline).
  const char* only = std::getenv("TASKPROF_BENCH_WORKLOAD");

  for (const Workload& workload : workloads) {
    if (only != nullptr && workload.name != std::string(only)) continue;
    TextTable table({"workload", "threads", "scheduler", "tasks", "steals",
                     "span ms", "tasks/s", "tw ns"});
    for (int threads : thread_counts) {
      std::uint64_t tasks_first = 0;
      double throughput[kSchedulerCount] = {0.0, 0.0, 0.0};
      CellResult measured[kSchedulerCount];
      measure_cell(workload, schedulers, kSchedulerCount, threads, task,
                   reps, measured);
      for (int s = 0; s < kSchedulerCount; ++s) {
        const rt::SchedulerKind scheduler = schedulers[s];
        const CellResult& cell = measured[s];
        const rt::TeamStats& stats = cell.run.stats;
        throughput[s] = cell.tasks_per_sec;
        if (s == 0) {
          tasks_first = stats.tasks_executed;
        } else if (stats.tasks_executed != tasks_first) {
          std::fprintf(
              stderr,
              "FATAL: task-count mismatch on %s x%d: mutex=%llu %s=%llu\n",
              workload.name.c_str(), threads,
              static_cast<unsigned long long>(tasks_first),
              scheduler_name(scheduler),
              static_cast<unsigned long long>(stats.tasks_executed));
          counts_match = false;
        }
        table.add_row(
            {workload.name, std::to_string(threads),
             scheduler_name(scheduler), std::to_string(stats.tasks_executed),
             std::to_string(stats.steals),
             bench::format_double(cell.span_ms, 2),
             bench::format_double(cell.tasks_per_sec, 0),
             cell.run.rounds > 0
                 ? bench::format_double(cell.ns_per_round, 0)
                 : "-"});

        json.begin_object();
        json.field("workload", workload.name);
        json.field("param", workload.param);
        json.field("threads", threads);
        json.field("scheduler", scheduler_name(scheduler));
        json.field("tasks_executed", stats.tasks_executed);
        json.field("steals", stats.steals);
        json.field("span_ns", static_cast<std::int64_t>(stats.parallel_ticks));
        json.field("tasks_per_sec", cell.tasks_per_sec);
        if (cell.run.measured_iters > 1) {
          json.field("measured_iters",
                     static_cast<std::uint64_t>(cell.run.measured_iters));
        }
        if (cell.run.rounds > 0) {
          json.field("taskwait_ns_per_round", cell.ns_per_round);
        }
        json.field("checksum", cell.run.checksum);
        json.end_object();
      }
      if (throughput[0] > 0) {
        const double chase_ratio = throughput[1] / throughput[0];
        if (workload.name == "fib" && threads == 8) ratio_fib_8 = chase_ratio;
        if (workload.name == "spawn_drain" && threads == 8) {
          ratio_spawn_8 = chase_ratio;
        }
      }
      if (throughput[1] > 0 && workload.name == "sweep") {
        const double replay_ratio = throughput[2] / throughput[1];
        if (threads == 4) ratio_sweep_4 = replay_ratio;
        if (threads == 8) ratio_sweep_8 = replay_ratio;
      }
    }
    std::fputs(table.str().c_str(), stdout);
    std::fputs("\n", stdout);
  }

  json.end_array();
  json.field("task_counts_identical", counts_match);
  json.field("chase_lev_speedup_fib_8t", ratio_fib_8);
  json.field("chase_lev_speedup_spawn_drain_8t", ratio_spawn_8);
  json.field("taskgraph_speedup_sweep_4t", ratio_sweep_4);
  json.field("taskgraph_speedup_sweep_8t", ratio_sweep_8);
  json.end_object();
  const bool wrote = json.write_file(out_path);

  std::printf("chase_lev / mutex_deque throughput, fib x8:         %.2fx\n",
              ratio_fib_8);
  std::printf("chase_lev / mutex_deque throughput, spawn_drain x8:  %.2fx\n",
              ratio_spawn_8);
  std::printf("taskgraph / chase_lev throughput, sweep x4:          %.2fx\n",
              ratio_sweep_4);
  std::printf("taskgraph / chase_lev throughput, sweep x8:          %.2fx\n",
              ratio_sweep_8);
  if (taskprof::hardware_threads() <= 2) {
    std::printf(
        "note: single-core host — the mutex is only contended across\n"
        "preemption boundaries, so the fib gap here is the per-task lock\n"
        "overhead; the steal-contention gap shows in spawn_drain and\n"
        "widens with real cores.  The taskgraph sweep ratio is the\n"
        "honest per-task cost of replay vs. dynamic scheduling.\n");
  }
  std::printf("task counts identical across schedulers: %s\n",
              counts_match ? "yes" : "NO");
  if (wrote) std::printf("wrote %s\n", out_path.c_str());
  return counts_match && wrote ? 0 : 1;
}
