// Scheduler contention benchmark: spawn/steal throughput and taskwait
// latency of the real engine's two queue implementations
// (RealConfig::scheduler), swept over 1–16 threads on four workload
// shapes:
//
//   spawn_drain   one producer, everyone else stealing at the barrier —
//                 pure spawn+steal throughput
//   fib           cut-off-free fib recursion (the paper's worst case,
//                 Fig. 14) — fine-grained tasks + taskwait pressure
//   nqueens       cut-off-free nqueens recursion — wider fan-out, deeper
//                 taskwait nesting
//   taskwait_ping one child + taskwait per round on every thread —
//                 taskwait round-trip latency
//
// Every (workload, threads) cell runs both schedulers and verifies they
// executed the *identical* number of tasks; results go to stdout and to
// BENCH_queue_contention.json (the machine-readable trajectory file —
// schema per bench/common.hpp).
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "rt/real_runtime.hpp"

using namespace taskprof;

namespace {

struct Sizes {
  std::uint64_t spawn_tasks;
  int fib_n;
  int nqueens_n;
  std::uint64_t ping_rounds;
};

Sizes sizes_for(bots::SizeClass size) {
  switch (size) {
    case bots::SizeClass::kTest: return {20000, 16, 6, 2000};
    case bots::SizeClass::kSmall: return {50000, 20, 8, 5000};
    case bots::SizeClass::kMedium: return {200000, 25, 10, 20000};
  }
  return {50000, 20, 8, 5000};
}

const char* scheduler_name(rt::SchedulerKind kind) {
  return kind == rt::SchedulerKind::kChaseLev ? "chase_lev" : "mutex_deque";
}

struct RunResult {
  rt::TeamStats stats;
  std::uint64_t checksum = 0;   ///< workload self-check value
  std::uint64_t rounds = 0;     ///< taskwait_ping: taskwait round-trips
};

struct Workload {
  std::string name;
  std::int64_t param;
  std::function<RunResult(rt::RealRuntime&, int threads, RegionHandle task)>
      run;
};

RunResult run_spawn_drain(rt::RealRuntime& runtime, int threads,
                          RegionHandle task, std::uint64_t num_tasks) {
  std::atomic<std::uint64_t> executed{0};
  RunResult out;
  out.stats = runtime.parallel(threads, [&](rt::TaskContext& ctx) {
    if (!ctx.single()) return;
    rt::TaskAttrs attrs;
    attrs.region = task;
    for (std::uint64_t i = 0; i < num_tasks; ++i) {
      ctx.create_task(
          [&executed](rt::TaskContext&) {
            executed.fetch_add(1, std::memory_order_relaxed);
          },
          attrs);
    }
  });
  out.checksum = executed.load();
  return out;
}

RunResult run_fib(rt::RealRuntime& runtime, int threads, RegionHandle task,
                  int n) {
  long result = 0;
  RunResult out;
  out.stats = runtime.parallel(threads, [&](rt::TaskContext& ctx) {
    if (ctx.single()) bench::fib_workload(ctx, task, n, &result);
  });
  out.checksum = static_cast<std::uint64_t>(result);
  return out;
}

RunResult run_nqueens(rt::RealRuntime& runtime, int threads, RegionHandle task,
                      int n) {
  std::atomic<std::uint64_t> solutions{0};
  RunResult out;
  out.stats = runtime.parallel(threads, [&](rt::TaskContext& ctx) {
    if (ctx.single()) {
      bench::nqueens_workload(ctx, task, n, 0, 0, 0, 0, solutions);
    }
  });
  out.checksum = solutions.load();
  return out;
}

RunResult run_taskwait_ping(rt::RealRuntime& runtime, int threads,
                            RegionHandle task, std::uint64_t rounds) {
  std::atomic<std::uint64_t> children{0};
  RunResult out;
  out.stats = runtime.parallel(threads, [&](rt::TaskContext& ctx) {
    rt::TaskAttrs attrs;
    attrs.region = task;
    for (std::uint64_t r = 0; r < rounds; ++r) {
      ctx.create_task(
          [&children](rt::TaskContext&) {
            children.fetch_add(1, std::memory_order_relaxed);
          },
          attrs);
      ctx.taskwait();
    }
  });
  out.checksum = children.load();
  out.rounds = rounds * static_cast<std::uint64_t>(threads);
  return out;
}

struct CellResult {
  RunResult run;
  double span_ms = 0.0;
  double tasks_per_sec = 0.0;
  double ns_per_round = 0.0;
};

CellResult measure_once(const Workload& workload, rt::SchedulerKind scheduler,
                        int threads, RegionHandle task) {
  rt::RealConfig config;
  config.scheduler = scheduler;
  rt::RealRuntime runtime(config);
  CellResult cell;
  cell.run = workload.run(runtime, threads, task);
  const double span_sec =
      static_cast<double>(cell.run.stats.parallel_ticks) / kTicksPerSec;
  cell.span_ms = span_sec * 1e3;
  if (span_sec > 0) {
    cell.tasks_per_sec =
        static_cast<double>(cell.run.stats.tasks_executed) / span_sec;
  }
  if (cell.run.rounds > 0) {
    cell.ns_per_round =
        static_cast<double>(cell.run.stats.parallel_ticks) /
        static_cast<double>(cell.run.rounds);
  }
  return cell;
}

/// Median-of-`reps` measurement (by span).  On an oversubscribed host a
/// single run is noisy — preemption can land anywhere — but min-of-N
/// would filter out exactly the lock-holder-preemption convoys that ARE
/// the contention being measured, so the median is the right stable
/// estimator.  Task counts must agree across reps — they are
/// deterministic per workload.
CellResult measure(const Workload& workload, rt::SchedulerKind scheduler,
                   int threads, RegionHandle task, int reps) {
  std::vector<CellResult> cells;
  cells.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    cells.push_back(measure_once(workload, scheduler, threads, task));
    if (cells.back().run.stats.tasks_executed !=
        cells.front().run.stats.tasks_executed) {
      std::fprintf(stderr,
                   "FATAL: %s x%d (%s) task count varies across reps\n",
                   workload.name.c_str(), threads, scheduler_name(scheduler));
      std::exit(1);
    }
  }
  std::sort(cells.begin(), cells.end(),
            [](const CellResult& a, const CellResult& b) {
              return a.span_ms < b.span_ms;
            });
  return cells[cells.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const bench::TrajectoryOptions options = bench::parse_trajectory_options(
      argc, argv, "BENCH_queue_contention.json");
  const bots::SizeClass size = options.size;
  const std::uint64_t seed = options.seed;
  const int reps = options.reps;
  const std::string& out_path = options.out_path;

  const Sizes sz = sizes_for(size);
  std::printf("=== Scheduler contention: mutex deque vs. Chase-Lev ===\n");
  std::printf(
      "engine: real threads | size class: %s | host threads: %u | "
      "median of %d reps\n\n",
      bench::size_name(size), std::thread::hardware_concurrency(), reps);

  RegionRegistry registry;
  const RegionHandle task = registry.register_region("t", RegionType::kTask);

  const Workload workloads[] = {
      {"spawn_drain", static_cast<std::int64_t>(sz.spawn_tasks),
       [&sz](rt::RealRuntime& r, int t, RegionHandle h) {
         return run_spawn_drain(r, t, h, sz.spawn_tasks);
       }},
      {"fib", sz.fib_n,
       [&sz](rt::RealRuntime& r, int t, RegionHandle h) {
         return run_fib(r, t, h, sz.fib_n);
       }},
      {"nqueens", sz.nqueens_n,
       [&sz](rt::RealRuntime& r, int t, RegionHandle h) {
         return run_nqueens(r, t, h, sz.nqueens_n);
       }},
      {"taskwait_ping", static_cast<std::int64_t>(sz.ping_rounds),
       [&sz](rt::RealRuntime& r, int t, RegionHandle h) {
         return run_taskwait_ping(r, t, h, sz.ping_rounds);
       }},
  };
  const int thread_counts[] = {1, 2, 4, 8, 16};
  const rt::SchedulerKind schedulers[] = {rt::SchedulerKind::kMutexDeque,
                                          rt::SchedulerKind::kChaseLev};

  bench::JsonWriter json;
  json.begin_object();
  json.field("bench", "queue_contention");
  json.field("size", bench::size_name(size));
  json.field("seed", seed);
  json.field("host_threads",
             static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  json.field("reps", reps);
  json.begin_array("results");

  bool counts_match = true;
  double ratio_fib_8 = 0.0;
  double ratio_spawn_8 = 0.0;
  double ratio_spawn_16 = 0.0;

  for (const Workload& workload : workloads) {
    TextTable table({"workload", "threads", "scheduler", "tasks", "steals",
                     "span ms", "tasks/s", "tw ns"});
    for (int threads : thread_counts) {
      std::uint64_t tasks_mutex = 0;
      double throughput[2] = {0.0, 0.0};
      for (const rt::SchedulerKind scheduler : schedulers) {
        const CellResult cell =
            measure(workload, scheduler, threads, task, reps);
        const rt::TeamStats& stats = cell.run.stats;
        if (scheduler == rt::SchedulerKind::kMutexDeque) {
          tasks_mutex = stats.tasks_executed;
          throughput[0] = cell.tasks_per_sec;
        } else {
          throughput[1] = cell.tasks_per_sec;
          if (stats.tasks_executed != tasks_mutex) {
            std::fprintf(stderr,
                         "FATAL: task-count mismatch on %s x%d: "
                         "mutex=%llu chase=%llu\n",
                         workload.name.c_str(), threads,
                         static_cast<unsigned long long>(tasks_mutex),
                         static_cast<unsigned long long>(stats.tasks_executed));
            counts_match = false;
          }
        }
        table.add_row(
            {workload.name, std::to_string(threads),
             scheduler_name(scheduler), std::to_string(stats.tasks_executed),
             std::to_string(stats.steals),
             bench::format_double(cell.span_ms, 2),
             bench::format_double(cell.tasks_per_sec, 0),
             cell.run.rounds > 0
                 ? bench::format_double(cell.ns_per_round, 0)
                 : "-"});

        json.begin_object();
        json.field("workload", workload.name);
        json.field("param", workload.param);
        json.field("threads", threads);
        json.field("scheduler", scheduler_name(scheduler));
        json.field("tasks_executed", stats.tasks_executed);
        json.field("steals", stats.steals);
        json.field("span_ns", static_cast<std::int64_t>(stats.parallel_ticks));
        json.field("tasks_per_sec", cell.tasks_per_sec);
        if (cell.run.rounds > 0) {
          json.field("taskwait_ns_per_round", cell.ns_per_round);
        }
        json.field("checksum", cell.run.checksum);
        json.end_object();
      }
      if (throughput[0] > 0) {
        const double ratio = throughput[1] / throughput[0];
        if (workload.name == "fib" && threads == 8) ratio_fib_8 = ratio;
        if (workload.name == "spawn_drain" && threads == 8) {
          ratio_spawn_8 = ratio;
        }
        if (workload.name == "spawn_drain" && threads == 16) {
          ratio_spawn_16 = ratio;
        }
      }
    }
    std::fputs(table.str().c_str(), stdout);
    std::fputs("\n", stdout);
  }

  json.end_array();
  json.field("task_counts_identical", counts_match);
  json.field("chase_lev_speedup_fib_8t", ratio_fib_8);
  json.field("chase_lev_speedup_spawn_drain_8t", ratio_spawn_8);
  json.field("chase_lev_speedup_spawn_drain_16t", ratio_spawn_16);
  json.end_object();
  const bool wrote = json.write_file(out_path);

  std::printf("chase_lev / mutex_deque throughput, fib x8:         %.2fx\n",
              ratio_fib_8);
  std::printf("chase_lev / mutex_deque throughput, spawn_drain x8:  %.2fx\n",
              ratio_spawn_8);
  std::printf("chase_lev / mutex_deque throughput, spawn_drain x16: %.2fx\n",
              ratio_spawn_16);
  if (std::thread::hardware_concurrency() <= 2) {
    std::printf(
        "note: single-core host — the mutex is only contended across\n"
        "preemption boundaries, so the fib gap here is the per-task lock\n"
        "overhead; the steal-contention gap shows in spawn_drain and\n"
        "widens with real cores.\n");
  }
  std::printf("task counts identical across schedulers: %s\n",
              counts_match ? "yes" : "NO");
  if (wrote) std::printf("wrote %s\n", out_path.c_str());
  return counts_match && wrote ? 0 : 1;
}
