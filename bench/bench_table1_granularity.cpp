// Paper Table I: mean execution time over all tasks and number of tasks,
// non-cut-off code versions.
//
// Paper shape to hold: strassen's mean task time is ~2 orders of
// magnitude above fib/health/nqueens and >15x floorplan's, while its task
// count is by far the smallest.  (Absolute counts are scaled down: the
// paper ran medium inputs with up to 3.69e9 tasks.)
#include "common.hpp"
#include "report/analysis.hpp"

int main(int argc, char** argv) {
  using namespace taskprof;
  const bench::Options options = bench::parse_options(argc, argv);
  bench::print_header(
      "=== Table I: task granularity, non-cut-off versions ===",
      "Lorenz et al. 2012, Table I", options);

  TextTable table({"code", "mean time", "number of tasks",
                   "min time", "max time", "paper mean (medium)"});
  const std::vector<std::pair<std::string, std::string>> paper = {
      {"fib", "1.49 us"},       {"floorplan", "8.57 us"},
      {"health", "2.35 us"},    {"nqueens", "1.24 us"},
      {"strassen", "149.0 us"},
  };
  for (const auto& [name, paper_mean] : paper) {
    auto kernel = bots::make_kernel(name);
    bots::KernelConfig config;
    config.threads = 4;
    config.size = options.size;
    config.seed = options.seed;
    config.cutoff = false;
    const auto run = bench::run_sim(*kernel, config, true);
    const auto stats = task_construct_stats(*run.profile, *run.registry);
    // Aggregate over all task constructs of the kernel (sparselu-style
    // kernels have several; these five have one).
    std::uint64_t instances = 0;
    double weighted_mean_num = 0;
    Ticks min_time = 0;
    Ticks max_time = 0;
    for (const auto& construct : stats) {
      instances += construct.instances;
      weighted_mean_num += static_cast<double>(construct.inclusive_total);
      min_time = min_time == 0 ? construct.inclusive_min
                               : std::min(min_time, construct.inclusive_min);
      max_time = std::max(max_time, construct.inclusive_max);
    }
    const double mean =
        instances == 0 ? 0.0 : weighted_mean_num /
                                   static_cast<double>(instances);
    table.add_row({name, format_ticks(static_cast<Ticks>(mean)),
                   format_count(instances), format_ticks(min_time),
                   format_ticks(max_time), paper_mean});
  }
  std::fputs(table.str().c_str(), stdout);
  std::puts(
      "\npaper reference: strassen ~100x coarser than fib/health/nqueens "
      "and >15x floorplan; the paper calls 149 us \"reasonable\" and the "
      "rest \"too small\".");
  return 0;
}
