// Paper Table III + the §VI nqueens case study: exclusive execution times
// of the task region, taskwait, and create-task regions inside the
// nqueens task construct, plus the barrier in the main tree, for
// 1/2/4/8 threads (non-cut-off version).
//
// Paper shapes to hold: the task region's exclusive time stays roughly
// flat (106-114 s) while taskwait, create-task and barrier exclusive
// times explode with the thread count (taskwait 2.4->102 s, create
// 56->1102 s, barrier 0->948 s) — runtime-internal contention.  The §VI
// conclusion is also reproduced: the cut-off version is an order of
// magnitude faster at 4 threads (paper: 187 s -> 11.5 s, 16x).
#include "common.hpp"
#include "report/analysis.hpp"

int main(int argc, char** argv) {
  using namespace taskprof;
  const bench::Options options = bench::parse_options(argc, argv);
  bench::print_header(
      "=== Table III: nqueens exclusive times per construct vs threads ===",
      "Lorenz et al. 2012, Table III and Section VI", options);

  auto kernel = bots::make_kernel("nqueens");
  TextTable table({"region", "1 thread", "2 threads", "4 threads",
                   "8 threads"});
  std::vector<std::string> task_row{"task (exclusive)"};
  std::vector<std::string> wait_row{"taskwait"};
  std::vector<std::string> create_row{"create task"};
  std::vector<std::string> barrier_row{"barrier"};
  std::vector<std::string> span_row{"parallel span"};
  std::vector<Ticks> spans;

  for (int threads : {1, 2, 4, 8}) {
    bots::KernelConfig config;
    config.threads = threads;
    config.size = options.size;
    config.seed = options.seed;
    config.cutoff = false;
    const auto run = bench::run_sim(*kernel, config, true);
    const auto constructs = task_construct_stats(*run.profile, *run.registry);
    const auto summary = scheduling_point_summary(*run.profile,
                                                  *run.registry);
    // exclusive_total already excludes the taskwait / create-task child
    // regions (exclusive = inclusive minus children).
    Ticks task_exclusive = 0;
    Ticks taskwait_time = 0;
    for (const auto& construct : constructs) {
      task_exclusive += construct.exclusive_total;
      taskwait_time += construct.taskwait_total;
    }
    task_row.push_back(format_ticks(task_exclusive));
    wait_row.push_back(format_ticks(taskwait_time));
    create_row.push_back(format_ticks(summary.create_exclusive));
    barrier_row.push_back(format_ticks(summary.barrier_exclusive));
    span_row.push_back(format_ticks(run.result.stats.parallel_ticks));
    spans.push_back(run.result.stats.parallel_ticks);
  }
  table.add_row(std::move(task_row));
  table.add_row(std::move(wait_row));
  table.add_row(std::move(create_row));
  table.add_row(std::move(barrier_row));
  table.add_row(std::move(span_row));
  std::fputs(table.str().c_str(), stdout);

  std::puts(
      "\npaper reference (medium, seconds): task 106/113/114/107 (flat); "
      "taskwait 2.4/6.7/25/102; create 56/96/324/1102; barrier "
      "0/40/183/948.");

  // --- Section VI: the cut-off fix -----------------------------------------
  bots::KernelConfig cutoff_config;
  cutoff_config.threads = 4;
  cutoff_config.size = options.size;
  cutoff_config.seed = options.seed;
  cutoff_config.cutoff = true;
  const auto cutoff_run = bench::run_sim(*kernel, cutoff_config, false);
  bots::KernelConfig plain_config = cutoff_config;
  plain_config.cutoff = false;
  const auto plain_run = bench::run_sim(*kernel, plain_config, false);
  const double speedup =
      static_cast<double>(plain_run.result.stats.parallel_ticks) /
      static_cast<double>(cutoff_run.result.stats.parallel_ticks);
  std::printf(
      "\nSection VI check, 4 threads uninstrumented: no cut-off %s vs "
      "cut-off at depth 3 %s -> speedup %.1fx (paper: 187 s -> 11.5 s, "
      "16x)\n",
      format_ticks(plain_run.result.stats.parallel_ticks).c_str(),
      format_ticks(cutoff_run.result.stats.parallel_ticks).c_str(),
      speedup);
  return 0;
}
