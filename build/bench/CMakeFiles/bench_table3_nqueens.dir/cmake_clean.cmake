file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_nqueens.dir/bench_table3_nqueens.cpp.o"
  "CMakeFiles/bench_table3_nqueens.dir/bench_table3_nqueens.cpp.o.d"
  "bench_table3_nqueens"
  "bench_table3_nqueens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_nqueens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
