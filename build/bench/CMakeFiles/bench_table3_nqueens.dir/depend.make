# Empty dependencies file for bench_table3_nqueens.
# This may be replaced when dependencies are built.
