file(REMOVE_RECURSE
  "CMakeFiles/bench_realtime_overhead.dir/bench_realtime_overhead.cpp.o"
  "CMakeFiles/bench_realtime_overhead.dir/bench_realtime_overhead.cpp.o.d"
  "bench_realtime_overhead"
  "bench_realtime_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_realtime_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
