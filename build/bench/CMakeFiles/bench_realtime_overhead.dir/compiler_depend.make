# Empty compiler generated dependencies file for bench_realtime_overhead.
# This may be replaced when dependencies are built.
