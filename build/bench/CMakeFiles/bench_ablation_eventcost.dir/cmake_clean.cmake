file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_eventcost.dir/bench_ablation_eventcost.cpp.o"
  "CMakeFiles/bench_ablation_eventcost.dir/bench_ablation_eventcost.cpp.o.d"
  "bench_ablation_eventcost"
  "bench_ablation_eventcost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_eventcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
