# Empty compiler generated dependencies file for bench_ablation_eventcost.
# This may be replaced when dependencies are built.
