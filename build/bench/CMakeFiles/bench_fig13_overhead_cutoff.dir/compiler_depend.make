# Empty compiler generated dependencies file for bench_fig13_overhead_cutoff.
# This may be replaced when dependencies are built.
