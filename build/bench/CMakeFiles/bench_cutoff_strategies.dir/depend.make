# Empty dependencies file for bench_cutoff_strategies.
# This may be replaced when dependencies are built.
