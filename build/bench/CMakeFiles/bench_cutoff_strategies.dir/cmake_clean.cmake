file(REMOVE_RECURSE
  "CMakeFiles/bench_cutoff_strategies.dir/bench_cutoff_strategies.cpp.o"
  "CMakeFiles/bench_cutoff_strategies.dir/bench_cutoff_strategies.cpp.o.d"
  "bench_cutoff_strategies"
  "bench_cutoff_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cutoff_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
