# Empty dependencies file for bench_event_micro.
# This may be replaced when dependencies are built.
