file(REMOVE_RECURSE
  "CMakeFiles/bench_event_micro.dir/bench_event_micro.cpp.o"
  "CMakeFiles/bench_event_micro.dir/bench_event_micro.cpp.o.d"
  "bench_event_micro"
  "bench_event_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_event_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
