file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_overhead_nocutoff.dir/bench_fig14_overhead_nocutoff.cpp.o"
  "CMakeFiles/bench_fig14_overhead_nocutoff.dir/bench_fig14_overhead_nocutoff.cpp.o.d"
  "bench_fig14_overhead_nocutoff"
  "bench_fig14_overhead_nocutoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_overhead_nocutoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
