file(REMOVE_RECURSE
  "CMakeFiles/bench_trace_analysis.dir/bench_trace_analysis.cpp.o"
  "CMakeFiles/bench_trace_analysis.dir/bench_trace_analysis.cpp.o.d"
  "bench_trace_analysis"
  "bench_trace_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trace_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
