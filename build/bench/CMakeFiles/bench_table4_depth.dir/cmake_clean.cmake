file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_depth.dir/bench_table4_depth.cpp.o"
  "CMakeFiles/bench_table4_depth.dir/bench_table4_depth.cpp.o.d"
  "bench_table4_depth"
  "bench_table4_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
