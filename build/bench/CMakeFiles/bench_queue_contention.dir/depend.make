# Empty dependencies file for bench_queue_contention.
# This may be replaced when dependencies are built.
