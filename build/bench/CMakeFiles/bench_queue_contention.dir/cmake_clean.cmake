file(REMOVE_RECURSE
  "CMakeFiles/bench_queue_contention.dir/bench_queue_contention.cpp.o"
  "CMakeFiles/bench_queue_contention.dir/bench_queue_contention.cpp.o.d"
  "bench_queue_contention"
  "bench_queue_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_queue_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
