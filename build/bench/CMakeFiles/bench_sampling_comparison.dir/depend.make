# Empty dependencies file for bench_sampling_comparison.
# This may be replaced when dependencies are built.
