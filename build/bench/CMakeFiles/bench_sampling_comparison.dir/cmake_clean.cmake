file(REMOVE_RECURSE
  "CMakeFiles/bench_sampling_comparison.dir/bench_sampling_comparison.cpp.o"
  "CMakeFiles/bench_sampling_comparison.dir/bench_sampling_comparison.cpp.o.d"
  "bench_sampling_comparison"
  "bench_sampling_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sampling_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
