# Empty dependencies file for bench_table1_granularity.
# This may be replaced when dependencies are built.
