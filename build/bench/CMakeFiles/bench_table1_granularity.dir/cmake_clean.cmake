file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_granularity.dir/bench_table1_granularity.cpp.o"
  "CMakeFiles/bench_table1_granularity.dir/bench_table1_granularity.cpp.o.d"
  "bench_table1_granularity"
  "bench_table1_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
