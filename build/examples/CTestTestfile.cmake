# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_nqueens_casestudy]=] "/root/repo/build/examples/nqueens_casestudy")
set_tests_properties([=[example_nqueens_casestudy]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_untied_migration]=] "/root/repo/build/examples/untied_migration")
set_tests_properties([=[example_untied_migration]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_cli_summary]=] "/root/repo/build/examples/taskprof_cli" "--kernel=fib" "--size=test" "--threads=2" "--report=summary")
set_tests_properties([=[example_cli_summary]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_cli_trace]=] "/root/repo/build/examples/taskprof_cli" "--kernel=sort" "--size=test" "--threads=2" "--trace" "--report=findings")
set_tests_properties([=[example_cli_trace]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
