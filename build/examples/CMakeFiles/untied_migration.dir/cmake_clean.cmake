file(REMOVE_RECURSE
  "CMakeFiles/untied_migration.dir/untied_migration.cpp.o"
  "CMakeFiles/untied_migration.dir/untied_migration.cpp.o.d"
  "untied_migration"
  "untied_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/untied_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
