# Empty compiler generated dependencies file for untied_migration.
# This may be replaced when dependencies are built.
