file(REMOVE_RECURSE
  "CMakeFiles/nqueens_casestudy.dir/nqueens_casestudy.cpp.o"
  "CMakeFiles/nqueens_casestudy.dir/nqueens_casestudy.cpp.o.d"
  "nqueens_casestudy"
  "nqueens_casestudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nqueens_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
