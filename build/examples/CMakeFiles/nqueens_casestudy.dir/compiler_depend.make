# Empty compiler generated dependencies file for nqueens_casestudy.
# This may be replaced when dependencies are built.
