# Empty compiler generated dependencies file for taskprof_cli.
# This may be replaced when dependencies are built.
