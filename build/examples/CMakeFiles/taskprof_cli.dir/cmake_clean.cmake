file(REMOVE_RECURSE
  "CMakeFiles/taskprof_cli.dir/taskprof_cli.cpp.o"
  "CMakeFiles/taskprof_cli.dir/taskprof_cli.cpp.o.d"
  "taskprof_cli"
  "taskprof_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taskprof_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
