#include "report/cube_export.hpp"

#include <map>
#include <sstream>
#include <unordered_map>

namespace taskprof {

namespace {

void xml_escape_into(std::string& out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
}

std::string xml_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  xml_escape_into(out, text);
  return out;
}

/// Stable integer id per call node, assigned in definition order.
struct CnodeIndex {
  std::unordered_map<const CallNode*, int> ids;
  std::vector<const CallNode*> nodes;  // by id

  int add(const CallNode* node) {
    const int id = static_cast<int>(nodes.size());
    ids.emplace(node, id);
    nodes.push_back(node);
    return id;
  }
};

void define_cnodes(std::ostringstream& os, CnodeIndex& index,
                   const CallNode* node, int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const int id = index.add(node);
  os << pad << "<cnode id=\"" << id << "\" calleeId=\"" << node->region
     << "\"";
  if (node->parameter != kNoParameter) {
    os << " parameter=\"" << node->parameter << "\"";
  }
  if (node->is_stub) os << " stub=\"1\"";
  os << ">\n";
  for (const CallNode* child = node->first_child; child != nullptr;
       child = child->next_sibling) {
    define_cnodes(os, index, child, indent + 1);
  }
  os << pad << "</cnode>\n";
}

template <typename ValueFn>
void severity_matrix(std::ostringstream& os, const CnodeIndex& index,
                     const char* metric_id, ValueFn&& value) {
  os << "    <matrix metricId=\"" << metric_id << "\">\n";
  for (std::size_t id = 0; id < index.nodes.size(); ++id) {
    os << "      <row cnodeId=\"" << id << "\">"
       << value(*index.nodes[id]) << "</row>\n";
  }
  os << "    </matrix>\n";
}

}  // namespace

std::string render_cube_xml(const AggregateProfile& profile,
                            const RegionRegistry& registry) {
  std::ostringstream os;
  os << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  os << "<cube version=\"4.0\" generator=\"taskprof\">\n";

  // -- metric definitions ---------------------------------------------------
  os << "  <metrics>\n";
  const struct {
    const char* id;
    const char* name;
    const char* uom;
  } metrics[] = {
      {"visits", "Visits", "occ"},
      {"time", "Time (inclusive)", "nsec"},
      {"time_min", "Min time per visit", "nsec"},
      {"time_mean", "Mean time per visit", "nsec"},
      {"time_max", "Max time per visit", "nsec"},
  };
  for (const auto& metric : metrics) {
    os << "    <metric id=\"" << metric.id << "\">\n"
       << "      <disp_name>" << metric.name << "</disp_name>\n"
       << "      <uom>" << metric.uom << "</uom>\n"
       << "    </metric>\n";
  }
  os << "  </metrics>\n";

  // -- region table -----------------------------------------------------------
  // Only regions actually referenced by the profile are emitted.
  std::map<RegionHandle, bool> used;
  auto collect = [&used](const CallNode* root) {
    for_each_node(root, [&used](const CallNode& node, int) {
      used[node.region] = true;
    });
  };
  collect(profile.implicit_root);
  for (const CallNode* root : profile.task_roots) collect(root);

  os << "  <program>\n";
  for (const auto& [handle, _] : used) {
    const RegionInfo& info = registry.info(handle);
    os << "    <region id=\"" << handle << "\" mod=\""
       << xml_escape(info.file) << "\" begin=\"" << info.line << "\">\n"
       << "      <name>" << xml_escape(info.name) << "</name>\n"
       << "      <paradigm>tasking</paradigm>\n"
       << "      <role>" << region_type_name(info.type) << "</role>\n"
       << "    </region>\n";
  }

  // -- call tree(s): main tree first, task trees beside it --------------------
  CnodeIndex index;
  if (profile.implicit_root != nullptr) {
    define_cnodes(os, index, profile.implicit_root, 2);
  }
  for (const CallNode* root : profile.task_roots) {
    define_cnodes(os, index, root, 2);
  }
  os << "  </program>\n";

  // -- system tree -------------------------------------------------------------
  os << "  <system>\n";
  for (std::size_t t = 0; t < profile.thread_count; ++t) {
    os << "    <thread id=\"" << t << "\"/>\n";
  }
  os << "  </system>\n";

  // -- severity values -----------------------------------------------------------
  os << "  <severity>\n";
  severity_matrix(os, index, "visits",
                  [](const CallNode& node) { return node.visits; });
  severity_matrix(os, index, "time",
                  [](const CallNode& node) { return node.inclusive; });
  severity_matrix(os, index, "time_min", [](const CallNode& node) {
    return node.visit_stats.count == 0 ? 0 : node.visit_stats.min;
  });
  severity_matrix(os, index, "time_mean", [](const CallNode& node) {
    return static_cast<Ticks>(node.visit_stats.mean());
  });
  severity_matrix(os, index, "time_max", [](const CallNode& node) {
    return node.visit_stats.count == 0 ? 0 : node.visit_stats.max;
  });
  os << "  </severity>\n";
  os << "</cube>\n";
  return os.str();
}

}  // namespace taskprof
