#include "report/json_report.hpp"

#include <cstdio>

namespace taskprof {

namespace {

constexpr int kSchemaVersion = 1;

void append_json_string(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void append_double(std::string* out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  *out += buf;
}

const char* advisor_severity_name(Finding::Severity severity) {
  switch (severity) {
    case Finding::Severity::kInfo: return "info";
    case Finding::Severity::kWarning: return "warning";
    case Finding::Severity::kProblem: return "problem";
  }
  return "?";
}

}  // namespace

std::string render_report_json(const AggregateProfile& profile,
                               const RegionRegistry& registry) {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"schema_version\": ";
  out += std::to_string(kSchemaVersion);
  out += ",\n  \"threads\": ";
  out += std::to_string(profile.thread_count);
  out += ",\n  \"max_concurrent_any_thread\": ";
  out += std::to_string(profile.max_concurrent_any_thread);

  out += ",\n  \"constructs\": [";
  const std::vector<TaskConstructStats> constructs =
      task_construct_stats(profile, registry);
  for (std::size_t i = 0; i < constructs.size(); ++i) {
    const TaskConstructStats& c = constructs[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    append_json_string(&out, c.name);
    if (c.parameter != kNoParameter) {
      out += ", \"parameter\": ";
      out += std::to_string(c.parameter);
    }
    out += ", \"instances\": ";
    out += std::to_string(c.instances);
    out += ", \"inclusive_total_ns\": ";
    out += std::to_string(c.inclusive_total);
    out += ", \"inclusive_mean_ns\": ";
    append_double(&out, c.inclusive_mean);
    out += ", \"inclusive_min_ns\": ";
    out += std::to_string(c.inclusive_min);
    out += ", \"inclusive_max_ns\": ";
    out += std::to_string(c.inclusive_max);
    out += ", \"exclusive_total_ns\": ";
    out += std::to_string(c.exclusive_total);
    out += ", \"creations\": ";
    out += std::to_string(c.creations);
    out += ", \"create_total_ns\": ";
    out += std::to_string(c.create_total);
    out += ", \"create_mean_ns\": ";
    append_double(&out, c.create_mean);
    out += ", \"taskwait_total_ns\": ";
    out += std::to_string(c.taskwait_total);
    out += ", \"taskwaits\": ";
    out += std::to_string(c.taskwaits);
    out += "}";
  }
  out += constructs.empty() ? "]" : "\n  ]";

  const SchedulingPointSummary sched =
      scheduling_point_summary(profile, registry);
  out += ",\n  \"scheduling_points\": {\n    \"barrier_inclusive_ns\": ";
  out += std::to_string(sched.barrier_inclusive);
  out += ",\n    \"barrier_exclusive_ns\": ";
  out += std::to_string(sched.barrier_exclusive);
  out += ",\n    \"barrier_stub_ns\": ";
  out += std::to_string(sched.barrier_stub_time);
  out += ",\n    \"barrier_visits\": ";
  out += std::to_string(sched.barrier_visits);
  out += ",\n    \"taskwait_exclusive_ns\": ";
  out += std::to_string(sched.taskwait_exclusive);
  out += ",\n    \"create_exclusive_ns\": ";
  out += std::to_string(sched.create_exclusive);
  out += ",\n    \"parallel_inclusive_ns\": ";
  out += std::to_string(sched.parallel_inclusive);
  out += "\n  }";

  out += ",\n  \"findings\": [";
  const std::vector<Finding> findings = diagnose(profile, registry);
  for (std::size_t i = 0; i < findings.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"severity\": ";
    append_json_string(&out, advisor_severity_name(findings[i].severity));
    out += ", \"message\": ";
    append_json_string(&out, findings[i].message);
    out += "}";
  }
  out += findings.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

}  // namespace taskprof
