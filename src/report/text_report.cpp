#include "report/text_report.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "common/format.hpp"

namespace taskprof {

namespace {

std::string node_label(const CallNode& node, const RegionRegistry& registry) {
  const RegionInfo& info = registry.info(node.region);
  std::string label = info.name;
  if (node.parameter != kNoParameter) {
    label += " [" + std::to_string(node.parameter) + "]";
  }
  if (node.is_stub) label += " *";
  return label;
}

void render_node(std::ostringstream& os, const CallNode& node,
                 const RegionRegistry& registry, const ReportOptions& options,
                 int depth) {
  if (options.max_depth >= 0 && depth > options.max_depth) return;
  os << std::string(static_cast<std::size_t>(depth) * 2, ' ')
     << node_label(node, registry) << "  visits=" << node.visits
     << "  incl=" << format_ticks(node.inclusive)
     << "  excl=" << format_ticks(node.exclusive());
  if (options.visit_stats && node.visit_stats.count > 0) {
    os << "  min=" << format_ticks(node.visit_stats.min)
       << "  mean=" << format_ticks(static_cast<Ticks>(node.visit_stats.mean()))
       << "  max=" << format_ticks(node.visit_stats.max);
  }
  os << '\n';
}

void csv_escape_into(std::string& out, const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quoting) {
    out += field;
    return;
  }
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}

void render_csv_row(std::string& out, const CallNode& node,
                    const std::string& tree, const std::string& path) {
  csv_escape_into(out, tree);
  out += ',';
  csv_escape_into(out, path);
  out += ',';
  out += node.is_stub ? '1' : '0';
  out += ',';
  out += node.parameter == kNoParameter ? std::string()
                                        : std::to_string(node.parameter);
  out += ',';
  out += std::to_string(node.visits);
  out += ',';
  out += std::to_string(node.inclusive);
  out += ',';
  out += std::to_string(node.exclusive());
  out += ',';
  out += std::to_string(node.visit_stats.count == 0 ? 0 : node.visit_stats.min);
  out += ',';
  out += std::to_string(static_cast<Ticks>(node.visit_stats.mean()));
  out += ',';
  out += std::to_string(node.visit_stats.count == 0 ? 0 : node.visit_stats.max);
  out += '\n';
}

/// Iterative CSV rendering of a whole tree: one reused path buffer plus a
/// per-depth length stack (recursing per node kept a std::string frame per
/// level and overflowed the C++ stack on deep cut-off-free recursion trees).
void render_csv_tree(std::string& out, const CallNode& root,
                     const RegionRegistry& registry, const std::string& tree) {
  std::string path;
  std::vector<std::size_t> full_len;  // full_len[d] = path length at depth d
  for_each_node(&root, [&](const CallNode& node, int depth) {
    const auto d = static_cast<std::size_t>(depth);
    if (full_len.size() <= d) full_len.resize(d + 1);
    path.resize(d == 0 ? 0 : full_len[d - 1]);
    if (d > 0) path += '/';
    path += registry.info(node.region).name;
    full_len[d] = path.size();
    render_csv_row(out, node, tree, path);
  });
}

}  // namespace

std::string render_tree(const CallNode* root, const RegionRegistry& registry,
                        const ReportOptions& options) {
  if (root == nullptr) return "(empty tree)\n";
  std::ostringstream os;
  // Iterative via for_each_node: rendering is one place deep trees from
  // cut-off-free recursion used to re-introduce unbounded call recursion.
  for_each_node(root, [&](const CallNode& node, int depth) {
    render_node(os, node, registry, options, depth);
  });
  return os.str();
}

std::string render_profile(const AggregateProfile& profile,
                           const RegionRegistry& registry,
                           const ReportOptions& options) {
  std::ostringstream os;
  if (profile.partial_capture) {
    os << "=== PARTIAL CAPTURE: mid-run snapshot; in-flight tasks are not "
          "included ===\n";
  }
  os << "=== main tree (implicit tasks, " << profile.thread_count
     << " threads merged; '*' marks task-execution stub nodes) ===\n";
  os << render_tree(profile.implicit_root, registry, options);
  for (const CallNode* root : profile.task_roots) {
    os << "=== task tree: " << registry.info(root->region).name;
    if (root->parameter != kNoParameter) {
      os << " [" << root->parameter << "]";
    }
    os << " ===\n";
    os << render_tree(root, registry, options);
  }
  os << "=== summary ===\n";
  os << "threads: " << profile.thread_count << '\n';
  os << "task switches: " << format_count(profile.total_task_switches)
     << '\n';
  os << "max concurrent task instances per thread: "
     << profile.max_concurrent_any_thread << '\n';
  return os.str();
}

std::string render_telemetry(const telemetry::Snapshot& snapshot) {
  using telemetry::Counter;
  using telemetry::Gauge;
  std::ostringstream os;
  os << "=== scheduler telemetry (" << snapshot.threads << " threads) ===\n";

  const std::uint64_t attempts = snapshot.counter(Counter::kStealAttempts);
  if (attempts > 0) {
    char rate[32];
    std::snprintf(rate, sizeof rate, "%.1f %%",
                  snapshot.steal_success_rate() * 100.0);
    os << "steal success rate: " << rate << " ("
       << format_count(snapshot.counter(Counter::kStealSuccesses)) << " of "
       << format_count(attempts) << " probes, "
       << format_count(snapshot.counter(Counter::kStealAborts))
       << " empty rounds)\n";
  }
  const std::uint64_t hook_events = snapshot.counter(Counter::kHookEvents);
  if (hook_events > 0) {
    os << "hook overhead: "
       << format_ticks(snapshot.counter(Counter::kHookTicks)) << " over "
       << format_count(hook_events) << " events ("
       << format_ticks(static_cast<Ticks>(snapshot.hook_mean_ticks()))
       << "/event)\n";
  }

  TextTable counters({"counter", "total", "per-thread max"});
  for (std::size_t i = 0; i < telemetry::kCounterCount; ++i) {
    const auto c = static_cast<Counter>(i);
    if (snapshot.counter(c) == 0) continue;
    std::uint64_t thread_max = 0;
    for (const auto& row : snapshot.per_thread) {
      thread_max = std::max(thread_max, row[i]);
    }
    counters.add_row({std::string(telemetry::counter_name(c)),
                      format_count(snapshot.counter(c)),
                      format_count(thread_max)});
  }
  if (counters.row_count() > 0) os << counters.str();

  TextTable gauges({"gauge (high water)", "max"});
  for (std::size_t i = 0; i < telemetry::kGaugeCount; ++i) {
    const auto g = static_cast<Gauge>(i);
    if (snapshot.gauge(g) == 0) continue;
    gauges.add_row({std::string(telemetry::gauge_name(g)),
                    format_count(snapshot.gauge(g))});
  }
  if (gauges.row_count() > 0) os << gauges.str();
  return os.str();
}

std::string render_csv(const AggregateProfile& profile,
                       const RegionRegistry& registry) {
  std::string out =
      "tree,path,stub,parameter,visits,inclusive_ns,exclusive_ns,min_ns,"
      "mean_ns,max_ns\n";
  if (profile.implicit_root != nullptr) {
    render_csv_tree(out, *profile.implicit_root, registry, "main");
  }
  for (const CallNode* root : profile.task_roots) {
    std::string tree = "task:" + registry.info(root->region).name;
    if (root->parameter != kNoParameter) {
      tree += "[" + std::to_string(root->parameter) + "]";
    }
    render_csv_tree(out, *root, registry, tree);
  }
  return out;
}

}  // namespace taskprof
