// Automatic profile analysis: the paper's §VI diagnosis workflow as code.
//
// The paper reads task-granularity problems off the call-path profile by
// hand: compare mean task execution time against mean creation time,
// check how much exclusive time scheduling points accumulate, inspect the
// per-depth parameter breakdown.  These functions compute the same
// quantities and produce findings ("tasks too small", "creation
// dominates", "threads idle at the barrier") so benches and examples can
// print the paper's conclusions mechanically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "measure/aggregate.hpp"
#include "profile/region.hpp"

namespace taskprof {

/// Per-task-construct statistics, the core of the paper's Tables I/III.
struct TaskConstructStats {
  RegionHandle region = kInvalidRegion;
  std::string name;
  std::int64_t parameter = kNoParameter;  ///< kNoParameter = all instances

  std::uint64_t instances = 0;     ///< completed task instances
  Ticks inclusive_total = 0;       ///< sum of instance inclusive times
  Ticks inclusive_min = 0;
  Ticks inclusive_max = 0;
  double inclusive_mean = 0.0;
  Ticks exclusive_total = 0;       ///< task-region exclusive (the body work)

  std::uint64_t creations = 0;     ///< visits of the "create <name>" nodes
  Ticks create_total = 0;          ///< exclusive time creating instances
  double create_mean = 0.0;

  Ticks taskwait_total = 0;        ///< exclusive taskwait time inside the task
  std::uint64_t taskwaits = 0;
};

/// Whole-profile scheduling-point summary (paper Table III's bottom rows).
struct SchedulingPointSummary {
  Ticks barrier_inclusive = 0;   ///< implicit+explicit barrier, incl. stubs
  Ticks barrier_exclusive = 0;   ///< barrier time not executing tasks
  Ticks barrier_stub_time = 0;   ///< task execution inside barriers
  std::uint64_t barrier_visits = 0;
  Ticks taskwait_exclusive = 0;  ///< over all trees
  Ticks create_exclusive = 0;    ///< over all "create task" nodes
  Ticks parallel_inclusive = 0;  ///< sum over threads of the parallel region
};

/// One diagnosis produced by the advisor.
struct Finding {
  enum class Severity : std::uint8_t { kInfo, kWarning, kProblem };
  Severity severity = Severity::kInfo;
  std::string message;
};

/// Statistics for every task construct in the profile (one entry per
/// merged task tree, i.e. per (region, parameter) pair).
[[nodiscard]] std::vector<TaskConstructStats> task_construct_stats(
    const AggregateProfile& profile, const RegionRegistry& registry);

/// Rows of the per-parameter breakdown for one construct, sorted by
/// parameter value (paper Table IV).  Empty when the profile has no
/// parameterized sub-trees for the construct.
[[nodiscard]] std::vector<TaskConstructStats> parameter_breakdown(
    const AggregateProfile& profile, const RegionRegistry& registry,
    RegionHandle task_region);

[[nodiscard]] SchedulingPointSummary scheduling_point_summary(
    const AggregateProfile& profile, const RegionRegistry& registry);

/// The granularity advisor.  Thresholds follow the paper's discussion:
/// strassen's 149 us mean is called "reasonable" while fib/health/nqueens
/// at 1-2 us are "too small" (§V-A), so the too-small warning fires below
/// `small_task_threshold`.
struct AdvisorOptions {
  Ticks small_task_threshold = 10 * kTicksPerUs;
  double create_dominates_ratio = 1.0;  ///< create_mean / exec_mean
  double barrier_fraction_warn = 0.25;  ///< of parallel time
};

[[nodiscard]] std::vector<Finding> diagnose(
    const AggregateProfile& profile, const RegionRegistry& registry,
    const AdvisorOptions& options = {});

/// Render findings as text, one per line with a severity tag.
[[nodiscard]] std::string render_findings(const std::vector<Finding>& findings);

}  // namespace taskprof
