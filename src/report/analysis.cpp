#include "report/analysis.hpp"

#include <algorithm>
#include <sstream>
#include <string>
#include <unordered_map>

#include "common/format.hpp"

namespace taskprof {

namespace {

/// Sum exclusive time and visits of every node of type `type` under
/// `root` whose name matches `name` (empty = any name of that type).
struct TypeTotals {
  Ticks exclusive = 0;
  Ticks inclusive = 0;
  std::uint64_t visits = 0;
};

TypeTotals totals_for_type(const CallNode* root,
                           const RegionRegistry& registry, RegionType type,
                           const std::string& name = {}) {
  TypeTotals totals;
  for_each_node(root, [&](const CallNode& node, int) {
    const RegionInfo& info = registry.info(node.region);
    if (info.type != type) return;
    if (!name.empty() && info.name != name) return;
    totals.exclusive += node.exclusive();
    totals.inclusive += node.inclusive;
    totals.visits += node.visits;
  });
  return totals;
}

/// Creation totals for every "create <name>" region, keyed by the region
/// name, built in ONE pass over all trees.  stats_for_root used to rescan
/// every tree per construct, making report generation O(constructs x
/// nodes); per-depth parameter profiling has hundreds of constructs.
using CreateTotalsMap = std::unordered_map<std::string, TypeTotals>;

CreateTotalsMap collect_create_totals(const AggregateProfile& profile,
                                      const RegionRegistry& registry) {
  CreateTotalsMap totals;
  const auto scan = [&](const CallNode* root) {
    for_each_node(root, [&](const CallNode& node, int) {
      const RegionInfo& info = registry.info(node.region);
      if (info.type != RegionType::kTaskCreate) return;
      TypeTotals& entry = totals[info.name];
      entry.exclusive += node.exclusive();
      entry.inclusive += node.inclusive;
      entry.visits += node.visits;
    });
  };
  scan(profile.implicit_root);
  for (const CallNode* root : profile.task_roots) scan(root);
  return totals;
}

TaskConstructStats stats_for_root(const CreateTotalsMap& create_totals,
                                  const RegionRegistry& registry,
                                  const CallNode* root) {
  TaskConstructStats stats;
  stats.region = root->region;
  stats.name = registry.info(root->region).name;
  stats.parameter = root->parameter;
  stats.instances = root->visits;
  stats.inclusive_total = root->inclusive;
  stats.inclusive_min = root->visit_stats.count > 0 ? root->visit_stats.min : 0;
  stats.inclusive_max = root->visit_stats.count > 0 ? root->visit_stats.max : 0;
  stats.inclusive_mean = root->visit_stats.mean();
  stats.exclusive_total = root->exclusive();

  const TypeTotals waits =
      totals_for_type(root, registry, RegionType::kTaskwait);
  stats.taskwait_total = waits.exclusive;
  stats.taskwaits = waits.visits;

  // Creation happens wherever the construct is encountered; look up the
  // paired "create <name>" region in the pre-collected totals.
  TypeTotals creates;
  if (const auto it = create_totals.find("create " + stats.name);
      it != create_totals.end()) {
    creates = it->second;
  }
  stats.creations = creates.visits;
  stats.create_total = creates.exclusive;
  stats.create_mean =
      creates.visits == 0
          ? 0.0
          : static_cast<double>(creates.exclusive) /
                static_cast<double>(creates.visits);
  return stats;
}

}  // namespace

std::vector<TaskConstructStats> task_construct_stats(
    const AggregateProfile& profile, const RegionRegistry& registry) {
  std::vector<TaskConstructStats> out;
  out.reserve(profile.task_roots.size());
  const CreateTotalsMap create_totals = collect_create_totals(profile, registry);
  for (const CallNode* root : profile.task_roots) {
    out.push_back(stats_for_root(create_totals, registry, root));
  }
  return out;
}

std::vector<TaskConstructStats> parameter_breakdown(
    const AggregateProfile& profile, const RegionRegistry& registry,
    RegionHandle task_region) {
  std::vector<TaskConstructStats> rows;
  const CreateTotalsMap create_totals = collect_create_totals(profile, registry);
  for (const CallNode* root : profile.task_roots) {
    if (root->region != task_region || root->parameter == kNoParameter) {
      continue;
    }
    rows.push_back(stats_for_root(create_totals, registry, root));
  }
  std::sort(rows.begin(), rows.end(),
            [](const TaskConstructStats& a, const TaskConstructStats& b) {
              return a.parameter < b.parameter;
            });
  return rows;
}

SchedulingPointSummary scheduling_point_summary(
    const AggregateProfile& profile, const RegionRegistry& registry) {
  SchedulingPointSummary out;

  // One pass per tree: barrier/parallel classification and the
  // taskwait/create exclusives accumulate in the same walk (this used to
  // be five separate whole-tree traversals of the implicit tree plus two
  // per task root).
  const auto scan = [&](const CallNode* root, bool classify_sync) {
    for_each_node(root, [&](const CallNode& node, int) {
      const RegionInfo& info = registry.info(node.region);
      switch (info.type) {
        case RegionType::kBarrier:
        case RegionType::kImplicitBarrier:
          if (!classify_sync) break;
          out.barrier_inclusive += node.inclusive;
          out.barrier_exclusive += node.exclusive();
          out.barrier_visits += node.visits;
          for (const CallNode* child = node.first_child; child != nullptr;
               child = child->next_sibling) {
            if (child->is_stub) out.barrier_stub_time += child->inclusive;
          }
          break;
        case RegionType::kParallel:
          if (classify_sync) out.parallel_inclusive += node.inclusive;
          break;
        case RegionType::kTaskwait:
          out.taskwait_exclusive += node.exclusive();
          break;
        case RegionType::kTaskCreate:
          out.create_exclusive += node.exclusive();
          break;
        default:
          break;
      }
    });
  };
  scan(profile.implicit_root, /*classify_sync=*/true);
  for (const CallNode* root : profile.task_roots) {
    scan(root, /*classify_sync=*/false);
  }
  return out;
}

std::vector<Finding> diagnose(const AggregateProfile& profile,
                              const RegionRegistry& registry,
                              const AdvisorOptions& options) {
  std::vector<Finding> findings;
  const auto constructs = task_construct_stats(profile, registry);
  const auto summary = scheduling_point_summary(profile, registry);

  for (const TaskConstructStats& c : constructs) {
    if (c.instances == 0) continue;
    const double exec_mean =
        static_cast<double>(c.exclusive_total) /
        static_cast<double>(c.instances);
    if (c.inclusive_mean <
        static_cast<double>(options.small_task_threshold)) {
      std::ostringstream os;
      os << "task '" << c.name << "': mean instance time "
         << format_ticks(static_cast<Ticks>(c.inclusive_mean)) << " over "
         << format_count(c.instances)
         << " instances - tasks may be too small; raise the granularity "
            "(e.g. a creation cut-off)";
      findings.push_back({Finding::Severity::kProblem, os.str()});
    }
    if (c.creations > 0 && c.create_mean > exec_mean *
                                               options.create_dominates_ratio) {
      std::ostringstream os;
      os << "task '" << c.name << "': mean creation time "
         << format_ticks(static_cast<Ticks>(c.create_mean))
         << " exceeds mean exclusive execution time "
         << format_ticks(static_cast<Ticks>(exec_mean))
         << " - creating a task costs more than it computes";
      findings.push_back({Finding::Severity::kProblem, os.str()});
    }
  }

  if (summary.parallel_inclusive > 0) {
    const double barrier_fraction =
        static_cast<double>(summary.barrier_exclusive) /
        static_cast<double>(summary.parallel_inclusive);
    if (barrier_fraction > options.barrier_fraction_warn) {
      std::ostringstream os;
      os << "threads spend "
         << format_percent(barrier_fraction)
         << " of the parallel region in barriers without executing tasks - "
            "task management overhead or load imbalance";
      findings.push_back({Finding::Severity::kWarning, os.str()});
    }
  }

  if (findings.empty()) {
    findings.push_back(
        {Finding::Severity::kInfo,
         "no task-granularity problems detected: task sizes look reasonable"});
  }
  return findings;
}

std::string render_findings(const std::vector<Finding>& findings) {
  std::ostringstream os;
  for (const Finding& finding : findings) {
    switch (finding.severity) {
      case Finding::Severity::kInfo: os << "[info]    "; break;
      case Finding::Severity::kWarning: os << "[warning] "; break;
      case Finding::Severity::kProblem: os << "[problem] "; break;
    }
    os << finding.message << '\n';
  }
  return os.str();
}

}  // namespace taskprof
