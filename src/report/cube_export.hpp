// CUBE-style XML export.
//
// Score-P writes profiles in the CUBE4 format; the paper's Fig. 5 is a
// CUBE screenshot of such a profile.  render_cube_xml emits a simplified
// CUBE-flavoured document — metric definitions, region table, call-node
// tree (main tree first, task trees as further roots, mirroring §IV-B4's
// "task tree beside the main tree"), and a severity matrix with one row
// per (metric, cnode) — so downstream tooling has a structured,
// schema-stable artifact beyond the CSV.
#pragma once

#include <string>

#include "measure/aggregate.hpp"
#include "profile/region.hpp"

namespace taskprof {

/// Serialize the aggregated profile as CUBE-style XML.  Metrics emitted:
/// visits (occ), time (inclusive, nsec), and min/mean/max per-visit time.
[[nodiscard]] std::string render_cube_xml(const AggregateProfile& profile,
                                          const RegionRegistry& registry);

}  // namespace taskprof
