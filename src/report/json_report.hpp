// Machine-readable dump of the text report: per-construct statistics,
// the scheduling-point summary, and the advisor findings, as stable JSON
// with a schema_version field so downstream consumers can detect format
// changes.
#pragma once

#include <string>

#include "report/analysis.hpp"

namespace taskprof {

/// Serialize the profile analysis as JSON (schema_version 1).  Key order
/// is fixed and doubles use %.6g, so identical profiles serialize to
/// identical bytes.
[[nodiscard]] std::string render_report_json(const AggregateProfile& profile,
                                             const RegionRegistry& registry);

}  // namespace taskprof
