// Text rendering of call-path profiles (the CUBE stand-in, paper Fig. 5).
//
// Renders the merged profile as an indented tree: the implicit-task tree
// first, then one tree per task construct "beside the main tree"
// (§IV-B4).  Stub nodes are marked with '*', matching the paper's reading
// of Fig. 5 ("113s of task execution happened inside the barrier").
#pragma once

#include <string>

#include "measure/aggregate.hpp"
#include "profile/calltree.hpp"
#include "profile/region.hpp"
#include "telemetry/telemetry.hpp"

namespace taskprof {

struct ReportOptions {
  int max_depth = -1;     ///< -1 = unlimited
  bool visit_stats = true;  ///< include min/mean/max per-visit columns
};

/// Render one call tree.
[[nodiscard]] std::string render_tree(const CallNode* root,
                                      const RegionRegistry& registry,
                                      const ReportOptions& options = {});

/// Render a whole aggregated profile (main tree + task trees + summary).
[[nodiscard]] std::string render_profile(const AggregateProfile& profile,
                                         const RegionRegistry& registry,
                                         const ReportOptions& options = {});

/// Render the scheduler-telemetry section: derived rates (steal success,
/// hook overhead) followed by the counter and gauge tables.  Counters that
/// never fired are omitted so the engine-specific ones don't print as
/// zero noise.
[[nodiscard]] std::string render_telemetry(
    const telemetry::Snapshot& snapshot);

/// Machine-readable export: one CSV row per node with the full call path.
/// Columns: tree,path,stub,parameter,visits,inclusive_ns,exclusive_ns,
/// min_ns,mean_ns,max_ns
[[nodiscard]] std::string render_csv(const AggregateProfile& profile,
                                     const RegionRegistry& registry);

}  // namespace taskprof
