// BOTS "alignment": pairwise alignment of protein sequences (BOTS uses
// Myers-Miller; here a linear-space Needleman-Wunsch score).  One task per
// sequence pair, all created by a single thread from one loop — few,
// large, independent tasks, which is why the paper measured zero overhead
// and a maximum of one concurrent task instance per thread (Table II).
#include <algorithm>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "bots/detail.hpp"
#include "bots/kernel.hpp"
#include "common/rng.hpp"

namespace taskprof::bots {

namespace {

constexpr int kMatch = 2;
constexpr int kMismatch = -1;
constexpr int kGap = -2;
constexpr double kCellCost = 1.6;  ///< virtual ns per DP cell

using Sequence = std::vector<std::uint8_t>;

std::vector<Sequence> make_sequences(int count, int length,
                                     std::uint64_t seed) {
  std::vector<Sequence> seqs(static_cast<std::size_t>(count));
  Xoshiro256 rng(seed);
  for (auto& seq : seqs) {
    seq.resize(static_cast<std::size_t>(length));
    for (auto& residue : seq) {
      residue = static_cast<std::uint8_t>(rng.next_below(20));
    }
  }
  return seqs;
}

/// Global-alignment score, O(len) space.
int align_score(const Sequence& a, const Sequence& b) {
  std::vector<int> row(b.size() + 1);
  std::vector<int> next(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) {
    row[j] = static_cast<int>(j) * kGap;
  }
  for (std::size_t i = 1; i <= a.size(); ++i) {
    next[0] = static_cast<int>(i) * kGap;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const int diag =
          row[j - 1] + (a[i - 1] == b[j - 1] ? kMatch : kMismatch);
      next[j] = std::max({diag, row[j] + kGap, next[j - 1] + kGap});
    }
    row.swap(next);
  }
  return row[b.size()];
}

class AlignmentKernel final : public Kernel {
 public:
  [[nodiscard]] std::string_view name() const override { return "alignment"; }
  [[nodiscard]] bool has_cutoff_version() const override { return false; }

  KernelResult run(rt::Runtime& runtime, RegionRegistry& registry,
                   const KernelConfig& config) override {
    const RegionHandle region =
        registry.register_region("alignment_task", RegionType::kTask);
    int nseq = 8;
    int length = 64;
    switch (config.size) {
      case SizeClass::kTest: nseq = 8; length = 64; break;
      case SizeClass::kSmall: nseq = 20; length = 256; break;
      case SizeClass::kMedium: nseq = 32; length = 512; break;
    }

    const std::vector<Sequence> seqs = make_sequences(nseq, length,
                                                      config.seed);
    const std::size_t pairs =
        static_cast<std::size_t>(nseq) * static_cast<std::size_t>(nseq - 1) /
        2;
    std::vector<int> scores(pairs, 0);

    auto stats = detail::run_single_rooted(
        runtime, config.threads, [&](rt::TaskContext& ctx) {
          std::size_t pair = 0;
          for (int i = 0; i < nseq; ++i) {
            for (int j = i + 1; j < nseq; ++j) {
              int* out = &scores[pair++];
              const Sequence* sa = &seqs[static_cast<std::size_t>(i)];
              const Sequence* sb = &seqs[static_cast<std::size_t>(j)];
              ctx.create_task(
                  [sa, sb, out](rt::TaskContext& c) {
                    *out = align_score(*sa, *sb);
                    c.work(static_cast<Ticks>(
                        static_cast<double>(sa->size() * sb->size()) *
                        kCellCost));
                  },
                  detail::task_attrs(region, config, 0));
            }
          }
          ctx.taskwait();
        });

    std::int64_t total = 0;
    for (int score : scores) total += score;

    KernelResult out;
    out.stats = stats;
    out.checksum = static_cast<std::uint64_t>(total + (1LL << 32));
    out.ok =
        out.checksum == reference_checksum(nseq, length, config.seed, seqs);
    out.check = "pairwise score sum matches the serial reference";
    return out;
  }

 private:
  static std::uint64_t reference_checksum(int nseq, int length,
                                          std::uint64_t seed,
                                          const std::vector<Sequence>& seqs) {
    static std::mutex mutex;
    static std::map<std::tuple<int, int, std::uint64_t>, std::uint64_t> cache;
    const auto key = std::make_tuple(nseq, length, seed);
    std::scoped_lock lock(mutex);
    if (auto it = cache.find(key); it != cache.end()) return it->second;
    std::int64_t total = 0;
    for (int i = 0; i < nseq; ++i) {
      for (int j = i + 1; j < nseq; ++j) {
        total += align_score(seqs[static_cast<std::size_t>(i)],
                             seqs[static_cast<std::size_t>(j)]);
      }
    }
    const std::uint64_t sum = static_cast<std::uint64_t>(total + (1LL << 32));
    cache.emplace(key, sum);
    return sum;
  }
};

}  // namespace

std::unique_ptr<Kernel> make_alignment_kernel() {
  return std::make_unique<AlignmentKernel>();
}

}  // namespace taskprof::bots
