// BOTS "floorplan": branch-and-bound placement of rectangular cells,
// minimizing the bounding-box area.  One task per placement alternative up
// to the cut-off depth (the paper's cut-off version stops at level 5); the
// shared best bound is a racy atomic minimum — pruning may differ between
// runs, but the optimum found is always the true optimum, which is what
// the kernel verifies against a serial reference.
#include <array>
#include <atomic>
#include <map>
#include <mutex>
#include <vector>

#include "bots/detail.hpp"
#include "bots/kernel.hpp"
#include "common/rng.hpp"

namespace taskprof::bots {

namespace {

constexpr int kMaxCells = 12;
constexpr int kCutoffDepth = 5;        ///< paper: floorplan cut-off level
constexpr Ticks kOverlapCheckCost = 22;
constexpr Ticks kAltCost = 60;

struct Cell {
  int w = 1;
  int h = 1;
};

struct Rect {
  int x = 0, y = 0, w = 0, h = 0;
};

struct Placement {
  std::array<Rect, kMaxCells> rects{};
  int count = 0;
  int bound_w = 0;
  int bound_h = 0;
};

bool overlaps(const Rect& a, const Rect& b) noexcept {
  return a.x < b.x + b.w && b.x < a.x + a.w && a.y < b.y + b.h &&
         b.y < a.y + a.h;
}

struct FloorplanState {
  RegionHandle region;
  const KernelConfig* config;
  std::vector<Cell> cells;
  std::atomic<int>* best_area = nullptr;
  bool tasked = true;
};

/// Try every orientation x candidate-corner position for cell `index`.
void place(rt::TaskContext& ctx, const FloorplanState& st,
           const Placement& placement, int index, int depth) {
  const int ncells = static_cast<int>(st.cells.size());
  if (index == ncells) {
    int area = placement.bound_w * placement.bound_h;
    int best = st.best_area->load(std::memory_order_relaxed);
    while (area < best && !st.best_area->compare_exchange_weak(
                              best, area, std::memory_order_relaxed)) {
    }
    return;
  }
  const Cell cell = st.cells[static_cast<std::size_t>(index)];
  // Candidate corners: origin, or attached right-of / below a placed rect.
  std::array<std::pair<int, int>, 2 * kMaxCells + 1> candidates;
  int ncand = 0;
  if (placement.count == 0) {
    candidates[ncand++] = {0, 0};
  } else {
    for (int i = 0; i < placement.count; ++i) {
      const Rect& r = placement.rects[static_cast<std::size_t>(i)];
      candidates[ncand++] = {r.x + r.w, r.y};
      candidates[ncand++] = {r.x, r.y + r.h};
    }
  }
  const int orientations = cell.w == cell.h ? 1 : 2;
  for (int o = 0; o < orientations; ++o) {
    const int w = o == 0 ? cell.w : cell.h;
    const int h = o == 0 ? cell.h : cell.w;
    for (int cand = 0; cand < ncand; ++cand) {
      ctx.work(kAltCost);
      const Rect rect{candidates[static_cast<std::size_t>(cand)].first,
                      candidates[static_cast<std::size_t>(cand)].second, w,
                      h};
      bool free_spot = true;
      for (int i = 0; i < placement.count; ++i) {
        ctx.work(kOverlapCheckCost);
        if (overlaps(rect, placement.rects[static_cast<std::size_t>(i)])) {
          free_spot = false;
          break;
        }
      }
      if (!free_spot) continue;
      Placement next = placement;
      next.rects[static_cast<std::size_t>(next.count++)] = rect;
      next.bound_w = std::max(next.bound_w, rect.x + rect.w);
      next.bound_h = std::max(next.bound_h, rect.y + rect.h);
      if (next.bound_w * next.bound_h >=
          st.best_area->load(std::memory_order_relaxed)) {
        continue;  // bound: cannot beat the best complete placement
      }
      const detail::SpawnMode mode =
          !st.tasked ? detail::SpawnMode::kSerial
                     : detail::spawn_mode(*st.config, depth, kCutoffDepth);
      if (mode == detail::SpawnMode::kSerial) {
        place(ctx, st, next, index + 1, depth + 1);
      } else {
        rt::TaskAttrs attrs =
            detail::task_attrs(st.region, *st.config, depth);
        attrs.undeferred = mode == detail::SpawnMode::kUndeferred;
        ctx.create_task(
            [&st, next, index, depth](rt::TaskContext& c) {
              place(c, st, next, index + 1, depth + 1);
            },
            attrs);
      }
    }
  }
  ctx.taskwait();
}

std::vector<Cell> make_cells(int ncells, std::uint64_t seed) {
  std::vector<Cell> cells(static_cast<std::size_t>(ncells));
  Xoshiro256 rng(seed);
  for (auto& cell : cells) {
    cell.w = 1 + static_cast<int>(rng.next_below(5));
    cell.h = 1 + static_cast<int>(rng.next_below(5));
  }
  return cells;
}

class FloorplanKernel final : public Kernel {
 public:
  [[nodiscard]] std::string_view name() const override { return "floorplan"; }
  [[nodiscard]] bool has_cutoff_version() const override { return true; }

  KernelResult run(rt::Runtime& runtime, RegionRegistry& registry,
                   const KernelConfig& config) override {
    const RegionHandle region =
        registry.register_region("floorplan_task", RegionType::kTask);
    int ncells = 5;
    switch (config.size) {
      case SizeClass::kTest: ncells = 5; break;
      case SizeClass::kSmall: ncells = 7; break;
      case SizeClass::kMedium: ncells = 8; break;
    }

    std::atomic<int> best_area{std::numeric_limits<int>::max()};
    FloorplanState st{region, &config, make_cells(ncells, config.seed),
                      &best_area, /*tasked=*/true};
    auto stats = detail::run_single_rooted(
        runtime, config.threads, [&](rt::TaskContext& ctx) {
          place(ctx, st, Placement{}, 0, 0);
        });

    KernelResult out;
    out.stats = stats;
    out.checksum = static_cast<std::uint64_t>(best_area.load());
    out.ok = out.checksum == reference_area(ncells, config.seed, config);
    out.check = "optimal area matches the serial branch-and-bound";
    return out;
  }

 private:
  static std::uint64_t reference_area(int ncells, std::uint64_t seed,
                                      const KernelConfig& config) {
    static std::mutex mutex;
    static std::map<std::pair<int, std::uint64_t>, std::uint64_t> cache;
    const auto key = std::make_pair(ncells, seed);
    std::scoped_lock lock(mutex);
    if (auto it = cache.find(key); it != cache.end()) return it->second;
    // Serial exploration through a 1-thread simulator-independent run: the
    // same code path with task creation disabled.
    std::atomic<int> best{std::numeric_limits<int>::max()};
    FloorplanState st{kInvalidRegion, &config, make_cells(ncells, seed),
                      &best, /*tasked=*/false};
    class SerialCtx final : public rt::TaskContext {
     public:
      void create_task(rt::TaskFn fn, rt::TaskAttrs) override { fn(*this); }
      void taskwait() override {}
      void barrier() override {}
      bool single() override { return true; }
      void work(Ticks) override {}
      void region_enter(RegionHandle, std::int64_t) override {}
      void region_exit(RegionHandle) override {}
      [[nodiscard]] ThreadId thread_id() const override { return 0; }
      [[nodiscard]] int num_threads() const override { return 1; }
    } ctx;
    place(ctx, st, Placement{}, 0, 0);
    const std::uint64_t area = static_cast<std::uint64_t>(best.load());
    cache.emplace(key, area);
    return area;
  }
};

}  // namespace

std::unique_ptr<Kernel> make_floorplan_kernel() {
  return std::make_unique<FloorplanKernel>();
}

}  // namespace taskprof::bots
