// BOTS "strassen": Strassen matrix multiplication.  Seven recursive
// sub-products per level, one task each; below the leaf size a standard
// O(m^3) multiply runs.  The paper's coarsest-grained code: mean task time
// ~149 us, two orders above fib/health/nqueens (Table I), and the only
// kernel whose non-cut-off version keeps near-zero overhead (Figs. 13/14).
#include <cmath>
#include <cstddef>
#include <vector>

#include "bots/detail.hpp"
#include "bots/kernel.hpp"
#include "common/rng.hpp"

namespace taskprof::bots {

namespace {

/// Standard multiply below this edge length.
constexpr std::size_t kLeafSize = 64;
/// The cut-off version stops creating tasks below this recursion depth
/// (deeper levels recurse serially inside the enclosing task).
constexpr int kTaskDepthCutoff = 2;

constexpr double kFlopCost = 0.55;  ///< virtual ns per floating-point op

/// Non-owning view of an m x m submatrix with row stride.
struct View {
  double* data = nullptr;
  std::size_t stride = 0;

  [[nodiscard]] double& at(std::size_t r, std::size_t c) const noexcept {
    return data[r * stride + c];
  }
  [[nodiscard]] View quadrant(std::size_t m, int qr, int qc) const noexcept {
    const std::size_t h = m / 2;
    return View{data + static_cast<std::size_t>(qr) * h * stride +
                    static_cast<std::size_t>(qc) * h,
                stride};
  }
};

/// Owning square scratch matrix.
struct Matrix {
  explicit Matrix(std::size_t m) : edge(m), values(m * m, 0.0) {}
  [[nodiscard]] View view() noexcept { return View{values.data(), edge}; }
  std::size_t edge;
  std::vector<double> values;
};

void add(View out, View a, View b, std::size_t m, double sign) noexcept {
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < m; ++c) {
      out.at(r, c) = a.at(r, c) + sign * b.at(r, c);
    }
  }
}

void multiply_naive(View c, View a, View b, std::size_t m) noexcept {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) c.at(i, j) = 0.0;
    for (std::size_t k = 0; k < m; ++k) {
      const double aik = a.at(i, k);
      for (std::size_t j = 0; j < m; ++j) {
        c.at(i, j) += aik * b.at(k, j);
      }
    }
  }
}

struct StrassenState {
  RegionHandle region;
  const KernelConfig* config;
};

void strassen(rt::TaskContext& ctx, const StrassenState& st, View c, View a,
              View b, std::size_t m, int depth);

/// One of the seven Strassen products, computed into the owned matrix
/// `out` (operand temps live inside the task).
void product_task_body(rt::TaskContext& ctx, const StrassenState& st,
                       Matrix& out, View a1, View a2, double asign, View b1,
                       View b2, double bsign, std::size_t h, int depth) {
  // Operand sums (a1 + asign*a2) and (b1 + bsign*b2); sign 0 means the
  // operand is just a1/b1.
  Matrix ta(h);
  Matrix tb(h);
  View va = a1;
  View vb = b1;
  if (asign != 0.0) {
    add(ta.view(), a1, a2, h, asign);
    va = ta.view();
    ctx.work(static_cast<Ticks>(static_cast<double>(h * h) * kFlopCost));
  }
  if (bsign != 0.0) {
    add(tb.view(), b1, b2, h, bsign);
    vb = tb.view();
    ctx.work(static_cast<Ticks>(static_cast<double>(h * h) * kFlopCost));
  }
  strassen(ctx, st, out.view(), va, vb, h, depth);
}

void strassen(rt::TaskContext& ctx, const StrassenState& st, View c, View a,
              View b, std::size_t m, int depth) {
  if (m <= kLeafSize) {
    multiply_naive(c, a, b, m);
    ctx.work(static_cast<Ticks>(2.0 * static_cast<double>(m * m * m) *
                                kFlopCost));
    return;
  }
  const std::size_t h = m / 2;
  const View a11 = a.quadrant(m, 0, 0);
  const View a12 = a.quadrant(m, 0, 1);
  const View a21 = a.quadrant(m, 1, 0);
  const View a22 = a.quadrant(m, 1, 1);
  const View b11 = b.quadrant(m, 0, 0);
  const View b12 = b.quadrant(m, 0, 1);
  const View b21 = b.quadrant(m, 1, 0);
  const View b22 = b.quadrant(m, 1, 1);

  std::vector<Matrix> products;
  products.reserve(7);
  for (int i = 0; i < 7; ++i) products.emplace_back(h);

  struct Spec {
    View a1, a2;
    double asign;
    View b1, b2;
    double bsign;
  };
  const Spec specs[7] = {
      {a11, a22, 1.0, b11, b22, 1.0},   // M1
      {a21, a22, 1.0, b11, b11, 0.0},   // M2
      {a11, a11, 0.0, b12, b22, -1.0},  // M3
      {a22, a22, 0.0, b21, b11, -1.0},  // M4
      {a11, a12, 1.0, b22, b22, 0.0},   // M5
      {a21, a11, -1.0, b11, b12, 1.0},  // M6
      {a12, a22, -1.0, b21, b22, 1.0},  // M7
  };

  const detail::SpawnMode mode =
      detail::spawn_mode(*st.config, depth, kTaskDepthCutoff);
  bool spawned = false;
  for (int i = 0; i < 7; ++i) {
    Matrix& out = products[static_cast<std::size_t>(i)];
    const Spec& sp = specs[i];
    if (mode == detail::SpawnMode::kSerial) {
      product_task_body(ctx, st, out, sp.a1, sp.a2, sp.asign, sp.b1, sp.b2,
                        sp.bsign, h, depth + 1);
    } else {
      rt::TaskAttrs attrs = detail::task_attrs(st.region, *st.config, depth);
      attrs.undeferred = mode == detail::SpawnMode::kUndeferred;
      spawned = spawned || !attrs.undeferred;
      ctx.create_task(
          [&st, &out, sp, h, depth](rt::TaskContext& c2) {
            product_task_body(c2, st, out, sp.a1, sp.a2, sp.asign, sp.b1,
                              sp.b2, sp.bsign, h, depth + 1);
          },
          attrs);
    }
  }
  if (spawned) ctx.taskwait();

  const View m1 = products[0].view();
  const View m2 = products[1].view();
  const View m3 = products[2].view();
  const View m4 = products[3].view();
  const View m5 = products[4].view();
  const View m6 = products[5].view();
  const View m7 = products[6].view();
  for (std::size_t r = 0; r < h; ++r) {
    for (std::size_t col = 0; col < h; ++col) {
      c.quadrant(m, 0, 0).at(r, col) =
          m1.at(r, col) + m4.at(r, col) - m5.at(r, col) + m7.at(r, col);
      c.quadrant(m, 0, 1).at(r, col) = m3.at(r, col) + m5.at(r, col);
      c.quadrant(m, 1, 0).at(r, col) = m2.at(r, col) + m4.at(r, col);
      c.quadrant(m, 1, 1).at(r, col) =
          m1.at(r, col) - m2.at(r, col) + m3.at(r, col) + m6.at(r, col);
    }
  }
  ctx.work(static_cast<Ticks>(8.0 * static_cast<double>(h * h) * kFlopCost));
}

class StrassenKernel final : public Kernel {
 public:
  [[nodiscard]] std::string_view name() const override { return "strassen"; }
  [[nodiscard]] bool has_cutoff_version() const override { return true; }

  KernelResult run(rt::Runtime& runtime, RegionRegistry& registry,
                   const KernelConfig& config) override {
    const RegionHandle region =
        registry.register_region("strassen_task", RegionType::kTask);
    // kTest must span at least three task levels so the cut-off version
    // (tasks only above depth 2) is distinguishable from the full one.
    std::size_t edge = 512;
    switch (config.size) {
      case SizeClass::kTest: edge = 512; break;
      case SizeClass::kSmall: edge = 512; break;
      case SizeClass::kMedium: edge = 1024; break;
    }

    Matrix a(edge);
    Matrix b(edge);
    Matrix c(edge);
    Xoshiro256 rng(config.seed);
    for (auto& v : a.values) v = rng.next_double() - 0.5;
    for (auto& v : b.values) v = rng.next_double() - 0.5;

    StrassenState st{region, &config};
    auto stats = detail::run_single_rooted(
        runtime, config.threads, [&](rt::TaskContext& ctx) {
          strassen(ctx, st, c.view(), a.view(), b.view(), edge, 0);
        });

    // Verify a sample of rows against the naive product.
    bool ok = true;
    double checksum = 0.0;
    for (std::size_t r = 0; r < edge; r += edge / 4) {
      for (std::size_t col = 0; col < edge; ++col) {
        double expect = 0.0;
        for (std::size_t k = 0; k < edge; ++k) {
          expect += a.view().at(r, k) * b.view().at(k, col);
        }
        const double got = c.view().at(r, col);
        checksum += got;
        if (std::abs(expect - got) >
            1e-8 * std::max(1.0, std::abs(expect))) {
          ok = false;
        }
      }
    }

    KernelResult out;
    out.stats = stats;
    out.checksum =
        static_cast<std::uint64_t>(std::llround(std::abs(checksum) * 1e3));
    out.ok = ok;
    out.check = "sampled rows match the naive product";
    return out;
  }
};

}  // namespace

std::unique_ptr<Kernel> make_strassen_kernel() {
  return std::make_unique<StrassenKernel>();
}

}  // namespace taskprof::bots
