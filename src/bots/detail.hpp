// Internal helpers shared by the BOTS kernel implementations.
#pragma once

#include <functional>

#include "bots/kernel.hpp"
#include "rt/runtime.hpp"

namespace taskprof::bots::detail {

/// BOTS pattern: a parallel region whose task tree is rooted in a single
/// construct ("#pragma omp parallel / #pragma omp single").  All threads
/// join the implicit barrier and execute tasks; one runs `root`.
inline rt::TeamStats run_single_rooted(
    rt::Runtime& runtime, int threads,
    const std::function<void(rt::TaskContext&)>& root) {
  return runtime.parallel(threads, [&root](rt::TaskContext& ctx) {
    if (ctx.single()) root(ctx);
  });
}

/// Task attributes for a kernel's task construct, honouring the shared
/// config switches (untied extension, depth parameter).
inline rt::TaskAttrs task_attrs(RegionHandle region, const KernelConfig& cfg,
                                int depth) {
  rt::TaskAttrs attrs;
  attrs.region = region;
  attrs.parameter = cfg.depth_parameter ? depth : kNoParameter;
  attrs.binding =
      cfg.untied ? rt::TaskBinding::kUntied : rt::TaskBinding::kTied;
  return attrs;
}

/// How a kernel handles a task construct at `depth`, given its cut-off
/// depth: create a deferred task, create an undeferred task (if-clause
/// strategy), or skip task creation and run the serial code (manual
/// strategy).
enum class SpawnMode : std::uint8_t { kDeferred, kUndeferred, kSerial };

inline SpawnMode spawn_mode(const KernelConfig& cfg, int depth,
                            int cutoff_depth) {
  if (!cfg.cutoff || depth < cutoff_depth) return SpawnMode::kDeferred;
  return cfg.if_clause ? SpawnMode::kUndeferred : SpawnMode::kSerial;
}

}  // namespace taskprof::bots::detail
