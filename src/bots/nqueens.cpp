// BOTS "nqueens": count all placements of n queens on an n x n board.
// The paper's §VI case study: the non-cut-off version creates one task per
// explored board prefix — hundreds of millions in the original — whose
// mean runtime *decreases* with depth (Table IV); the cut-off version
// stops task creation at recursion level 3 (paper: "2000 tasks should be
// enough to fill and balance up to 8 threads"), yielding a 16x speedup at
// 4 threads.
#include <array>
#include <atomic>
#include <cstdlib>

#include "bots/detail.hpp"
#include "bots/kernel.hpp"

namespace taskprof::bots {

namespace {

constexpr int kMaxN = 16;
using Board = std::array<std::int8_t, kMaxN>;

/// Virtual cost of testing one candidate column at row `row` (the
/// conflict scan walks the placed prefix).
constexpr Ticks kCheckCostBase = 14;
constexpr Ticks kCheckCostPerRow = 8;

/// Paper §VI: "stopping task creation at level 3".
constexpr int kCutoffDepth = 3;

bool placement_ok(const Board& board, int row, int col) noexcept {
  for (int i = 0; i < row; ++i) {
    const int placed = board[static_cast<std::size_t>(i)];
    if (placed == col || std::abs(placed - col) == row - i) return false;
  }
  return true;
}

/// Serial subtree: counts solutions and visited nodes so the virtual work
/// of the whole subtree can be charged in one call per level.
std::uint64_t solve_serial(rt::TaskContext& ctx, Board& board, int n,
                           int row) {
  if (row == n) return 1;
  ctx.work(n * (kCheckCostBase + kCheckCostPerRow * row));
  std::uint64_t solutions = 0;
  for (int col = 0; col < n; ++col) {
    if (!placement_ok(board, row, col)) continue;
    board[static_cast<std::size_t>(row)] = static_cast<std::int8_t>(col);
    solutions += solve_serial(ctx, board, n, row + 1);
  }
  return solutions;
}

/// Reference counts for self-verification.
constexpr std::uint64_t known_solutions(int n) noexcept {
  constexpr std::array<std::uint64_t, 15> table = {
      1, 1, 0, 0, 2, 10, 4, 40, 92, 352, 724, 2680, 14200, 73712, 365596};
  return n < static_cast<int>(table.size())
             ? table[static_cast<std::size_t>(n)]
             : 0;
}

class NqueensKernel final : public Kernel {
 public:
  [[nodiscard]] std::string_view name() const override { return "nqueens"; }
  [[nodiscard]] bool has_cutoff_version() const override { return true; }

  KernelResult run(rt::Runtime& runtime, RegionRegistry& registry,
                   const KernelConfig& config) override {
    const RegionHandle region =
        registry.register_region("nqueens_task", RegionType::kTask);
    int n = 8;
    switch (config.size) {
      case SizeClass::kTest: n = 8; break;
      case SizeClass::kSmall: n = 11; break;
      case SizeClass::kMedium: n = 13; break;
    }

    std::atomic<std::uint64_t> solutions{0};
    auto stats = detail::run_single_rooted(
        runtime, config.threads, [&](rt::TaskContext& ctx) {
          Board board{};
          spawn(ctx, region, config, board, n, /*row=*/0, /*depth=*/0,
                &solutions);
          ctx.taskwait();
        });

    KernelResult out;
    out.stats = stats;
    out.checksum = solutions.load();
    out.ok = out.checksum == known_solutions(n);
    out.check = "nqueens(" + std::to_string(n) + ") solution count";
    return out;
  }

 private:
  /// One task per explored prefix, as in BOTS: the task tries every
  /// column of `row` and spawns a child task for each valid placement.
  static void spawn(rt::TaskContext& ctx, RegionHandle region,
                    const KernelConfig& config, Board board, int n, int row,
                    int depth, std::atomic<std::uint64_t>* solutions) {
    rt::TaskAttrs attrs = detail::task_attrs(region, config, depth);
    attrs.undeferred = detail::spawn_mode(config, depth, kCutoffDepth) ==
                       detail::SpawnMode::kUndeferred;
    ctx.create_task(
        [&config, region, board, n, row, depth, solutions](
            rt::TaskContext& c) mutable {
          if (row == n) {
            solutions->fetch_add(1, std::memory_order_relaxed);
            return;
          }
          if (config.cutoff && !config.if_clause && depth >= kCutoffDepth) {
            solutions->fetch_add(solve_serial(c, board, n, row),
                                 std::memory_order_relaxed);
            return;
          }
          c.work(n * (kCheckCostBase + kCheckCostPerRow * row));
          for (int col = 0; col < n; ++col) {
            if (!placement_ok(board, row, col)) continue;
            board[static_cast<std::size_t>(row)] =
                static_cast<std::int8_t>(col);
            spawn(c, region, config, board, n, row + 1, depth + 1, solutions);
          }
          c.taskwait();
        },
        attrs);
  }
};

}  // namespace

std::unique_ptr<Kernel> make_nqueens_kernel() {
  return std::make_unique<NqueensKernel>();
}

}  // namespace taskprof::bots
