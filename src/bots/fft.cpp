// BOTS "fft": recursive Cooley-Tukey FFT over complex doubles.  Tasks for
// the even/odd halves down to a serial grain; each level combines with
// twiddle factors after the taskwait.  The paper measured 10-17 % overhead
// and up to 19 concurrent task instances — deep recursion with mid-sized
// tasks.
#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "bots/detail.hpp"
#include "bots/kernel.hpp"
#include "common/rng.hpp"

namespace taskprof::bots {

namespace {

constexpr std::size_t kSerialThreshold = 256;
constexpr double kButterflyCost = 14.0;  ///< virtual ns per output element
constexpr Ticks kSplitCostPerElement = 3;

using Complex = std::complex<double>;

void fft_serial(std::vector<Complex>& a) {
  const std::size_t n = a.size();
  if (n == 1) return;
  std::vector<Complex> even(n / 2);
  std::vector<Complex> odd(n / 2);
  for (std::size_t i = 0; i < n / 2; ++i) {
    even[i] = a[2 * i];
    odd[i] = a[2 * i + 1];
  }
  fft_serial(even);
  fft_serial(odd);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double angle =
        -2.0 * std::numbers::pi * static_cast<double>(k) /
        static_cast<double>(n);
    const Complex t = Complex(std::cos(angle), std::sin(angle)) * odd[k];
    a[k] = even[k] + t;
    a[k + n / 2] = even[k] - t;
  }
}

struct FftState {
  RegionHandle region;
  const KernelConfig* config;
};

void fft_task(rt::TaskContext& ctx, const FftState& st,
              std::vector<Complex>& a, int depth) {
  const std::size_t n = a.size();
  if (n <= kSerialThreshold) {
    fft_serial(a);
    // ~ n log2(n) butterflies for the whole serial subtree.
    const double levels = std::log2(static_cast<double>(n));
    ctx.work(static_cast<Ticks>(static_cast<double>(n) * levels *
                                kButterflyCost));
    return;
  }
  std::vector<Complex> even(n / 2);
  std::vector<Complex> odd(n / 2);
  for (std::size_t i = 0; i < n / 2; ++i) {
    even[i] = a[2 * i];
    odd[i] = a[2 * i + 1];
  }
  ctx.work(static_cast<Ticks>(n) * kSplitCostPerElement);
  ctx.create_task(
      [&st, &even, depth](rt::TaskContext& c) {
        fft_task(c, st, even, depth + 1);
      },
      detail::task_attrs(st.region, *st.config, depth));
  ctx.create_task(
      [&st, &odd, depth](rt::TaskContext& c) {
        fft_task(c, st, odd, depth + 1);
      },
      detail::task_attrs(st.region, *st.config, depth));
  ctx.taskwait();
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double angle =
        -2.0 * std::numbers::pi * static_cast<double>(k) /
        static_cast<double>(n);
    const Complex t = Complex(std::cos(angle), std::sin(angle)) * odd[k];
    a[k] = even[k] + t;
    a[k + n / 2] = even[k] - t;
  }
  ctx.work(static_cast<Ticks>(static_cast<double>(n) * kButterflyCost));
}

class FftKernel final : public Kernel {
 public:
  [[nodiscard]] std::string_view name() const override { return "fft"; }
  [[nodiscard]] bool has_cutoff_version() const override { return false; }

  KernelResult run(rt::Runtime& runtime, RegionRegistry& registry,
                   const KernelConfig& config) override {
    const RegionHandle region =
        registry.register_region("fft_task", RegionType::kTask);
    std::size_t n = 1 << 12;
    switch (config.size) {
      case SizeClass::kTest: n = 1 << 12; break;
      case SizeClass::kSmall: n = 1 << 17; break;
      case SizeClass::kMedium: n = 1 << 19; break;
    }

    std::vector<Complex> data(n);
    Xoshiro256 rng(config.seed);
    for (auto& value : data) {
      value = Complex(rng.next_double() - 0.5, rng.next_double() - 0.5);
    }
    const std::vector<Complex> original = data;

    FftState st{region, &config};
    auto stats = detail::run_single_rooted(
        runtime, config.threads, [&](rt::TaskContext& ctx) {
          fft_task(ctx, st, data, 0);
        });

    // Verify by inverse transform round trip: conj -> FFT -> conj -> /n.
    std::vector<Complex> inverse(n);
    for (std::size_t i = 0; i < n; ++i) inverse[i] = std::conj(data[i]);
    fft_serial(inverse);
    double max_error = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const Complex restored =
          std::conj(inverse[i]) / static_cast<double>(n);
      max_error = std::max(max_error, std::abs(restored - original[i]));
    }

    KernelResult out;
    out.stats = stats;
    out.checksum = static_cast<std::uint64_t>(
        std::llround(std::abs(data[1].real()) * 1e6));
    out.ok = max_error < 1e-9;
    out.check = "inverse-transform round trip (max error " +
                std::to_string(max_error) + ")";
    return out;
  }
};

}  // namespace

std::unique_ptr<Kernel> make_fft_kernel() {
  return std::make_unique<FftKernel>();
}

}  // namespace taskprof::bots
