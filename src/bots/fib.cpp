// BOTS "fib": recursive Fibonacci, the paper's pathological stress case —
// each task creates two children, waits for them, and adds two numbers, so
// management dominates by construction ("an artificial pathological
// example", §V-A).  The cut-off version stops task creation at a fixed
// recursion depth and computes the rest serially.
#include <array>

#include "bots/detail.hpp"
#include "bots/kernel.hpp"

namespace taskprof::bots {

namespace {

/// Virtual cost of one recursion node (two compares, one addition, the
/// call overhead).  Tuned so the simulated mean task time of the
/// non-cut-off version lands near the paper's Table I value (1.49 us,
/// which *includes* the per-task management the engine charges).
constexpr Ticks kNodeCost = 120;

/// Task creation stops at this depth in the cut-off version.  Relative to
/// the scaled-down inputs this leaves small serial leaves, preserving the
/// paper's observation that even the cut-off fib stays pathological: each
/// internal task "basically creates 2 child tasks, waits for them and then
/// only sums up two numbers" (§V-A).
constexpr int kCutoffDepth = 13;

constexpr std::uint64_t fib_value(int n) noexcept {
  std::uint64_t a = 0;
  std::uint64_t b = 1;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  return a;
}

/// Number of recursion-tree nodes of fib(n): nodes(n) = 2*fib(n+1) - 1.
constexpr std::uint64_t fib_nodes(int n) noexcept {
  return 2 * fib_value(n + 1) - 1;
}

/// Serial tail below the cut-off: the value is closed-form; the virtual
/// work of walking the whole subtree is charged in one call.
std::uint64_t fib_serial(rt::TaskContext& ctx, int n) {
  ctx.work(static_cast<Ticks>(fib_nodes(n)) * kNodeCost);
  return fib_value(n);
}

struct FibParams {
  int n = 20;
  bool cutoff = false;
};

class FibKernel final : public Kernel {
 public:
  [[nodiscard]] std::string_view name() const override { return "fib"; }
  [[nodiscard]] bool has_cutoff_version() const override { return true; }

  KernelResult run(rt::Runtime& runtime, RegionRegistry& registry,
                   const KernelConfig& config) override {
    const RegionHandle region =
        registry.register_region("fib_task", RegionType::kTask);
    FibParams params;
    switch (config.size) {
      case SizeClass::kTest: params.n = 16; break;
      case SizeClass::kSmall: params.n = 22; break;
      case SizeClass::kMedium: params.n = 27; break;
    }
    params.cutoff = config.cutoff;

    std::uint64_t result = 0;
    auto stats = detail::run_single_rooted(
        runtime, config.threads, [&](rt::TaskContext& ctx) {
          compute(ctx, region, config, params, params.n, 0, &result);
          ctx.taskwait();
        });

    KernelResult out;
    out.stats = stats;
    out.checksum = result;
    out.ok = result == fib_value(params.n);
    out.check = "fib(" + std::to_string(params.n) + ") value";
    return out;
  }

 private:
  // Spawns a task computing fib(n) into *result; the *caller* must
  // taskwait before reading.  Matches the BOTS structure where fib(n-1)
  // and fib(n-2) are sibling tasks.
  static void compute(rt::TaskContext& ctx, RegionHandle region,
                      const KernelConfig& config, const FibParams& params,
                      int n, int depth, std::uint64_t* result) {
    rt::TaskAttrs attrs = detail::task_attrs(region, config, depth);
    attrs.undeferred = detail::spawn_mode(config, depth, kCutoffDepth) ==
                       detail::SpawnMode::kUndeferred;
    ctx.create_task(
        [&config, &params, region, n, depth, result](rt::TaskContext& c) {
          c.work(kNodeCost);
          if (n < 2) {
            *result = static_cast<std::uint64_t>(n);
            return;
          }
          if (params.cutoff && !config.if_clause && depth >= kCutoffDepth) {
            *result = fib_serial(c, n);
            return;
          }
          std::uint64_t a = 0;
          std::uint64_t b = 0;
          compute(c, region, config, params, n - 1, depth + 1, &a);
          compute(c, region, config, params, n - 2, depth + 1, &b);
          c.taskwait();
          *result = a + b;
        },
        attrs);
  }
};

}  // namespace

std::unique_ptr<Kernel> make_fib_kernel() {
  return std::make_unique<FibKernel>();
}

}  // namespace taskprof::bots
