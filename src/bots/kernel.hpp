// The Barcelona OpenMP Task Suite (BOTS) reproduction.
//
// Nine kernels, reimplemented against taskprof's TaskContext so they run
// on both engines.  Each kernel mirrors its BOTS counterpart's *task
// structure* (what creates tasks, where the taskwaits are, whether a
// cut-off version exists) and self-verifies its result.  The kernels
// declare virtual computation costs via ctx.work() so the simulator
// reproduces the granularity relationships of the paper's Table I; on the
// real engine the actual computation is the cost and work() is a no-op.
//
// Versions follow the paper's §V-A selection:
//  - cut-off versions exist for fib, floorplan, health, nqueens, strassen;
//  - sparselu creates its tasks from a single construct;
//  - sort, fft, alignment have no distinct cut-off version (their serial
//    grain thresholds are intrinsic to the algorithm).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "profile/region.hpp"
#include "rt/runtime.hpp"

namespace taskprof::bots {

/// Problem-size selector: kTest for unit tests (sub-second on the real
/// engine), kSmall for default bench sweeps, kMedium for the full
/// reproduction runs.
enum class SizeClass : std::uint8_t { kTest, kSmall, kMedium };

struct KernelConfig {
  int threads = 1;
  SizeClass size = SizeClass::kSmall;
  /// Run the cut-off version (only meaningful when the kernel has one).
  bool cutoff = false;
  /// With `cutoff`: use BOTS' if-clause strategy — tasks below the
  /// cut-off depth are still created but *undeferred* (OpenMP `if(0)`),
  /// executing inline inside the creation construct, instead of the
  /// manual strategy that calls the serial code directly.
  bool if_clause = false;
  /// Attach the task-depth parameter to task constructs (paper Table IV).
  bool depth_parameter = false;
  /// Create tasks untied where the kernel supports it (extension).
  bool untied = false;
  std::uint64_t seed = 42;
};

struct KernelResult {
  bool ok = false;            ///< self-verification outcome
  std::string check;          ///< what was verified, human-readable
  std::uint64_t checksum = 0; ///< kernel-specific result value
  rt::TeamStats stats;        ///< engine counters for the parallel region
};

/// One BOTS benchmark code.
class Kernel {
 public:
  virtual ~Kernel() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// True when BOTS ships a version with a manual task-creation cut-off
  /// (paper Figs. 13/14 distinguish the two).
  [[nodiscard]] virtual bool has_cutoff_version() const = 0;

  /// Execute one measurement run: one parallel region on `runtime`.
  /// Task-construct regions are registered in `registry`.
  virtual KernelResult run(rt::Runtime& runtime, RegionRegistry& registry,
                           const KernelConfig& config) = 0;
};

/// All nine kernels, in the paper's (alphabetical) order: alignment, fft,
/// fib, floorplan, health, nqueens, sort, sparselu, strassen.
[[nodiscard]] std::vector<std::unique_ptr<Kernel>> make_all_kernels();

/// Factory for a single kernel by name; nullptr for unknown names.
[[nodiscard]] std::unique_ptr<Kernel> make_kernel(std::string_view name);

/// The five kernels whose non-cut-off versions the paper studies in
/// Fig. 14 / Fig. 15 / Table I.
[[nodiscard]] const std::vector<std::string>& nocutoff_study_kernels();

}  // namespace taskprof::bots
