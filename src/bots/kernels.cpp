#include "bots/kernel.hpp"

namespace taskprof::bots {

// One factory per kernel translation unit.
std::unique_ptr<Kernel> make_alignment_kernel();
std::unique_ptr<Kernel> make_fft_kernel();
std::unique_ptr<Kernel> make_fib_kernel();
std::unique_ptr<Kernel> make_floorplan_kernel();
std::unique_ptr<Kernel> make_health_kernel();
std::unique_ptr<Kernel> make_nqueens_kernel();
std::unique_ptr<Kernel> make_sort_kernel();
std::unique_ptr<Kernel> make_sparselu_kernel();
std::unique_ptr<Kernel> make_strassen_kernel();

std::vector<std::unique_ptr<Kernel>> make_all_kernels() {
  std::vector<std::unique_ptr<Kernel>> kernels;
  kernels.push_back(make_alignment_kernel());
  kernels.push_back(make_fft_kernel());
  kernels.push_back(make_fib_kernel());
  kernels.push_back(make_floorplan_kernel());
  kernels.push_back(make_health_kernel());
  kernels.push_back(make_nqueens_kernel());
  kernels.push_back(make_sort_kernel());
  kernels.push_back(make_sparselu_kernel());
  kernels.push_back(make_strassen_kernel());
  return kernels;
}

std::unique_ptr<Kernel> make_kernel(std::string_view name) {
  auto all = make_all_kernels();
  for (auto& kernel : all) {
    if (kernel->name() == name) return std::move(kernel);
  }
  return nullptr;
}

const std::vector<std::string>& nocutoff_study_kernels() {
  static const std::vector<std::string> kernels = {
      "fib", "floorplan", "health", "nqueens", "strassen"};
  return kernels;
}

}  // namespace taskprof::bots
