// BOTS "sparselu": LU factorization of a sparse blocked matrix.  Per
// elimination step k: factor the diagonal block (lu0), then tasks for the
// row panel (fwd), the column panel (bdiv), and the trailing update
// (bmod), with taskwaits between phases.  The paper used "the version that
// creates tasks in a single construct": one thread creates all tasks while
// the team executes them — the single-creator pattern whose creation
// bottleneck the paper discusses.
#include <cmath>
#include <map>
#include <mutex>
#include <vector>

#include "bots/detail.hpp"
#include "bots/kernel.hpp"
#include "common/rng.hpp"

namespace taskprof::bots {

namespace {

constexpr double kFlopCost = 0.6;  ///< virtual ns per floating-point op

struct Params {
  std::size_t blocks = 8;      ///< matrix is blocks x blocks blocks
  std::size_t block_edge = 16; ///< each block is block_edge x block_edge
};

using Block = std::vector<double>;  // block_edge * block_edge, row-major

/// Sparse blocked matrix: absent blocks are empty vectors.  The sparsity
/// pattern matches BOTS' genmat: diagonals present, off-diagonal presence
/// decided by a deterministic pseudo-random rule.
struct BlockMatrix {
  Params params;
  std::vector<Block> blocks;  // blocks x blocks entries

  [[nodiscard]] Block& at(std::size_t i, std::size_t j) {
    return blocks[i * params.blocks + j];
  }
  [[nodiscard]] bool present(std::size_t i, std::size_t j) const {
    return !blocks[i * params.blocks + j].empty();
  }
};

BlockMatrix generate(const Params& params, std::uint64_t seed) {
  BlockMatrix mat;
  mat.params = params;
  mat.blocks.resize(params.blocks * params.blocks);
  Xoshiro256 rng(seed);
  const std::size_t be = params.block_edge;
  for (std::size_t i = 0; i < params.blocks; ++i) {
    for (std::size_t j = 0; j < params.blocks; ++j) {
      const bool keep = i == j || rng.next_double() < 0.6;
      if (!keep) continue;
      Block& blk = mat.at(i, j);
      blk.resize(be * be);
      for (std::size_t e = 0; e < be * be; ++e) {
        blk[e] = rng.next_double() - 0.5;
      }
      if (i == j) {
        // Diagonal dominance keeps the factorization stable without
        // pivoting (as in BOTS).
        for (std::size_t d = 0; d < be; ++d) {
          blk[d * be + d] += static_cast<double>(be);
        }
      }
    }
  }
  return mat;
}

// --- The four BOTS block kernels ----------------------------------------

void lu0(Block& diag, std::size_t be) {
  for (std::size_t k = 0; k < be; ++k) {
    const double pivot = diag[k * be + k];
    for (std::size_t i = k + 1; i < be; ++i) {
      diag[i * be + k] /= pivot;
      const double lik = diag[i * be + k];
      for (std::size_t j = k + 1; j < be; ++j) {
        diag[i * be + j] -= lik * diag[k * be + j];
      }
    }
  }
}

void fwd(const Block& diag, Block& row, std::size_t be) {
  for (std::size_t k = 0; k < be; ++k) {
    for (std::size_t i = k + 1; i < be; ++i) {
      const double lik = diag[i * be + k];
      for (std::size_t j = 0; j < be; ++j) {
        row[i * be + j] -= lik * row[k * be + j];
      }
    }
  }
}

void bdiv(const Block& diag, Block& col, std::size_t be) {
  for (std::size_t i = 0; i < be; ++i) {
    for (std::size_t k = 0; k < be; ++k) {
      col[i * be + k] /= diag[k * be + k];
      const double aik = col[i * be + k];
      for (std::size_t j = k + 1; j < be; ++j) {
        col[i * be + j] -= aik * diag[k * be + j];
      }
    }
  }
}

void bmod(const Block& row, const Block& col, Block& inner, std::size_t be) {
  for (std::size_t i = 0; i < be; ++i) {
    for (std::size_t k = 0; k < be; ++k) {
      const double aik = col[i * be + k];
      for (std::size_t j = 0; j < be; ++j) {
        inner[i * be + j] -= aik * row[k * be + j];
      }
    }
  }
}

Ticks block_cost(std::size_t be) {
  return static_cast<Ticks>(2.0 * static_cast<double>(be * be * be) / 3.0 *
                            kFlopCost);
}
Ticks bmod_cost(std::size_t be) {
  return static_cast<Ticks>(2.0 * static_cast<double>(be * be * be) *
                            kFlopCost);
}

/// The factorization, optionally creating tasks (task=false gives the
/// serial reference used for verification).
void factorize(rt::TaskContext* ctx, const KernelConfig* config,
               RegionHandle region, BlockMatrix& mat) {
  const std::size_t nb = mat.params.blocks;
  const std::size_t be = mat.params.block_edge;
  const bool tasked = ctx != nullptr;
  for (std::size_t k = 0; k < nb; ++k) {
    lu0(mat.at(k, k), be);
    if (tasked) ctx->work(block_cost(be));
    const Block& diag = mat.at(k, k);
    for (std::size_t j = k + 1; j < nb; ++j) {
      if (!mat.present(k, j)) continue;
      Block& row = mat.at(k, j);
      if (tasked) {
        ctx->create_task(
            [&diag, &row, be](rt::TaskContext& c) {
              fwd(diag, row, be);
              c.work(block_cost(be));
            },
            detail::task_attrs(region, *config, 0));
      } else {
        fwd(diag, row, be);
      }
    }
    for (std::size_t i = k + 1; i < nb; ++i) {
      if (!mat.present(i, k)) continue;
      Block& col = mat.at(i, k);
      if (tasked) {
        ctx->create_task(
            [&diag, &col, be](rt::TaskContext& c) {
              bdiv(diag, col, be);
              c.work(block_cost(be));
            },
            detail::task_attrs(region, *config, 0));
      } else {
        bdiv(diag, col, be);
      }
    }
    if (tasked) ctx->taskwait();
    for (std::size_t i = k + 1; i < nb; ++i) {
      if (!mat.present(i, k)) continue;
      for (std::size_t j = k + 1; j < nb; ++j) {
        if (!mat.present(k, j)) continue;
        Block& inner = mat.at(i, j);
        if (inner.empty()) inner.assign(be * be, 0.0);  // fill-in
        const Block& row = mat.at(k, j);
        const Block& col = mat.at(i, k);
        if (tasked) {
          ctx->create_task(
              [&row, &col, &inner, be](rt::TaskContext& c) {
                bmod(row, col, inner, be);
                c.work(bmod_cost(be));
              },
              detail::task_attrs(region, *config, 0));
        } else {
          bmod(row, col, inner, be);
        }
      }
    }
    if (tasked) ctx->taskwait();
  }
}

std::uint64_t checksum_of(const BlockMatrix& mat) {
  double sum = 0.0;
  for (const Block& blk : mat.blocks) {
    for (double v : blk) sum += std::abs(v);
  }
  return static_cast<std::uint64_t>(std::llround(sum * 1e3));
}

class SparseLuKernel final : public Kernel {
 public:
  [[nodiscard]] std::string_view name() const override { return "sparselu"; }
  [[nodiscard]] bool has_cutoff_version() const override { return false; }

  KernelResult run(rt::Runtime& runtime, RegionRegistry& registry,
                   const KernelConfig& config) override {
    const RegionHandle region =
        registry.register_region("sparselu_task", RegionType::kTask);
    Params params;
    switch (config.size) {
      case SizeClass::kTest: params = {8, 16}; break;
      case SizeClass::kSmall: params = {20, 32}; break;
      case SizeClass::kMedium: params = {32, 48}; break;
    }

    BlockMatrix mat = generate(params, config.seed);
    auto stats = detail::run_single_rooted(
        runtime, config.threads, [&](rt::TaskContext& ctx) {
          factorize(&ctx, &config, region, mat);
        });

    KernelResult out;
    out.stats = stats;
    out.checksum = checksum_of(mat);
    out.ok = out.checksum == reference_checksum(params, config.seed);
    out.check = "factor matches the serial reference factorization";
    return out;
  }

 private:
  /// Serial reference checksum, cached per (params, seed): benches sweep
  /// thread counts over the same input and pay for the reference once.
  static std::uint64_t reference_checksum(const Params& params,
                                          std::uint64_t seed) {
    static std::mutex mutex;
    static std::map<std::tuple<std::size_t, std::size_t, std::uint64_t>,
                    std::uint64_t>
        cache;
    const auto key = std::make_tuple(params.blocks, params.block_edge, seed);
    std::scoped_lock lock(mutex);
    if (auto it = cache.find(key); it != cache.end()) return it->second;
    BlockMatrix ref = generate(params, seed);
    factorize(nullptr, nullptr, kInvalidRegion, ref);
    const std::uint64_t sum = checksum_of(ref);
    cache.emplace(key, sum);
    return sum;
  }
};

}  // namespace

std::unique_ptr<Kernel> make_sparselu_kernel() {
  return std::make_unique<SparseLuKernel>();
}

}  // namespace taskprof::bots
