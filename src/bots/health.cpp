// BOTS "health": simulation of a hierarchical health-care system.  A tree
// of villages (hospitals at every level); each simulated tick descends the
// tree with one task per village and processes that village's patients.
// Fine-grained tasks with real data movement — the paper measured 32 %
// single-thread overhead decaying to 5.6 % at 8 threads (cut-off version).
// The cut-off version stops creating tasks below a tree level and
// processes the remaining subtree serially.
//
// Simplification vs. BOTS: patients are per-village counters advanced by a
// per-village RNG instead of linked lists.  Every village is processed
// exactly once per tick with its own generator, so the simulation is
// bit-deterministic regardless of task interleaving — which is what makes
// self-verification possible.
#include <memory>
#include <vector>

#include "bots/detail.hpp"
#include "bots/kernel.hpp"
#include "common/rng.hpp"

namespace taskprof::bots {

namespace {

constexpr int kBranch = 4;           ///< villages per non-leaf village
constexpr Ticks kPatientCost = 90;   ///< virtual ns per patient transition
constexpr Ticks kVillageCost = 350;  ///< per-village bookkeeping
constexpr int kCutoffLevel = 2;      ///< cut-off: tasks only above this level

struct Params {
  int levels = 4;
  int ticks = 20;
};

struct Village {
  Xoshiro256 rng{0};
  std::int64_t waiting = 0;    ///< patients in the waiting room
  std::int64_t assess = 0;     ///< patients under assessment
  std::int64_t inside = 0;     ///< patients in treatment
  std::int64_t treated = 0;    ///< cumulative discharged patients
  std::int64_t referred = 0;   ///< cumulative referrals upward
  std::vector<std::unique_ptr<Village>> children;
};

std::unique_ptr<Village> build(int level, std::uint64_t seed) {
  auto village = std::make_unique<Village>();
  village->rng = Xoshiro256(seed);
  village->waiting = 3;
  if (level > 0) {
    for (int i = 0; i < kBranch; ++i) {
      village->children.push_back(
          build(level - 1, seed * 8191 + static_cast<std::uint64_t>(i) + 1));
    }
  }
  return village;
}

/// One tick of one village: stochastic but village-local, so execution
/// order cannot change the outcome.
void step_village(rt::TaskContext& ctx, Village& v) {
  std::int64_t ops = 1;
  // New arrivals.
  const std::int64_t arrivals =
      static_cast<std::int64_t>(v.rng.next_below(3));
  v.waiting += arrivals;
  ops += arrivals;
  // Waiting -> assessment (capacity-limited).
  const std::int64_t to_assess = std::min<std::int64_t>(v.waiting, 2);
  v.waiting -= to_assess;
  v.assess += to_assess;
  ops += to_assess;
  // Assessment -> treatment or referral upward.
  std::int64_t to_inside = 0;
  std::int64_t to_refer = 0;
  for (std::int64_t i = 0; i < v.assess && i < 2; ++i) {
    if (v.rng.next_double() < 0.7) {
      ++to_inside;
    } else {
      ++to_refer;
    }
  }
  v.assess -= to_inside + to_refer;
  v.inside += to_inside;
  v.referred += to_refer;
  ops += to_inside + to_refer;
  // Treatment completion.
  const std::int64_t discharged = std::min<std::int64_t>(v.inside, 1);
  v.inside -= discharged;
  v.treated += discharged;
  ops += discharged;
  ctx.work(kVillageCost + ops * kPatientCost);
}

struct HealthState {
  RegionHandle region;
  const KernelConfig* config;
};

void simulate_serial(rt::TaskContext& ctx, Village& v) {
  for (auto& child : v.children) simulate_serial(ctx, *child);
  step_village(ctx, v);
}

/// BOTS structure: one task per child village, then process this village
/// after the subtree finished (taskwait).
void simulate(rt::TaskContext& ctx, const HealthState& st, Village& v,
              int level, int depth) {
  for (auto& child : v.children) {
    Village* child_ptr = child.get();
    // The cut-off kicks in below a tree level: deeper villages are
    // processed serially (manual) or as undeferred tasks (if-clause).
    const bool below_cutoff = st.config->cutoff && level - 1 < kCutoffLevel;
    if (below_cutoff && !st.config->if_clause) {
      simulate_serial(ctx, *child_ptr);
      continue;
    }
    rt::TaskAttrs attrs = detail::task_attrs(st.region, *st.config, depth);
    attrs.undeferred = below_cutoff;
    ctx.create_task(
        [&st, child_ptr, level, depth](rt::TaskContext& c) {
          simulate(c, st, *child_ptr, level - 1, depth + 1);
        },
        attrs);
  }
  ctx.taskwait();
  step_village(ctx, v);
}

std::uint64_t checksum_of(const Village& v) {
  std::uint64_t sum = static_cast<std::uint64_t>(v.treated) * 31 +
                      static_cast<std::uint64_t>(v.referred) * 17 +
                      static_cast<std::uint64_t>(v.waiting + v.assess +
                                                 v.inside);
  for (const auto& child : v.children) {
    sum = sum * 1099511628211ULL + checksum_of(*child);
  }
  return sum;
}

/// Serial run of the same simulation (no tasks) for verification.
std::uint64_t reference_checksum(const Params& params, std::uint64_t seed) {
  auto root = build(params.levels, seed);
  struct NullCtx {
    static void run(Village& v, int ticks) {
      for (int t = 0; t < ticks; ++t) step_all(v);
    }
    static void step_all(Village& v) {
      for (auto& child : v.children) step_all(*child);
      step_serial(v);
    }
    static void step_serial(Village& v) {
      // Duplicate of step_village without the context; kept in sync by
      // the unit test comparing both paths.
      std::int64_t arrivals = static_cast<std::int64_t>(v.rng.next_below(3));
      v.waiting += arrivals;
      const std::int64_t to_assess = std::min<std::int64_t>(v.waiting, 2);
      v.waiting -= to_assess;
      v.assess += to_assess;
      std::int64_t to_inside = 0;
      std::int64_t to_refer = 0;
      for (std::int64_t i = 0; i < v.assess && i < 2; ++i) {
        if (v.rng.next_double() < 0.7) {
          ++to_inside;
        } else {
          ++to_refer;
        }
      }
      v.assess -= to_inside + to_refer;
      v.inside += to_inside;
      v.referred += to_refer;
      const std::int64_t discharged = std::min<std::int64_t>(v.inside, 1);
      v.inside -= discharged;
      v.treated += discharged;
    }
  };
  NullCtx::run(*root, params.ticks);
  return checksum_of(*root);
}

class HealthKernel final : public Kernel {
 public:
  [[nodiscard]] std::string_view name() const override { return "health"; }
  [[nodiscard]] bool has_cutoff_version() const override { return true; }

  KernelResult run(rt::Runtime& runtime, RegionRegistry& registry,
                   const KernelConfig& config) override {
    const RegionHandle region =
        registry.register_region("health_task", RegionType::kTask);
    Params params;
    switch (config.size) {
      case SizeClass::kTest: params = {3, 10}; break;
      case SizeClass::kSmall: params = {5, 40}; break;
      case SizeClass::kMedium: params = {6, 60}; break;
    }

    auto root = build(params.levels, config.seed);
    HealthState st{region, &config};
    auto stats = detail::run_single_rooted(
        runtime, config.threads, [&](rt::TaskContext& ctx) {
          for (int t = 0; t < params.ticks; ++t) {
            simulate(ctx, st, *root, params.levels, 0);
          }
        });

    KernelResult out;
    out.stats = stats;
    out.checksum = checksum_of(*root);
    out.ok = out.checksum == reference_checksum(params, config.seed);
    out.check = "simulation state matches the serial reference";
    return out;
  }
};

}  // namespace

std::unique_ptr<Kernel> make_health_kernel() {
  return std::make_unique<HealthKernel>();
}

}  // namespace taskprof::bots
