// BOTS "sort": parallel mergesort over 32-bit keys.  Tasks split the range
// recursively; below a grain threshold an in-place serial sort runs.  The
// paper measured ~6 % instrumentation overhead — tasks are mid-sized, so
// this kernel sits between fib (tiny tasks) and strassen (large tasks).
//
// Simplification vs. BOTS (cilksort): two-way splits with a serial merge
// instead of four-way splits with parallel merge tasks; the task topology
// (recursive creation + taskwait per level) is preserved.
#include <algorithm>
#include <vector>

#include "bots/detail.hpp"
#include "bots/kernel.hpp"
#include "common/rng.hpp"

namespace taskprof::bots {

namespace {

constexpr std::size_t kSerialThreshold = 2048;
constexpr Ticks kSerialSortPerElement = 28;  ///< ~ c * log2(threshold)
constexpr Ticks kMergePerElement = 6;

struct SortState {
  RegionHandle region;
  const KernelConfig* config;
  std::vector<std::uint32_t>* data;
  std::vector<std::uint32_t>* scratch;
};

void sort_range(rt::TaskContext& ctx, const SortState& st, std::size_t lo,
                std::size_t hi, int depth);

/// Spawn a task sorting [lo, hi); caller must taskwait before using it.
void spawn_sort(rt::TaskContext& ctx, const SortState& st, std::size_t lo,
                std::size_t hi, int depth) {
  ctx.create_task(
      [&st, lo, hi, depth](rt::TaskContext& c) {
        sort_range(c, st, lo, hi, depth);
      },
      detail::task_attrs(st.region, *st.config, depth));
}

void sort_range(rt::TaskContext& ctx, const SortState& st, std::size_t lo,
                std::size_t hi, int depth) {
  const std::size_t count = hi - lo;
  auto& data = *st.data;
  if (count <= kSerialThreshold) {
    std::sort(data.begin() + static_cast<std::ptrdiff_t>(lo),
              data.begin() + static_cast<std::ptrdiff_t>(hi));
    ctx.work(static_cast<Ticks>(count) * kSerialSortPerElement);
    return;
  }
  const std::size_t mid = lo + count / 2;
  spawn_sort(ctx, st, lo, mid, depth + 1);
  spawn_sort(ctx, st, mid, hi, depth + 1);
  ctx.taskwait();
  // Serial merge through the scratch buffer.
  auto& scratch = *st.scratch;
  std::merge(data.begin() + static_cast<std::ptrdiff_t>(lo),
             data.begin() + static_cast<std::ptrdiff_t>(mid),
             data.begin() + static_cast<std::ptrdiff_t>(mid),
             data.begin() + static_cast<std::ptrdiff_t>(hi),
             scratch.begin() + static_cast<std::ptrdiff_t>(lo));
  std::copy(scratch.begin() + static_cast<std::ptrdiff_t>(lo),
            scratch.begin() + static_cast<std::ptrdiff_t>(hi),
            data.begin() + static_cast<std::ptrdiff_t>(lo));
  ctx.work(static_cast<Ticks>(count) * kMergePerElement);
}

class SortKernel final : public Kernel {
 public:
  [[nodiscard]] std::string_view name() const override { return "sort"; }
  [[nodiscard]] bool has_cutoff_version() const override { return false; }

  KernelResult run(rt::Runtime& runtime, RegionRegistry& registry,
                   const KernelConfig& config) override {
    const RegionHandle region =
        registry.register_region("sort_task", RegionType::kTask);
    std::size_t count = 1;
    switch (config.size) {
      case SizeClass::kTest: count = 64 * 1024; break;
      case SizeClass::kSmall: count = 1024 * 1024; break;
      case SizeClass::kMedium: count = 4 * 1024 * 1024; break;
    }

    std::vector<std::uint32_t> data(count);
    Xoshiro256 rng(config.seed);
    std::uint64_t xor_before = 0;
    for (auto& value : data) {
      value = static_cast<std::uint32_t>(rng.next());
      xor_before ^= value;
    }
    std::vector<std::uint32_t> scratch(count);

    SortState st{region, &config, &data, &scratch};
    auto stats = detail::run_single_rooted(
        runtime, config.threads, [&](rt::TaskContext& ctx) {
          spawn_sort(ctx, st, 0, count, 0);
          ctx.taskwait();
        });

    std::uint64_t xor_after = 0;
    for (auto value : data) xor_after ^= value;
    const bool sorted = std::is_sorted(data.begin(), data.end());

    KernelResult out;
    out.stats = stats;
    out.checksum = xor_after;
    out.ok = sorted && xor_before == xor_after;
    out.check = "sorted order and element conservation";
    return out;
  }
};

}  // namespace

std::unique_ptr<Kernel> make_sort_kernel() {
  return std::make_unique<SortKernel>();
}

}  // namespace taskprof::bots
