#include "telemetry/telemetry.hpp"

#include <cstdio>

#include "common/assert.hpp"

namespace taskprof::telemetry {

std::string_view counter_name(Counter c) noexcept {
  switch (c) {
    case Counter::kTasksCreated: return "tasks_created";
    case Counter::kTasksExecuted: return "tasks_executed";
    case Counter::kTasksDeferred: return "tasks_deferred";
    case Counter::kTasksUndeferred: return "tasks_undeferred";
    case Counter::kStealAttempts: return "steal_attempts";
    case Counter::kStealSuccesses: return "steal_successes";
    case Counter::kStealAborts: return "steal_aborts";
    case Counter::kTaskwaitEntries: return "taskwait_entries";
    case Counter::kBarrierEntries: return "barrier_entries";
    case Counter::kSingleWins: return "single_wins";
    case Counter::kSchedYields: return "sched_yields";
    case Counter::kSlabAllocs: return "slab_allocs";
    case Counter::kSlabRecycles: return "slab_recycles";
    case Counter::kSlabRemoteRecycles: return "slab_remote_recycles";
    case Counter::kMigrations: return "migrations";
    case Counter::kHookEvents: return "hook_events";
    case Counter::kHookTicks: return "hook_ticks";
    case Counter::kTaskgraphRecords: return "taskgraph_records";
    case Counter::kTaskgraphReplays: return "taskgraph_replays";
    case Counter::kTaskgraphFallbacks: return "taskgraph_fallbacks";
    case Counter::kTaskgraphDivergences: return "taskgraph_divergences";
    case Counter::kTaskgraphStaticSpawns: return "taskgraph_static_spawns";
    case Counter::kTaskgraphDynamicSpawns: return "taskgraph_dynamic_spawns";
    case Counter::kTaskgraphDivergeStructure:
      return "taskgraph_diverge_structure";
    case Counter::kTaskgraphDivergeShortSpawn:
      return "taskgraph_diverge_short_spawn";
    case Counter::kTaskgraphDivergeResidue:
      return "taskgraph_diverge_residue";
    case Counter::kStealsInDomain: return "steals_in_domain";
    case Counter::kStealsCrossDomain: return "steals_cross_domain";
    case Counter::kStealBatchTasks: return "steal_batch_tasks";
    case Counter::kStealEscalations: return "steal_escalations";
    case Counter::kCount_: break;
  }
  return "?";
}

std::string_view gauge_name(Gauge g) noexcept {
  switch (g) {
    case Gauge::kDequeDepth: return "deque_depth_hwm";
    case Gauge::kSlabRecords: return "slab_records_hwm";
    case Gauge::kTaskStackDepth: return "task_stack_depth_hwm";
    case Gauge::kRunQueueDepth: return "run_queue_depth_hwm";
    case Gauge::kCount_: break;
  }
  return "?";
}

double Snapshot::steal_success_rate() const noexcept {
  const std::uint64_t attempts = counter(Counter::kStealAttempts);
  if (attempts == 0) return 0.0;
  return static_cast<double>(counter(Counter::kStealSuccesses)) /
         static_cast<double>(attempts);
}

double Snapshot::hook_mean_ticks() const noexcept {
  const std::uint64_t events = counter(Counter::kHookEvents);
  if (events == 0) return 0.0;
  return static_cast<double>(counter(Counter::kHookTicks)) /
         static_cast<double>(events);
}

std::string snapshot_to_json(const Snapshot& snapshot) {
  std::string out;
  out.reserve(1024);
  char buf[64];
  auto u64 = [&out](std::uint64_t v) { out += std::to_string(v); };
  out += "{\n  \"threads\": ";
  u64(static_cast<std::uint64_t>(snapshot.threads));
  out += ",\n  \"counters\": {";
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    out += counter_name(static_cast<Counter>(i));
    out += "\": ";
    u64(snapshot.counters[i]);
  }
  out += "\n  },\n  \"gauges\": {";
  for (std::size_t i = 0; i < kGaugeCount; ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    out += gauge_name(static_cast<Gauge>(i));
    out += "\": ";
    u64(snapshot.gauges[i]);
  }
  out += "\n  },\n  \"derived\": {\n    \"steal_success_rate\": ";
  std::snprintf(buf, sizeof buf, "%.6g", snapshot.steal_success_rate());
  out += buf;
  out += ",\n    \"hook_mean_ns\": ";
  std::snprintf(buf, sizeof buf, "%.6g", snapshot.hook_mean_ticks());
  out += buf;
  out += "\n  },\n  \"per_thread\": [";
  for (std::size_t t = 0; t < snapshot.per_thread.size(); ++t) {
    out += t == 0 ? "\n" : ",\n";
    out += "    [";
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      if (i != 0) out += ", ";
      u64(snapshot.per_thread[t][i]);
    }
    out += "]";
  }
  out += "\n  ]\n}\n";
  return out;
}

void merge_into(Snapshot& dst, const Snapshot& src) {
  dst.threads += src.threads;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    dst.counters[i] += src.counters[i];
  }
  for (std::size_t i = 0; i < kGaugeCount; ++i) {
    if (src.gauges[i] > dst.gauges[i]) dst.gauges[i] = src.gauges[i];
  }
  dst.per_thread.insert(dst.per_thread.end(), src.per_thread.begin(),
                        src.per_thread.end());
}

Registry::Registry() = default;
Registry::~Registry() = default;

void Registry::prepare(int num_threads) {
  TASKPROF_ASSERT(num_threads >= 0, "negative thread count");
  while (blocks_.size() < static_cast<std::size_t>(num_threads)) {
    blocks_.push_back(std::make_unique<Block>());
  }
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  snap.threads = static_cast<int>(blocks_.size());
  snap.per_thread.resize(blocks_.size());
  for (std::size_t t = 0; t < blocks_.size(); ++t) {
    const Block& block = *blocks_[t];
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      const std::uint64_t v =
          block.counters[i].load(std::memory_order_relaxed);
      snap.per_thread[t][i] = v;
      snap.counters[i] += v;
    }
    for (std::size_t i = 0; i < kGaugeCount; ++i) {
      const std::uint64_t v = block.gauges[i].load(std::memory_order_relaxed);
      if (v > snap.gauges[i]) snap.gauges[i] = v;
    }
  }
  return snap;
}

void Registry::reset() {
  for (auto& block : blocks_) {
    for (auto& c : block->counters) c.store(0, std::memory_order_relaxed);
    for (auto& g : block->gauges) g.store(0, std::memory_order_relaxed);
  }
}

TimedHooks::TimedHooks(rt::SchedulerHooks* inner, Registry* registry,
                       const Clock* clock)
    : inner_(inner),
      registry_(registry),
      clock_(clock != nullptr ? clock : &default_clock_) {
  TASKPROF_ASSERT(inner != nullptr && registry != nullptr,
                  "TimedHooks needs an inner listener and a registry");
}

void TimedHooks::on_parallel_begin(int num_threads) {
  registry_->prepare(num_threads);
  const Timed timed(*this, 0);  // encountering thread is the master
  inner_->on_parallel_begin(num_threads);
}

void TimedHooks::on_parallel_end() {
  const Timed timed(*this, 0);
  inner_->on_parallel_end();
}

void TimedHooks::on_implicit_task_begin(ThreadId thread, const Clock& clock) {
  const Timed timed(*this, thread);
  inner_->on_implicit_task_begin(thread, clock);
}

void TimedHooks::on_implicit_task_end(ThreadId thread) {
  const Timed timed(*this, thread);
  inner_->on_implicit_task_end(thread);
}

void TimedHooks::on_task_create_begin(ThreadId thread, RegionHandle region,
                                      std::int64_t parameter) {
  const Timed timed(*this, thread);
  inner_->on_task_create_begin(thread, region, parameter);
}

void TimedHooks::on_task_create_end(ThreadId thread, TaskInstanceId created,
                                    RegionHandle region,
                                    std::int64_t parameter) {
  const Timed timed(*this, thread);
  inner_->on_task_create_end(thread, created, region, parameter);
}

void TimedHooks::on_task_begin(ThreadId thread, TaskInstanceId id,
                               RegionHandle region, std::int64_t parameter) {
  const Timed timed(*this, thread);
  inner_->on_task_begin(thread, id, region, parameter);
}

void TimedHooks::on_task_end(ThreadId thread, TaskInstanceId id) {
  const Timed timed(*this, thread);
  inner_->on_task_end(thread, id);
}

void TimedHooks::on_task_switch(ThreadId thread, TaskInstanceId id) {
  const Timed timed(*this, thread);
  inner_->on_task_switch(thread, id);
}

void TimedHooks::on_task_migrate(ThreadId from, ThreadId to,
                                 TaskInstanceId id) {
  const Timed timed(*this, from);
  inner_->on_task_migrate(from, to, id);
}

void TimedHooks::on_task_work(ThreadId thread, Ticks cost) {
  const Timed timed(*this, thread);
  inner_->on_task_work(thread, cost);
}

void TimedHooks::on_taskwait_begin(ThreadId thread) {
  const Timed timed(*this, thread);
  inner_->on_taskwait_begin(thread);
}

void TimedHooks::on_taskwait_end(ThreadId thread) {
  const Timed timed(*this, thread);
  inner_->on_taskwait_end(thread);
}

void TimedHooks::on_barrier_begin(ThreadId thread, bool implicit) {
  const Timed timed(*this, thread);
  inner_->on_barrier_begin(thread, implicit);
}

void TimedHooks::on_barrier_end(ThreadId thread, bool implicit) {
  const Timed timed(*this, thread);
  inner_->on_barrier_end(thread, implicit);
}

void TimedHooks::on_region_enter(ThreadId thread, RegionHandle region,
                                 std::int64_t parameter) {
  const Timed timed(*this, thread);
  inner_->on_region_enter(thread, region, parameter);
}

void TimedHooks::on_region_exit(ThreadId thread, RegionHandle region) {
  const Timed timed(*this, thread);
  inner_->on_region_exit(thread, region);
}

void TimedHooks::on_scheduler_note(ThreadId thread, rt::SchedulerNote note,
                                   std::int64_t detail) {
  const Timed timed(*this, thread);
  inner_->on_scheduler_note(thread, note, detail);
}

}  // namespace taskprof::telemetry
