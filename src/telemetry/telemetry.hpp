// Profiler self-observability: the lock-free scheduler telemetry registry.
//
// The paper makes *application* task scheduling visible; this subsystem
// makes the profiling engine itself visible — steal success rates, deque
// high-water marks, slab occupancy, and what the measurement layer costs
// (the §V overhead analysis, measured from inside the run instead of by
// comparing two wall clocks).  The design follows the same per-thread
// memory rule as the measurement layer:
//
//  * every thread owns one cache-line-isolated block of counter slots and
//    writes only to its own block; single-writer slots mean counters are
//    relaxed load+store (no locked RMW, no contention, no false sharing);
//  * gauges are monotonic high-water marks with a single writer per slot,
//    so a relaxed load/compare/store suffices — no CAS;
//  * snapshot() may run concurrently with recording: it reads every slot
//    relaxed and aggregates.  Values are exact once the region quiesces
//    and at-most-one-event stale while it runs, which is the right trade
//    for a dashboard/telemetry sink;
//  * no sink attached (Registry* == nullptr at the engine) means no slot
//    is ever touched — the hot path pays one predictable branch.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "common/types.hpp"
#include "rt/hooks.hpp"

namespace taskprof::telemetry {

/// Monotonic event counters.  Both engines record the shared subset;
/// engine-specific counters simply stay zero on the other engine.
enum class Counter : std::uint32_t {
  kTasksCreated,        ///< explicit task instances created
  kTasksExecuted,       ///< explicit task instances completed
  kTasksDeferred,       ///< created deferred (enqueued)
  kTasksUndeferred,     ///< created undeferred (ran inline)
  kStealAttempts,       ///< victim-queue probes by idle threads
  kStealSuccesses,      ///< probes that yielded a task
  kStealAborts,         ///< empty-handed probe rounds (all victims empty)
  kTaskwaitEntries,     ///< taskwait scheduling points entered
  kBarrierEntries,      ///< barrier scheduling points entered
  kSingleWins,          ///< single constructs won
  kSchedYields,         ///< idle spins that escalated to a thread yield
  kSlabAllocs,          ///< TaskRecord allocations (fresh or recycled)
  kSlabRecycles,        ///< records returned to their slab
  kSlabRemoteRecycles,  ///< ... returned by a thread other than the owner
  kMigrations,          ///< untied resumptions on a new worker (sim)
  kHookEvents,          ///< measurement-hook invocations (self-timing)
  kHookTicks,           ///< wall ticks spent inside measurement hooks
  kTaskgraphRecords,    ///< parallel regions that recorded a task graph
  kTaskgraphReplays,    ///< parallel regions replayed from a task graph
  kTaskgraphFallbacks,  ///< regions run dynamically on a stale graph
  kTaskgraphDivergences,    ///< replay shape mismatches detected
  kTaskgraphStaticSpawns,   ///< replay spawns served from the static slots
  kTaskgraphDynamicSpawns,  ///< replay spawns that fell back to the deques
  kTaskgraphDivergeStructure,  ///< divergences: recorded-shape mismatch
  kTaskgraphDivergeShortSpawn, ///< divergences: fewer children than recorded
  kTaskgraphDivergeResidue,    ///< divergences: unspawned residue at the end
  kStealsInDomain,      ///< steals whose victim shares the thief's domain
  kStealsCrossDomain,   ///< steals that crossed a locality-domain boundary
  kStealBatchTasks,     ///< tasks moved by batched cross-domain steals
  kStealEscalations,    ///< local-miss limits hit (worker went remote)
  kCount_
};

/// High-water gauges (monotonic maxima, reset() starts a new episode).
enum class Gauge : std::uint32_t {
  kDequeDepth,     ///< deepest owner deque observed at an enqueue
  kSlabRecords,    ///< most TaskRecords ever carved by one thread's slab
  kTaskStackDepth, ///< deepest nested-execution stack (real engine)
  kRunQueueDepth,  ///< central-queue depth (simulator)
  kCount_
};

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount_);
inline constexpr std::size_t kGaugeCount =
    static_cast<std::size_t>(Gauge::kCount_);

[[nodiscard]] std::string_view counter_name(Counter c) noexcept;
[[nodiscard]] std::string_view gauge_name(Gauge g) noexcept;

/// Aggregated point-in-time view of a Registry (see Registry::snapshot).
struct Snapshot {
  int threads = 0;  ///< per-thread blocks that have recorded anything
  std::array<std::uint64_t, kCounterCount> counters{};  ///< summed
  std::array<std::uint64_t, kGaugeCount> gauges{};      ///< max over threads
  std::vector<std::array<std::uint64_t, kCounterCount>> per_thread;

  [[nodiscard]] std::uint64_t counter(Counter c) const noexcept {
    return counters[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t gauge(Gauge g) const noexcept {
    return gauges[static_cast<std::size_t>(g)];
  }

  /// Steal successes / attempts; 0 when no attempt was made.
  [[nodiscard]] double steal_success_rate() const noexcept;

  /// Mean wall ticks per measurement-hook invocation (self-timing).
  [[nodiscard]] double hook_mean_ticks() const noexcept;
};

/// Machine-readable export of a snapshot (one flat JSON object: counters,
/// gauges, derived rates, and a per-thread counter matrix).
[[nodiscard]] std::string snapshot_to_json(const Snapshot& snapshot);

/// Fold `src` into `dst`, matching how the registry aggregates blocks:
/// counters sum, gauges take the maximum, and the per-thread matrices
/// concatenate (each source process keeps its own rows).  Used by the
/// snapshot merge tool to collate per-process telemetry sections.
void merge_into(Snapshot& dst, const Snapshot& src);

/// The telemetry sink.  Attach to an engine with Runtime::set_telemetry;
/// one registry may accumulate across several parallel regions.
class Registry {
 public:
  Registry();
  ~Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Ensure blocks for thread ids [0, num_threads) exist.  Called by the
  /// engines at parallel-region entry (single-threaded point); existing
  /// counts are kept.  Must not race with add/gauge_max.
  void prepare(int num_threads);

  /// Record `n` occurrences of `c` on `thread`'s block.  Wait-free: a
  /// relaxed load+store on a thread-private cache line.  Each slot has a
  /// single writer (the owning thread), so the non-RMW update loses
  /// nothing — and unlike fetch_add it compiles to plain moves instead of
  /// a locked instruction, which is what keeps the sink-attached hot path
  /// within the <5 % overhead budget on 100 ns tasks
  /// (bench_telemetry_overhead).
  void add(ThreadId thread, Counter c, std::uint64_t n = 1) noexcept {
    std::atomic<std::uint64_t>& s = slot(thread, c);
    s.store(s.load(std::memory_order_relaxed) + n,
            std::memory_order_relaxed);
  }

  class ThreadSlots;

  /// Borrow a direct handle to `thread`'s block (which must exist — call
  /// after prepare()).  Engines cache one per worker so the per-event path
  /// skips the registry's block-table indirection; the handle stays valid
  /// for the registry's lifetime (prepare() never moves blocks).
  [[nodiscard]] ThreadSlots slots(ThreadId thread) noexcept;

  /// Raise `g`'s high-water mark on `thread`'s block to at least `value`.
  /// Single writer per slot, so load+store (no CAS) is exact.
  void gauge_max(ThreadId thread, Gauge g, std::uint64_t value) noexcept {
    std::atomic<std::uint64_t>& s = gauge_slot(thread, g);
    if (value > s.load(std::memory_order_relaxed)) {
      s.store(value, std::memory_order_relaxed);
    }
  }

  /// Aggregate every block.  Safe to call while a region runs (relaxed
  /// reads; exact when quiescent).
  [[nodiscard]] Snapshot snapshot() const;

  /// Zero every slot (between measurement episodes; not concurrently with
  /// recording).
  void reset();

  [[nodiscard]] int thread_capacity() const noexcept {
    return static_cast<int>(blocks_.size());
  }

 private:
  /// One thread's slots, isolated to its own cache lines.
  struct alignas(64) Block {
    std::array<std::atomic<std::uint64_t>, kCounterCount> counters{};
    std::array<std::atomic<std::uint64_t>, kGaugeCount> gauges{};
  };

  std::atomic<std::uint64_t>& slot(ThreadId thread, Counter c) noexcept {
    return blocks_[thread]->counters[static_cast<std::size_t>(c)];
  }
  std::atomic<std::uint64_t>& gauge_slot(ThreadId thread, Gauge g) noexcept {
    return blocks_[thread]->gauges[static_cast<std::size_t>(g)];
  }

  // unique_ptr blocks: growth in prepare() never moves live atomics.
  std::vector<std::unique_ptr<Block>> blocks_;
};

/// Null-safe single-thread view of one worker's counter block.  Default
/// construction is the detached state: every call is a predictable-branch
/// no-op, so engines keep one unconditionally in their per-thread state
/// and skip the `registry != nullptr` check at each event site.  All
/// writes must come from the owning thread (single-writer slots).
class Registry::ThreadSlots {
 public:
  ThreadSlots() = default;

  [[nodiscard]] bool attached() const noexcept { return block_ != nullptr; }

  void add(Counter c, std::uint64_t n = 1) noexcept {
    if (block_ == nullptr) return;
    std::atomic<std::uint64_t>& s =
        block_->counters[static_cast<std::size_t>(c)];
    s.store(s.load(std::memory_order_relaxed) + n,
            std::memory_order_relaxed);
  }

  void gauge_max(Gauge g, std::uint64_t value) noexcept {
    if (block_ == nullptr) return;
    std::atomic<std::uint64_t>& s =
        block_->gauges[static_cast<std::size_t>(g)];
    if (value > s.load(std::memory_order_relaxed)) {
      s.store(value, std::memory_order_relaxed);
    }
  }

 private:
  friend class Registry;
  explicit ThreadSlots(Block* block) noexcept : block_(block) {}

  Block* block_ = nullptr;
};

inline Registry::ThreadSlots Registry::slots(ThreadId thread) noexcept {
  return ThreadSlots(blocks_[thread].get());
}

/// Self-timing decorator: forwards every scheduler event to `inner` and
/// charges the wall time spent inside the callback to the registry
/// (Counter::kHookEvents / kHookTicks on the event's thread).  This is how
/// the profiler's own overhead lands *next to* the profile it produced —
/// the paper's §V overhead numbers, measured in-band.
class TimedHooks final : public rt::SchedulerHooks {
 public:
  /// `inner` and `registry` must outlive the decorator.  `clock` defaults
  /// to a steady wall clock; tests inject a ManualClock.
  TimedHooks(rt::SchedulerHooks* inner, Registry* registry,
             const Clock* clock = nullptr);

  void on_parallel_begin(int num_threads) override;
  void on_parallel_end() override;
  void on_implicit_task_begin(ThreadId thread, const Clock& clock) override;
  void on_implicit_task_end(ThreadId thread) override;
  void on_task_create_begin(ThreadId thread, RegionHandle region,
                            std::int64_t parameter) override;
  void on_task_create_end(ThreadId thread, TaskInstanceId created,
                          RegionHandle region,
                          std::int64_t parameter) override;
  void on_task_begin(ThreadId thread, TaskInstanceId id, RegionHandle region,
                     std::int64_t parameter) override;
  void on_task_end(ThreadId thread, TaskInstanceId id) override;
  void on_task_switch(ThreadId thread, TaskInstanceId id) override;
  void on_task_migrate(ThreadId from, ThreadId to, TaskInstanceId id) override;
  void on_task_work(ThreadId thread, Ticks cost) override;
  void on_taskwait_begin(ThreadId thread) override;
  void on_taskwait_end(ThreadId thread) override;
  void on_barrier_begin(ThreadId thread, bool implicit) override;
  void on_barrier_end(ThreadId thread, bool implicit) override;
  void on_region_enter(ThreadId thread, RegionHandle region,
                       std::int64_t parameter) override;
  void on_region_exit(ThreadId thread, RegionHandle region) override;
  void on_scheduler_note(ThreadId thread, rt::SchedulerNote note,
                         std::int64_t detail) override;

 private:
  /// Times one callback; charges to `thread`'s block on destruction.
  class Timed {
   public:
    Timed(const TimedHooks& owner, ThreadId thread) noexcept
        : owner_(owner), thread_(thread), start_(owner.clock_->now()) {}
    ~Timed() {
      owner_.registry_->add(thread_, Counter::kHookEvents);
      owner_.registry_->add(
          thread_, Counter::kHookTicks,
          static_cast<std::uint64_t>(owner_.clock_->now() - start_));
    }
    Timed(const Timed&) = delete;
    Timed& operator=(const Timed&) = delete;

   private:
    const TimedHooks& owner_;
    ThreadId thread_;
    Ticks start_;
  };

  rt::SchedulerHooks* inner_;
  Registry* registry_;
  SteadyClock default_clock_;
  const Clock* clock_;
};

}  // namespace taskprof::telemetry
