#include "whatif/validate.hpp"

#include <cmath>
#include <cstdio>
#include <memory>

#include "check/differential.hpp"
#include "instrument/instrumentor.hpp"
#include "rt/duration_scale.hpp"
#include "rt/sim_runtime.hpp"
#include "trace/recorder.hpp"

namespace taskprof::whatif {

namespace {

constexpr int kSchemaVersion = 1;

/// One instrumented sim run of `kernel` at `threads`, optionally with a
/// duration-scaling hypothesis applied.
struct SimRun {
  rt::TeamStats stats;
  trace::Trace trace;
  check::ProfileProjection projection;
  bool ok = false;
};

SimRun run_kernel_sim(bots::Kernel& kernel, RegionRegistry& registry,
                      int threads, bots::SizeClass size,
                      const rt::DurationScale* scale) {
  rt::SimConfig config;
  config.duration_scale = scale;
  rt::SimRuntime runtime(config);

  Instrumentor instr(registry);
  trace::TraceRecorder recorder;
  rt::FanoutHooks fanout({&instr, &recorder});
  runtime.set_hooks(&fanout);

  bots::KernelConfig kc;
  kc.threads = threads;
  kc.size = size;
  const bots::KernelResult result = kernel.run(runtime, registry, kc);

  runtime.set_hooks(nullptr);
  instr.finalize();

  SimRun out;
  out.stats = result.stats;
  out.trace = recorder.take();
  out.projection =
      check::project_profile(instr.aggregate(), registry, result.stats);
  out.projection.engine = scale == nullptr ? "baseline" : "scaled";
  out.projection.checksum = result.checksum;
  out.projection.self_check_ok = result.ok;
  out.ok = result.ok;
  return out;
}

void append_double(std::string* out, double value) {
  if (!std::isfinite(value)) {
    *out += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  *out += buf;
}

void append_json_string(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      default: out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

std::map<std::string, KernelGate> default_kernel_gates() {
  // Measured worst cases at test size (2/4/8 threads, N in {25,50,90}),
  // with headroom; causes documented in DESIGN.md §14:
  //  * alignment — flat farm; at N=90% the bodies shrink below the
  //    per-task dispatch cost and idle-worker polling throttles the
  //    spawner (observed 40% at P=4);
  //  * sparselu / fft — same management-floor effect, milder (29%/18%);
  //  * floorplan — branch-and-bound pruning is schedule-dependent, so a
  //    duration hypothesis legitimately changes the task count; structure
  //    equality is recorded but not gated (observed 20% at P=4).
  return {
      {"alignment", {0.50, true}},
      {"fft", {0.25, true}},
      {"sparselu", {0.40, true}},
      {"floorplan", {0.30, false}},
  };
}

bool ValidateReport::all_within() const noexcept { return failures() == 0; }

std::size_t ValidateReport::failures() const noexcept {
  std::size_t n = 0;
  for (const ValidateCase& c : cases) {
    if (!c.within_tolerance ||
        (c.structure_required && !c.structure_diff.empty())) {
      ++n;
    }
  }
  return n;
}

ValidateReport run_validation(const ValidateOptions& options, Error* error) {
  ValidateReport report;
  report.tolerance = options.tolerance;

  std::vector<std::string> kernels = options.kernels;
  if (kernels.empty()) {
    for (const auto& kernel : bots::make_all_kernels()) {
      kernels.emplace_back(kernel->name());
    }
  }

  for (const std::string& name : kernels) {
    std::unique_ptr<bots::Kernel> kernel = bots::make_kernel(name);
    if (kernel == nullptr) {
      if (error != nullptr) {
        *error = {ErrorCode::kUnknownPath, "unknown kernel '" + name + "'"};
      }
      continue;
    }
    // One registry per kernel: BOTS kernels re-register their regions on
    // every run and the registry dedups, so baseline and scaled runs see
    // identical handles — the precondition for DurationScale targeting.
    RegionRegistry registry;
    const auto gate_it = options.gates.find(name);
    const KernelGate gate = gate_it != options.gates.end()
                                ? gate_it->second
                                : KernelGate{options.tolerance, true};

    for (const int threads : options.threads) {
      const SimRun baseline = run_kernel_sim(*kernel, registry, threads,
                                             options.size, nullptr);
      const trace::TraceAnalysis analysis = analyze_trace(baseline.trace);
      WhatIfProfile profile;
      const Error build_error =
          WhatIfProfile::build(baseline.trace, analysis, registry, &profile);
      if (!build_error.ok()) {
        if (error != nullptr) *error = build_error;
        continue;
      }
      // Scale the heaviest-scalable-time construct, aggregated across
      // parameters (DurationScale keys on the region handle).
      const CallPathStats& target_path = profile.paths().front();
      std::vector<std::size_t> targets;
      const Error resolve_error = profile.resolve(target_path.name, &targets);
      if (!resolve_error.ok()) {
        if (error != nullptr) *error = resolve_error;
        continue;
      }

      for (const double fraction : options.fractions) {
        rt::DurationScale scale;
        scale.set_factor(target_path.region, 1.0 - fraction);
        const SimRun scaled = run_kernel_sim(*kernel, registry, threads,
                                             options.size, &scale);

        const Projection projection =
            profile.project(targets, fraction, {threads});
        double analytic_before = 0.0;
        double analytic_after = 0.0;
        for (const ThreadProjection& tp : projection.at_threads) {
          if (tp.threads == threads) {
            analytic_before = tp.time_before;
            analytic_after = tp.time_after;
          }
        }

        ValidateCase vc;
        vc.kernel = name;
        vc.threads = threads;
        vc.fraction = fraction;
        vc.target = target_path.name;
        vc.measured_before = baseline.stats.parallel_ticks;
        vc.measured_after = scaled.stats.parallel_ticks;
        vc.analytic_before = analytic_before;
        vc.analytic_after = analytic_after;
        // Ratio-on-baseline: Graham's estimator is an upper bound with a
        // scheduler-dependent multiplicative bias that is nearly the same
        // for the baseline and the hypothesis at the same thread count, so
        // dividing it out cancels the bias (a delta would subtract it).
        vc.projected_time =
            analytic_before > 0.0
                ? static_cast<double>(vc.measured_before) *
                      (analytic_after / analytic_before)
                : static_cast<double>(vc.measured_before);
        vc.simulated_speedup =
            vc.measured_after > 0
                ? static_cast<double>(vc.measured_before) /
                      static_cast<double>(vc.measured_after)
                : 0.0;
        vc.projected_speedup =
            vc.projected_time > 0.0
                ? static_cast<double>(vc.measured_before) / vc.projected_time
                : 0.0;
        vc.relative_error =
            vc.measured_after > 0
                ? std::abs(vc.projected_time -
                           static_cast<double>(vc.measured_after)) /
                      static_cast<double>(vc.measured_after)
                : 1.0;
        vc.tolerance = gate.tolerance;
        vc.structure_required = gate.require_identical_structure;
        vc.within_tolerance = vc.relative_error <= gate.tolerance;
        // A duration-only hypothesis must not change program structure:
        // same constructs, same counts, same checksum (PR 3 machinery).
        vc.structure_diff =
            check::diff_projections(baseline.projection, scaled.projection);
        report.cases.push_back(std::move(vc));
      }
    }
  }
  return report;
}

void render_validate_text(const ValidateReport& report, std::ostream& os) {
  os << "What-if validation: analytical projection vs sim replay ("
     << report.cases.size() << " cases, tolerance "
     << static_cast<int>(report.tolerance * 100.0) << "%)\n";
  for (const ValidateCase& c : report.cases) {
    const bool pass = c.within_tolerance &&
                      (!c.structure_required || c.structure_diff.empty());
    char line[256];
    std::snprintf(line, sizeof line,
                  "  %-10s P=%d N=%2.0f%%  sim %.3fx  projected %.3fx  "
                  "err %5.1f%%  %s",
                  c.kernel.c_str(), c.threads, c.fraction * 100.0,
                  c.simulated_speedup, c.projected_speedup,
                  c.relative_error * 100.0, pass ? "ok" : "FAIL");
    os << line;
    if (c.tolerance != report.tolerance) {
      char gate[32];
      std::snprintf(gate, sizeof gate, "  (gate %.0f%%)",
                    c.tolerance * 100.0);
      os << gate;
    }
    os << "\n";
    for (const std::string& diff : c.structure_diff) {
      os << "      structure: " << diff << "\n";
    }
  }
  os << (report.all_within() ? "PASS" : "FAIL") << ": "
     << (report.cases.size() - report.failures()) << "/"
     << report.cases.size() << " within tolerance\n";
}

std::string render_validate_json(const ValidateReport& report) {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"schema_version\": ";
  out += std::to_string(kSchemaVersion);
  out += ",\n  \"tolerance\": ";
  append_double(&out, report.tolerance);
  out += ",\n  \"pass\": ";
  out += report.all_within() ? "true" : "false";
  out += ",\n  \"cases\": [";
  for (std::size_t i = 0; i < report.cases.size(); ++i) {
    const ValidateCase& c = report.cases[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\n      \"kernel\": ";
    append_json_string(&out, c.kernel);
    out += ",\n      \"threads\": " + std::to_string(c.threads);
    out += ",\n      \"speedup_percent\": ";
    append_double(&out, c.fraction * 100.0);
    out += ",\n      \"target\": ";
    append_json_string(&out, c.target);
    out += ",\n      \"measured_before_ns\": " +
           std::to_string(c.measured_before);
    out += ",\n      \"measured_after_ns\": " +
           std::to_string(c.measured_after);
    out += ",\n      \"analytic_before_ns\": ";
    append_double(&out, c.analytic_before);
    out += ",\n      \"analytic_after_ns\": ";
    append_double(&out, c.analytic_after);
    out += ",\n      \"projected_time_ns\": ";
    append_double(&out, c.projected_time);
    out += ",\n      \"simulated_speedup\": ";
    append_double(&out, c.simulated_speedup);
    out += ",\n      \"projected_speedup\": ";
    append_double(&out, c.projected_speedup);
    out += ",\n      \"relative_error\": ";
    append_double(&out, c.relative_error);
    out += ",\n      \"tolerance\": ";
    append_double(&out, c.tolerance);
    out += ",\n      \"structure_required\": ";
    out += c.structure_required ? "true" : "false";
    out += ",\n      \"within_tolerance\": ";
    out += c.within_tolerance ? "true" : "false";
    out += ",\n      \"structure_ok\": ";
    out += c.structure_diff.empty() ? "true" : "false";
    out += "\n    }";
  }
  out += report.cases.empty() ? "]" : "\n  ]";
  out += "\n}\n";
  return out;
}

}  // namespace taskprof::whatif
