// Renderers for what-if projections: human-readable text and stable,
// schema-versioned JSON (fixed key order, %.6g doubles — byte-identical
// across runs of the same trace, the property the whatif corpus goldens
// pin).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "whatif/whatif.hpp"

namespace taskprof::whatif {

/// Everything one `whatif` invocation reports.
struct Report {
  Ticks work = 0;
  Ticks span = 0;
  int span_length = 0;
  double logical_parallelism = 0.0;
  int measured_threads = 1;
  bool work_basis = false;  ///< scaling basis: declared work vs active
  /// Requested hypotheses (empty in ranking mode).
  std::vector<Projection> projections;
  /// Ranked per-path projections at `rank_fraction` (the "top
  /// optimization targets" table); empty when explicit targets were given.
  std::vector<Projection> top_targets;
  double rank_fraction = 0.5;

  /// Fill the summary fields from a built profile.
  void summarize(const WhatIfProfile& profile);
};

/// Human-readable report.
void render_whatif_text(const Report& report, std::ostream& os);

/// Stable JSON, schema_version 1.
[[nodiscard]] std::string render_whatif_json(const Report& report);

/// Compact ranked-targets table for the classic trace report: the top
/// `limit` paths by projected speedup.
void render_top_targets_text(const Report& report, std::size_t limit,
                             std::ostream& os);

}  // namespace taskprof::whatif
