#include "whatif/render.hpp"

#include <cmath>
#include <cstdio>

#include "common/format.hpp"

namespace taskprof::whatif {

namespace {

constexpr int kSchemaVersion = 1;

void append_json_string(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void append_double(std::string* out, double value) {
  if (!std::isfinite(value)) {
    *out += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  *out += buf;
}

std::string fixed(double value, int places) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", places, value);
  return buf;
}

void append_projection_json(std::string* out, const Projection& p,
                            const char* indent) {
  const std::string in(indent);
  *out += in + "{\n";
  *out += in + "  \"target\": ";
  append_json_string(out, p.target);
  *out += ",\n" + in + "  \"speedup_percent\": ";
  append_double(out, p.fraction * 100.0);
  *out += ",\n" + in + "  \"scalable_ns\": " + std::to_string(p.scalable);
  *out += ",\n" + in + "  \"scalable_on_span_ns\": " +
          std::to_string(p.scalable_on_span);
  *out += ",\n" + in + "  \"share\": ";
  append_double(out, p.share);
  *out += ",\n" + in + "  \"amdahl_bound\": ";
  append_double(out, p.bound);
  *out += ",\n" + in + "  \"work_after_ns\": " + std::to_string(p.work_after);
  *out += ",\n" + in + "  \"span_after_ns\": " + std::to_string(p.span_after);
  *out += ",\n" + in + "  \"span_length_after\": " +
          std::to_string(p.span_length_after);
  *out += ",\n" + in + "  \"parallelism_after\": ";
  append_double(out, p.parallelism_after);
  *out += ",\n" + in + "  \"at_threads\": [";
  for (std::size_t i = 0; i < p.at_threads.size(); ++i) {
    const ThreadProjection& tp = p.at_threads[i];
    *out += i == 0 ? "\n" : ",\n";
    *out += in + "    {\"threads\": " + std::to_string(tp.threads);
    *out += ", \"time_before_ns\": ";
    append_double(out, tp.time_before);
    *out += ", \"time_after_ns\": ";
    append_double(out, tp.time_after);
    *out += ", \"speedup\": ";
    append_double(out, tp.speedup);
    *out += "}";
  }
  *out += p.at_threads.empty() ? "]" : "\n" + in + "  ]";
  *out += "\n" + in + "}";
}

void render_projection_text(const Projection& p, std::ostream& os) {
  os << "  " << p.target << " " << fixed(p.fraction * 100.0, 0)
     << "% faster:\n";
  os << "    scalable " << format_ticks(p.scalable) << " (share "
     << fixed(p.share * 100.0, 1) << "%, Amdahl ceiling ";
  if (p.bound > 0.0) {
    os << fixed(p.bound, 2) << "x)";
  } else {
    os << "unbounded)";
  }
  os << "\n    new span " << format_ticks(p.span_after) << " ("
     << p.span_length_after << " tasks), new logical parallelism "
     << fixed(p.parallelism_after, 2) << "x\n";
  for (const ThreadProjection& tp : p.at_threads) {
    os << "    at " << tp.threads << " thread"
       << (tp.threads == 1 ? " " : "s") << ": "
       << format_ticks(static_cast<Ticks>(tp.time_before)) << " -> "
       << format_ticks(static_cast<Ticks>(tp.time_after)) << "  ("
       << fixed(tp.speedup, 3) << "x)\n";
  }
}

}  // namespace

void Report::summarize(const WhatIfProfile& profile) {
  work = profile.work();
  span = profile.span();
  span_length = profile.span_length();
  logical_parallelism = profile.logical_parallelism();
  measured_threads = profile.measured_threads();
  work_basis = profile.work_basis();
}

void render_whatif_text(const Report& report, std::ostream& os) {
  os << "What-if projection (" << report.measured_threads
     << "-thread trace, scaling "
     << (report.work_basis ? "declared work" : "active time") << ")\n";
  os << "  work " << format_ticks(report.work) << ", span "
     << format_ticks(report.span) << " (" << report.span_length
     << " tasks) -> logical parallelism "
     << fixed(report.logical_parallelism, 2) << "x\n";
  for (const Projection& p : report.projections) {
    render_projection_text(p, os);
  }
  if (!report.top_targets.empty()) {
    os << "  top optimization targets (each "
       << fixed(report.rank_fraction * 100.0, 0) << "% faster):\n";
    for (const Projection& p : report.top_targets) {
      double speedup = 1.0;
      for (const ThreadProjection& tp : p.at_threads) {
        if (tp.threads == report.measured_threads) speedup = tp.speedup;
      }
      os << "    " << fixed(speedup, 3) << "x  " << p.target << "  (share "
         << fixed(p.share * 100.0, 1) << "%, ceiling ";
      if (p.bound > 0.0) {
        os << fixed(p.bound, 2) << "x)";
      } else {
        os << "unbounded)";
      }
      os << "\n";
    }
  }
}

std::string render_whatif_json(const Report& report) {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"schema_version\": ";
  out += std::to_string(kSchemaVersion);
  out += ",\n  \"work_ns\": " + std::to_string(report.work);
  out += ",\n  \"span_ns\": " + std::to_string(report.span);
  out += ",\n  \"span_length\": " + std::to_string(report.span_length);
  out += ",\n  \"logical_parallelism\": ";
  append_double(&out, report.logical_parallelism);
  out += ",\n  \"measured_threads\": " +
         std::to_string(report.measured_threads);
  out += ",\n  \"scaling_basis\": ";
  append_json_string(&out,
                     report.work_basis ? "declared_work" : "active_time");
  out += ",\n  \"projections\": [";
  for (std::size_t i = 0; i < report.projections.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    append_projection_json(&out, report.projections[i], "    ");
  }
  out += report.projections.empty() ? "]" : "\n  ]";
  out += ",\n  \"top_targets\": [";
  for (std::size_t i = 0; i < report.top_targets.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    append_projection_json(&out, report.top_targets[i], "    ");
  }
  out += report.top_targets.empty() ? "]" : "\n  ]";
  out += "\n}\n";
  return out;
}

void render_top_targets_text(const Report& report, std::size_t limit,
                             std::ostream& os) {
  if (report.top_targets.empty()) return;
  os << "Top optimization targets (projected speedup if "
     << fixed(report.rank_fraction * 100.0, 0) << "% faster, at "
     << report.measured_threads << " threads):\n";
  const std::size_t n = std::min(limit, report.top_targets.size());
  for (std::size_t i = 0; i < n; ++i) {
    const Projection& p = report.top_targets[i];
    double speedup = 1.0;
    for (const ThreadProjection& tp : p.at_threads) {
      if (tp.threads == report.measured_threads) speedup = tp.speedup;
    }
    os << "  " << (i + 1) << ". " << p.target << "  " << fixed(speedup, 3)
       << "x  (span share " << fixed(p.share * 100.0, 1) << "%)\n";
  }
}

}  // namespace taskprof::whatif
