// Causal what-if projection: "how much faster would the program run if
// call path X were N% faster?"
//
// TASKPROF (Yoga & Nagarakatte, PAPERS.md) popularized answering this
// from work/span accounting instead of guesswork: per call path, subtract
// the hypothesized saving from total work (T1) and re-evaluate the
// sync-aware series-parallel span (span.hpp — taskwait phasing and
// creation serialization included) with scaled per-segment durations to
// get the new span (T∞'), then estimate wall-clock at P threads with the
// Graham/Brent two-term bound
//
//     T_est(P) = (T1 - T∞) / P + T∞.
//
// T1 and T∞ are overhead-augmented: measured task-management time (the
// trace analysis' short scheduling-point gaps) is added to T1 whole and
// enters T∞ as a per-task dispatch cost *inside* the max-plus span
// evaluation (span.hpp), so the critical chain itself accounts for it —
// a hypothesis shrinks task bodies, never the dispatch cost around them,
// and that floor binds as bodies shrink.  The projected speedup at P is
// T_est(P) / T_est'(P).  Four
// invariants follow (tests/test_whatif_property.cpp fuzzes them):
//
//   1. speedup ∈ [1, 1/(1 - share·N)] where share = max(scalable
//      work share of T1, scalable span share of T∞) — the Amdahl-style
//      ceiling via the mediant inequality;
//   2. speedup is monotone non-decreasing in N;
//   3. on a serial chain (T1 = T∞) the projection is exact:
//      speedup = 1 / (1 - N·share);
//   4. T_est'(P) ≥ max(T1'/P, T∞') at every P — Brent's lemma holds by
//      construction.
//
// Scaling basis: traces recorded on the sim engine carry kWork events
// (the declared ctx.work() ticks), and only that portion of a task's
// active time is scaled — exactly what the sim-replay validation
// (validate.hpp) scales via rt::DurationScale.  Real-engine traces have
// no work events; there the full active time is scaled, which also
// optimizes away the task-management time inside the body (documented
// divergence, DESIGN.md §14).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "diagnose/workspan.hpp"
#include "profile/region.hpp"
#include "trace/analysis.hpp"
#include "whatif/span.hpp"

namespace taskprof::whatif {

// -- Typed errors -----------------------------------------------------------

enum class ErrorCode : std::uint8_t {
  kNone = 0,
  kUnknownPath,   ///< target names no profiled call path
  kBadFraction,   ///< N outside (0, 100]
  kBadSpec,       ///< malformed "path=N" argument
  kNoTrace,       ///< input provides no trace to profile
  kEmptyProfile,  ///< trace contains no completed tasks
};

[[nodiscard]] const char* error_code_name(ErrorCode code) noexcept;

struct Error {
  ErrorCode code = ErrorCode::kNone;
  std::string message;

  [[nodiscard]] bool ok() const noexcept { return code == ErrorCode::kNone; }
};

// -- Profile ----------------------------------------------------------------

/// One profiled call path: a task construct plus the parameter value its
/// instances carried (kNoParameter when untagged).
struct CallPathStats {
  RegionHandle region = kInvalidRegion;
  std::string name;
  std::int64_t parameter = kNoParameter;
  std::uint64_t instances = 0;
  Ticks active = 0;    ///< Σ executed-fragment time
  Ticks work = 0;      ///< Σ declared ctx.work() ticks (0 without kWork)
  Ticks scalable = 0;  ///< what a hypothesis scales: work or active
  Ticks on_span = 0;   ///< scalable time on the measured critical chain

  /// "name" or "name[parameter]".
  [[nodiscard]] std::string label() const;
};

/// A parsed `--whatif PATH=N` argument.
struct TargetSpec {
  std::string path;
  double fraction = 0.0;  ///< N/100 ∈ (0, 1]
};

/// Parse "path=N" (N percent in (0, 100], decimals allowed).
[[nodiscard]] Error parse_target_spec(const std::string& text,
                                      TargetSpec* out);

/// Projection of one hypothesis at one thread count.
struct ThreadProjection {
  int threads = 0;
  double time_before = 0.0;  ///< T_est(P), ns
  double time_after = 0.0;   ///< T_est'(P), ns
  double speedup = 1.0;      ///< time_before / time_after
};

/// Full projection of one hypothesis ("path N% faster").
struct Projection {
  std::string target;       ///< resolved call-path label
  double fraction = 0.0;    ///< N/100
  Ticks scalable = 0;       ///< Σ scalable time over the target's tasks
  Ticks scalable_on_span = 0;
  double share = 0.0;       ///< max(scalable/T1, scalable_on_span/T∞)
  double bound = 0.0;       ///< Amdahl ceiling 1/(1 - share·fraction)
  Ticks work_after = 0;     ///< T1'
  Ticks span_after = 0;     ///< T∞' (series-parallel re-evaluation)
  int span_length_after = 0;
  double parallelism_after = 0.0;  ///< T1'/T∞'
  /// One entry per requested thread count, ascending.
  std::vector<ThreadProjection> at_threads;
};

/// Per-call-path work/span profile over a recorded trace, ready for
/// repeated what-if queries.  Holds pointers into `analysis`, which must
/// outlive the profile.
class WhatIfProfile {
 public:
  /// Fails with kEmptyProfile when the trace has no completed tasks.
  /// `analysis` must be derived from `trace` and outlive the profile.
  static Error build(const trace::Trace& trace,
                     const trace::TraceAnalysis& analysis,
                     const RegionRegistry& registry, WhatIfProfile* out);

  /// T1: executed task time plus implicit-task time (creation
  /// serialization and inline work).
  [[nodiscard]] Ticks work() const noexcept { return work_; }
  /// T∞ including the per-task dispatch overhead of the chain's tasks.
  [[nodiscard]] Ticks span() const noexcept { return span_; }
  [[nodiscard]] int span_length() const noexcept { return span_length_; }
  [[nodiscard]] double logical_parallelism() const noexcept {
    return span_ == 0 ? 0.0
                      : static_cast<double>(work_) / static_cast<double>(span_);
  }
  /// Thread count of the recorded run.
  [[nodiscard]] int measured_threads() const noexcept {
    return measured_threads_;
  }
  /// True when the trace carried kWork events (sim engine) and scaling
  /// uses declared work; false = full active time (real engine).
  [[nodiscard]] bool work_basis() const noexcept { return work_basis_; }
  /// Measured task-management time (short scheduling-point gaps:
  /// dequeue/switch/completion).  A hypothesis does not shrink it; the
  /// estimator adds it to T1 whole, and span() already carries it as a
  /// per-task dispatch cost on the chain — the floor that binds once
  /// bodies shrink.
  [[nodiscard]] Ticks overhead() const noexcept { return overhead_; }
  /// Call paths, heaviest scalable time first.
  [[nodiscard]] const std::vector<CallPathStats>& paths() const noexcept {
    return paths_;
  }

  /// Resolve a target path ("name" or "name[param]"; a bare name matches
  /// every parameter of that construct) to indices into paths().
  Error resolve(const std::string& path, std::vector<std::size_t>* out) const;

  /// Project the hypothesis "these paths run at (1-fraction) of their
  /// scalable time" at each of `thread_counts` (deduplicated, ascending;
  /// the measured count is always included).
  [[nodiscard]] Projection project(const std::vector<std::size_t>& targets,
                                   double fraction,
                                   const std::vector<int>& thread_counts) const;

  /// Rank every call path by projected speedup at the measured thread
  /// count under a uniform `fraction` — the "top optimization targets"
  /// table.  Ties break toward the larger scalable time, then the label.
  [[nodiscard]] std::vector<Projection> rank_targets(
      double fraction, const std::vector<int>& thread_counts) const;

 private:
  const trace::TraceAnalysis* analysis_ = nullptr;
  SyncForest sync_;
  std::vector<CallPathStats> paths_;
  Ticks work_ = 0;
  Ticks span_ = 0;
  int span_length_ = 0;
  int measured_threads_ = 1;
  bool work_basis_ = false;
  Ticks overhead_ = 0;
  double overhead_per_task_ = 0.0;

  [[nodiscard]] Ticks scalable_of(const trace::TaskLifetime& life) const;
};

/// Graham estimator T_est(P) = (work - span)/P + span, in ns.
[[nodiscard]] double estimate_time(Ticks work, Ticks span, int threads);

}  // namespace taskprof::whatif
