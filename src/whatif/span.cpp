#include "whatif/span.hpp"

#include <algorithm>

namespace taskprof::whatif {

namespace {

constexpr std::uint32_t kNoNode = 0xffffffffu;

/// Per-thread replay cursor.
struct ThreadCursor {
  std::uint32_t current = kNoNode;    ///< node accruing executed time
  std::uint32_t implicit = kNoNode;   ///< this thread's implicit node
  Ticks fragment_start = 0;
  int sync_depth = 0;
  bool in_implicit = false;
};

}  // namespace

SyncForest SyncForest::build(const trace::Trace& trace) {
  SyncForest out;
  std::vector<ThreadCursor> cursors(trace.thread_count());
  std::map<TaskInstanceId, std::uint32_t> node_of;

  auto ensure_node = [&](TaskInstanceId id, RegionHandle region,
                         std::int64_t parameter) -> std::uint32_t {
    auto [it, inserted] = node_of.emplace(
        id, static_cast<std::uint32_t>(out.nodes_.size()));
    if (inserted) {
      Node node;
      node.id = id;
      node.key = {region, parameter};
      out.nodes_.push_back(std::move(node));
    } else if (region != kInvalidRegion &&
               out.nodes_[it->second].key.first == kInvalidRegion) {
      out.nodes_[it->second].key = {region, parameter};
    }
    return it->second;
  };

  // Move the open-segment accumulator of `node` into its item list.
  auto flush = [&](std::uint32_t index) {
    Node& node = out.nodes_[index];
    if (node.pending_active == 0 && node.pending_work == 0) return;
    Item item;
    item.kind = Item::Kind::kSegment;
    item.segment = {node.pending_active, node.pending_work};
    node.items.push_back(item);
    node.pending_active = 0;
    node.pending_work = 0;
  };

  auto accrue = [&](ThreadCursor& cursor, Ticks now) {
    if (cursor.current == kNoNode) return;
    Node& node = out.nodes_[cursor.current];
    const Ticks duration = now - cursor.fragment_start;
    node.pending_active += duration;
    if (node.implicit) out.implicit_active_ += duration;
    cursor.fragment_start = now;
  };

  // After a task ends or switches away, the thread is back at its
  // implicit task — but only accrues to it outside scheduling points
  // (inside a barrier/taskwait the gap is waiting, not execution).
  auto rest_node = [&](const ThreadCursor& cursor) -> std::uint32_t {
    return cursor.in_implicit && cursor.sync_depth == 0 ? cursor.implicit
                                                        : kNoNode;
  };

  for (const trace::TraceEvent& event : trace.merged()) {
    ThreadCursor& cursor = cursors[event.thread];
    const Ticks now = event.time;
    switch (event.kind) {
      case trace::EventKind::kImplicitBegin:
        if (cursor.implicit == kNoNode) {
          cursor.implicit =
              static_cast<std::uint32_t>(out.nodes_.size());
          Node node;
          node.implicit = true;
          out.nodes_.push_back(std::move(node));
          out.roots_.push_back(cursor.implicit);
        }
        cursor.in_implicit = true;
        cursor.sync_depth = 0;
        cursor.current = cursor.implicit;
        cursor.fragment_start = now;
        break;
      case trace::EventKind::kImplicitEnd:
        accrue(cursor, now);
        cursor.current = kNoNode;
        cursor.in_implicit = false;
        cursor.sync_depth = 0;
        break;
      case trace::EventKind::kCreateEnd: {
        const std::uint32_t child =
            ensure_node(event.task, event.region, event.parameter);
        const std::uint32_t creator =
            cursor.current != kNoNode ? cursor.current : rest_node(cursor);
        if (creator != kNoNode) {
          if (creator == cursor.current) accrue(cursor, now);
          flush(creator);
          Item item;
          item.kind = Item::Kind::kCreate;
          item.child = child;
          out.nodes_[creator].items.push_back(item);
          out.nodes_[child].has_parent = true;
        }
        break;
      }
      case trace::EventKind::kTaskBegin:
        accrue(cursor, now);
        cursor.current =
            ensure_node(event.task, event.region, event.parameter);
        cursor.fragment_start = now;
        break;
      case trace::EventKind::kTaskEnd:
        accrue(cursor, now);
        if (cursor.current != kNoNode) flush(cursor.current);
        cursor.current = rest_node(cursor);
        cursor.fragment_start = now;
        break;
      case trace::EventKind::kTaskSwitch:
        accrue(cursor, now);
        cursor.current = event.task == kImplicitTaskId
                             ? rest_node(cursor)
                             : ensure_node(event.task, event.region,
                                           event.parameter);
        cursor.fragment_start = now;
        break;
      case trace::EventKind::kWork:
        if (cursor.current != kNoNode && event.parameter != kNoParameter &&
            !out.nodes_[cursor.current].implicit) {
          out.nodes_[cursor.current].pending_work += event.parameter;
        }
        break;
      case trace::EventKind::kTaskwaitBegin:
      case trace::EventKind::kBarrierBegin:
        // An implicit task stops executing at the scheduling point; an
        // explicit one keeps accruing until it is switched out (the
        // pre-switch sliver is genuine sync-entry cost).
        if (cursor.current != kNoNode &&
            out.nodes_[cursor.current].implicit) {
          accrue(cursor, now);
          cursor.current = kNoNode;
        }
        cursor.sync_depth += 1;
        break;
      case trace::EventKind::kTaskwaitEnd:
      case trace::EventKind::kBarrierEnd: {
        if (cursor.sync_depth > 0) cursor.sync_depth -= 1;
        std::uint32_t subject = cursor.current;
        if (subject != kNoNode) {
          accrue(cursor, now);
        } else if (cursor.in_implicit) {
          subject = cursor.implicit;
        }
        if (subject != kNoNode) {
          flush(subject);
          Item item;
          item.kind = Item::Kind::kJoin;
          out.nodes_[subject].items.push_back(item);
        }
        if (cursor.current == kNoNode) {
          cursor.current = rest_node(cursor);
          cursor.fragment_start = now;
        }
        break;
      }
      case trace::EventKind::kParallelBegin:
      case trace::EventKind::kParallelEnd:
      case trace::EventKind::kCreateBegin:
      case trace::EventKind::kMigrate:
      case trace::EventKind::kRegionEnter:
      case trace::EventKind::kRegionExit:
      case trace::EventKind::kSchedulerNote:
        break;
    }
  }

  for (std::uint32_t index = 0; index < out.nodes_.size(); ++index) {
    flush(index);
    // Tasks with no recorded creator (foreign traces, dropped events)
    // still bound the program end; treat them as roots at offset 0,
    // matching the creation-tree convention.
    if (!out.nodes_[index].has_parent && !out.nodes_[index].implicit) {
      out.roots_.push_back(index);
    }
  }
  return out;
}

SyncForest::Evaluation SyncForest::evaluate(const CostFn& cost,
                                            double task_overhead) const {
  // The chain through a node can enter a child at its creation point and
  // resume the node after the join, so chain attribution is a running
  // state snapshotted at every create.
  struct ChainState {
    int tasks = 0;
    std::map<PathKey, double> scalable;
  };
  struct NodeResult {
    double completion = 0.0;  ///< subtree span from node start
    ChainState chain;
    bool done = false;
  };
  std::vector<NodeResult> results(nodes_.size());

  auto eval_node = [&](std::uint32_t index) {
    const Node& node = nodes_[index];
    struct Pending {
      double offset = 0.0;
      std::uint32_t child = 0;
      ChainState snapshot;
    };
    double clock = 0.0;
    ChainState chain;
    if (!node.implicit) {
      chain.tasks = 1;
      clock += task_overhead;
    }
    std::vector<Pending> pending;

    auto fold = [&]() {
      // max(clock, offset_i + completion_i); strict > keeps the node's
      // own continuation (then the earliest child) on ties.
      std::size_t best = pending.size();
      double best_time = clock;
      for (std::size_t i = 0; i < pending.size(); ++i) {
        const double candidate =
            pending[i].offset + results[pending[i].child].completion;
        if (candidate > best_time) {
          best_time = candidate;
          best = i;
        }
      }
      if (best != pending.size()) {
        const NodeResult& sub = results[pending[best].child];
        ChainState next = std::move(pending[best].snapshot);
        next.tasks += sub.chain.tasks;
        for (const auto& [key, ticks] : sub.chain.scalable) {
          next.scalable[key] += ticks;
        }
        chain = std::move(next);
        clock = best_time;
      }
      pending.clear();
    };

    for (const Item& item : node.items) {
      switch (item.kind) {
        case Item::Kind::kSegment:
          if (node.implicit) {
            clock += static_cast<double>(item.segment.active);
          } else {
            const SegmentCost sc = cost(node.key, item.segment);
            clock += sc.duration;
            chain.scalable[node.key] += sc.basis;
          }
          break;
        case Item::Kind::kCreate:
          pending.push_back(Pending{clock, item.child, chain});
          break;
        case Item::Kind::kJoin:
          fold();
          break;
      }
    }
    fold();  // children never waited on gate the program end
    results[index].completion = clock;
    results[index].chain = std::move(chain);
    results[index].done = true;
  };

  // Post-order over the forest (each node has at most one creator).
  std::vector<std::pair<std::uint32_t, std::size_t>> stack;
  for (const std::uint32_t root : roots_) {
    if (results[root].done) continue;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      auto& [index, item_cursor] = stack.back();
      const Node& node = nodes_[index];
      bool descended = false;
      while (item_cursor < node.items.size()) {
        const Item& item = node.items[item_cursor++];
        if (item.kind == Item::Kind::kCreate &&
            !results[item.child].done) {
          stack.emplace_back(item.child, 0);
          descended = true;
          break;
        }
      }
      if (descended) continue;
      eval_node(index);
      stack.pop_back();
    }
  }

  Evaluation out;
  std::uint32_t best_root = kNoNode;
  for (const std::uint32_t root : roots_) {
    if (best_root == kNoNode ||
        results[root].completion > out.span) {
      best_root = root;
      out.span = results[root].completion;
    }
  }
  if (best_root != kNoNode) {
    out.tasks_on_chain = results[best_root].chain.tasks;
    out.scalable_on_chain = std::move(results[best_root].chain.scalable);
  }
  return out;
}

}  // namespace taskprof::whatif
