#include "whatif/whatif.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <set>

namespace taskprof::whatif {

const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kNone: return "none";
    case ErrorCode::kUnknownPath: return "unknown_path";
    case ErrorCode::kBadFraction: return "bad_fraction";
    case ErrorCode::kBadSpec: return "bad_spec";
    case ErrorCode::kNoTrace: return "no_trace";
    case ErrorCode::kEmptyProfile: return "empty_profile";
  }
  return "?";
}

std::string CallPathStats::label() const {
  if (parameter == kNoParameter) return name;
  return name + "[" + std::to_string(parameter) + "]";
}

Error parse_target_spec(const std::string& text, TargetSpec* out) {
  const std::size_t eq = text.rfind('=');
  if (eq == std::string::npos || eq == 0) {
    return {ErrorCode::kBadSpec,
            "expected PATH=N (N percent in (0,100]), got '" + text + "'"};
  }
  const std::string number = text.substr(eq + 1);
  char* end = nullptr;
  const double percent = std::strtod(number.c_str(), &end);
  if (end == number.c_str() || *end != '\0') {
    return {ErrorCode::kBadSpec,
            "'" + number + "' is not a number in '" + text + "'"};
  }
  if (!(percent > 0.0) || percent > 100.0) {
    return {ErrorCode::kBadFraction,
            "speedup percent must be in (0,100], got " + number +
                " in '" + text + "'"};
  }
  out->path = text.substr(0, eq);
  out->fraction = percent / 100.0;
  return {};
}

double estimate_time(Ticks work, Ticks span, int threads) {
  if (threads < 1) threads = 1;
  return static_cast<double>(work - span) / static_cast<double>(threads) +
         static_cast<double>(span);
}

namespace {

double estimate_time_eff(double work, double span, int threads) {
  if (threads < 1) threads = 1;
  return (work - span) / static_cast<double>(threads) + span;
}

}  // namespace

Ticks WhatIfProfile::scalable_of(const trace::TaskLifetime& life) const {
  return work_basis_ ? life.work : life.active;
}

Error WhatIfProfile::build(const trace::Trace& trace,
                           const trace::TraceAnalysis& analysis,
                           const RegionRegistry& registry,
                           WhatIfProfile* out) {
  if (analysis.tasks.empty()) {
    return {ErrorCode::kEmptyProfile,
            "trace contains no completed explicit tasks to project over"};
  }
  out->analysis_ = &analysis;
  out->sync_ = SyncForest::build(trace);
  out->measured_threads_ =
      std::max<int>(1, static_cast<int>(analysis.threads.size()));
  out->work_basis_ = std::any_of(
      analysis.tasks.begin(), analysis.tasks.end(),
      [](const trace::TaskLifetime& life) { return life.work > 0; });
  out->overhead_ = analysis.sync_management;
  out->overhead_per_task_ =
      static_cast<double>(analysis.sync_management) /
      static_cast<double>(analysis.tasks.size());

  // Aggregate per (region, parameter), deterministically ordered.
  std::map<std::pair<RegionHandle, std::int64_t>, CallPathStats> by_path;
  out->work_ = out->sync_.implicit_active();
  for (const trace::TaskLifetime& life : analysis.tasks) {
    out->work_ += life.active;
    CallPathStats& stats = by_path[{life.region, life.parameter}];
    stats.region = life.region;
    stats.parameter = life.parameter;
    stats.instances += 1;
    stats.active += life.active;
    stats.work += life.work;
    stats.scalable += out->scalable_of(life);
  }

  const SyncForest::Evaluation base = out->sync_.evaluate(
      [&](const SyncForest::PathKey&, const SyncForest::Segment& segment) {
        return SyncForest::SegmentCost{
            static_cast<double>(segment.active),
            static_cast<double>(out->work_basis_ ? segment.work
                                                 : segment.active)};
      },
      out->overhead_per_task_);
  out->span_ = static_cast<Ticks>(std::llround(base.span));
  out->span_length_ = base.tasks_on_chain;
  for (const auto& [key, ticks] : base.scalable_on_chain) {
    if (auto it = by_path.find(key); it != by_path.end()) {
      it->second.on_span += static_cast<Ticks>(std::llround(ticks));
    }
  }

  out->paths_.clear();
  out->paths_.reserve(by_path.size());
  for (auto& [key, stats] : by_path) {
    stats.name = diag::construct_display_name(stats.region, registry);
    out->paths_.push_back(std::move(stats));
  }
  std::sort(out->paths_.begin(), out->paths_.end(),
            [](const CallPathStats& a, const CallPathStats& b) {
              if (a.scalable != b.scalable) return a.scalable > b.scalable;
              if (a.active != b.active) return a.active > b.active;
              return a.label() < b.label();
            });
  return {};
}

Error WhatIfProfile::resolve(const std::string& path,
                             std::vector<std::size_t>* out) const {
  // "name" matches every parameter of the construct; "name[param]" one.
  std::string name = path;
  bool has_parameter = false;
  std::int64_t parameter = kNoParameter;
  if (!path.empty() && path.back() == ']') {
    const std::size_t open = path.rfind('[');
    if (open != std::string::npos) {
      const std::string number = path.substr(open + 1,
                                             path.size() - open - 2);
      char* end = nullptr;
      const long long value = std::strtoll(number.c_str(), &end, 10);
      if (end != number.c_str() && *end == '\0') {
        name = path.substr(0, open);
        has_parameter = true;
        parameter = value;
      }
    }
  }

  out->clear();
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    if (paths_[i].name != name) continue;
    if (has_parameter && paths_[i].parameter != parameter) continue;
    out->push_back(i);
  }
  if (!out->empty()) return {};

  std::string known;
  std::set<std::string> labels;
  for (const CallPathStats& stats : paths_) labels.insert(stats.label());
  for (const std::string& label : labels) {
    if (!known.empty()) known += ", ";
    known += label;
  }
  return {ErrorCode::kUnknownPath,
          "unknown call path '" + path + "'; profiled paths: " + known};
}

Projection WhatIfProfile::project(
    const std::vector<std::size_t>& targets, double fraction,
    const std::vector<int>& thread_counts) const {
  Projection out;
  out.fraction = fraction;

  // Every task belongs to exactly one (region, parameter) path, so
  // target membership is exact key lookup.
  std::set<std::pair<RegionHandle, std::int64_t>> target_keys;
  for (const std::size_t index : targets) {
    const CallPathStats& stats = paths_[index];
    if (!out.target.empty()) out.target += "+";
    out.target += stats.label();
    out.scalable += stats.scalable;
    out.scalable_on_span += stats.on_span;
    target_keys.emplace(stats.region, stats.parameter);
  }

  const auto is_target = [&](const trace::TaskLifetime& life) {
    return target_keys.count({life.region, life.parameter}) != 0;
  };

  // T1' subtracts the saving from total work; T∞' is re-evaluated over
  // the series-parallel structure with scaled segment durations.
  double saved_work = 0.0;
  for (const trace::TaskLifetime& life : analysis_->tasks) {
    if (is_target(life)) {
      saved_work += fraction * static_cast<double>(scalable_of(life));
    }
  }
  out.work_after = work_ - static_cast<Ticks>(saved_work + 0.5);

  const SyncForest::Evaluation scaled = sync_.evaluate(
      [&](const SyncForest::PathKey& key,
          const SyncForest::Segment& segment) {
        const double basis = static_cast<double>(
            work_basis_ ? segment.work : segment.active);
        double duration = static_cast<double>(segment.active);
        if (target_keys.count(key) != 0) duration -= fraction * basis;
        return SyncForest::SegmentCost{duration, basis};
      },
      overhead_per_task_);
  out.span_after = static_cast<Ticks>(std::llround(scaled.span));
  out.span_length_after = scaled.tasks_on_chain;
  out.parallelism_after =
      out.span_after == 0
          ? 0.0
          : static_cast<double>(out.work_after) /
                static_cast<double>(out.span_after);

  // Overhead-augmented T1: management is never scaled by a hypothesis,
  // so it enters T1 whole.  The spans already carry it per chain task
  // (evaluate()'s task_overhead).
  const double work_before =
      static_cast<double>(work_) + static_cast<double>(overhead_);
  const double span_before = static_cast<double>(span_);
  const double work_after =
      static_cast<double>(out.work_after) + static_cast<double>(overhead_);
  const double span_after = static_cast<double>(out.span_after);

  const double work_share =
      work_before <= 0.0
          ? 0.0
          : static_cast<double>(out.scalable) / work_before;
  const double span_share =
      span_before <= 0.0
          ? 0.0
          : static_cast<double>(out.scalable_on_span) / span_before;
  out.share = std::max(work_share, span_share);
  const double denom = 1.0 - out.share * fraction;
  out.bound = denom > 1e-12 ? 1.0 / denom : 0.0;  // 0 = unbounded

  std::vector<int> counts = thread_counts;
  counts.push_back(measured_threads_);
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  for (const int threads : counts) {
    if (threads < 1) continue;
    ThreadProjection tp;
    tp.threads = threads;
    tp.time_before = estimate_time_eff(work_before, span_before, threads);
    tp.time_after = estimate_time_eff(work_after, span_after, threads);
    tp.speedup = tp.time_after > 0.0 ? tp.time_before / tp.time_after : 0.0;
    out.at_threads.push_back(tp);
  }
  return out;
}

std::vector<Projection> WhatIfProfile::rank_targets(
    double fraction, const std::vector<int>& thread_counts) const {
  std::vector<Projection> out;
  out.reserve(paths_.size());
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    out.push_back(project({i}, fraction, thread_counts));
  }
  const auto speedup_at_measured = [this](const Projection& p) {
    for (const ThreadProjection& tp : p.at_threads) {
      if (tp.threads == measured_threads_) return tp.speedup;
    }
    return p.at_threads.empty() ? 1.0 : p.at_threads.back().speedup;
  };
  std::sort(out.begin(), out.end(),
            [&](const Projection& a, const Projection& b) {
              const double sa = speedup_at_measured(a);
              const double sb = speedup_at_measured(b);
              if (sa != sb) return sa > sb;
              if (a.scalable != b.scalable) return a.scalable > b.scalable;
              return a.target < b.target;
            });
  return out;
}

}  // namespace taskprof::whatif
