// Empirical validation of the what-if projection math: replay the same
// program on the deterministic sim engine with the hypothesis *actually
// applied* (rt::DurationScale shrinks the declared work of the target
// construct) and compare the simulated wall-clock against the analytical
// projection.
//
// The Graham estimator is an upper bound on greedy schedules; against a
// concrete scheduler it carries a multiplicative bias (how far the real
// schedule lands from the bound) that is nearly identical for the
// baseline and the hypothesis at the same thread count.  Comparing raw
// estimates against raw makespans would conflate that bias with model
// error, so the gate uses the ratio-on-baseline form: the projected
// wall-clock is
//
//     projected = measured_baseline * T_est'(P) / T_est(P)
//
// i.e. the analytical *speedup* applied to the measured run, and the
// gate checks |projected - measured_scaled| / measured_scaled <=
// tolerance.
// Structure equality between baseline and scaled runs is asserted with
// the order-insensitive projection diff from src/check (a duration-only
// hypothesis must not change what gets created or executed).
#pragma once

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "bots/kernel.hpp"
#include "whatif/whatif.hpp"

namespace taskprof::whatif {

/// Acceptance gate for one kernel.
struct KernelGate {
  double tolerance = 0.15;
  /// When false, baseline-vs-scaled structure differences are recorded
  /// but do not fail the gate (schedule-dependent kernels: floorplan's
  /// branch-and-bound pruning legitimately changes task count when the
  /// hypothesis reorders execution).
  bool require_identical_structure = true;
};

/// Documented per-kernel gates.  At N=90% some kernels' scaled bodies
/// sink below the sim's per-task management costs, and idle-worker poll
/// contention throttles the spawning thread — scheduler-feedback effects
/// outside any work/span model (DESIGN.md §14 discusses each).  Those
/// kernels get a looser, still-failing gate; everything else holds 15%.
[[nodiscard]] std::map<std::string, KernelGate> default_kernel_gates();

struct ValidateOptions {
  /// Kernels to validate (empty = all nine BOTS kernels).
  std::vector<std::string> kernels;
  std::vector<int> threads = {2, 4, 8};
  /// Hypothetical speedup fractions N (0.25 = "25% faster").
  std::vector<double> fractions = {0.25, 0.50, 0.90};
  bots::SizeClass size = bots::SizeClass::kTest;
  /// Default gate: |projected - simulated| / simulated within this.
  double tolerance = 0.15;
  /// Per-kernel gate overrides (see default_kernel_gates()); kernels not
  /// listed use `tolerance` and require identical structure.
  std::map<std::string, KernelGate> gates = default_kernel_gates();
};

/// One kernel x threads x fraction comparison.
struct ValidateCase {
  std::string kernel;
  int threads = 0;
  double fraction = 0.0;
  std::string target;        ///< scaled call path (heaviest scalable time)
  Ticks measured_before = 0; ///< sim makespan, baseline run
  Ticks measured_after = 0;  ///< sim makespan, DurationScale applied
  double analytic_before = 0.0;  ///< T_est(P) over the baseline trace
  double analytic_after = 0.0;   ///< T_est'(P)
  double projected_time = 0.0;   ///< measured_before scaled by T_est'/T_est
  double simulated_speedup = 1.0;
  double projected_speedup = 1.0;
  double relative_error = 0.0;
  double tolerance = 0.15;           ///< gate applied to this case
  bool structure_required = true;    ///< gate on structure_diff
  bool within_tolerance = false;
  /// Baseline-vs-scaled structure disagreements.
  std::vector<std::string> structure_diff;
};

struct ValidateReport {
  double tolerance = 0.15;
  std::vector<ValidateCase> cases;

  [[nodiscard]] bool all_within() const noexcept;
  [[nodiscard]] std::size_t failures() const noexcept;
};

/// Run the validation matrix.  Deterministic: identical options produce a
/// byte-identical JSON report (the whatif corpus goldens rely on this).
/// Unknown kernel names are reported via `error` and skipped.
[[nodiscard]] ValidateReport run_validation(const ValidateOptions& options,
                                            Error* error = nullptr);

void render_validate_text(const ValidateReport& report, std::ostream& os);

/// Stable JSON, schema_version 1.
[[nodiscard]] std::string render_validate_json(const ValidateReport& report);

}  // namespace taskprof::whatif
