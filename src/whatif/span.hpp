// Sync-aware span: a series-parallel reconstruction of the task
// structure from a recorded trace.
//
// The creation-tree chain (diagnose/workspan.hpp) treats every child of
// a task as concurrent with its siblings.  That misses two serial
// constraints that dominate real programs once a hypothesis shrinks the
// task bodies:
//
//  * taskwait phasing — in sort/fft-style kernels the "merge" children
//    are created only after a taskwait on the "split" children, so the
//    two batches are sequential, not parallel.  The creation tree sees
//    siblings and lets the span collapse far below what any schedule
//    can reach, so a 90% hypothesis projects absurd speedups;
//  * creation serialization — a flat task farm is spawned one create at
//    a time by the implicit task.  Once the bodies shrink, the spawning
//    thread is the bottleneck, and that time lives on the implicit
//    task, which the creation tree does not model at all.
//
// SyncForest replays the trace event stream into one node per task
// (explicit tasks and the per-thread implicit tasks) holding an ordered
// item list:
//
//   Segment{active, work}  executed time between structural points
//   Create{child}          a child task spawned here
//   Join                   a taskwait/barrier completed here
//
// Span evaluation is then the classic max-plus recursion over that
// structure: a node's clock advances through its segments; a Join
// folds every child created since the previous Join as
// max(clock, creation_offset + child_completion); the node's
// completion additionally folds children never waited on (they gate
// the enclosing barrier, i.e. the program end).  Segment durations are
// supplied by a callback, so the same structure answers both "what is
// the span?" and "what would the span be if path X were N% faster?" —
// scaling is exact per segment because ctx.work() declarations (kWork
// events) are attributed to the segment they occurred in.
//
// The evaluation also reports the realized critical chain: how many
// distinct tasks lie on it and how much scalable (basis) time each call
// path contributes to it, which feeds the Amdahl-style ceiling.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "trace/trace.hpp"

namespace taskprof::whatif {

class SyncForest {
 public:
  /// A call path: task construct plus instance parameter.
  using PathKey = std::pair<RegionHandle, std::int64_t>;

  /// Executed time between two structural points of one task.
  struct Segment {
    Ticks active = 0;  ///< executed ticks
    Ticks work = 0;    ///< declared ctx.work() ticks within them
  };

  /// Hypothetical cost of one segment.
  struct SegmentCost {
    double duration = 0.0;  ///< (possibly scaled) executed ticks
    double basis = 0.0;     ///< scalable basis ticks, unscaled
  };
  /// Maps a segment of a task on `key` to its cost under a hypothesis.
  /// Never consulted for implicit tasks (they are not call paths and a
  /// hypothesis cannot scale them).
  using CostFn = std::function<SegmentCost(const PathKey&, const Segment&)>;

  struct Evaluation {
    double span = 0.0;        ///< series-parallel critical path
    int tasks_on_chain = 0;   ///< distinct explicit tasks on it
    /// Scalable basis ticks each call path contributes to the chain.
    std::map<PathKey, double> scalable_on_chain;
  };

  SyncForest() = default;

  /// Replay `trace` into the series-parallel structure.
  [[nodiscard]] static SyncForest build(const trace::Trace& trace);

  [[nodiscard]] bool empty() const noexcept { return nodes_.empty(); }
  /// Total executed time of the implicit tasks (creation serialization
  /// and other inline work); part of T1 but of no call path.
  [[nodiscard]] Ticks implicit_active() const noexcept {
    return implicit_active_;
  }

  /// Evaluate the span under `cost`.  `task_overhead` is an unscalable
  /// per-task dispatch cost added to every explicit task on a chain —
  /// keeping it inside the max-plus evaluation (rather than bolted onto
  /// the result) means the chain choice accounts for it and the
  /// old-chain-feasibility argument behind the Amdahl ceiling survives
  /// scaling.  Deterministic: ties keep the earliest candidate in
  /// creation order.
  [[nodiscard]] Evaluation evaluate(const CostFn& cost,
                                    double task_overhead = 0.0) const;

 private:
  struct Item {
    enum class Kind : std::uint8_t { kSegment, kCreate, kJoin };
    Kind kind = Kind::kSegment;
    Segment segment;          ///< kSegment
    std::uint32_t child = 0;  ///< kCreate: index into nodes_
  };

  struct Node {
    TaskInstanceId id = kImplicitTaskId;
    PathKey key{kInvalidRegion, kNoParameter};
    bool implicit = false;
    bool has_parent = false;
    std::vector<Item> items;
    // Build-time accumulators for the open segment.
    Ticks pending_active = 0;
    Ticks pending_work = 0;
  };

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> roots_;
  Ticks implicit_active_ = 0;
};

}  // namespace taskprof::whatif
