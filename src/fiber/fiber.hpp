// Stackful fibers (cooperative user-level contexts) on top of POSIX
// ucontext.
//
// The discrete-event simulator runs every simulated task on a fiber so the
// task body — ordinary recursive C++ code — can *suspend* at scheduling
// points (taskwait, task switch) and resume later, possibly on a different
// virtual worker.  That is exactly the capability the paper needs for
// untied tasks (§IV-D) and that the real OpenMP runtime did not expose.
//
// Concurrency model: fibers are confined to one OS thread.  The simulator
// is single-OS-threaded by construction, so no synchronization is needed;
// resuming a fiber from a second OS thread is undefined.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

// ThreadSanitizer must be told about user-level context switches: without
// __tsan_switch_to_fiber its shadow call stack grows across every
// swapcontext until the stack depot overflows (observed as
// "sanitizer_stackdepot.cpp CHECK failed" under long fuzz runs).
#if defined(__SANITIZE_THREAD__)
#define TASKPROF_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TASKPROF_TSAN_FIBERS 1
#endif
#endif

namespace taskprof {

/// Recycles fixed-size fiber stacks.  One pool per simulator instance.
class StackPool {
 public:
  /// All stacks from a pool share one size (bytes).
  explicit StackPool(std::size_t stack_size = 256 * 1024);

  StackPool(const StackPool&) = delete;
  StackPool& operator=(const StackPool&) = delete;

  [[nodiscard]] std::size_t stack_size() const noexcept { return stack_size_; }

  std::unique_ptr<char[]> acquire();
  void release(std::unique_ptr<char[]> stack);

  [[nodiscard]] std::size_t allocated() const noexcept { return allocated_; }
  [[nodiscard]] std::size_t pooled() const noexcept { return free_.size(); }

 private:
  std::size_t stack_size_;
  std::vector<std::unique_ptr<char[]>> free_;
  std::size_t allocated_ = 0;
};

/// A suspendable execution context running `entry` on its own stack.
///
/// Lifecycle: construct -> resume()* -> finished().  Each resume() runs the
/// fiber until it calls Fiber::yield() or its entry returns.  An exception
/// escaping the entry is captured and rethrown from the resume() that
/// observed completion.
class Fiber {
 public:
  using Entry = std::function<void()>;

  /// `pool` (may be nullptr for a private stack) must outlive the fiber.
  explicit Fiber(Entry entry, StackPool* pool = nullptr);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Run or continue the fiber until it yields or finishes.  Must not be
  /// called on a finished fiber or from inside any fiber of this thread's
  /// currently-running chain.
  void resume();

  /// Suspend the currently running fiber of this OS thread, returning
  /// control to its resume() caller.  Must be called from fiber context.
  static void yield();

  /// True after the entry function has returned (or thrown).
  [[nodiscard]] bool finished() const noexcept { return finished_; }

  /// True while this fiber is the one currently executing.
  [[nodiscard]] bool running() const noexcept { return running_; }

 private:
  static void trampoline(unsigned int hi, unsigned int lo);
  void run() noexcept;

  Entry entry_;
  StackPool* pool_;
  std::unique_ptr<char[]> stack_;
  std::size_t stack_size_;
  ucontext_t context_{};
  ucontext_t return_context_{};
  std::exception_ptr exception_;
  bool started_ = false;
  bool finished_ = false;
  bool running_ = false;
#if defined(TASKPROF_TSAN_FIBERS)
  void* tsan_fiber_ = nullptr;   ///< tsan's state for this fiber's stack
  void* tsan_return_ = nullptr;  ///< tsan fiber of the resume() caller
#endif
};

}  // namespace taskprof
