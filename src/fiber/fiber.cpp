#include "fiber/fiber.hpp"

#include <cstdint>

#if defined(TASKPROF_TSAN_FIBERS)
#include <sanitizer/tsan_interface.h>
#endif

#include "common/assert.hpp"

namespace taskprof {

namespace {

// The fiber currently executing on this OS thread (nullptr in the root
// context).  Fibers are confined to one OS thread, so thread_local is the
// full story.
thread_local Fiber* t_current_fiber = nullptr;

}  // namespace

StackPool::StackPool(std::size_t stack_size) : stack_size_(stack_size) {
  TASKPROF_ASSERT(stack_size_ >= 16 * 1024, "fiber stacks below 16 KiB");
}

std::unique_ptr<char[]> StackPool::acquire() {
  if (!free_.empty()) {
    auto stack = std::move(free_.back());
    free_.pop_back();
    return stack;
  }
  ++allocated_;
  return std::make_unique<char[]>(stack_size_);
}

void StackPool::release(std::unique_ptr<char[]> stack) {
  if (stack != nullptr) free_.push_back(std::move(stack));
}

Fiber::Fiber(Entry entry, StackPool* pool)
    : entry_(std::move(entry)), pool_(pool) {
  TASKPROF_ASSERT(entry_ != nullptr, "fiber needs an entry function");
  if (pool_ != nullptr) {
    stack_ = pool_->acquire();
    stack_size_ = pool_->stack_size();
  } else {
    stack_size_ = 256 * 1024;
    stack_ = std::make_unique<char[]>(stack_size_);
  }
}

Fiber::~Fiber() {
  TASKPROF_ASSERT(!running_, "destroying a running fiber");
  // Destroying an unfinished fiber abandons its stack frame contents; the
  // simulator only does this on teardown after an error, which is
  // acceptable (no cleanup runs, like a cancelled thread).
#if defined(TASKPROF_TSAN_FIBERS)
  if (tsan_fiber_ != nullptr) __tsan_destroy_fiber(tsan_fiber_);
#endif
  if (pool_ != nullptr) pool_->release(std::move(stack_));
}

void Fiber::trampoline(unsigned int hi, unsigned int lo) {
  auto address = (static_cast<std::uintptr_t>(hi) << 32) |
                 static_cast<std::uintptr_t>(lo);
  reinterpret_cast<Fiber*>(address)->run();
  // run() swapcontexts away and never returns here; if it did, falling off
  // the trampoline would terminate the process via uc_link == nullptr.
}

void Fiber::run() noexcept {
  try {
    entry_();
  } catch (...) {
    exception_ = std::current_exception();
  }
  finished_ = true;
  // Final switch back to the resumer.  swapcontext (not setcontext) so the
  // (dead) context stays well-formed.
#if defined(TASKPROF_TSAN_FIBERS)
  __tsan_switch_to_fiber(tsan_return_, 0);
#endif
  swapcontext(&context_, &return_context_);
}

void Fiber::resume() {
  TASKPROF_ASSERT(!finished_, "resume of a finished fiber");
  TASKPROF_ASSERT(!running_, "resume of the running fiber");
  if (!started_) {
    started_ = true;
    getcontext(&context_);
    context_.uc_stack.ss_sp = stack_.get();
    context_.uc_stack.ss_size = stack_size_;
    context_.uc_link = nullptr;
    const auto address = reinterpret_cast<std::uintptr_t>(this);
    makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
                static_cast<unsigned int>(address >> 32),
                static_cast<unsigned int>(address & 0xffffffffu));
  }
  Fiber* previous = t_current_fiber;
  t_current_fiber = this;
  running_ = true;
#if defined(TASKPROF_TSAN_FIBERS)
  if (tsan_fiber_ == nullptr) tsan_fiber_ = __tsan_create_fiber(0);
  tsan_return_ = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
  swapcontext(&return_context_, &context_);
  running_ = false;
  t_current_fiber = previous;
  if (finished_ && exception_ != nullptr) {
    std::exception_ptr e = exception_;
    exception_ = nullptr;
    std::rethrow_exception(e);
  }
}

void Fiber::yield() {
  Fiber* self = t_current_fiber;
  TASKPROF_ASSERT(self != nullptr, "yield outside of a fiber");
#if defined(TASKPROF_TSAN_FIBERS)
  __tsan_switch_to_fiber(self->tsan_return_, 0);
#endif
  swapcontext(&self->context_, &self->return_context_);
}

}  // namespace taskprof
