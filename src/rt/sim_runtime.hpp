// Discrete-event virtual-time SMP tasking engine.
//
// Substitute for the paper's evaluation platform (Juropa, 2x quad-core
// Nehalem): P virtual workers execute real task code on fibers while all
// *time* is virtual.  ctx.work(cost) advances the executing worker's
// clock; every task-management action (enqueue, dequeue, completion
// bookkeeping) passes through one simulated management lock with a
// configurable service time, so queueing delay — the paper's explanation
// for the scaling pathologies of fine-grained tasking ("presumably due to
// necessary locking during access to internal data structures", §V-A) —
// emerges from the event ordering.  When measurement hooks are attached,
// each event additionally charges a per-event instrumentation cost outside
// the lock, which reproduces the overhead-shadowing effect of Fig. 14.
//
// The engine runs on a single OS thread and is fully deterministic: the
// same program and configuration produce tick-identical results.
//
// Untied tasks: a suspended untied task parks in a global set and may be
// resumed by any worker, migrating its profiling state via the
// on_task_migrate hook — the design of paper §IV-D, which the authors
// could not exercise for lack of runtime support.
#pragma once

#include <memory>

#include "rt/runtime.hpp"
#include "rt/topology.hpp"

namespace taskprof::rt {

class DurationScale;   // rt/duration_scale.hpp
class SchedulePolicy;  // rt/schedule_policy.hpp

/// Virtual-time cost model (all values in ticks = nanoseconds).  Defaults
/// are calibrated so the BOTS reproduction exhibits the paper's shapes;
/// the ablation bench sweeps them.
struct SimCosts {
  Ticks create_local = 150;     ///< task setup on the creator, outside the lock
  Ticks create_service = 260;   ///< lock hold time for enqueueing a task
  Ticks dequeue_service = 220;  ///< lock hold time for dequeueing a task
  Ticks complete_service = 180; ///< lock hold time for completion bookkeeping
  Ticks switch_local = 90;      ///< local cost of suspending/resuming a task
  Ticks taskwait_check = 40;    ///< local cost of the taskwait child check
  Ticks poll_interval = 400;    ///< idle worker re-check period
  Ticks instr_event = 140;      ///< per measurement event, when instrumented

  /// Contention degradation: a lock operation's service time inflates by
  /// `1 + contention_penalty * competitors`, where competitors counts the
  /// other workers that issued a lock operation within the last
  /// `contention_window` ticks.  Models cache-line bouncing / CAS retry
  /// cost of a contended lock — the mechanism behind the paper's "mean
  /// time for a management action increases with increasing number of
  /// threads" (§VI) and the runtime growth of Fig. 15.
  double contention_penalty = 0.7;
  Ticks contention_window = 2'500;
};

struct SimConfig {
  SimCosts costs;
  /// Allow suspended untied tasks to resume on a different worker.
  bool untied_migration = true;
  /// Take the *newest* queued task at scheduling points (depth-first, how
  /// production runtimes behave and what bounds the paper's Table II
  /// concurrent-instance counts by the recursion depth).  false = FIFO
  /// (breadth-first), available for the ablation bench.
  bool lifo_dequeue = true;
  /// At a taskwait, a worker only executes *direct children* of the
  /// waiting task (GCC-4.6-libgomp behaviour, which the paper measured).
  /// This is what keeps the suspended-task chain — and thus the profiler's
  /// Table II memory bound — at the recursion depth.  false = any queued
  /// task may run at a taskwait (LLVM-style), available for the ablation.
  bool strict_taskwait_scheduling = true;
  std::size_t fiber_stack_bytes = 256 * 1024;
  /// Seeded schedule perturbation (dequeue choice, untied resume choice,
  /// virtual-time jitter) for the fuzzing harness in src/check/.  Not
  /// owned; must outlive the runtime.  Because the engine is
  /// deterministic, the same policy seed reproduces the exact same
  /// interleaving — this is the replay side of the seed protocol.
  const SchedulePolicy* policy = nullptr;
  /// What-if hypothesis (src/whatif): per-region factors applied to the
  /// declared ctx.work() cost of explicit tasks.  Not owned; must outlive
  /// the runtime.  nullptr = no scaling.
  const DurationScale* duration_scale = nullptr;
  /// Simulated machine topology (rt/topology.hpp).  With more than one
  /// locality domain the contention model becomes non-uniform: a dequeue
  /// whose task was created in another domain pays the interconnect
  /// latency plus a cold-cache refill, and remote competitors inflate
  /// lock service times more than local ones.  Topology::hierarchical
  /// selects the victim policy on that machine: workers prefer
  /// same-domain work and amortize cross-domain takes through batched
  /// transfer leases (DESIGN.md §15).  The default single-domain
  /// topology is bit-identical to the pre-topology engine.  This is how
  /// the simulator models machines we don't have — the 256-worker
  /// scaling study of bench_numa_scaling.
  Topology topology;
};

class SimRuntime final : public Runtime {
 public:
  explicit SimRuntime(SimConfig config = {});
  ~SimRuntime() override;

  SimRuntime(const SimRuntime&) = delete;
  SimRuntime& operator=(const SimRuntime&) = delete;

  void set_hooks(SchedulerHooks* hooks) override;
  void set_telemetry(telemetry::Registry* registry) override;
  TeamStats parallel(int num_threads, TaskFn body) override;

  /// Current virtual time (max over workers; advances across regions).
  [[nodiscard]] Ticks now() const override;

  [[nodiscard]] const SimConfig& config() const;

  /// Implementation detail (public only so the engine-internal context
  /// class in the .cpp can name it; not part of the API).
  struct Impl;

 private:
  std::unique_ptr<Impl> impl_;
};

}  // namespace taskprof::rt
