#include "rt/steal_deque.hpp"

namespace taskprof::rt {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t cap = 2;
  while (cap < n) cap <<= 1;
  return cap;
}

}  // namespace

struct StealDeque::Buffer {
  explicit Buffer(std::size_t cap)
      : capacity(cap), mask(cap - 1), slots(new std::atomic<void*>[cap]) {}
  ~Buffer() { delete[] slots; }

  std::atomic<void*>& slot(std::int64_t index) noexcept {
    return slots[static_cast<std::size_t>(index) & mask];
  }

  std::size_t capacity;
  std::size_t mask;
  std::atomic<void*>* slots;
  Buffer* retired_next = nullptr;  ///< owner-only reclamation chain
};

StealDeque::StealDeque(std::size_t initial_capacity) {
  buffer_.store(new Buffer(round_up_pow2(initial_capacity)),
                std::memory_order_relaxed);
}

StealDeque::~StealDeque() {
  delete buffer_.load(std::memory_order_relaxed);
  for (Buffer* b = retired_; b != nullptr;) {
    Buffer* next = b->retired_next;
    delete b;
    b = next;
  }
}

void StealDeque::push(void* item) {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed);
  const std::int64_t t = top_.load(std::memory_order_acquire);
  Buffer* buf = buffer_.load(std::memory_order_relaxed);
  if (b - t >= static_cast<std::int64_t>(buf->capacity)) {
    buf = grow(buf, t, b);
  }
  buf->slot(b).store(item, std::memory_order_relaxed);
  // Release-publish the new bottom: a thief that acquire-reads b+1 sees
  // the slot contents and everything the owner wrote before push().
  bottom_.store(b + 1, std::memory_order_release);
}

void* StealDeque::pop() {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  Buffer* buf = buffer_.load(std::memory_order_relaxed);
  // seq_cst handshake with steal(): the reservation of slot b must be
  // globally ordered against a thief's top/bottom reads, or owner and
  // thief could both take the same last item.
  bottom_.store(b, std::memory_order_seq_cst);
  std::int64_t t = top_.load(std::memory_order_seq_cst);
  if (t > b) {  // deque was empty: undo the reservation
    bottom_.store(b + 1, std::memory_order_relaxed);
    return nullptr;
  }
  void* item = buf->slot(b).load(std::memory_order_relaxed);
  if (t == b) {
    // Last item: race thieves for it via the top counter.
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      item = nullptr;  // a thief won
    }
    bottom_.store(b + 1, std::memory_order_relaxed);
  }
  return item;
}

void* StealDeque::steal() {
  std::int64_t t = top_.load(std::memory_order_seq_cst);
  const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
  if (t >= b) return nullptr;
  Buffer* buf = buffer_.load(std::memory_order_acquire);
  // Read the candidate *before* claiming it: after a successful CAS the
  // owner may recycle index t.  The read stays valid because the owner
  // cannot overwrite slot t while top == t — wrapping onto it would
  // require b - t >= capacity, which triggers grow() into a fresh buffer
  // instead (and outgrown buffers are never freed mid-run).
  void* item = buf->slot(t).load(std::memory_order_relaxed);
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_relaxed)) {
    return nullptr;  // lost the claim race; caller retries elsewhere
  }
  return item;
}

std::size_t StealDeque::steal_batch(void** out, std::size_t max_items) {
  // Claim-per-item, not one CAS for k items: a multi-slot top claim
  // (top -> top + k) is unsound in Chase–Lev.  The owner's pop() only
  // synchronizes through top_ for the *single* last item; it takes any
  // deeper slot with a plain bottom reservation, so a k-wide claim could
  // hand the same task to both sides.  Looping steal() keeps the proven
  // single-claim protocol; what a batch amortizes is the caller's
  // victim-probe and cross-domain latency, not the CAS.
  std::size_t got = 0;
  while (got < max_items) {
    void* item = steal();
    // A lost claim race means another thief is draining the same victim;
    // stop instead of fighting over the remainder.
    if (item == nullptr) break;
    out[got++] = item;
  }
  return got;
}

bool StealDeque::empty() const noexcept {
  return top_.load(std::memory_order_acquire) >=
         bottom_.load(std::memory_order_acquire);
}

std::size_t StealDeque::capacity() const noexcept {
  return buffer_.load(std::memory_order_acquire)->capacity;
}

StealDeque::Buffer* StealDeque::grow(Buffer* old, std::int64_t top,
                                     std::int64_t bottom) {
  auto* bigger = new Buffer(old->capacity * 2);
  for (std::int64_t i = top; i < bottom; ++i) {
    bigger->slot(i).store(old->slot(i).load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }
  // Thieves may still read `old` through a stale buffer_ load; its live
  // range [top, bottom) keeps the same items, so a stale read that wins
  // its top-CAS still yields the right item.  Retire, don't delete.
  old->retired_next = retired_;
  retired_ = old;
  ++grows_;
  buffer_.store(bigger, std::memory_order_release);
  return bigger;
}

}  // namespace taskprof::rt
