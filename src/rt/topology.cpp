#include "rt/topology.hpp"

namespace taskprof::rt {

namespace {

/// Parses a decimal run from `spec` starting at `pos`; advances `pos`.
/// Returns nullopt when no digit is present or the value overflows the
/// 4096 cap.
std::optional<std::uint32_t> parse_count(std::string_view spec,
                                         std::size_t& pos) {
  constexpr std::uint32_t kMax = 4096;
  if (pos >= spec.size() || spec[pos] < '0' || spec[pos] > '9') {
    return std::nullopt;
  }
  std::uint32_t value = 0;
  while (pos < spec.size() && spec[pos] >= '0' && spec[pos] <= '9') {
    value = value * 10 + static_cast<std::uint32_t>(spec[pos] - '0');
    if (value > kMax) return std::nullopt;
    ++pos;
  }
  return value;
}

}  // namespace

std::optional<Topology> Topology::parse(std::string_view spec) {
  std::size_t pos = 0;
  const auto domains = parse_count(spec, pos);
  if (!domains || *domains == 0) return std::nullopt;
  if (pos >= spec.size() || (spec[pos] != 'x' && spec[pos] != 'X')) {
    return std::nullopt;
  }
  ++pos;
  const auto workers = parse_count(spec, pos);
  if (!workers || *workers == 0 || pos != spec.size()) return std::nullopt;
  Topology topo;
  topo.domains = *domains;
  topo.workers_per_domain = *workers;
  return topo;
}

}  // namespace taskprof::rt
