// Hypothetical-speedup duration scaling for the simulator.
//
// The what-if projector (src/whatif) asks "what happens if construct X
// were N% faster?".  Analytically that is a work/span recomputation; to
// *validate* the projection we re-run the same program on the sim engine
// with the hypothesis applied to virtual task durations.  DurationScale
// is that hypothesis: a per-region multiplicative factor applied to the
// declared ctx.work() cost of explicit tasks running under that region.
//
// Style follows SchedulePolicy: the object is immutable during a run,
// referenced from SimConfig by raw pointer, and must outlive every
// runtime configured with it.  Factors are clamped to [0, 1] — the
// what-if model only speaks about optimizations, and a factor above 1
// would silently invert every invariant the projector proves.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace taskprof::rt {

class DurationScale {
 public:
  /// Run `region`'s declared work at `factor` of its recorded cost
  /// (0.5 = "twice as fast").  Overwrites any previous factor for the
  /// region; factors are clamped to [0, 1].
  void set_factor(RegionHandle region, double factor) {
    factor = std::clamp(factor, 0.0, 1.0);
    for (auto& entry : factors_) {
      if (entry.first == region) {
        entry.second = factor;
        return;
      }
    }
    factors_.emplace_back(region, factor);
  }

  /// Factor for `region`; 1.0 (unscaled) when none was set.
  [[nodiscard]] double factor(RegionHandle region) const noexcept {
    for (const auto& entry : factors_) {
      if (entry.first == region) return entry.second;
    }
    return 1.0;
  }

  /// `cost` scaled by the region's factor, rounded to nearest tick.
  [[nodiscard]] Ticks scale(RegionHandle region, Ticks cost) const noexcept {
    const double f = factor(region);
    if (f >= 1.0) return cost;
    const double scaled = static_cast<double>(cost) * f + 0.5;
    return static_cast<Ticks>(scaled);
  }

  [[nodiscard]] bool empty() const noexcept { return factors_.empty(); }

 private:
  // A what-if hypothesis names one or two constructs; linear scan over a
  // flat vector beats a map at that size and keeps lookups allocation-free
  // on the hot work() path.
  std::vector<std::pair<RegionHandle, double>> factors_;
};

}  // namespace taskprof::rt
