#include "rt/taskgraph.hpp"

#include <algorithm>
#include <thread>

#include "common/assert.hpp"
#include "common/concurrency.hpp"

namespace taskprof::rt {

std::uint32_t TaskGraphRecorder::record_spawn(std::uint32_t parent_key,
                                              RegionHandle region,
                                              std::int64_t parameter,
                                              ThreadId tid) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto index = static_cast<std::uint32_t>(nodes_.size());
  TASKPROF_ASSERT(index < kGraphRoot, "task graph overflow");
  TaskGraphNode node;
  node.region = region;
  node.parameter = parameter;
  node.parent = parent_key;
  if (parent_key == kGraphRoot) {
    node.ordinal = root_children_++;
    if (!root_seen_) {
      root_seen_ = true;
      root_spawner_ = tid;
    } else if (tid != root_spawner_) {
      root_multi_ = true;
    }
  } else {
    TASKPROF_ASSERT(parent_key < index, "child recorded before its parent");
    node.ordinal = child_counts_[parent_key]++;
  }
  nodes_.push_back(node);
  child_counts_.push_back(0);
  return index;
}

void TaskGraphRecorder::record_duration(std::uint32_t node, Ticks ticks) {
  const std::lock_guard<std::mutex> lock(mu_);
  TASKPROF_ASSERT(node < nodes_.size(), "duration for unknown node");
  nodes_[node].duration = ticks;
}

void TaskGraphRecorder::note_root_taskwait() {
  const std::lock_guard<std::mutex> lock(mu_);
  root_taskwait_ = true;
}

std::size_t TaskGraphRecorder::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return nodes_.size();
}

std::unique_ptr<TaskGraph> TaskGraphRecorder::freeze() {
  const std::lock_guard<std::mutex> lock(mu_);
  auto graph = std::make_unique<TaskGraph>();
  graph->nodes_ = std::move(nodes_);
  graph->recorded_threads_ = threads_;
  graph->root_taskwait_ = root_taskwait_;
  graph->single_root_producer_ = !root_multi_;

  const std::size_t n = graph->nodes_.size();
  // Counting sort by parent builds the CSR child index; appending nodes
  // in index order keeps each row ordinal-ordered because a parent's
  // children were recorded with ascending ordinals and ascending node
  // indices (the recorder mutex makes the recorded order total).
  graph->row_begin_.assign(n + 1, 0);
  std::size_t explicit_edges = 0;
  for (const TaskGraphNode& node : graph->nodes_) {
    graph->total_duration_ += node.duration;
    if (node.parent != kGraphRoot) {
      ++graph->row_begin_[node.parent + 1];
      ++explicit_edges;
    }
  }
  for (std::size_t i = 1; i <= n; ++i) {
    graph->row_begin_[i] += graph->row_begin_[i - 1];
  }
  graph->root_begin_ = explicit_edges;
  graph->child_index_.assign(n, kGraphNone);
  std::vector<std::size_t> fill(graph->row_begin_.begin(),
                                graph->row_begin_.end() - 1);
  std::size_t root_fill = graph->root_begin_;
  for (std::uint32_t i = 0; i < n; ++i) {
    const TaskGraphNode& node = graph->nodes_[i];
    if (node.parent == kGraphRoot) {
      graph->child_index_[root_fill++] = i;
    } else {
      graph->child_index_[fill[node.parent]++] = i;
    }
  }
  TASKPROF_ASSERT(root_fill == graph->child_index_.size(),
                  "CSR fill mismatch");
  return graph;
}

StaticSchedule StaticSchedule::build(const TaskGraph& graph, int num_threads,
                                     std::uint32_t block, int active_limit) {
  TASKPROF_ASSERT(num_threads > 0, "schedule needs at least one worker");
  TASKPROF_ASSERT(block > 0, "zero block size");
  if (active_limit <= 0) {
    active_limit = static_cast<int>(hardware_threads());
  }
  const int active = std::min(num_threads, active_limit);
  StaticSchedule sched;
  sched.threads = num_threads;
  sched.run_lists.resize(static_cast<std::size_t>(num_threads));
  const std::size_t n = graph.size();
  for (int w = 0; w < active; ++w) {
    sched.run_lists[static_cast<std::size_t>(w)].reserve(
        n / static_cast<std::size_t>(active) + block);
  }
  std::vector<Ticks> load(static_cast<std::size_t>(active), 0);
  for (std::size_t begin = 0; begin < n; begin += block) {
    const std::size_t end = std::min(n, begin + block);
    const std::size_t w = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    for (std::size_t i = begin; i < end; ++i) {
      sched.run_lists[w].push_back(static_cast<std::uint32_t>(i));
      const Ticks d = graph.node(static_cast<std::uint32_t>(i)).duration;
      load[w] += d > 0 ? d : 1;  // weight 1 when the clock never advanced
    }
  }
  return sched;
}

void ReplayState::bind(const TaskGraph* graph,
                       const StaticSchedule* schedule) {
  graph_ = graph;
  schedule_ = schedule;
  const std::size_t n = graph->size();
  if (slot_count_ < n) {
    slots_ = std::make_unique<std::atomic<std::uint8_t>[]>(n);
    slot_count_ = n;
  }
  for (std::size_t i = 0; i < n; ++i) {
    slots_[i].store(kEmpty, std::memory_order_relaxed);
  }
  root_ordinal_.store(0, std::memory_order_relaxed);
}

std::size_t ReplayState::cancel_subtree(std::uint32_t node) noexcept {
  // Iterative DFS over the CSR child rows.  Every visited slot is kEmpty
  // by the caller's structural argument (its unique filler can no longer
  // run); the CAS claim makes the cancellation exact-once even if two
  // cancel frontiers ever overlap — a node that is already cancelled is
  // neither recounted nor re-descended.  Cancelled nodes were never
  // published, so they never entered the engine's outstanding balance.
  std::size_t cancelled = 0;
  std::vector<std::uint32_t> stack;
  stack.push_back(node);
  while (!stack.empty()) {
    const std::uint32_t cur = stack.back();
    stack.pop_back();
    std::uint8_t expected = kEmpty;
    if (!slots_[cur].compare_exchange_strong(expected, kCancelled,
                                             std::memory_order_release,
                                             std::memory_order_relaxed)) {
      continue;
    }
    ++cancelled;
    const std::uint32_t kids = graph_->child_count(cur);
    for (std::uint32_t o = 0; o < kids; ++o) {
      stack.push_back(graph_->child_at(cur, o));
    }
  }
  return cancelled;
}

std::size_t ReplayState::cancel_children_from(
    std::uint32_t parent_key, std::uint32_t first_ordinal) noexcept {
  std::size_t cancelled = 0;
  const std::uint32_t kids = graph_->child_count(parent_key);
  for (std::uint32_t o = first_ordinal; o < kids; ++o) {
    cancelled += cancel_subtree(graph_->child_at(parent_key, o));
  }
  return cancelled;
}

std::size_t ReplayState::unspawned_count() const noexcept {
  std::size_t empty = 0;
  const std::size_t n = graph_ != nullptr ? graph_->size() : 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (slots_[i].load(std::memory_order_relaxed) == kEmpty) ++empty;
  }
  return empty;
}

}  // namespace taskprof::rt
