#include "rt/sim_runtime.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>
#include <vector>

#include "common/assert.hpp"
#include "common/clock.hpp"
#include "fiber/fiber.hpp"
#include "rt/duration_scale.hpp"
#include "rt/schedule_policy.hpp"
#include "telemetry/telemetry.hpp"

namespace taskprof::rt {

namespace {

/// One simulated task instance (implicit or explicit).
struct SimTask {
  TaskFn fn;
  TaskAttrs attrs;
  TaskInstanceId id = kImplicitTaskId;
  SimTask* parent = nullptr;
  std::uint32_t pending_children = 0;
  /// Lifetime references: 1 for the task itself (dropped at completion)
  /// plus 1 per incomplete child (children decrement their parent's count
  /// at completion; a fire-and-forget parent record must outlive its
  /// children).  The record is deleted when this reaches zero.
  std::uint32_t refs = 1;
  std::unique_ptr<Fiber> fiber;
  bool implicit = false;
  bool deferred = false;  ///< enqueued (counts towards outstanding)
  bool in_queue = false;  ///< currently sitting in the central queue
  /// Children currently enqueued (newest last); entries may be stale
  /// (taken from the central queue already) — filtered via in_queue.
  std::vector<SimTask*> queued_children;
  ThreadId creator = 0;
  ThreadId home = 0;  ///< worker that (last) executes the task

  enum class Wait : std::uint8_t {
    kNone,      ///< running or ready to run
    kTaskwait,  ///< waiting for pending_children == 0
    kBarrier,   ///< implicit task waiting at a barrier episode
    kInline,    ///< parent of a running undeferred child
    kReady,     ///< block resolved externally, resumable
  };
  Wait wait = Wait::kNone;
  SimTask* inline_child = nullptr;
  std::size_t barrier_episode = 0;
};

/// What a task fiber asks the engine to do when it yields.
enum class Request : std::uint8_t {
  kNone,
  kEnqueue,        ///< enqueue request_task (management-lock op)
  kTaskwaitBlock,  ///< suspend current task until children complete
  kBarrierBlock,   ///< implicit task arrives at a barrier
  kInlineRun,      ///< run request_task (undeferred) inside the creation
};

struct Worker {
  ThreadId id = 0;
  Ticks time = 0;

  enum class Action : std::uint8_t {
    kStart,         ///< begin the implicit task
    kRunFiber,      ///< resume `running`'s fiber
    kServeEnqueue,  ///< serve the pending enqueue lock op, then resume
    kComplete,      ///< serve completion bookkeeping for `completed`
    kSchedule,      ///< pick the next thing to run
    kDone,          ///< implicit task finished
  };
  Action action = Action::kStart;

  SimTask* running = nullptr;
  SimTask* completed = nullptr;
  SimTask* enqueue_task = nullptr;
  Ticks last_lock_request = std::numeric_limits<Ticks>::min();
  /// Which management-lock shard that last request went to.
  std::uint32_t last_lock_shard = 0;
  /// Consecutive constrained scheduling attempts that found nothing;
  /// triggers the full descendant scan (see schedule()).
  int constraint_failures = 0;
  std::vector<SimTask*> tied_stack;  ///< suspended tied tasks (LIFO)
  std::size_t barrier_counter = 0;
  std::size_t single_counter = 0;
  std::uint64_t executed = 0;
  std::uint64_t created = 0;
  std::uint64_t steals = 0;
  std::uint64_t migrations = 0;
  /// Locality domain (SimConfig::topology; 0 on a flat machine).
  std::uint32_t domain = 0;
  /// Batched-transfer lease (hierarchical policy): the last cross-domain
  /// take claimed a batch from `lease_domain`, and the next
  /// `lease_remaining` takes from that domain drain it locally — no lock
  /// op, no interconnect latency (the sim's central-queue analogue of
  /// steal-half from a remote deque).
  std::uint32_t lease_domain = 0;
  std::uint32_t lease_remaining = 0;
  /// Seeded perturbation stream (detached no-op without a policy).
  ScheduleStream sched;
};

/// Clock view onto one worker's virtual time.
class WorkerClock final : public Clock {
 public:
  explicit WorkerClock(const Worker* worker) : worker_(worker) {}
  [[nodiscard]] Ticks now() const noexcept override { return worker_->time; }

 private:
  const Worker* worker_;
};

/// FIFO resource with a single service timeline: the simulated runtime
/// management lock.
struct MgmtLock {
  Ticks free_at = 0;

  /// Serve a request issued at `request_time`; returns the completion
  /// time (wait + hold).
  Ticks serve(Ticks request_time, Ticks service) noexcept {
    const Ticks start = std::max(free_at, request_time);
    free_at = start + service;
    return free_at;
  }
};

class SimContext;

}  // namespace

struct SimRuntime::Impl {
  explicit Impl(SimConfig cfg)
      : config(cfg), stack_pool(cfg.fiber_stack_bytes) {}

  SimConfig config;
  SchedulerHooks* hooks = nullptr;
  telemetry::Registry* telemetry = nullptr;
  StackPool stack_pool;
  Ticks base_time = 0;

  // Team state, valid during one parallel region.  Per-worker state lives
  // in indexed slabs (flat vectors sized once at region entry): with 256+
  // virtual workers, pointer-chasing per event is what thrashes.
  int nthreads = 0;
  std::vector<Worker> workers;
  std::vector<WorkerClock> clocks;
  /// True when the topology splits this team across more than one
  /// populated locality domain; false keeps every cost bit-identical to
  /// the flat pre-topology model.
  bool topo_active = false;
  std::deque<SimTask*> queue;
  std::vector<SimTask*> untied_suspended;
  std::uint64_t outstanding = 0;
  TaskInstanceId next_id = 1;
  std::vector<int> barrier_arrived;
  std::vector<bool> single_claimed;
  /// Management-lock shards.  One global server on a flat machine and
  /// under the flat victim policy; one per locality domain under the
  /// hierarchical policy.  Sharding the management structures — a
  /// per-domain queue with a per-domain lock instead of one global lock
  /// every worker fights over — is where a hierarchical scheduler's
  /// management *throughput* comes from; local-first victim selection
  /// alone only shortens individual probes.
  std::vector<MgmtLock> locks;
  bool lock_sharded = false;
  int done_count = 0;
  TaskFn body;
  std::unique_ptr<TaskContext> context;

  // Fiber -> engine request channel (single OS thread, one at a time).
  Request request = Request::kNone;
  SimTask* request_task = nullptr;
  Worker* current = nullptr;

  /// Discrete-event dispatch index: a binary min-heap of worker ids keyed
  /// on (time, id) with an id -> position slab, replacing the O(P) linear
  /// scan per event.  An event only advances the dispatched worker's
  /// clock, so each step is one O(log P) re-key — the other half of what
  /// keeps P=256 virtual workers from thrashing.  The (time, id) order
  /// reproduces the scan's pick (earliest time, lowest id on ties)
  /// exactly, so event order — and therefore every profile — is
  /// unchanged.
  std::vector<int> heap;
  std::vector<int> heap_pos;  ///< worker id -> heap index; -1 once done

  [[nodiscard]] bool earlier(int a, int b) const noexcept {
    const Ticks ta = workers[static_cast<std::size_t>(a)].time;
    const Ticks tb = workers[static_cast<std::size_t>(b)].time;
    return ta < tb || (ta == tb && a < b);
  }

  void heap_place(std::size_t at, int worker) noexcept {
    heap[at] = worker;
    heap_pos[static_cast<std::size_t>(worker)] = static_cast<int>(at);
  }

  void heap_sift_up(std::size_t at) noexcept {
    const int moving = heap[at];
    while (at > 0) {
      const std::size_t parent = (at - 1) / 2;
      if (!earlier(moving, heap[parent])) break;
      heap_place(at, heap[parent]);
      at = parent;
    }
    heap_place(at, moving);
  }

  void heap_sift_down(std::size_t at) noexcept {
    const int moving = heap[at];
    const std::size_t size = heap.size();
    for (;;) {
      std::size_t child = 2 * at + 1;
      if (child >= size) break;
      if (child + 1 < size && earlier(heap[child + 1], heap[child])) {
        ++child;
      }
      if (!earlier(heap[child], moving)) break;
      heap_place(at, heap[child]);
      at = child;
    }
    heap_place(at, moving);
  }

  /// Re-key `worker` after its clock advanced.
  void heap_update(int worker) noexcept {
    const auto at =
        static_cast<std::size_t>(heap_pos[static_cast<std::size_t>(worker)]);
    heap_sift_down(at);
    heap_sift_up(
        static_cast<std::size_t>(heap_pos[static_cast<std::size_t>(worker)]));
  }

  /// Remove `worker` from the dispatch index (its implicit task is done).
  void heap_remove(int worker) noexcept {
    const auto at =
        static_cast<std::size_t>(heap_pos[static_cast<std::size_t>(worker)]);
    heap_pos[static_cast<std::size_t>(worker)] = -1;
    const int last = heap.back();
    heap.pop_back();
    if (last != worker) {
      heap_place(at, last);
      heap_update(last);
    }
  }

  /// Per measurement event, instrumented runs pay a virtual cost.
  void charge(Worker& w) const noexcept {
    if (hooks != nullptr) w.time += config.costs.instr_event;
  }

  /// Telemetry shorthands (no-ops without a sink).
  void count(const Worker& w, telemetry::Counter c) const noexcept {
    if (telemetry != nullptr) telemetry->add(w.id, c);
  }

  /// A dequeue that took a task created by another worker is the
  /// simulator's steal; attempts == successes here (the central queue
  /// cannot probe empty victims).  On a multi-domain machine the steal is
  /// additionally classified by whether it crossed a domain boundary.
  void count_dequeue(Worker& w, const SimTask& task) const noexcept {
    if (task.creator == w.id) return;
    ++w.steals;
    if (telemetry != nullptr) {
      telemetry->add(w.id, telemetry::Counter::kStealAttempts);
      telemetry->add(w.id, telemetry::Counter::kStealSuccesses);
      if (topo_active) {
        const bool local =
            config.topology.domain_of(task.creator) == w.domain;
        telemetry->add(w.id, local ? telemetry::Counter::kStealsInDomain
                                   : telemetry::Counter::kStealsCrossDomain);
      }
    }
  }

  /// Serve a management-lock operation for `w` against the shard that
  /// owns `home_domain`'s management structures: FIFO queueing plus
  /// contention-dependent service inflation (see SimCosts), counting
  /// only competitors on the *same* shard.  Advances w.time to the
  /// operation's completion.  On a multi-domain machine a *remote*
  /// competitor inflates the service more than a local one
  /// (Topology::remote_contention_weight): the lock's cache line bounces
  /// across the interconnect instead of within one socket.  Flat
  /// machines (and the flat victim policy) run a single shard and weight
  /// every competitor 1.0, which reproduces the original integer count
  /// bit-identically.
  void serve_lock(Worker& w, Ticks service,
                  std::uint32_t home_domain) noexcept {
    const std::uint32_t shard =
        lock_sharded ? home_domain : 0;
    double competitors = 0.0;
    for (const Worker& other : workers) {
      if (other.id != w.id && other.last_lock_shard == shard &&
          other.last_lock_request + config.costs.contention_window >=
              w.time) {
        competitors += (!topo_active || other.domain == w.domain)
                           ? 1.0
                           : config.topology.remote_contention_weight;
      }
    }
    w.last_lock_request = w.time;
    w.last_lock_shard = shard;
    const auto effective = static_cast<Ticks>(
        static_cast<double>(service) *
        (1.0 + config.costs.contention_penalty * competitors));
    w.time = locks[shard].serve(w.time, effective);
  }

  /// Cost of taking `task` from the central queue.  Flat machine: one
  /// management-lock op (the original model, unchanged).  Multi-domain:
  /// a same-domain take is the same lock op, but a cross-domain take
  /// additionally pays the interconnect round trip
  /// (Topology::remote_steal_latency) — and under the hierarchical
  /// policy it claims a *batch*: the lease waives the lock and the
  /// latency for the next steal_batch_max - 1 takes from that domain,
  /// which drain locally (switch_local) like tasks from the worker's own
  /// deque.  This is the central-queue analogue of steal-half from a
  /// remote victim's deque top.  Every cross-domain task also pays the
  /// cold-cache refill (cache_affinity_cost) regardless of policy — the
  /// task's data crosses the interconnect no matter how it got here.
  void charge_dequeue(Worker& w, const SimTask& task) noexcept {
    if (!topo_active) {
      serve_lock(w, config.costs.dequeue_service, w.domain);
      return;
    }
    const Topology& topo = config.topology;
    const std::uint32_t creator_dom = topo.domain_of(task.creator);
    if (topo.hierarchical && w.lease_remaining > 0 &&
        w.lease_domain == creator_dom) {
      // Lease hit: the task is part of a batch this worker already
      // claimed under one lock acquisition, so taking it is a local pop.
      --w.lease_remaining;
      w.time += config.costs.switch_local;
      if (telemetry != nullptr) {
        telemetry->add(w.id, telemetry::Counter::kStealBatchTasks);
      }
    } else {
      serve_lock(w, config.costs.dequeue_service, creator_dom);
      if (creator_dom != w.domain) {
        w.time += topo.remote_steal_latency;
      }
      if (topo.hierarchical && topo.steal_batch_max > 1) {
        // Open a lease on the creator's domain — own domain included:
        // batch claiming amortizes the management lock no matter where
        // the batch lives; only the interconnect round trip above is
        // specific to a remote batch.
        w.lease_domain = creator_dom;
        w.lease_remaining = topo.steal_batch_max - 1;
        if (telemetry != nullptr) {
          telemetry->add(w.id, telemetry::Counter::kStealBatchTasks);
        }
      }
    }
    if (creator_dom != w.domain) {
      w.time += topo.cache_affinity_cost;
    }
  }

  /// Drop one lifetime reference; delete the record when none remain.
  /// Deletion releases the references the record's queued_children list
  /// still holds (all completed by then — an incomplete child keeps its
  /// parent alive through its own parent reference).
  static void release_ref(SimTask* task) noexcept {
    TASKPROF_ASSERT(task->refs > 0, "task refcount underflow");
    if (--task->refs == 0) {
      TASKPROF_ASSERT(!task->implicit, "implicit task record refcounted away");
      std::vector<SimTask*> children = std::move(task->queued_children);
      delete task;
      for (SimTask* child : children) release_ref(child);
    }
  }

  /// True when `task`'s ancestor chain contains `ancestor`.
  static bool is_descendant_of(const SimTask* task,
                               const SimTask* ancestor) noexcept {
    for (const SimTask* node = task->parent; node != nullptr;
         node = node->parent) {
      if (node == ancestor) return true;
    }
    return false;
  }

  /// Newest still-queued direct child of `parent`, or nullptr.  Pops stale
  /// entries (tasks already taken from the central queue), dropping the
  /// list's reference on every popped record.
  static SimTask* take_direct_child(SimTask* parent) noexcept {
    auto& kids = parent->queued_children;
    while (!kids.empty() && !kids.back()->in_queue) {
      SimTask* stale = kids.back();
      kids.pop_back();
      release_ref(stale);
    }
    if (kids.empty()) return nullptr;
    SimTask* child = kids.back();
    kids.pop_back();
    child->in_queue = false;
    release_ref(child);  // the child's own reference still holds it
    return child;
  }

  [[nodiscard]] bool eligible(const SimTask& task) const noexcept {
    switch (task.wait) {
      case SimTask::Wait::kTaskwait:
        return task.pending_children == 0;
      case SimTask::Wait::kBarrier:
        return barrier_arrived[task.barrier_episode] == nthreads &&
               outstanding == 0;
      case SimTask::Wait::kReady:
        return true;
      case SimTask::Wait::kNone:
      case SimTask::Wait::kInline:
        return false;
    }
    return false;
  }

  void start_task(Worker& w, SimTask* task) {
    w.constraint_failures = 0;
    task->home = w.id;
    charge(w);
    if (hooks != nullptr) {
      hooks->on_task_begin(w.id, task->id, task->attrs.region,
                           task->attrs.parameter);
    }
    task->fiber = std::make_unique<Fiber>(
        [this, task] { task->fn(*context); }, &stack_pool);
    w.running = task;
    w.action = Worker::Action::kRunFiber;
  }

  void dispatch(Worker& w);
  void start_implicit(Worker& w);
  void run_fiber(Worker& w);
  void serve_enqueue(Worker& w);
  void serve_complete(Worker& w);
  void schedule(Worker& w);
  void resume_untied(Worker& w, std::vector<SimTask*>::iterator it);
};

namespace {

/// TaskContext implementation for the simulator.  One instance serves the
/// whole engine: "the executing thread" is always rt_.current (the engine
/// runs fibers one at a time).  Methods re-read rt_.current after every
/// yield because untied tasks may resume on a different worker.
class SimContext final : public TaskContext {
 public:
  explicit SimContext(SimRuntime::Impl& rt) : rt_(rt) {}

  void create_task(TaskFn fn, TaskAttrs attrs) override {
    Worker* w = rt_.current;
    rt_.charge(*w);
    if (rt_.hooks != nullptr) {
      rt_.hooks->on_task_create_begin(w->id, attrs.region, attrs.parameter);
    }
    w->time += rt_.config.costs.create_local;

    auto* rec = new SimTask();
    rec->fn = std::move(fn);
    rec->attrs = attrs;
    rec->id = rt_.next_id++;
    rec->parent = w->running;
    rec->creator = w->id;
    rec->parent->refs += 1;  // the child keeps its parent record alive
    ++w->created;
    rt_.count(*w, telemetry::Counter::kTasksCreated);
    rt_.count(*w, attrs.undeferred ? telemetry::Counter::kTasksUndeferred
                                   : telemetry::Counter::kTasksDeferred);

    // The child may run to completion and have its record released before
    // this fiber resumes (always possible for an undeferred child; for a
    // deferred one a thief can finish it between the enqueue being served
    // and the creator running again), so capture everything the create-end
    // event needs while `rec` is still certainly alive.
    const TaskInstanceId child_id = rec->id;
    const RegionHandle child_region = rec->attrs.region;
    const std::int64_t child_parameter = rec->attrs.parameter;

    if (attrs.undeferred) {
      rt_.request = Request::kInlineRun;
      rt_.request_task = rec;
      Fiber::yield();  // resumes after the child completed
    } else {
      rec->deferred = true;
      rec->parent->pending_children += 1;
      rt_.request = Request::kEnqueue;
      rt_.request_task = rec;
      Fiber::yield();  // resumes after the enqueue lock op was served
    }
    w = rt_.current;
    rt_.charge(*w);
    if (rt_.hooks != nullptr) {
      rt_.hooks->on_task_create_end(w->id, child_id, child_region,
                                    child_parameter);
    }
  }

  void taskwait() override {
    Worker* w = rt_.current;
    rt_.charge(*w);
    if (rt_.hooks != nullptr) rt_.hooks->on_taskwait_begin(w->id);
    rt_.count(*w, telemetry::Counter::kTaskwaitEntries);
    w->time += rt_.config.costs.taskwait_check;
    SimTask* cur = w->running;
    if (cur->pending_children > 0) {
      rt_.request = Request::kTaskwaitBlock;
      Fiber::yield();
      w = rt_.current;  // untied tasks may have migrated
    }
    rt_.charge(*w);
    if (rt_.hooks != nullptr) rt_.hooks->on_taskwait_end(w->id);
  }

  void barrier() override { barrier_impl(/*implicit=*/false); }

  void barrier_impl(bool implicit) {
    Worker* w = rt_.current;
    TASKPROF_ASSERT(w->running != nullptr && w->running->implicit,
                    "barrier must be called from the implicit task");
    rt_.charge(*w);
    if (rt_.hooks != nullptr) rt_.hooks->on_barrier_begin(w->id, implicit);
    rt_.count(*w, telemetry::Counter::kBarrierEntries);
    rt_.request = Request::kBarrierBlock;
    Fiber::yield();
    w = rt_.current;
    rt_.charge(*w);
    if (rt_.hooks != nullptr) rt_.hooks->on_barrier_end(w->id, implicit);
  }

  bool single() override {
    Worker* w = rt_.current;
    TASKPROF_ASSERT(w->running != nullptr && w->running->implicit,
                    "single must be called from the implicit task");
    w->time += rt_.config.costs.taskwait_check;
    const std::size_t index = w->single_counter++;
    if (rt_.single_claimed.size() <= index) {
      rt_.single_claimed.resize(index + 1, false);
    }
    if (!rt_.single_claimed[index]) {
      rt_.single_claimed[index] = true;
      rt_.count(*w, telemetry::Counter::kSingleWins);
      return true;
    }
    return false;
  }

  void work(Ticks cost) override {
    TASKPROF_ASSERT(cost >= 0, "negative work cost");
    Worker* w = rt_.current;
    const SimTask* running = w->running;
    if (rt_.config.duration_scale != nullptr && !running->implicit) {
      cost = rt_.config.duration_scale->scale(running->attrs.region, cost);
    }
    // Observers see the effective (scaled) cost; no charge() here — the
    // declaration itself is free, only the declared time advances.
    if (rt_.hooks != nullptr) rt_.hooks->on_task_work(w->id, cost);
    w->time += cost;
  }

  void region_enter(RegionHandle region, std::int64_t parameter) override {
    Worker* w = rt_.current;
    rt_.charge(*w);
    if (rt_.hooks != nullptr) {
      rt_.hooks->on_region_enter(w->id, region, parameter);
    }
  }

  void region_exit(RegionHandle region) override {
    Worker* w = rt_.current;
    rt_.charge(*w);
    if (rt_.hooks != nullptr) rt_.hooks->on_region_exit(w->id, region);
  }

  [[nodiscard]] ThreadId thread_id() const override {
    return rt_.current->id;
  }
  [[nodiscard]] int num_threads() const override { return rt_.nthreads; }

 private:
  SimRuntime::Impl& rt_;
};

}  // namespace

void SimRuntime::Impl::start_implicit(Worker& w) {
  if (hooks != nullptr) {
    hooks->on_implicit_task_begin(w.id, clocks[w.id]);
    charge(w);
  }
  auto* imp = new SimTask();
  imp->implicit = true;
  imp->id = kImplicitTaskId;
  imp->home = w.id;
  imp->creator = w.id;
  imp->fiber = std::make_unique<Fiber>(
      [this] {
        body(*context);
        static_cast<SimContext*>(context.get())->barrier_impl(true);
      },
      &stack_pool);
  w.running = imp;
  w.action = Worker::Action::kRunFiber;
}

void SimRuntime::Impl::run_fiber(Worker& w) {
  current = &w;
  request = Request::kNone;
  SimTask* task = w.running;
  task->fiber->resume();

  if (task->fiber->finished()) {
    w.running = nullptr;
    if (task->implicit) {
      charge(w);
      if (hooks != nullptr) hooks->on_implicit_task_end(w.id);
      delete task;
      w.action = Worker::Action::kDone;
      ++done_count;
    } else {
      charge(w);
      if (hooks != nullptr) hooks->on_task_end(w.id, task->id);
      w.completed = task;
      w.action = Worker::Action::kComplete;
    }
    return;
  }

  switch (request) {
    case Request::kEnqueue:
      w.enqueue_task = request_task;
      w.action = Worker::Action::kServeEnqueue;
      break;

    case Request::kTaskwaitBlock: {
      w.running = nullptr;
      task->wait = SimTask::Wait::kTaskwait;
      w.time += config.costs.switch_local;
      const bool migratable = !task->implicit &&
                              task->attrs.binding == TaskBinding::kUntied &&
                              config.untied_migration;
      if (migratable) {
        // Untied tasks suspend to the implicit task right away so the
        // profiling state can migrate with the task (§IV-D).
        charge(w);
        if (hooks != nullptr) hooks->on_task_switch(w.id, kImplicitTaskId);
        untied_suspended.push_back(task);
      } else {
        w.tied_stack.push_back(task);
      }
      w.action = Worker::Action::kSchedule;
      break;
    }

    case Request::kBarrierBlock: {
      w.running = nullptr;
      task->wait = SimTask::Wait::kBarrier;
      const std::size_t episode = w.barrier_counter++;
      if (barrier_arrived.size() <= episode) {
        barrier_arrived.resize(episode + 1, 0);
      }
      ++barrier_arrived[episode];
      task->barrier_episode = episode;
      w.tied_stack.push_back(task);
      w.action = Worker::Action::kSchedule;
      break;
    }

    case Request::kInlineRun: {
      SimTask* child = request_task;
      task->wait = SimTask::Wait::kInline;
      task->inline_child = child;
      w.running = nullptr;
      w.tied_stack.push_back(task);
      start_task(w, child);
      break;
    }

    case Request::kNone:
      TASKPROF_ASSERT(false, "fiber yielded without a request");
  }
}

void SimRuntime::Impl::serve_enqueue(Worker& w) {
  // Seeded jitter before the lock request perturbs enqueue/enqueue and
  // enqueue/dequeue ordering between workers (zero without a policy).
  w.time += w.sched.jitter(config.costs.create_service);
  serve_lock(w, config.costs.create_service, w.domain);
  SimTask* rec = w.enqueue_task;
  w.enqueue_task = nullptr;
  // Both containers that will hold the pointer take a reference: the
  // central queue and the parent's queued-children index.
  queue.push_back(rec);
  rec->in_queue = true;
  rec->refs += 1;
  rec->parent->queued_children.push_back(rec);
  rec->refs += 1;
  ++outstanding;
  if (telemetry != nullptr) {
    telemetry->gauge_max(w.id, telemetry::Gauge::kRunQueueDepth,
                         queue.size());
  }
  w.action = Worker::Action::kRunFiber;  // resume the creator's fiber
}

void SimRuntime::Impl::serve_complete(Worker& w) {
  serve_lock(w, config.costs.complete_service, w.domain);
  SimTask* task = w.completed;
  w.completed = nullptr;
  SimTask* parent = task->parent;
  TASKPROF_ASSERT(parent != nullptr, "explicit task without parent");
  if (task->deferred) {
    TASKPROF_ASSERT(parent->pending_children > 0,
                    "child completion underflow");
    parent->pending_children -= 1;
    TASKPROF_ASSERT(outstanding > 0, "outstanding underflow");
    --outstanding;
  } else if (parent->wait == SimTask::Wait::kInline &&
             parent->inline_child == task) {
    parent->wait = SimTask::Wait::kReady;
    parent->inline_child = nullptr;
  }
  ++w.executed;
  count(w, telemetry::Counter::kTasksExecuted);
  // Return the fiber stack now; the record itself may outlive this point
  // (fire-and-forget children still reference their parent).
  task->fiber.reset();
  release_ref(task);
  release_ref(parent);  // implicit parents never hit zero (their own ref)
  w.action = Worker::Action::kSchedule;
}

void SimRuntime::Impl::resume_untied(Worker& w,
                                     std::vector<SimTask*>::iterator it) {
  SimTask* task = *it;
  untied_suspended.erase(it);
  task->wait = SimTask::Wait::kNone;
  w.time += config.costs.switch_local;
  if (task->home != w.id) {
    if (hooks != nullptr) hooks->on_task_migrate(task->home, w.id, task->id);
    task->home = w.id;
    ++w.migrations;
    count(w, telemetry::Counter::kMigrations);
  }
  charge(w);
  if (hooks != nullptr) hooks->on_task_switch(w.id, task->id);
  w.running = task;
  w.action = Worker::Action::kRunFiber;
}

void SimRuntime::Impl::schedule(Worker& w) {
  // Seeded virtual-time jitter: shifts which worker the discrete-event
  // loop serves next, shuffling lock-service and dequeue order without
  // breaking determinism (zero without a schedule policy).
  w.time += w.sched.jitter(config.costs.poll_interval);

  // 1. Resume the top suspended tied task if its block resolved (this is
  //    the nested-execution discipline of tied tasks).
  if (!w.tied_stack.empty() && eligible(*w.tied_stack.back())) {
    SimTask* task = w.tied_stack.back();
    w.tied_stack.pop_back();
    task->wait = SimTask::Wait::kNone;
    w.time += config.costs.switch_local;
    if (!task->implicit) {
      charge(w);
      if (hooks != nullptr) hooks->on_task_switch(w.id, task->id);
    }
    w.running = task;
    w.action = Worker::Action::kRunFiber;
    return;
  }

  // OpenMP tied-task scheduling constraint (and GCC-libgomp taskwait
  // behaviour): while an explicit tied task is suspended on this worker,
  // only its descendants may run here.  This bounds the suspended chain —
  // and thus the profiler's live instance-tree count, paper Table II — by
  // the task-tree depth.
  SimTask* constraint = nullptr;
  if (config.strict_taskwait_scheduling && !w.tied_stack.empty() &&
      !w.tied_stack.back()->implicit) {
    constraint = w.tied_stack.back();
  }

  if (constraint != nullptr) {
    // 2a. Newest queued direct child of the waiting task.
    if (SimTask* child = take_direct_child(constraint)) {
      charge_dequeue(w, *child);
      count_dequeue(w, *child);
      start_task(w, child);
      return;
    }
    // 2b. An eligible untied descendant may resume here.
    for (auto it = untied_suspended.begin(); it != untied_suspended.end();
         ++it) {
      if (eligible(**it) && is_descendant_of(*it, constraint)) {
        resume_untied(w, it);
        return;
      }
    }
    // 2c. Deeper descendants (e.g. children of a blocked untied child)
    //     may be buried in the global queue where only this worker is
    //     allowed to take them.  The full scan is expensive, so it only
    //     runs after several fruitless polls — it is what guarantees
    //     progress when every worker is constrained.
    if (++w.constraint_failures >= 8) {
      w.constraint_failures = 0;
      for (std::size_t back_offset = 0; back_offset < queue.size();
           ++back_offset) {
        const std::size_t index = queue.size() - 1 - back_offset;
        SimTask* candidate = queue[index];
        if (!candidate->in_queue ||
            !is_descendant_of(candidate, constraint)) {
          continue;
        }
        charge_dequeue(w, *candidate);
        queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(index));
        candidate->in_queue = false;
        release_ref(candidate);  // the queue's reference
        count_dequeue(w, *candidate);
        start_task(w, candidate);
        return;
      }
    }
    // Nothing runnable under the constraint: wait for the children (they
    // are running or suspended elsewhere).
    w.time += config.costs.poll_interval;
    return;
  }

  // 3. Unconstrained: resume any eligible untied task (may migrate here).
  //    A schedule policy picks uniformly among the eligible suspensions
  //    instead of always taking the oldest.
  {
    std::size_t eligible_count = 0;
    if (w.sched.attached()) {
      for (const SimTask* task : untied_suspended) {
        if (eligible(*task)) ++eligible_count;
      }
    }
    std::uint64_t skip =
        eligible_count > 0 ? w.sched.pick(eligible_count) : 0;
    for (auto it = untied_suspended.begin(); it != untied_suspended.end();
         ++it) {
      if (!eligible(**it)) continue;
      if (skip > 0) {
        --skip;
        continue;
      }
      resume_untied(w, it);
      return;
    }
  }

  // 4. Dequeue new work from the central queue (management-lock op; we
  //    are the globally earliest worker right now, so serving in dispatch
  //    order is time order).  Entries already taken through a parent's
  //    queued_children list are stale and skipped.
  auto pop_stale = [this](bool from_back) {
    while (!queue.empty()) {
      SimTask* end_task = from_back ? queue.back() : queue.front();
      if (end_task->in_queue) break;
      if (from_back) {
        queue.pop_back();
      } else {
        queue.pop_front();
      }
      release_ref(end_task);  // the queue's reference
    }
  };
  pop_stale(config.lifo_dequeue);
  if (!queue.empty()) {
    // The take is picked first and charged after (charge_dequeue):
    // selection reads only queue state, never the clock, so the
    // reordering is bit-identical on a flat machine — and a multi-domain
    // machine must know the task's creator before it can price the take.
    SimTask* task = nullptr;
    if (config.lifo_dequeue) {
      if (w.sched.attached()) {
        // Seeded perturbation: pick uniformly among the newest few live
        // entries — the legal reorderings a racy deque-top would exhibit.
        constexpr std::size_t kPerturbWindow = 8;
        std::size_t candidates[kPerturbWindow];
        std::size_t found = 0;
        for (std::size_t back_offset = 0;
             back_offset < queue.size() && found < kPerturbWindow;
             ++back_offset) {
          const std::size_t index = queue.size() - 1 - back_offset;
          if (queue[index]->in_queue) candidates[found++] = index;
        }
        TASKPROF_ASSERT(found > 0, "dequeue from stale-only queue");
        const std::size_t index = candidates[w.sched.pick(found)];
        task = queue[index];
        queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(index));
      }
      // Prefer the newest task this worker created (bounded scan from the
      // back): models the own-deque-first policy of real runtimes, which
      // keeps execution depth-first along the worker's own branch.
      constexpr std::size_t kAffinityScan = 32;
      const std::size_t limit = std::min(queue.size(), kAffinityScan);
      for (std::size_t back_offset = 0;
           task == nullptr && back_offset < limit; ++back_offset) {
        const std::size_t index = queue.size() - 1 - back_offset;
        if (queue[index]->in_queue && queue[index]->creator == w.id) {
          task = queue[index];
          queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(index));
        }
      }
      // Hierarchical victim selection: before crossing a domain
      // boundary, prefer the newest task created *in this worker's
      // domain* within the same scan window — the sim-side "probe your
      // own domain first" of the hierarchical policy.
      if (task == nullptr && topo_active && config.topology.hierarchical) {
        // Drain an open transfer lease before anything else: the lease
        // IS the claimed batch, so its remaining tasks are taken first.
        // Without this, creator-domain alternation at the queue top
        // would break every lease after one task and the batched
        // transfer would never amortize anything.  These two scans are
        // unbounded (unlike the racy-top windows above) because the
        // hierarchical policy keeps per-domain structure — finding the
        // newest task of a given domain is an O(1) sublist head in the
        // runtime this models, not a linear probe.
        if (w.lease_remaining > 0) {
          for (std::size_t back_offset = 0;
               task == nullptr && back_offset < queue.size(); ++back_offset) {
            const std::size_t index = queue.size() - 1 - back_offset;
            if (queue[index]->in_queue &&
                config.topology.domain_of(queue[index]->creator) ==
                    w.lease_domain) {
              task = queue[index];
              queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(index));
            }
          }
        }
        // Then prefer the newest task created *in this worker's domain*
        // — the sim-side "probe your own domain first".
        for (std::size_t back_offset = 0;
             task == nullptr && back_offset < queue.size(); ++back_offset) {
          const std::size_t index = queue.size() - 1 - back_offset;
          if (queue[index]->in_queue &&
              config.topology.domain_of(queue[index]->creator) == w.domain) {
            task = queue[index];
            queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(index));
          }
        }
      }
      if (task == nullptr) {
        task = queue.back();
        queue.pop_back();
      }
    } else {
      task = queue.front();
      queue.pop_front();
    }
    task->in_queue = false;
    release_ref(task);  // the queue's reference
    charge_dequeue(w, *task);
    count_dequeue(w, *task);
    start_task(w, task);
    return;
  }

  // 5. Idle: poll again later.
  w.time += config.costs.poll_interval;
}

void SimRuntime::Impl::dispatch(Worker& w) {
  switch (w.action) {
    case Worker::Action::kStart:
      start_implicit(w);
      return;
    case Worker::Action::kRunFiber:
      run_fiber(w);
      return;
    case Worker::Action::kServeEnqueue:
      serve_enqueue(w);
      return;
    case Worker::Action::kComplete:
      serve_complete(w);
      return;
    case Worker::Action::kSchedule:
      schedule(w);
      return;
    case Worker::Action::kDone:
      TASKPROF_ASSERT(false, "dispatch of a finished worker");
  }
}

SimRuntime::SimRuntime(SimConfig config)
    : impl_(std::make_unique<Impl>(config)) {}

SimRuntime::~SimRuntime() = default;

void SimRuntime::set_hooks(SchedulerHooks* hooks) { impl_->hooks = hooks; }

void SimRuntime::set_telemetry(telemetry::Registry* registry) {
  impl_->telemetry = registry;
}

Ticks SimRuntime::now() const { return impl_->base_time; }

const SimConfig& SimRuntime::config() const { return impl_->config; }

TeamStats SimRuntime::parallel(int num_threads, TaskFn body) {
  if (num_threads < 1) {
    throw std::invalid_argument("parallel: num_threads must be >= 1");
  }
  Impl& rt = *impl_;
  rt.nthreads = num_threads;
  rt.workers.clear();
  rt.workers.resize(static_cast<std::size_t>(num_threads));
  rt.clocks.clear();
  rt.clocks.reserve(static_cast<std::size_t>(num_threads));
  rt.topo_active = false;
  for (int i = 0; i < num_threads; ++i) {
    Worker& w = rt.workers[static_cast<std::size_t>(i)];
    w.id = static_cast<ThreadId>(i);
    w.time = rt.base_time;
    if (rt.config.policy != nullptr) {
      w.sched = rt.config.policy->stream(static_cast<ThreadId>(i));
    }
    w.domain = rt.config.topology.domain_of(static_cast<std::uint32_t>(i));
    if (w.domain != rt.workers[0].domain) rt.topo_active = true;
    rt.clocks.emplace_back(&w);
  }
  // Dispatch heap: all clocks start equal, so ascending ids already
  // satisfy the (time, id) heap order.
  rt.heap.assign(static_cast<std::size_t>(num_threads), 0);
  rt.heap_pos.assign(static_cast<std::size_t>(num_threads), -1);
  for (int i = 0; i < num_threads; ++i) {
    rt.heap_place(static_cast<std::size_t>(i), i);
  }
  rt.queue.clear();
  rt.untied_suspended.clear();
  rt.outstanding = 0;
  rt.next_id = 1;
  rt.barrier_arrived.clear();
  rt.single_claimed.clear();
  rt.lock_sharded =
      rt.topo_active && rt.config.topology.hierarchical;
  rt.locks.assign(rt.lock_sharded ? rt.config.topology.domains : 1,
                  MgmtLock{});
  for (MgmtLock& lock : rt.locks) lock.free_at = rt.base_time;
  rt.done_count = 0;
  rt.body = std::move(body);
  rt.context = std::make_unique<SimContext>(rt);
  if (rt.telemetry != nullptr) rt.telemetry->prepare(num_threads);

  if (rt.hooks != nullptr) rt.hooks->on_parallel_begin(num_threads);
  const Ticks t0 = rt.base_time;

  while (rt.done_count < num_threads) {
    // Dispatch the earliest non-finished worker (ties break on lowest id
    // for determinism): the heap root, re-keyed after every event.
    TASKPROF_ASSERT(!rt.heap.empty(), "no runnable worker");
    Worker& next = rt.workers[static_cast<std::size_t>(rt.heap.front())];
    rt.dispatch(next);
    if (next.action == Worker::Action::kDone) {
      rt.heap_remove(static_cast<int>(next.id));
    } else {
      rt.heap_update(static_cast<int>(next.id));
    }
  }

  Ticks end = t0;
  for (const Worker& w : rt.workers) end = std::max(end, w.time);
  rt.base_time = end;
  if (rt.hooks != nullptr) rt.hooks->on_parallel_end();

  TeamStats stats;
  stats.parallel_ticks = end - t0;
  for (const Worker& w : rt.workers) {
    stats.tasks_executed += w.executed;
    stats.tasks_created += w.created;
    stats.steals += w.steals;
    stats.migrations += w.migrations;
  }
  // Central-queue scheduling cannot probe an empty victim, so every
  // cross-worker dequeue is both the attempt and the success.
  stats.steal_attempts = stats.steals;
  TASKPROF_ASSERT(rt.outstanding == 0, "tasks outstanding after region");
  // Stale queue entries (tasks taken through a parent's queued-children
  // index) may remain; live ones may not.  Drop the queue's references.
  for (SimTask* leftover : rt.queue) {
    TASKPROF_ASSERT(!leftover->in_queue, "live task in queue after region");
    Impl::release_ref(leftover);
  }
  rt.queue.clear();
  return stats;
}

}  // namespace taskprof::rt
