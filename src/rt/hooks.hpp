// Scheduler event hooks: the interface between the task runtime and the
// measurement system.
//
// This is the piece the paper's authors had to synthesize with OPARI2
// source instrumentation because "the OpenMP runtime does not provide any
// standardized hooks" (§I).  Our runtimes emit the events natively — in
// particular the TaskSwitch events that make untied-task profiling
// possible (§IV-D2).
//
// All callbacks carry the id of the thread on which the event occurs and
// are invoked *on* that thread (real engine) or while that virtual worker
// is current (simulator).  Default implementations are no-ops so engines
// can run uninstrumented against a null or partial listener.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "common/clock.hpp"
#include "common/types.hpp"

namespace taskprof::rt {

/// Out-of-band scheduler condition worth surfacing to observers: why a
/// taskgraph replay abandoned its static schedule, or that a region fell
/// back to dynamic scheduling before it started.  Carried by
/// on_scheduler_note so traces and telemetry can tell fallbacks apart.
enum class SchedulerNote : std::uint8_t {
  kNone = 0,
  /// Region started in fallback mode because the recorded graph was
  /// marked stale (a prior region diverged or recording failed).
  kTaskgraphFallbackStale = 1,
  /// A replayed task spawned a child whose construct/shape did not match
  /// the recorded graph node (structure mismatch).
  kTaskgraphDivergeStructure = 2,
  /// A replayed task (or the root) produced fewer children than the
  /// recorded graph expected (short spawn).
  kTaskgraphDivergeShortSpawn = 3,
  /// The region went quiescent with recorded graph nodes never spawned
  /// (unspawned residue).
  kTaskgraphDivergeResidue = 4,
};

/// Stable short identifier for a SchedulerNote (used as a trace-event /
/// telemetry label).
inline const char* scheduler_note_name(SchedulerNote note) {
  switch (note) {
    case SchedulerNote::kNone:
      return "none";
    case SchedulerNote::kTaskgraphFallbackStale:
      return "taskgraph_fallback_stale";
    case SchedulerNote::kTaskgraphDivergeStructure:
      return "taskgraph_diverge_structure";
    case SchedulerNote::kTaskgraphDivergeShortSpawn:
      return "taskgraph_diverge_short_spawn";
    case SchedulerNote::kTaskgraphDivergeResidue:
      return "taskgraph_diverge_residue";
  }
  return "unknown";
}

class SchedulerHooks {
 public:
  virtual ~SchedulerHooks() = default;

  // -- Parallel-region / thread lifecycle --------------------------------

  /// A parallel region with `num_threads` threads is about to start.
  /// Called once, on the encountering thread, before workers run.
  virtual void on_parallel_begin(int num_threads) { (void)num_threads; }

  /// The parallel region completed (after the final implicit barrier).
  virtual void on_parallel_end() {}

  /// Thread `thread` starts its implicit task.  `clock` reads this
  /// thread's time source and stays valid until on_implicit_task_end.
  virtual void on_implicit_task_begin(ThreadId thread, const Clock& clock) {
    (void)thread;
    (void)clock;
  }
  virtual void on_implicit_task_end(ThreadId thread) { (void)thread; }

  // -- Task events (map 1:1 onto the paper's Fig. 12 algorithm) ----------

  /// Enter/exit of the task-creation region around create_task.  Both
  /// carry the region of the task construct being created (so creation
  /// time can be attributed per construct, paper Table III);
  /// on_task_create_end additionally carries the new instance's id.
  virtual void on_task_create_begin(ThreadId thread, RegionHandle region,
                                    std::int64_t parameter) {
    (void)thread;
    (void)region;
    (void)parameter;
  }
  virtual void on_task_create_end(ThreadId thread, TaskInstanceId created,
                                  RegionHandle region,
                                  std::int64_t parameter) {
    (void)thread;
    (void)created;
    (void)region;
    (void)parameter;
  }

  /// Instance `id` of task construct `region` starts executing.
  virtual void on_task_begin(ThreadId thread, TaskInstanceId id,
                             RegionHandle region, std::int64_t parameter) {
    (void)thread;
    (void)id;
    (void)region;
    (void)parameter;
  }

  /// The current instance `id` completes.
  virtual void on_task_end(ThreadId thread, TaskInstanceId id) {
    (void)thread;
    (void)id;
  }

  /// Thread resumes a previously suspended instance (or the implicit
  /// task, id == kImplicitTaskId).  Suspension itself is implied by the
  /// next on_task_begin / on_task_switch on that thread.
  virtual void on_task_switch(ThreadId thread, TaskInstanceId id) {
    (void)thread;
    (void)id;
  }

  /// A suspended *untied* instance moves from thread `from` to thread
  /// `to` (simulator only).  Fired before the on_task_switch on `to`.
  virtual void on_task_migrate(ThreadId from, ThreadId to,
                               TaskInstanceId id) {
    (void)from;
    (void)to;
    (void)id;
  }

  /// The running task declared `cost` ticks of virtual computation
  /// (simulator engines only: SimContext::work / replay equivalents).
  /// `cost` is the *effective* cost after any configured duration
  /// scaling, so observers see the same timings the virtual clock
  /// advances by.  The real engine never fires this — its computation
  /// is its own cost.
  virtual void on_task_work(ThreadId thread, Ticks cost) {
    (void)thread;
    (void)cost;
  }

  // -- Scheduling-point regions -------------------------------------------

  virtual void on_taskwait_begin(ThreadId thread) { (void)thread; }
  virtual void on_taskwait_end(ThreadId thread) { (void)thread; }
  virtual void on_barrier_begin(ThreadId thread, bool implicit) {
    (void)thread;
    (void)implicit;
  }
  virtual void on_barrier_end(ThreadId thread, bool implicit) {
    (void)thread;
    (void)implicit;
  }

  // -- User regions (compiler-instrumentation stand-in) -------------------

  virtual void on_region_enter(ThreadId thread, RegionHandle region,
                               std::int64_t parameter) {
    (void)thread;
    (void)region;
    (void)parameter;
  }
  virtual void on_region_exit(ThreadId thread, RegionHandle region) {
    (void)thread;
    (void)region;
  }

  // -- Scheduler diagnostics ----------------------------------------------

  /// The scheduler hit a noteworthy out-of-band condition (e.g. a
  /// taskgraph replay divergence).  `detail` is note-specific: the graph
  /// node / ordinal involved where known, 0 otherwise.  May fire on any
  /// worker thread, or on the encountering thread between
  /// on_parallel_begin and the workers' implicit-task begins.
  virtual void on_scheduler_note(ThreadId thread, SchedulerNote note,
                                 std::int64_t detail) {
    (void)thread;
    (void)note;
    (void)detail;
  }
};

/// Forwards every event to several listeners in order — e.g. a profiler
/// and a trace recorder at once, like Score-P's simultaneous profiling
/// and tracing.  Listeners must outlive the fanout.
class FanoutHooks final : public SchedulerHooks {
 public:
  FanoutHooks() = default;
  explicit FanoutHooks(std::initializer_list<SchedulerHooks*> listeners)
      : listeners_(listeners) {}

  void add(SchedulerHooks* listener) { listeners_.push_back(listener); }

  void on_parallel_begin(int num_threads) override {
    for (auto* l : listeners_) l->on_parallel_begin(num_threads);
  }
  void on_parallel_end() override {
    for (auto* l : listeners_) l->on_parallel_end();
  }
  void on_implicit_task_begin(ThreadId thread, const Clock& clock) override {
    for (auto* l : listeners_) l->on_implicit_task_begin(thread, clock);
  }
  void on_implicit_task_end(ThreadId thread) override {
    for (auto* l : listeners_) l->on_implicit_task_end(thread);
  }
  void on_task_create_begin(ThreadId thread, RegionHandle region,
                            std::int64_t parameter) override {
    for (auto* l : listeners_) {
      l->on_task_create_begin(thread, region, parameter);
    }
  }
  void on_task_create_end(ThreadId thread, TaskInstanceId created,
                          RegionHandle region,
                          std::int64_t parameter) override {
    for (auto* l : listeners_) {
      l->on_task_create_end(thread, created, region, parameter);
    }
  }
  void on_task_begin(ThreadId thread, TaskInstanceId id, RegionHandle region,
                     std::int64_t parameter) override {
    for (auto* l : listeners_) l->on_task_begin(thread, id, region, parameter);
  }
  void on_task_end(ThreadId thread, TaskInstanceId id) override {
    for (auto* l : listeners_) l->on_task_end(thread, id);
  }
  void on_task_switch(ThreadId thread, TaskInstanceId id) override {
    for (auto* l : listeners_) l->on_task_switch(thread, id);
  }
  void on_task_migrate(ThreadId from, ThreadId to,
                       TaskInstanceId id) override {
    for (auto* l : listeners_) l->on_task_migrate(from, to, id);
  }
  void on_task_work(ThreadId thread, Ticks cost) override {
    for (auto* l : listeners_) l->on_task_work(thread, cost);
  }
  void on_taskwait_begin(ThreadId thread) override {
    for (auto* l : listeners_) l->on_taskwait_begin(thread);
  }
  void on_taskwait_end(ThreadId thread) override {
    for (auto* l : listeners_) l->on_taskwait_end(thread);
  }
  void on_barrier_begin(ThreadId thread, bool implicit) override {
    for (auto* l : listeners_) l->on_barrier_begin(thread, implicit);
  }
  void on_barrier_end(ThreadId thread, bool implicit) override {
    for (auto* l : listeners_) l->on_barrier_end(thread, implicit);
  }
  void on_region_enter(ThreadId thread, RegionHandle region,
                       std::int64_t parameter) override {
    for (auto* l : listeners_) l->on_region_enter(thread, region, parameter);
  }
  void on_region_exit(ThreadId thread, RegionHandle region) override {
    for (auto* l : listeners_) l->on_region_exit(thread, region);
  }
  void on_scheduler_note(ThreadId thread, SchedulerNote note,
                         std::int64_t detail) override {
    for (auto* l : listeners_) l->on_scheduler_note(thread, note, detail);
  }

 private:
  std::vector<SchedulerHooks*> listeners_;
};

}  // namespace taskprof::rt
