// Chase–Lev lock-free work-stealing deque (Chase & Lev, SPAA 2005).
//
// One owner thread pushes and pops at the *bottom* (LIFO, depth-first —
// the policy that bounds concurrently active task instances, paper §V-B);
// any other thread steals from the *top* (FIFO, oldest task first).  The
// circular buffer grows on demand; outgrown buffers are retired, not
// freed, because a concurrent thief may still hold a stale buffer
// pointer — they are reclaimed when the deque is destroyed.
//
// Memory orderings follow Lê et al., "Correct and Efficient Work-Stealing
// for Weak Memory Models" (PPoPP 2013), with one deliberate deviation:
// the bottom/top handshake in pop()/steal() uses seq_cst *accesses*
// instead of standalone seq_cst fences.  ThreadSanitizer does not model
// std::atomic_thread_fence, so the fence formulation cannot be
// machine-checked; the access formulation can, at the cost of one
// store-load barrier per pop — negligible against a task execution.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace taskprof::rt {

class StealDeque {
 public:
  /// `initial_capacity` is rounded up to a power of two (minimum 2).
  explicit StealDeque(std::size_t initial_capacity = 64);
  ~StealDeque();

  StealDeque(const StealDeque&) = delete;
  StealDeque& operator=(const StealDeque&) = delete;

  /// Owner only.  Publishes `item`: everything the owner wrote before the
  /// push is visible to whichever thread pops or steals it.
  void push(void* item);

  /// Owner only.  Takes the most recently pushed item, or nullptr when
  /// the deque is empty (including losing the last item to a thief).
  void* pop();

  /// Any thread.  Takes the oldest item, or nullptr when the deque is
  /// empty *or* the claim race was lost — callers treat nullptr as "try
  /// elsewhere / retry", never as "guaranteed empty".
  void* steal();

  /// Any thread.  Takes up to `max_items` oldest items into `out`
  /// (FIFO order) and returns how many were taken; 0 means empty or the
  /// first claim race was lost.  Used by hierarchical stealing to
  /// amortize a cross-domain probe over several tasks; items are claimed
  /// one top-CAS at a time (see the .cpp note on why a multi-slot claim
  /// would be unsound), so concurrent pop/steal stay correct.
  std::size_t steal_batch(void** out, std::size_t max_items);

  /// Approximate (racy) emptiness check; exact when quiescent.
  [[nodiscard]] bool empty() const noexcept;

  /// Approximate current depth (racy; exact on the owner thread between
  /// its own operations).  Telemetry reads this for the deque high-water
  /// gauge.
  [[nodiscard]] std::size_t size() const noexcept {
    const std::int64_t bottom = bottom_.load(std::memory_order_relaxed);
    const std::int64_t top = top_.load(std::memory_order_relaxed);
    return bottom > top ? static_cast<std::size_t>(bottom - top) : 0;
  }

  /// Current buffer capacity (racy; exact on the owner thread).
  [[nodiscard]] std::size_t capacity() const noexcept;

  /// Number of buffer growths since construction (owner-read statistic).
  [[nodiscard]] std::uint64_t grows() const noexcept { return grows_; }

 private:
  struct Buffer;

  Buffer* grow(Buffer* old, std::int64_t top, std::int64_t bottom);

  // top_ and bottom_ sit on separate cache lines: thieves hammer top_
  // with CAS while the owner cycles bottom_ on every push/pop.
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  alignas(64) std::atomic<Buffer*> buffer_{nullptr};
  Buffer* retired_ = nullptr;  ///< owner-only chain of outgrown buffers
  std::uint64_t grows_ = 0;
};

}  // namespace taskprof::rt
