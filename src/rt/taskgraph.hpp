// Taskgraph record-and-replay: a near-zero-contention static scheduler
// mode for recurring task workloads (DESIGN.md §12).
//
// Iterative programs (sparselu-style sweeps, stencil updates) spawn the
// same task graph every iteration.  The dynamic schedulers pay the full
// spawn price each time: a slab allocation, a deque push, and — for every
// idle thread — steal probes against other workers' deques.  This module
// removes all three for the steady state:
//
//  * a *recording* region (the first parallel region after selecting
//    SchedulerKind::kTaskGraph) runs on the ordinary Chase–Lev core while
//    a TaskGraphRecorder captures every deferred spawn: creation-site
//    region, task parameter, parent link, spawn ordinal within the
//    parent, and a per-task duration estimate measured around the body;
//  * freeze() turns the recording into an immutable TaskGraph — nodes in
//    recorded-spawn order (so a parent's index always precedes its
//    children's) plus a CSR child index ordered by spawn ordinal;
//  * StaticSchedule::build partitions the node set into per-worker run
//    lists: contiguous blocks of nodes, each block assigned to the
//    least-loaded worker by accumulated recorded duration.  Every run
//    list is ascending in node index, which keeps it consistent with
//    spawn order and therefore topologically valid;
//  * *replay* regions re-execute the program, but create_task matches
//    each deferred spawn against the recorded graph by (parent node,
//    spawn ordinal) and — on a match — publishes the task body straight
//    into the preallocated slot for that node.  Workers consume their own
//    run list through a cursor: one acquire load per poll, no deque
//    pushes, no steals, no allocation.
//
// Divergence (the program spawned something the recording did not
// predict) is detected at the creation site: region or parameter
// mismatch, or more spawns than recorded.  The offending spawn and every
// later spawn of that parent fall back to the ordinary Chase–Lev deques
// within the same region, the recorded subtrees that can no longer be
// legitimately spawned are cancelled so no cursor blocks on them, and
// the region is marked stale so subsequent regions run fully dynamic
// (telemetry: taskgraph_divergences / taskgraph_fallbacks).
//
// Thread-safety contract: recording serializes through a mutex (the
// recording region is the cold path, by design).  Replay-side slot
// publication is a release store by the unique spawner; consumption is
// an acquire load by the unique owner worker.  A slot is cancelled only
// by a thread that has structurally excluded every possible filler (the
// parent diverged, ended short, or is itself cancelled), so the
// kEmpty→kFilled and kEmpty→kCancelled transitions never race.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace taskprof::rt {

/// Parent key of nodes spawned by an implicit (per-thread root) task.
/// Root spawns draw ordinals from one shared atomic because any worker's
/// implicit task may produce them in any interleaving.
inline constexpr std::uint32_t kGraphRoot = 0xFFFFFFFEu;

/// "No graph node": a dynamically scheduled task (divergence fallback,
/// undeferred descendants) or a lookup miss.
inline constexpr std::uint32_t kGraphNone = 0xFFFFFFFFu;

/// One recorded deferred spawn.  Immutable after TaskGraph::freeze.
struct TaskGraphNode {
  RegionHandle region = kInvalidRegion;  ///< creation-site region
  std::int64_t parameter = kNoParameter; ///< task parameter (e.g. depth)
  std::uint32_t parent = kGraphRoot;     ///< parent node or kGraphRoot
  std::uint32_t ordinal = 0;             ///< spawn index within the parent
  Ticks duration = 0;                    ///< measured body ticks (estimate)
};

/// The immutable recorded graph.  Node indices are recorded-spawn order,
/// so parent < child for every edge; child rows are ordinal-ordered.
class TaskGraph {
 public:
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] const TaskGraphNode& node(std::uint32_t i) const noexcept {
    return nodes_[i];
  }

  /// Number of recorded children of `parent_key` (a node index or
  /// kGraphRoot).
  [[nodiscard]] std::uint32_t child_count(std::uint32_t parent_key) const
      noexcept {
    const auto& row = child_row(parent_key);
    return static_cast<std::uint32_t>(row.second - row.first);
  }

  /// Node index of `parent_key`'s child with spawn ordinal `ordinal`, or
  /// kGraphNone when the recording has no such spawn.
  [[nodiscard]] std::uint32_t child_at(std::uint32_t parent_key,
                                       std::uint32_t ordinal) const noexcept {
    const auto& row = child_row(parent_key);
    if (ordinal >= static_cast<std::uint32_t>(row.second - row.first)) {
      return kGraphNone;
    }
    return child_index_[row.first + ordinal];
  }

  /// True when the spawn (parent_key, ordinal, region, parameter) matches
  /// the recording; the matched node index lands in `node_out`.
  [[nodiscard]] bool match_spawn(std::uint32_t parent_key,
                                 std::uint32_t ordinal, RegionHandle region,
                                 std::int64_t parameter,
                                 std::uint32_t* node_out) const noexcept {
    const std::uint32_t n = child_at(parent_key, ordinal);
    if (n == kGraphNone) return false;
    const TaskGraphNode& rec = nodes_[n];
    if (rec.region != region || rec.parameter != parameter) return false;
    *node_out = n;
    return true;
  }

  /// Sum of recorded durations (0 when the clock never advanced).
  [[nodiscard]] Ticks total_duration() const noexcept {
    return total_duration_;
  }

  /// Thread count of the recording region (informational).
  [[nodiscard]] int recorded_threads() const noexcept {
    return recorded_threads_;
  }

  /// True when the recording region ever executed a taskwait from an
  /// implicit task.  When it did not, replay regions skip the parent
  /// child-count RMWs for root-spawned static tasks ("detached" spawns):
  /// nothing will ever wait on that counter, and the region barrier
  /// tracks their completion through the batched outstanding delta.
  [[nodiscard]] bool root_taskwait() const noexcept {
    return root_taskwait_;
  }

  /// True when every recorded root spawn came from one thread (the
  /// single-producer idiom: `if (ctx.single()) { spawn loop }`).  Replay
  /// then claims root ordinals in per-thread blocks — one shared RMW per
  /// block instead of per spawn.  Multi-producer recordings keep the
  /// per-spawn claim: block claiming would punch ordinal holes into an
  /// interleaving that per-spawn claims can still match.
  [[nodiscard]] bool single_root_producer() const noexcept {
    return single_root_producer_;
  }

 private:
  friend class TaskGraphRecorder;

  [[nodiscard]] std::pair<std::size_t, std::size_t> child_row(
      std::uint32_t parent_key) const noexcept {
    if (parent_key == kGraphRoot) {
      return {root_begin_, child_index_.size()};
    }
    return {row_begin_[parent_key], row_begin_[parent_key + 1]};
  }

  std::vector<TaskGraphNode> nodes_;
  /// CSR storage: per-parent child rows (ordinal-ordered), explicit
  /// parents first, then the root row at [root_begin_, end).
  std::vector<std::uint32_t> child_index_;
  std::vector<std::size_t> row_begin_;  ///< size() == nodes_.size() + 1
  std::size_t root_begin_ = 0;
  Ticks total_duration_ = 0;
  int recorded_threads_ = 0;
  bool root_taskwait_ = false;
  bool single_root_producer_ = true;
};

/// Mutex-serialized spawn/duration capture for the recording region.
/// Recording rides on the dynamic scheduler, so contention here only
/// costs the one region that records — the price of admission for the
/// allocation-free replay.
class TaskGraphRecorder {
 public:
  explicit TaskGraphRecorder(int num_threads) : threads_(num_threads) {}

  /// Record one deferred spawn; returns the new node's index.  The
  /// caller passes the parent's node index (or kGraphRoot) — the ordinal
  /// is derived from how many children that parent has recorded so far.
  /// `tid` is the spawning worker: root spawns coming from a single
  /// thread enable the replay's batched ordinal claims (see
  /// TaskGraph::single_root_producer).
  std::uint32_t record_spawn(std::uint32_t parent_key, RegionHandle region,
                             std::int64_t parameter, ThreadId tid);

  /// Attach the measured body duration to a recorded node.
  void record_duration(std::uint32_t node, Ticks ticks);

  /// Note a taskwait executed from an implicit task: replay must then
  /// keep full child accounting on implicit records (see
  /// TaskGraph::root_taskwait).
  void note_root_taskwait();

  [[nodiscard]] std::size_t size() const;

  /// Build the immutable graph (CSR child index, totals).  The recorder
  /// is spent afterwards.
  [[nodiscard]] std::unique_ptr<TaskGraph> freeze();

 private:
  mutable std::mutex mu_;
  std::vector<TaskGraphNode> nodes_;
  std::vector<std::uint32_t> child_counts_;  ///< next ordinal per node
  std::uint32_t root_children_ = 0;          ///< next root ordinal
  int threads_ = 0;
  bool root_taskwait_ = false;
  ThreadId root_spawner_ = 0;      ///< first thread to spawn from root
  bool root_seen_ = false;         ///< any root spawn recorded yet
  bool root_multi_ = false;        ///< root spawns from >1 thread
};

/// Duration-weighted static partition of a TaskGraph: one ascending run
/// list per worker.  Rebuilt only when the replay thread count changes.
struct StaticSchedule {
  std::vector<std::vector<std::uint32_t>> run_lists;  ///< per worker
  int threads = 0;

  /// Greedy blocked partition: walk nodes in index order in blocks of
  /// `block` and give each block to the least-loaded worker (load =
  /// accumulated recorded duration, weight 1 per node when the recording
  /// clock never advanced).  Blocking keeps sibling leaves together —
  /// cache locality and fewer cross-worker dependence edges — while the
  /// greedy choice balances total work.
  ///
  /// Run lists are owner-only (that is what makes the replay poll a
  /// single acquire load), so there is no stealing to rebalance an
  /// oversubscribed team: every list's owner must be scheduled by the OS
  /// before its share finishes.  Spreading work across more lists than
  /// the machine has hardware threads therefore only adds context-switch
  /// serialization.  `active_limit` caps how many lists receive work —
  /// 0 means "auto" (hardware_concurrency); the remaining workers get
  /// empty lists and simply help any dynamic fallback tasks.
  [[nodiscard]] static StaticSchedule build(const TaskGraph& graph,
                                            int num_threads,
                                            std::uint32_t block = 16,
                                            int active_limit = 0);
};

/// Per-region replay coordination: one slot per graph node plus the
/// shared root-spawn ordinal.  The engine owns the cursor (per-worker,
/// reset each region); this class owns everything shared.
class ReplayState {
 public:
  enum : std::uint8_t { kEmpty = 0, kFilled = 1, kCancelled = 2 };

  /// Rebind to a (graph, schedule) pair and clear every slot.  Runs
  /// single-threaded at region entry; O(nodes).
  void bind(const TaskGraph* graph, const StaticSchedule* schedule);

  /// Claim the next implicit-task spawn ordinal (shared across workers).
  [[nodiscard]] std::uint32_t next_root_ordinal() noexcept {
    return root_ordinal_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Claim `count` consecutive root ordinals at once (single-producer
  /// recordings only); returns the first.  The claimer owns the whole
  /// range and must cancel any recorded node at an ordinal it ends up
  /// not using (see the engine's end-of-body hole sweep).
  [[nodiscard]] std::uint32_t claim_root_ordinals(
      std::uint32_t count) noexcept {
    return root_ordinal_.fetch_add(count, std::memory_order_relaxed);
  }

  /// Root ordinals claimed so far.  Exact once every possible claimer
  /// has synchronized with the reader (e.g. the last implicit task body
  /// to finish, via the engine's bodies_done acquire).
  [[nodiscard]] std::uint32_t root_ordinals_claimed() const noexcept {
    return root_ordinal_.load(std::memory_order_relaxed);
  }

  /// Publish a matched spawn into its node slot.  A slot is one state
  /// byte — the node index itself names the engine's preallocated record,
  /// so nothing else needs storing and 64 slots share a cache line
  /// (16 KB of slot traffic per million tasks instead of 256 KB).  The
  /// release store pairs with the owner's acquire poll and publishes the
  /// record fields plus every relaxed bookkeeping increment made before
  /// it.
  void publish(std::uint32_t node) noexcept {
    slots_[node].store(kFilled, std::memory_order_release);
  }

  /// Owner-side poll: next runnable node index from worker `w`'s run
  /// list, advancing `cursor` past it (and past cancelled slots).
  /// Returns kGraphNone while the head-of-line slot is still empty — run
  /// lists are consumed strictly in order, which is what makes them
  /// topologically safe without per-task dependence lists.
  [[nodiscard]] std::uint32_t poll(ThreadId w, std::size_t& cursor) noexcept {
    const std::vector<std::uint32_t>& list = schedule_->run_lists[w];
    while (cursor < list.size()) {
      const std::uint32_t node = list[cursor];
      const std::uint8_t st = slots_[node].load(std::memory_order_acquire);
      if (st == kFilled) {
        ++cursor;
        return node;
      }
      if (st == kCancelled) {
        ++cursor;
        continue;
      }
      return kGraphNone;  // head-of-line not spawned yet
    }
    return kGraphNone;
  }

  /// Cancel the recorded subtrees rooted at `parent_key`'s children with
  /// ordinal >= `first_ordinal` (divergence / short spawn: those ordinals
  /// can no longer be legitimately claimed, so their slots would block
  /// cursors forever).  Returns the number of nodes newly cancelled:
  /// cancellation claims each slot kEmpty->kCancelled with a CAS, so
  /// overlapping cancel calls count every node exactly once.  Cancelled
  /// nodes were never published, so they never entered the engine's
  /// outstanding balance.
  std::size_t cancel_children_from(std::uint32_t parent_key,
                                   std::uint32_t first_ordinal) noexcept;

  /// Cancel one recorded subtree (a mismatched spawn consumed its root's
  /// ordinal).  Returns the number of nodes newly cancelled (exact-once,
  /// as above).
  std::size_t cancel_subtree(std::uint32_t node) noexcept;

  /// Slots still kEmpty (post-region, quiescent): >0 means the program
  /// spawned less than recorded somewhere the engine could not observe
  /// (e.g. root short-spawn) — a divergence for staleness purposes.
  [[nodiscard]] std::size_t unspawned_count() const noexcept;

 private:
  const TaskGraph* graph_ = nullptr;
  const StaticSchedule* schedule_ = nullptr;
  std::unique_ptr<std::atomic<std::uint8_t>[]> slots_;
  std::size_t slot_count_ = 0;
  alignas(64) std::atomic<std::uint32_t> root_ordinal_{0};
};

}  // namespace taskprof::rt
