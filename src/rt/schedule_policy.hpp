// Seeded schedule perturbation for both task engines.
//
// A SchedulePolicy wraps one 64-bit seed.  Each worker thread derives its
// own ScheduleStream (an independent xoshiro256** sequence split from the
// seed by thread id), and the engines consult that stream at every
// scheduling point: before pushing a deferred task, when choosing between
// popping locally and stealing, when picking a steal victim, and inside
// taskwait/barrier wait loops.  On the deterministic sim engine the same
// seed therefore reproduces one interleaving exactly; on the real-thread
// engine it biases the race outcomes strongly enough that a failing seed
// usually reproduces and can be shrunk (see src/check/fuzz.hpp).
//
// A default-constructed ScheduleStream is *detached*: every query returns
// the neutral answer (never yield, rotation 0, pop-before-steal, jitter 0),
// so engines built without a policy behave bit-identically to before this
// hook existed.  The policy object itself is immutable and may be shared
// across threads; each ScheduleStream belongs to exactly one worker.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace taskprof::rt {

/// Where in the engine a perturbation decision is being made.  Streams mix
/// the point into each draw so that, e.g., adding a new yield site does not
/// silently shift every later decision of an unrelated kind.
enum class SchedulePoint : std::uint8_t {
  kTaskCreate = 1,   ///< producer about to publish a deferred task
  kAcquire = 2,      ///< worker about to look for runnable work
  kTaskwait = 3,     ///< inside a taskwait wait loop
  kBarrier = 4,      ///< inside a barrier wait loop
};

/// Per-thread decision stream.  Value type; default state is detached.
class ScheduleStream {
 public:
  ScheduleStream() = default;

  [[nodiscard]] bool attached() const noexcept { return attached_; }

  /// True (~1 in 8 draws) when the worker should yield the OS thread (real
  /// engine) before acting at `point`.
  [[nodiscard]] bool yield_before(SchedulePoint point) noexcept {
    if (!attached_) return false;
    return (draw(point) & 7u) == 0;
  }

  /// True (~1 in 4 draws) when the worker should try stealing *before*
  /// popping its own queue, inverting the LIFO-local bias.
  [[nodiscard]] bool steal_first() noexcept {
    if (!attached_) return false;
    return (draw(SchedulePoint::kAcquire) & 3u) == 0;
  }

  /// Rotation applied to the victim scan order: the worker starts probing
  /// at neighbour offset 1 + rotation instead of always offset 1.  Returns
  /// a value in [0, nthreads - 2]; 0 (also the detached answer) keeps the
  /// historical clockwise order.
  [[nodiscard]] std::uint32_t victim_rotation(std::uint32_t nthreads) noexcept {
    if (!attached_ || nthreads <= 2) return 0;
    return static_cast<std::uint32_t>(
        draw(SchedulePoint::kAcquire) % (nthreads - 1));
  }

  /// Uniform pick in [0, bound).  Used by the sim engine to choose among
  /// equally-eligible queued tasks or resumable untied suspensions.
  [[nodiscard]] std::uint64_t pick(std::uint64_t bound) noexcept {
    if (!attached_ || bound <= 1) return 0;
    return draw(SchedulePoint::kAcquire) % bound;
  }

  /// Virtual-time jitter in [0, max) ticks, zero about half the time.  The
  /// sim engine adds this at scheduling points to shuffle which worker the
  /// discrete-event loop serves next.
  [[nodiscard]] Ticks jitter(Ticks max) noexcept {
    if (!attached_ || max <= 0) return 0;
    const std::uint64_t raw = draw(SchedulePoint::kAcquire);
    if ((raw & 1u) != 0) return 0;
    return static_cast<Ticks>((raw >> 1) % static_cast<std::uint64_t>(max));
  }

 private:
  friend class SchedulePolicy;
  explicit ScheduleStream(std::uint64_t seed) : rng_(seed), attached_(true) {}

  std::uint64_t draw(SchedulePoint point) noexcept {
    // Golden-ratio multiples decorrelate the same underlying draw across
    // point kinds without a second RNG state.
    return rng_.next() ^ (0x9e3779b97f4a7c15ULL *
                          static_cast<std::uint64_t>(point));
  }

  Xoshiro256 rng_{0};
  bool attached_ = false;
};

/// Immutable seed holder shared by all workers of one runtime instance.
/// Must outlive the runtime that references it (RealConfig / SimConfig
/// store a raw pointer).
class SchedulePolicy {
 public:
  explicit SchedulePolicy(std::uint64_t seed) noexcept : seed_(seed) {}

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Derive the decision stream for one worker.  Streams for distinct
  /// thread ids are statistically independent; the same (seed, thread)
  /// pair always yields the same stream.
  [[nodiscard]] ScheduleStream stream(ThreadId thread) const noexcept {
    SplitMix64 split(seed_);
    std::uint64_t derived = split.next();
    for (ThreadId i = 0; i <= thread; ++i) derived = split.next();
    return ScheduleStream(derived);
  }

 private:
  std::uint64_t seed_;
};

}  // namespace taskprof::rt
