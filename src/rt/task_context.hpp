// The tasking programming interface (the OpenMP-runtime stand-in).
//
// Task programs — the BOTS kernels, the examples, the tests — are written
// against TaskContext, which models the OpenMP 3.0 constructs the paper's
// profiler observes: task creation (tied/untied), taskwait, barrier, and a
// single construct.  Two engines implement it:
//
//  * rt::RealRuntime  — std::thread workers, wall-clock time
//  * rt::SimRuntime   — discrete-event virtual-time SMP on fibers
//
// so one kernel source runs on both.  ctx.work(cost) declares the virtual
// cost of computation for the simulator; the real engine ignores it (the
// computation itself is the cost there).
#pragma once

#include <cstdint>
#include <functional>

#include "common/types.hpp"

namespace taskprof::rt {

/// Tied tasks resume only on the thread that started them; untied tasks
/// may migrate (paper §IV-D).  The real engine demotes untied to tied —
/// the same work-around the paper applies ("our instrumentation makes all
/// tasks tied by default"); the simulator implements true migration.
enum class TaskBinding : std::uint8_t { kTied, kUntied };

/// Per-task-construct attributes, set at creation.
struct TaskAttrs {
  /// Region of the task construct (register with the RegionRegistry).
  RegionHandle region = kInvalidRegion;
  /// Optional parameter (e.g. recursion depth) for parameter profiling
  /// (paper Table IV); kNoParameter for none.
  std::int64_t parameter = kNoParameter;
  TaskBinding binding = TaskBinding::kTied;
  /// Execute immediately at the creation point instead of deferring
  /// (OpenMP `if(false)` semantics).
  bool undeferred = false;
};

class TaskContext;

/// A task body.  Invoked with the context of the executing thread.
using TaskFn = std::function<void(TaskContext&)>;

/// Execution context handed to every task body (implicit and explicit).
///
/// All methods must be called from the task body they were handed to;
/// contexts must not be stored beyond the body's scope.
class TaskContext {
 public:
  virtual ~TaskContext() = default;

  /// Create an explicit task.  Deferred tasks are enqueued for any thread;
  /// undeferred tasks run to completion inside this call.
  virtual void create_task(TaskFn fn, TaskAttrs attrs) = 0;

  /// Wait until all *direct* children of the current task have completed.
  /// A task scheduling point: the thread may execute other tasks here.
  virtual void taskwait() = 0;

  /// Team barrier; also drains all outstanding explicit tasks (like the
  /// implicit barrier at the end of a parallel region).  Must be called
  /// from the implicit task, by every thread of the team.
  virtual void barrier() = 0;

  /// OpenMP `single` (without the implied barrier): returns true on
  /// exactly one thread per encounter.  Must be called from the implicit
  /// task by every thread, in the same sequence on each.
  virtual bool single() = 0;

  /// Declare `cost` ticks of virtual computation.  Advances the virtual
  /// clock in the simulator; no-op on the real engine.
  virtual void work(Ticks cost) = 0;

  /// Enter/exit an instrumented user region (compiler-instrumentation
  /// stand-in).  No-ops when no measurement hooks are attached.
  virtual void region_enter(RegionHandle region,
                            std::int64_t parameter = kNoParameter) = 0;
  virtual void region_exit(RegionHandle region) = 0;

  /// Thread executing the current task fragment (0-based within team).
  [[nodiscard]] virtual ThreadId thread_id() const = 0;

  /// Team size of the enclosing parallel region.
  [[nodiscard]] virtual int num_threads() const = 0;
};

/// RAII helper for region_enter/region_exit.
class ScopedRegion {
 public:
  ScopedRegion(TaskContext& ctx, RegionHandle region,
               std::int64_t parameter = kNoParameter)
      : ctx_(ctx), region_(region) {
    ctx_.region_enter(region_, parameter);
  }
  ~ScopedRegion() { ctx_.region_exit(region_); }
  ScopedRegion(const ScopedRegion&) = delete;
  ScopedRegion& operator=(const ScopedRegion&) = delete;

 private:
  TaskContext& ctx_;
  RegionHandle region_;
};

}  // namespace taskprof::rt
