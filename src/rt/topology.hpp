// Machine-topology model for locality-aware scheduling.
//
// The paper's evaluation machine (2x quad-core Nehalem) is small enough
// that flat random stealing works; on multi-socket many-core machines the
// steal cost is *non-uniform* — a steal that crosses a socket pays
// interconnect latency and cold-cache refills — and hierarchical,
// locality-aware victim selection is what keeps fine-grained tasking
// scaling (Wang et al., arXiv 2502.05293).  A Topology describes such a
// machine as `domains` locality domains (sockets/NUMA nodes) of
// `workers_per_domain` workers each, plus the per-edge costs the sim
// engine charges and the escalation policy both engines follow:
//
//  * idle workers probe victims in their *own* domain first (randomized
//    within-domain rotation, seeded-deterministic under a SchedulePolicy);
//  * only after `local_miss_limit` consecutive empty local sweeps does a
//    worker escalate to remote domains;
//  * a remote steal takes a *batch* from the top of the victim's deque
//    (steal-half, capped at `steal_batch_max`) so the cross-domain
//    penalty is amortized over several tasks.
//
// A default-constructed Topology is flat (one domain): both engines
// behave bit-identically to the pre-topology code in that case.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "common/types.hpp"

namespace taskprof::rt {

struct Topology {
  /// Locality domains (sockets).  1 = flat machine, no hierarchy.
  std::uint32_t domains = 1;
  /// Workers per domain.  0 is treated as "all workers in one block"
  /// (only meaningful with domains == 1).
  std::uint32_t workers_per_domain = 0;
  /// Victim-selection policy: true = hierarchical (local-first probing,
  /// escalation, batched remote steals); false = flat random stealing on
  /// the same machine.  Only meaningful with domains > 1 — the bench A/Bs
  /// the two policies on one simulated machine.
  bool hierarchical = true;

  // --- per-edge cost model (sim engine; ticks are virtual ns) -----------
  /// Latency of a dequeue/steal that crosses a domain boundary: the
  /// interconnect round trip for the remote deque's cache lines.
  Ticks remote_steal_latency = 1'200;
  /// Cold-cache refill charged when a worker executes a task created in
  /// another domain (first touch of the task's data crosses the
  /// interconnect regardless of how the task got here).
  Ticks cache_affinity_cost = 300;
  /// Contention weight of a *remote* competitor on a management-lock
  /// operation: coherence traffic for the lock's cache line is costlier
  /// across the interconnect, so remote competitors inflate the service
  /// time more than local ones (1.0 = same as local).
  double remote_contention_weight = 2.0;

  // --- escalation policy (real engine; sim batch width) -----------------
  /// Consecutive empty local sweeps before a worker escalates to remote
  /// domains.
  std::uint32_t local_miss_limit = 2;
  /// Max tasks taken per cross-domain steal (the steal-half budget cap).
  std::uint32_t steal_batch_max = 8;

  /// True when the machine has more than one locality domain.
  [[nodiscard]] bool multi_domain() const noexcept { return domains > 1; }

  /// Domain of `worker`.  Workers are assigned in contiguous blocks of
  /// `workers_per_domain`; ids past domains * workers_per_domain wrap
  /// (block round-robin), so the mapping is total for any worker count.
  [[nodiscard]] std::uint32_t domain_of(std::uint32_t worker) const noexcept {
    if (domains <= 1 || workers_per_domain == 0) return 0;
    return (worker / workers_per_domain) % domains;
  }

  /// domains * workers_per_domain — the worker count the spec names.
  [[nodiscard]] std::uint32_t total_workers() const noexcept {
    return domains * (workers_per_domain == 0 ? 1 : workers_per_domain);
  }

  /// Parse a "DxW" spec ("4x16" = 4 domains x 16 workers).  Returns
  /// nullopt on malformed input or zero counts; both factors are capped
  /// at 4096 (a spec, not a resource claim).
  static std::optional<Topology> parse(std::string_view spec);
};

}  // namespace taskprof::rt
