// Real-thread tasking engine.
//
// N std::thread workers execute a parallel region; explicit tasks go to
// per-thread deques (owner: LIFO, thieves: FIFO).  Tied-task semantics are
// realized by *nested execution*: a thread reaching a scheduling point
// (taskwait, barrier) runs further tasks on its own stack, so a suspended
// task resumes exactly where the nested task finishes — on the same
// thread.  This is how untied-less OpenMP runtimes behave and produces the
// interleaved event streams of the paper's Fig. 2 / Fig. 4.
//
// Untied tasks are demoted to tied (documented paper work-around, §IV-D2);
// the simulator engine implements real migration.
//
// The scheduler core exists in two variants (DESIGN.md §7): the default
// lock-free Chase–Lev work-stealing deque, and the original mutex-guarded
// std::deque kept for the contention ablation (bench_queue_contention,
// bench_ablation_design).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "rt/runtime.hpp"
#include "rt/topology.hpp"

namespace taskprof::rt {

class SchedulePolicy;  // rt/schedule_policy.hpp

/// Which per-thread task-queue implementation the engine schedules with.
/// Both implement the same policy (owner LIFO, thieves FIFO from the
/// opposite end), so task counts are identical; only the synchronization
/// cost differs.
enum class SchedulerKind : std::uint8_t {
  kMutexDeque,  ///< std::mutex around a std::deque (pre-optimization core)
  kChaseLev,    ///< lock-free Chase–Lev deque (rt/steal_deque.hpp)
  /// Record-and-replay static scheduler (rt/taskgraph.hpp, DESIGN.md §12):
  /// the first parallel region records the task graph on the Chase–Lev
  /// core; subsequent regions replay it through precomputed per-worker
  /// run lists — no deque pushes, no steals, no allocation.  Divergence
  /// from the recorded shape falls back to the Chase–Lev deques within
  /// the region and marks the graph stale (fully dynamic afterwards).
  kTaskGraph,
};

struct RealConfig {
  /// Task-queue implementation; the ablation knob for
  /// bench_queue_contention and bench_ablation_design.
  SchedulerKind scheduler = SchedulerKind::kChaseLev;
  /// Allow threads to execute tasks created by other threads.
  bool steal = true;
  /// Failed acquisition attempts before the spin loops call
  /// std::this_thread::yield() (essential on oversubscribed hosts).
  int spins_before_yield = 16;
  /// Seeded schedule perturbation (victim rotation, steal-before-pop,
  /// injected yields) for the fuzzing harness in src/check/.  Not owned;
  /// must outlive the runtime.  nullptr leaves scheduling unperturbed.
  const SchedulePolicy* policy = nullptr;
  /// Locality-domain layout for hierarchical victim selection
  /// (rt/topology.hpp): idle workers probe their own domain first and
  /// escalate to batched cross-domain steals only after repeated local
  /// misses.  The default (one domain) keeps the flat steal sweep
  /// bit-identical to the pre-topology engine.  Composes with `policy`
  /// (rotations stay seeded-deterministic within the hierarchy) and with
  /// the kTaskGraph divergence fallback (which steals through the same
  /// path).
  Topology topology;
};

class RealRuntime final : public Runtime {
 public:
  explicit RealRuntime(RealConfig config = {});
  ~RealRuntime() override;

  RealRuntime(const RealRuntime&) = delete;
  RealRuntime& operator=(const RealRuntime&) = delete;

  void set_hooks(SchedulerHooks* hooks) override;
  void set_telemetry(telemetry::Registry* registry) override;
  TeamStats parallel(int num_threads, TaskFn body) override;
  [[nodiscard]] Ticks now() const override;

  // --- SchedulerKind::kTaskGraph state (no-ops on the other kinds) ------

  /// True once a recording region has produced a frozen TaskGraph.
  [[nodiscard]] bool taskgraph_recorded() const noexcept;
  /// True when a replay diverged and later regions run fully dynamic.
  [[nodiscard]] bool taskgraph_stale() const noexcept;
  /// First cause of the staleness (SchedulerNote::kNone when not stale);
  /// sticky until reset_taskgraph().
  [[nodiscard]] SchedulerNote taskgraph_fallback_reason() const noexcept;
  /// Recorded node count (0 before the first recording).
  [[nodiscard]] std::size_t taskgraph_size() const noexcept;
  /// Drop the recorded graph: the next parallel region records afresh.
  void reset_taskgraph() noexcept;

  /// Implementation detail (public only so the engine-internal context
  /// class in the .cpp can name it; not part of the API).
  struct Impl;

 private:
  std::unique_ptr<Impl> impl_;
};

}  // namespace taskprof::rt
