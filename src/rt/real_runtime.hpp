// Real-thread tasking engine.
//
// N std::thread workers execute a parallel region; explicit tasks go to
// per-thread deques (owner: LIFO, thieves: FIFO).  Tied-task semantics are
// realized by *nested execution*: a thread reaching a scheduling point
// (taskwait, barrier) runs further tasks on its own stack, so a suspended
// task resumes exactly where the nested task finishes — on the same
// thread.  This is how untied-less OpenMP runtimes behave and produces the
// interleaved event streams of the paper's Fig. 2 / Fig. 4.
//
// Untied tasks are demoted to tied (documented paper work-around, §IV-D2);
// the simulator engine implements real migration.
#pragma once

#include <memory>

#include "rt/runtime.hpp"

namespace taskprof::rt {

struct RealConfig {
  /// Allow threads to execute tasks created by other threads.
  bool steal = true;
  /// Failed acquisition attempts before the spin loops call
  /// std::this_thread::yield() (essential on oversubscribed hosts).
  int spins_before_yield = 16;
};

class RealRuntime final : public Runtime {
 public:
  explicit RealRuntime(RealConfig config = {});
  ~RealRuntime() override;

  RealRuntime(const RealRuntime&) = delete;
  RealRuntime& operator=(const RealRuntime&) = delete;

  void set_hooks(SchedulerHooks* hooks) override;
  TeamStats parallel(int num_threads, TaskFn body) override;
  [[nodiscard]] Ticks now() const override;

  /// Implementation detail (public only so the engine-internal context
  /// class in the .cpp can name it; not part of the API).
  struct Impl;

 private:
  std::unique_ptr<Impl> impl_;
};

}  // namespace taskprof::rt
