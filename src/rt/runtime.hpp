// Engine-independent runtime interface.
#pragma once

#include <cstdint>

#include "rt/hooks.hpp"
#include "rt/task_context.hpp"

namespace taskprof::rt {

/// Aggregate counters of one parallel region, reported by the engine
/// (independent of profiling — used by benches to report uninstrumented
/// runs).
struct TeamStats {
  Ticks parallel_ticks = 0;          ///< duration of the region (team span)
  std::uint64_t tasks_executed = 0;  ///< explicit task instances completed
  std::uint64_t steals = 0;          ///< tasks executed off their creating thread
  std::uint64_t migrations = 0;      ///< untied resumptions on a new thread
};

/// A tasking runtime: opens parallel regions over a TaskContext
/// implementation and reports scheduler events to an optional listener.
class Runtime {
 public:
  virtual ~Runtime() = default;

  /// Attach (or detach with nullptr) the measurement listener.  Must not
  /// be called while a parallel region is running.  The engine treats a
  /// null listener as "uninstrumented": no events, no event costs.
  virtual void set_hooks(SchedulerHooks* hooks) = 0;

  /// Run `body` as the implicit task of `num_threads` threads, including
  /// the implicit barrier at the end.  Throws std::invalid_argument for
  /// num_threads < 1.  Returns when all explicit tasks completed.
  virtual TeamStats parallel(int num_threads, TaskFn body) = 0;

  /// Engine time (wall clock or virtual); comparable across calls.
  [[nodiscard]] virtual Ticks now() const = 0;
};

}  // namespace taskprof::rt
