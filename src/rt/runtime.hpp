// Engine-independent runtime interface.
#pragma once

#include <cstdint>

#include "rt/hooks.hpp"
#include "rt/task_context.hpp"

namespace taskprof::telemetry {
class Registry;
}  // namespace taskprof::telemetry

namespace taskprof::rt {

/// Aggregate counters of one parallel region, reported by the engine
/// (independent of profiling — used by benches to report uninstrumented
/// runs).  This is the cheap always-on summary; the deep view is the
/// telemetry::Registry attached via set_telemetry.
struct TeamStats {
  Ticks parallel_ticks = 0;          ///< duration of the region (team span)
  std::uint64_t tasks_executed = 0;  ///< explicit task instances completed
  std::uint64_t tasks_created = 0;   ///< explicit task instances created
  std::uint64_t steals = 0;          ///< tasks executed off their creating thread
  std::uint64_t steal_attempts = 0;  ///< victim-queue probes by idle threads
  std::uint64_t migrations = 0;      ///< untied resumptions on a new thread
};

/// A tasking runtime: opens parallel regions over a TaskContext
/// implementation and reports scheduler events to an optional listener.
class Runtime {
 public:
  virtual ~Runtime() = default;

  /// Attach (or detach with nullptr) the measurement listener.  Must not
  /// be called while a parallel region is running.  The engine treats a
  /// null listener as "uninstrumented": no events, no event costs.
  virtual void set_hooks(SchedulerHooks* hooks) = 0;

  /// Attach (or detach with nullptr) a scheduler-telemetry sink.  Must not
  /// be called while a parallel region is running.  With no sink the
  /// engines skip every telemetry slot update (one predictable branch per
  /// site); with a sink they record steals, queue depths, slab occupancy,
  /// and scheduling-point entries into per-thread lock-free counters.
  virtual void set_telemetry(telemetry::Registry* registry) {
    (void)registry;
  }

  /// Run `body` as the implicit task of `num_threads` threads, including
  /// the implicit barrier at the end.  Throws std::invalid_argument for
  /// num_threads < 1.  Returns when all explicit tasks completed.
  virtual TeamStats parallel(int num_threads, TaskFn body) = 0;

  /// Engine time (wall clock or virtual); comparable across calls.
  [[nodiscard]] virtual Ticks now() const = 0;
};

}  // namespace taskprof::rt
