#include "rt/real_runtime.hpp"

#include <atomic>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "common/clock.hpp"
#include "rt/schedule_policy.hpp"
#include "rt/steal_deque.hpp"
#include "telemetry/telemetry.hpp"

namespace taskprof::rt {

namespace {

// ---------------------------------------------------------------------------
// Memory-ordering audit (the lock-free scheduler's correctness argument).
//
// With the mutex scheduler, every queue operation was a full
// acquire/release pair, so the relaxed counter updates around it were
// incidentally fenced.  With the Chase–Lev deque the only publication
// edges are the deque's own release(bottom)/acquire(steal) pair and the
// explicit orderings below:
//
//  * pending_children / outstanding increments stay RELAXED: they are
//    performed by the creating thread *before* the deque push, and the
//    push's release-store of `bottom` happens-before any thief's
//    acquire-load that obtains the task.  Hence the increment precedes
//    the executing thread's decrement in each counter's modification
//    order — the counters can never be observed "decrement first".
//    Taskwait additionally only reads pending_children of the task the
//    *current thread* is executing, so the increments are same-thread.
//  * pending_children / outstanding decrements are RELEASE and the
//    taskwait / barrier re-check loads are ACQUIRE: observing the final
//    decrement synchronizes with everything the child task wrote.
//  * the barrier arrival counter is an ACQ_REL fetch_add, and the exit
//    condition loads it with ACQUIRE: a thread leaving the barrier has a
//    happens-before edge to every arrived thread's pre-barrier writes
//    (including their relaxed `outstanding` increments, so the
//    "arrived == all && outstanding == 0" conjunction cannot miss a
//    queued task of the closing phase).
//  * TaskRecord::refs uses the shared_ptr discipline: relaxed increments
//    (the incrementing thread already holds a reference) and an acq_rel
//    decrement, so the thread that drops the last reference owns all
//    prior writes before the record is recycled.
//  * slab recycling publishes with a release-CAS onto the remote free
//    list and the owner drains it with an acquire-exchange, extending
//    the refs chain to the next allocation.
// ---------------------------------------------------------------------------

class RecordSlab;

/// One explicit (or implicit) task instance known to the scheduler.
struct TaskRecord {
  TaskFn fn;
  TaskAttrs attrs;
  TaskInstanceId id = kImplicitTaskId;
  TaskRecord* parent = nullptr;
  std::atomic<std::uint32_t> pending_children{0};
  /// Lifetime references: 1 for the task itself plus 1 per incomplete
  /// child (a fire-and-forget parent's record must outlive its children,
  /// which decrement pending_children through this pointer).
  std::atomic<std::uint32_t> refs{1};
  ThreadId creator = 0;
  bool deferred = false;  ///< counted in queue/outstanding bookkeeping
  /// Slab the record was carved from; nullptr for implicit-task records,
  /// which live inside ThreadState and are never recycled.
  RecordSlab* slab = nullptr;
  std::atomic<TaskRecord*> next_free{nullptr};  ///< free-list link
};

/// Per-thread TaskRecord allocator: chunked slabs plus a free list,
/// mirroring the NodePool of src/profile/calltree.hpp.  Allocation is
/// owner-thread only; recycling can happen on any thread (a stolen
/// task's record dies on the thief), so dead records from other threads
/// land on a lock-free MPSC stack that the owner drains wholesale.
class RecordSlab {
 public:
  RecordSlab() = default;
  RecordSlab(const RecordSlab&) = delete;
  RecordSlab& operator=(const RecordSlab&) = delete;

  /// Owner thread only.
  TaskRecord* allocate() {
    TaskRecord* rec = local_free_;
    if (rec == nullptr) {
      // Claim the whole remote chain in one exchange; the owner is the
      // only consumer, so there is no ABA window.
      rec = remote_free_.exchange(nullptr, std::memory_order_acquire);
    }
    if (rec != nullptr) {
      local_free_ = rec->next_free.load(std::memory_order_relaxed);
      TASKPROF_ASSERT(
          rec->pending_children.load(std::memory_order_relaxed) == 0,
          "recycled record has pending children");
      rec->refs.store(1, std::memory_order_relaxed);
      return rec;
    }
    if (next_in_chunk_ == kChunkSize) {
      chunks_.push_back(std::make_unique<TaskRecord[]>(kChunkSize));
      next_in_chunk_ = 0;
    }
    rec = &chunks_.back()[next_in_chunk_++];
    rec->slab = this;
    return rec;
  }

  /// Any thread.  `local` must be true iff the caller *is* the owner
  /// thread (then the push needs no atomics at all).
  void recycle(TaskRecord* rec, bool local) {
    rec->fn = nullptr;  // drop captured state as eagerly as delete did
    if (local) {
      rec->next_free.store(local_free_, std::memory_order_relaxed);
      local_free_ = rec;
      return;
    }
    TaskRecord* head = remote_free_.load(std::memory_order_relaxed);
    do {
      rec->next_free.store(head, std::memory_order_relaxed);
    } while (!remote_free_.compare_exchange_weak(
        head, rec, std::memory_order_release, std::memory_order_relaxed));
  }

  /// Records ever carved from chunks (owner-read).  Free lists only
  /// recycle, so this is the slab-occupancy high-water mark: the most
  /// records this thread ever had live at once (± the remote-free-list
  /// drain lag), at zero hot-path cost.
  [[nodiscard]] std::uint64_t carved() const noexcept {
    if (chunks_.empty()) return 0;
    return static_cast<std::uint64_t>(chunks_.size()) * kChunkSize -
           static_cast<std::uint64_t>(kChunkSize - next_in_chunk_);
  }

 private:
  static constexpr std::size_t kChunkSize = 128;

  std::vector<std::unique_ptr<TaskRecord[]>> chunks_;
  std::size_t next_in_chunk_ = kChunkSize;  // forces first chunk allocation
  TaskRecord* local_free_ = nullptr;        // owner-only LIFO
  alignas(64) std::atomic<TaskRecord*> remote_free_{nullptr};
};

/// Per-thread task queue, in both scheduler variants.  Only the one
/// selected by RealConfig::scheduler is touched at runtime; the idle
/// variant costs a few empty words.
struct WorkerQueue {
  // kMutexDeque: the pre-optimization fair queue.
  std::mutex mutex;
  std::deque<TaskRecord*> tasks;
  // kChaseLev: the lock-free deque.
  StealDeque deque;
};

/// Number of single-construct episode slots.  Claims use monotonically
/// increasing episode numbers, so slots are reused modulo the shard count
/// without ever being reset — no bound on how far threads may drift apart.
constexpr std::size_t kSingleShards = 64;

struct SingleShard {
  alignas(64) std::atomic<std::uint64_t> claimed{0};
};

/// Team barrier: the generation-counting form of a sense-reversing
/// barrier.  Instead of flipping one sense bit (which supports only two
/// in-flight episodes), each thread's private episode counter *is* its
/// sense, and `arrived` accumulates across episodes: episode g is fully
/// arrived once arrived >= g * nthreads.  One word, no reset, no mutex,
/// and no per-episode allocation.
struct TeamBarrier {
  alignas(64) std::atomic<std::uint64_t> arrived{0};
};

}  // namespace

struct RealRuntime::Impl {
  explicit Impl(RealConfig cfg) : config(cfg) {}

  // --- configuration / global state ------------------------------------
  RealConfig config;
  SchedulerHooks* hooks = nullptr;
  telemetry::Registry* telemetry = nullptr;
  SteadyClock clock;

  // --- team state (valid during one parallel region) --------------------
  int nthreads = 0;
  std::vector<std::unique_ptr<WorkerQueue>> queues;
  std::atomic<std::uint64_t> outstanding{0};
  std::atomic<TaskInstanceId> next_id{1};

  std::unique_ptr<SingleShard[]> single_shards;
  TeamBarrier barrier;

  // --- per-thread state --------------------------------------------------
  struct ThreadState {
    ThreadId tid = 0;
    TaskRecord implicit_record;
    RecordSlab slab;
    std::vector<TaskRecord*> task_stack;  // bottom = &implicit_record
    std::uint64_t single_counter = 0;
    std::uint64_t barrier_counter = 0;
    std::uint64_t executed = 0;
    std::uint64_t created = 0;
    std::uint64_t steals = 0;
    std::uint64_t steal_attempts = 0;
    /// Cached telemetry handle (detached no-op unless a sink is set).
    telemetry::Registry::ThreadSlots telem;
    /// Seeded perturbation stream (detached no-op without a policy).
    ScheduleStream sched;
  };
  std::vector<std::unique_ptr<ThreadState>> threads;

  // --- scheduling --------------------------------------------------------

  /// Fuzzing-only yield injection: widens the race window at a scheduling
  /// point so seeded runs explore interleavings a quiet host rarely hits.
  void perturb(ThreadState& st, SchedulePoint point) {
    if (st.sched.yield_before(point)) {
      st.telem.add(telemetry::Counter::kSchedYields);
      std::this_thread::yield();
    }
  }

  void enqueue(ThreadState& st, TaskRecord* rec) {
    perturb(st, SchedulePoint::kTaskCreate);
    WorkerQueue& own = *queues[st.tid];
    if (config.scheduler == SchedulerKind::kChaseLev) {
      own.deque.push(rec);
      if (st.telem.attached()) {
        st.telem.gauge_max(telemetry::Gauge::kDequeDepth, own.deque.size());
      }
      return;
    }
    std::size_t depth = 0;
    {
      std::scoped_lock lock(own.mutex);
      own.tasks.push_back(rec);
      depth = own.tasks.size();
    }
    st.telem.gauge_max(telemetry::Gauge::kDequeDepth, depth);
  }

  /// One stolen-task acquisition: bumps the always-on attempt counter and,
  /// when a sink is attached, the telemetry steal counters.
  void count_steal(ThreadState& st, bool success) noexcept {
    ++st.steal_attempts;
    st.telem.add(telemetry::Counter::kStealAttempts);
    if (success) st.telem.add(telemetry::Counter::kStealSuccesses);
  }

  /// LIFO pop from the worker's own queue (either scheduler variant).
  TaskRecord* pop_own(ThreadState& st) {
    WorkerQueue& own = *queues[st.tid];
    if (config.scheduler == SchedulerKind::kChaseLev) {
      return static_cast<TaskRecord*>(own.deque.pop());
    }
    std::scoped_lock lock(own.mutex);
    if (own.tasks.empty()) return nullptr;
    TaskRecord* t = own.tasks.back();
    own.tasks.pop_back();
    return t;
  }

  /// One full FIFO-steal sweep over the other workers' queues.  The scan
  /// starts at neighbour offset 1 + rotation — rotation is 0 without a
  /// schedule policy, preserving the historical clockwise order.
  TaskRecord* steal_round(ThreadState& st) {
    if (!config.steal || nthreads <= 1) return nullptr;
    const auto ring = static_cast<std::uint32_t>(nthreads - 1);
    const std::uint32_t rotation =
        st.sched.victim_rotation(static_cast<std::uint32_t>(nthreads));
    for (std::uint32_t i = 0; i < ring; ++i) {
      const ThreadId offset = 1 + (rotation + i) % ring;
      WorkerQueue& victim =
          *queues[(st.tid + offset) % static_cast<ThreadId>(nthreads)];
      TaskRecord* t = nullptr;
      if (config.scheduler == SchedulerKind::kChaseLev) {
        t = static_cast<TaskRecord*>(victim.deque.steal());
      } else {
        std::scoped_lock lock(victim.mutex);
        if (!victim.tasks.empty()) {
          t = victim.tasks.front();
          victim.tasks.pop_front();
        }
      }
      count_steal(st, t != nullptr);
      if (t != nullptr) {
        ++st.steals;
        return t;
      }
    }
    st.telem.add(telemetry::Counter::kStealAborts);
    return nullptr;
  }

  TaskRecord* try_acquire(ThreadState& st) {
    perturb(st, SchedulePoint::kAcquire);
    // Under a schedule policy a worker occasionally inverts the LIFO-local
    // bias and raids other queues before its own — the inversion OpenMP
    // permits at any task scheduling point but a fair scheduler never
    // exercises.
    if (st.sched.attached() && config.steal && nthreads > 1 &&
        st.sched.steal_first()) {
      if (TaskRecord* t = steal_round(st)) return t;
      return pop_own(st);
    }
    if (TaskRecord* t = pop_own(st)) return t;
    return steal_round(st);
  }

  /// Drop one lifetime reference; recycle into the creator's slab when
  /// none remain.  Implicit-task records (ThreadState members,
  /// slab == nullptr) keep their own reference forever and never get here
  /// with refs == 1.
  void release_ref(ThreadState& st, TaskRecord* rec) {
    if (rec->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      TASKPROF_ASSERT(rec->slab != nullptr,
                      "implicit-task record dropped its last reference");
      const bool local = rec->creator == st.tid;
      rec->slab->recycle(rec, local);
      st.telem.add(telemetry::Counter::kSlabRecycles);
      if (!local) st.telem.add(telemetry::Counter::kSlabRemoteRecycles);
    }
  }

  void execute(ThreadState& st, TaskContext& ctx, TaskRecord* rec) {
    if (hooks != nullptr) {
      hooks->on_task_begin(st.tid, rec->id, rec->attrs.region,
                           rec->attrs.parameter);
    }
    st.telem.add(telemetry::Counter::kTasksExecuted);
    if (st.telem.attached()) {
      st.telem.gauge_max(telemetry::Gauge::kTaskStackDepth,
                         st.task_stack.size() + 1);
    }
    st.task_stack.push_back(rec);
    rec->fn(ctx);
    st.task_stack.pop_back();
    if (hooks != nullptr) hooks->on_task_end(st.tid, rec->id);
    TaskRecord* parent = rec->parent;
    if (rec->deferred) {
      parent->pending_children.fetch_sub(1, std::memory_order_release);
      outstanding.fetch_sub(1, std::memory_order_release);
    }
    ++st.executed;
    release_ref(st, rec);
    release_ref(st, parent);
    // Resuming an enclosing *explicit* task is a task switch (Fig. 12);
    // returning to the implicit task is implied by on_task_end.
    TaskRecord* enclosing = st.task_stack.back();
    if (hooks != nullptr && enclosing != &st.implicit_record) {
      hooks->on_task_switch(st.tid, enclosing->id);
    }
  }
};

namespace {

/// TaskContext implementation bound to one worker thread.
class RealContext final : public TaskContext {
 public:
  RealContext(RealRuntime::Impl& rt, RealRuntime::Impl::ThreadState& st)
      : rt_(rt), st_(st) {}

  void create_task(TaskFn fn, TaskAttrs attrs) override {
    SchedulerHooks* hooks = rt_.hooks;
    if (hooks != nullptr) {
      hooks->on_task_create_begin(st_.tid, attrs.region, attrs.parameter);
    }
    const TaskInstanceId id =
        rt_.next_id.fetch_add(1, std::memory_order_relaxed);
    ++st_.created;
    if (st_.telem.attached()) {
      st_.telem.add(telemetry::Counter::kTasksCreated);
      st_.telem.add(attrs.undeferred
                        ? telemetry::Counter::kTasksUndeferred
                        : telemetry::Counter::kTasksDeferred);
      st_.telem.add(telemetry::Counter::kSlabAllocs);
    }
    TaskRecord* rec = st_.slab.allocate();
    rec->fn = std::move(fn);
    rec->attrs = attrs;
    rec->id = id;
    rec->parent = st_.task_stack.back();
    rec->creator = st_.tid;
    rec->parent->refs.fetch_add(1, std::memory_order_relaxed);
    if (attrs.undeferred) {
      // Runs inside the creation construct: the task's stub node lands
      // under the "create task" node of the encountering task.
      rec->deferred = false;
      rt_.execute(st_, *this, rec);
      if (hooks != nullptr) {
        hooks->on_task_create_end(st_.tid, id, attrs.region, attrs.parameter);
      }
      return;
    }
    rec->deferred = true;
    // Relaxed is sufficient: both counters are published to other threads
    // through the enqueue below (see the memory-ordering audit above).
    rec->parent->pending_children.fetch_add(1, std::memory_order_relaxed);
    rt_.outstanding.fetch_add(1, std::memory_order_relaxed);
    rt_.enqueue(st_, rec);
    if (hooks != nullptr) {
      hooks->on_task_create_end(st_.tid, id, attrs.region, attrs.parameter);
    }
  }

  void taskwait() override {
    SchedulerHooks* hooks = rt_.hooks;
    if (hooks != nullptr) hooks->on_taskwait_begin(st_.tid);
    st_.telem.add(telemetry::Counter::kTaskwaitEntries);
    rt_.perturb(st_, SchedulePoint::kTaskwait);
    TaskRecord* current = st_.task_stack.back();
    int spins = 0;
    while (current->pending_children.load(std::memory_order_acquire) > 0) {
      if (TaskRecord* t = rt_.try_acquire(st_)) {
        rt_.execute(st_, *this, t);
        spins = 0;
      } else if (++spins >= rt_.config.spins_before_yield) {
        spins = 0;
        count_yield();
        std::this_thread::yield();
      }
    }
    if (hooks != nullptr) hooks->on_taskwait_end(st_.tid);
  }

  void barrier() override { barrier_impl(/*implicit=*/false); }

  void barrier_impl(bool implicit) {
    TASKPROF_ASSERT(st_.task_stack.back() == &st_.implicit_record,
                    "barrier must be called from the implicit task");
    SchedulerHooks* hooks = rt_.hooks;
    if (hooks != nullptr) hooks->on_barrier_begin(st_.tid, implicit);
    st_.telem.add(telemetry::Counter::kBarrierEntries);
    rt_.perturb(st_, SchedulePoint::kBarrier);
    const std::uint64_t generation = ++st_.barrier_counter;
    const std::uint64_t needed =
        generation * static_cast<std::uint64_t>(rt_.nthreads);
    rt_.barrier.arrived.fetch_add(1, std::memory_order_acq_rel);
    int spins = 0;
    while (true) {
      if (TaskRecord* t = rt_.try_acquire(st_)) {
        rt_.execute(st_, *this, t);
        spins = 0;
        continue;
      }
      // Stable exit condition: every thread has reached this barrier
      // generation and no explicit task is queued or running anywhere
      // ("outstanding" stays > 0 while a popped task executes).  A fast
      // thread may already be in a later generation and have queued new
      // tasks; draining those here is legal (a barrier is a task
      // scheduling point) and the exit only requires that *this*
      // generation's work is gone.
      if (rt_.barrier.arrived.load(std::memory_order_acquire) >= needed &&
          rt_.outstanding.load(std::memory_order_acquire) == 0) {
        break;
      }
      if (++spins >= rt_.config.spins_before_yield) {
        spins = 0;
        count_yield();
        std::this_thread::yield();
      }
    }
    if (hooks != nullptr) hooks->on_barrier_end(st_.tid, implicit);
  }

  bool single() override {
    TASKPROF_ASSERT(st_.task_stack.back() == &st_.implicit_record,
                    "single must be called from the implicit task");
    // Episode numbers are monotonic per thread and all threads encounter
    // singles in the same sequence, so the first thread to attempt
    // episode e always finds the slot's last claim <= e - kSingleShards
    // and wins; every later attempt of e observes a claim >= e.  Exactly
    // one winner per episode, without resets or an episode registry.
    const std::uint64_t episode = ++st_.single_counter;
    std::atomic<std::uint64_t>& slot =
        rt_.single_shards[(episode - 1) % kSingleShards].claimed;
    std::uint64_t seen = slot.load(std::memory_order_acquire);
    while (seen < episode) {
      if (slot.compare_exchange_weak(seen, episode,
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
        st_.telem.add(telemetry::Counter::kSingleWins);
        return true;
      }
    }
    return false;
  }

  void work(Ticks cost) override {
    // Real computation is its own cost; virtual cost is ignored.
    (void)cost;
  }

  void region_enter(RegionHandle region, std::int64_t parameter) override {
    if (SchedulerHooks* hooks = rt_.hooks) {
      hooks->on_region_enter(st_.tid, region, parameter);
    }
  }

  void region_exit(RegionHandle region) override {
    if (SchedulerHooks* hooks = rt_.hooks) {
      hooks->on_region_exit(st_.tid, region);
    }
  }

  [[nodiscard]] ThreadId thread_id() const override { return st_.tid; }
  [[nodiscard]] int num_threads() const override { return rt_.nthreads; }

 private:
  void count_yield() noexcept {
    st_.telem.add(telemetry::Counter::kSchedYields);
  }

  RealRuntime::Impl& rt_;
  RealRuntime::Impl::ThreadState& st_;
};

}  // namespace

RealRuntime::RealRuntime(RealConfig config)
    : impl_(std::make_unique<Impl>(config)) {}

RealRuntime::~RealRuntime() = default;

void RealRuntime::set_hooks(SchedulerHooks* hooks) { impl_->hooks = hooks; }

void RealRuntime::set_telemetry(telemetry::Registry* registry) {
  impl_->telemetry = registry;
}

Ticks RealRuntime::now() const { return impl_->clock.now(); }

TeamStats RealRuntime::parallel(int num_threads, TaskFn body) {
  if (num_threads < 1) {
    throw std::invalid_argument("parallel: num_threads must be >= 1");
  }
  Impl& rt = *impl_;
  rt.nthreads = num_threads;
  rt.queues.clear();
  rt.threads.clear();
  rt.single_shards = std::make_unique<SingleShard[]>(kSingleShards);
  rt.barrier.arrived.store(0);
  rt.outstanding.store(0);
  rt.next_id.store(1);
  for (int i = 0; i < num_threads; ++i) {
    rt.queues.push_back(std::make_unique<WorkerQueue>());
    auto st = std::make_unique<Impl::ThreadState>();
    st->tid = static_cast<ThreadId>(i);
    st->implicit_record.id = kImplicitTaskId;
    if (rt.config.policy != nullptr) {
      st->sched = rt.config.policy->stream(st->tid);
    }
    rt.threads.push_back(std::move(st));
  }
  if (rt.telemetry != nullptr) {
    rt.telemetry->prepare(num_threads);
    // Hand each worker a direct handle to its counter block so the
    // per-event path skips the registry's block-table indirection.
    for (const auto& st : rt.threads) st->telem = rt.telemetry->slots(st->tid);
  }

  if (rt.hooks != nullptr) rt.hooks->on_parallel_begin(num_threads);
  const Ticks t0 = rt.clock.now();

  auto worker = [&rt, &body](ThreadId tid) {
    Impl::ThreadState& st = *rt.threads[tid];
    st.task_stack.push_back(&st.implicit_record);
    RealContext ctx(rt, st);
    if (rt.hooks != nullptr) rt.hooks->on_implicit_task_begin(tid, rt.clock);
    body(ctx);
    ctx.barrier_impl(/*implicit=*/true);
    if (rt.hooks != nullptr) rt.hooks->on_implicit_task_end(tid);
  };

  std::vector<std::thread> extra;
  extra.reserve(static_cast<std::size_t>(num_threads) - 1);
  for (int i = 1; i < num_threads; ++i) {
    extra.emplace_back(worker, static_cast<ThreadId>(i));
  }
  worker(0);
  for (auto& t : extra) t.join();

  const Ticks t1 = rt.clock.now();
  if (rt.hooks != nullptr) rt.hooks->on_parallel_end();

  TeamStats stats;
  stats.parallel_ticks = t1 - t0;
  for (const auto& st : rt.threads) {
    stats.tasks_executed += st->executed;
    stats.tasks_created += st->created;
    stats.steals += st->steals;
    stats.steal_attempts += st->steal_attempts;
    if (rt.telemetry != nullptr) {
      // Quiescent point: the workers joined, so the owner-only carved()
      // reads and the single-writer gauge stores are race-free here.
      rt.telemetry->gauge_max(st->tid, telemetry::Gauge::kSlabRecords,
                              st->slab.carved());
    }
  }
  TASKPROF_ASSERT(rt.outstanding.load() == 0,
                  "tasks outstanding after parallel region");
  return stats;
}

}  // namespace taskprof::rt
