#include "rt/real_runtime.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "common/clock.hpp"
#include "rt/schedule_policy.hpp"
#include "rt/steal_deque.hpp"
#include "rt/taskgraph.hpp"
#include "telemetry/telemetry.hpp"

namespace taskprof::rt {

namespace {

// ---------------------------------------------------------------------------
// Memory-ordering audit (the lock-free scheduler's correctness argument).
//
// With the mutex scheduler, every queue operation was a full
// acquire/release pair, so the relaxed counter updates around it were
// incidentally fenced.  With the Chase–Lev deque the only publication
// edges are the deque's own release(bottom)/acquire(steal) pair and the
// explicit orderings below:
//
//  * pending_children / outstanding increments stay RELAXED: they are
//    performed by the creating thread *before* the deque push, and the
//    push's release-store of `bottom` happens-before any thief's
//    acquire-load that obtains the task.  Hence the increment precedes
//    the executing thread's decrement in each counter's modification
//    order — the counters can never be observed "decrement first".
//    Taskwait additionally only reads pending_children of the task the
//    *current thread* is executing, so the increments are same-thread.
//  * pending_children / outstanding decrements are RELEASE and the
//    taskwait / barrier re-check loads are ACQUIRE: observing the final
//    decrement synchronizes with everything the child task wrote.
//  * the barrier arrival counter is an ACQ_REL fetch_add, and the exit
//    condition loads it with ACQUIRE: a thread leaving the barrier has a
//    happens-before edge to every arrived thread's pre-barrier writes
//    (including their relaxed `outstanding` increments, so the
//    "arrived == all && outstanding == 0" conjunction cannot miss a
//    queued task of the closing phase).
//  * TaskRecord::refs uses the shared_ptr discipline: relaxed increments
//    (the incrementing thread already holds a reference) and an acq_rel
//    decrement, so the thread that drops the last reference owns all
//    prior writes before the record is recycled.
//  * slab recycling publishes with a release-CAS onto the remote free
//    list and the owner drains it with an acquire-exchange, extending
//    the refs chain to the next allocation.
// ---------------------------------------------------------------------------

class RecordSlab;

/// One explicit (or implicit) task instance known to the scheduler.
struct TaskRecord {
  TaskFn fn;
  TaskAttrs attrs;
  TaskInstanceId id = kImplicitTaskId;
  TaskRecord* parent = nullptr;
  std::atomic<std::uint32_t> pending_children{0};
  /// Lifetime references: 1 for the task itself plus 1 per incomplete
  /// child (a fire-and-forget parent's record must outlive its children,
  /// which decrement pending_children through this pointer).
  std::atomic<std::uint32_t> refs{1};
  ThreadId creator = 0;
  bool deferred = false;  ///< counted in queue/outstanding bookkeeping
  /// Slab the record was carved from; nullptr for implicit-task records,
  /// which live inside ThreadState and are never recycled.
  RecordSlab* slab = nullptr;
  std::atomic<TaskRecord*> next_free{nullptr};  ///< free-list link
  // --- taskgraph record/replay (SchedulerKind::kTaskGraph only) --------
  /// Recorded node for this instance: a node index while recording or on
  /// the static replay path, kGraphRoot for implicit-task records, and
  /// kGraphNone for anything scheduled dynamically.
  std::uint32_t graph_node = kGraphNone;
  /// Next deferred-child spawn ordinal during replay.  Plain field: a
  /// task's spawns are sequential on its executing thread (root spawns
  /// use the shared atomic in ReplayState instead).
  std::uint32_t replay_ordinal = 0;
  /// Recorded child count of graph_node, copied out of the CSR at epoch
  /// init so the per-task short-spawn check stays inside the record's
  /// cache line instead of touching the row index.
  std::uint32_t graph_children = 0;
  /// Set once this task's spawns stop matching the recording: its later
  /// spawns skip matching and go straight to the dynamic deques.
  bool replay_diverged = false;
};

/// Static replay records never recycle: a huge reference count keeps
/// release_ref() off the slab path without a per-call branch.
constexpr std::uint32_t kStaticRecordRefs = 1u << 30;

/// Per-thread TaskRecord allocator: chunked slabs plus a free list,
/// mirroring the NodePool of src/profile/calltree.hpp.  Allocation is
/// owner-thread only; recycling can happen on any thread (a stolen
/// task's record dies on the thief), so dead records from other threads
/// land on a lock-free MPSC stack that the owner drains wholesale.
class RecordSlab {
 public:
  RecordSlab() = default;
  RecordSlab(const RecordSlab&) = delete;
  RecordSlab& operator=(const RecordSlab&) = delete;

  /// Owner thread only.
  TaskRecord* allocate() {
    TaskRecord* rec = local_free_;
    if (rec == nullptr) {
      // Claim the whole remote chain in one exchange; the owner is the
      // only consumer, so there is no ABA window.
      rec = remote_free_.exchange(nullptr, std::memory_order_acquire);
    }
    if (rec != nullptr) {
      local_free_ = rec->next_free.load(std::memory_order_relaxed);
      TASKPROF_ASSERT(
          rec->pending_children.load(std::memory_order_relaxed) == 0,
          "recycled record has pending children");
      rec->refs.store(1, std::memory_order_relaxed);
      return rec;
    }
    if (next_in_chunk_ == kChunkSize) {
      chunks_.push_back(std::make_unique<TaskRecord[]>(kChunkSize));
      next_in_chunk_ = 0;
    }
    rec = &chunks_.back()[next_in_chunk_++];
    rec->slab = this;
    return rec;
  }

  /// Any thread.  `local` must be true iff the caller *is* the owner
  /// thread (then the push needs no atomics at all).
  void recycle(TaskRecord* rec, bool local) {
    rec->fn = nullptr;  // drop captured state as eagerly as delete did
    if (local) {
      rec->next_free.store(local_free_, std::memory_order_relaxed);
      local_free_ = rec;
      return;
    }
    TaskRecord* head = remote_free_.load(std::memory_order_relaxed);
    do {
      rec->next_free.store(head, std::memory_order_relaxed);
    } while (!remote_free_.compare_exchange_weak(
        head, rec, std::memory_order_release, std::memory_order_relaxed));
  }

  /// Records ever carved from chunks (owner-read).  Free lists only
  /// recycle, so this is the slab-occupancy high-water mark: the most
  /// records this thread ever had live at once (± the remote-free-list
  /// drain lag), at zero hot-path cost.
  [[nodiscard]] std::uint64_t carved() const noexcept {
    if (chunks_.empty()) return 0;
    return static_cast<std::uint64_t>(chunks_.size()) * kChunkSize -
           static_cast<std::uint64_t>(kChunkSize - next_in_chunk_);
  }

 private:
  static constexpr std::size_t kChunkSize = 128;

  std::vector<std::unique_ptr<TaskRecord[]>> chunks_;
  std::size_t next_in_chunk_ = kChunkSize;  // forces first chunk allocation
  TaskRecord* local_free_ = nullptr;        // owner-only LIFO
  alignas(64) std::atomic<TaskRecord*> remote_free_{nullptr};
};

/// Per-thread task queue, in both scheduler variants.  Only the one
/// selected by RealConfig::scheduler is touched at runtime; the idle
/// variant costs a few empty words.
struct WorkerQueue {
  // kMutexDeque: the pre-optimization fair queue.
  std::mutex mutex;
  std::deque<TaskRecord*> tasks;
  // kChaseLev: the lock-free deque.
  StealDeque deque;
};

/// Number of single-construct episode slots.  Claims use monotonically
/// increasing episode numbers, so slots are reused modulo the shard count
/// without ever being reset — no bound on how far threads may drift apart.
constexpr std::size_t kSingleShards = 64;

struct SingleShard {
  alignas(64) std::atomic<std::uint64_t> claimed{0};
};

/// Team barrier: the generation-counting form of a sense-reversing
/// barrier.  Instead of flipping one sense bit (which supports only two
/// in-flight episodes), each thread's private episode counter *is* its
/// sense, and `arrived` accumulates across episodes: episode g is fully
/// arrived once arrived >= g * nthreads.  One word, no reset, no mutex,
/// and no per-episode allocation.
struct TeamBarrier {
  alignas(64) std::atomic<std::uint64_t> arrived{0};
  /// Replay-exhausted workers park here instead of polling: their run
  /// list is drained and no divergence is in flight, so nothing can ever
  /// arrive for them again this region — a fact only a static schedule
  /// can know.  Everything below is cold: dynamic schedulers never park,
  /// and wakers skip the mutex entirely while `parked == 0`.
  alignas(64) std::atomic<int> parked{0};
  std::mutex park_mu;
  std::condition_variable park_cv;
};

}  // namespace

struct RealRuntime::Impl {
  explicit Impl(RealConfig cfg) : config(cfg) {}

  // --- configuration / global state ------------------------------------
  RealConfig config;
  SchedulerHooks* hooks = nullptr;
  telemetry::Registry* telemetry = nullptr;
  SteadyClock clock;

  // --- team state (valid during one parallel region) --------------------
  int nthreads = 0;
  std::vector<std::unique_ptr<WorkerQueue>> queues;
  /// Hierarchical stealing (RealConfig::topology): true when the topology
  /// splits this team across more than one populated locality domain.
  /// False keeps steal_round() on the flat sweep, bit-identical to the
  /// pre-topology engine.
  bool hier_steal = false;
  /// Worker ids of each locality domain (ascending), rebuilt per region.
  std::vector<std::vector<ThreadId>> domain_members;
  std::atomic<std::uint64_t> outstanding{0};
  std::atomic<TaskInstanceId> next_id{1};

  std::unique_ptr<SingleShard[]> single_shards;
  TeamBarrier barrier;

  // --- taskgraph record/replay state (SchedulerKind::kTaskGraph) ---------
  /// What the current region does with the task graph.  kOff for the
  /// other scheduler kinds; kFallback when a recorded graph went stale.
  enum class GraphMode : std::uint8_t { kOff, kRecord, kReplay, kFallback };
  GraphMode graph_mode = GraphMode::kOff;
  std::unique_ptr<TaskGraphRecorder> recorder;  ///< live while recording
  std::unique_ptr<TaskGraph> graph;             ///< frozen recording
  StaticSchedule schedule;      ///< rebuilt when nthreads changes
  ReplayState replay;           ///< slots + root ordinal, reset per region
  /// Preallocated records, one per graph node (array: TaskRecord holds
  /// atomics and cannot live in a vector).  Reused across replay regions.
  std::unique_ptr<TaskRecord[]> replay_records;
  std::size_t replay_record_count = 0;
  /// Records need their epoch-constant fields (graph_node, deferred,
  /// refs, ...) rewritten before the next replay: set when a new graph is
  /// frozen or the array is (re)allocated, consumed at region setup.  The
  /// per-spawn publish then writes only what actually varies.
  bool replay_records_dirty = false;
  bool graph_stale = false;  ///< a replay diverged; run dynamic from now on
  /// Dynamically scheduled tasks in flight during replay.  Zero lets the
  /// replay acquire path skip the deque pop and the steal sweep entirely
  /// (one relaxed load); divergence makes it nonzero and re-enables them.
  std::atomic<std::uint64_t> dynamic_outstanding{0};
  std::atomic<std::uint64_t> region_divergences{0};  ///< this region
  /// First divergence/fallback cause, sticky until reset_taskgraph():
  /// tells humans and the diagnosis engine *why* replay gave up, not just
  /// that it did.  Stored as the SchedulerNote code (0 = none).
  std::atomic<std::uint8_t> fallback_reason{0};
  /// Implicit tasks whose body returned: the last one knows no further
  /// root spawns can come and cancels unclaimed recorded root subtrees
  /// (otherwise a short-spawning replay would leave slots empty forever
  /// and strand every run list queued behind them).
  std::atomic<int> bodies_done{0};

  // --- per-thread state --------------------------------------------------
  struct ThreadState {
    ThreadId tid = 0;
    TaskRecord implicit_record;
    RecordSlab slab;
    std::vector<TaskRecord*> task_stack;  // bottom = &implicit_record
    std::uint64_t single_counter = 0;
    std::uint64_t barrier_counter = 0;
    /// Position in this worker's static run list (replay regions only).
    std::size_t replay_cursor = 0;
    /// Replay-mode root-ordinal block [root_next, root_end): claimed
    /// from the shared counter kRootOrdinalBlock at a time when the
    /// recording had a single root producer.  Unused tail ordinals are
    /// cancelled at end of body (the hole sweep in parallel()).
    std::uint32_t root_next = 0;
    std::uint32_t root_end = 0;
    /// Net static-replay contribution to `outstanding` not yet flushed:
    /// +1 when this thread publishes a static task, -1 when it finishes
    /// executing one.  Batching turns two shared RMWs per task into one
    /// per poll miss / barrier entry; see the replay accounting notes on
    /// flush_static_delta().
    std::int64_t static_delta = 0;
    /// Replay-mode instance-id block: [id_next, id_end) was claimed from
    /// the shared counter in one RMW (kIdBlock ids at a time), so the
    /// static spawn path allocates ids with a plain increment.
    TaskInstanceId id_next = 0;
    TaskInstanceId id_end = 0;
    std::uint64_t executed = 0;
    std::uint64_t created = 0;
    std::uint64_t steals = 0;
    std::uint64_t steal_attempts = 0;
    /// Hierarchical stealing: this worker's domain, its index inside
    /// Impl::domain_members[domain], and the consecutive empty local
    /// sweeps accumulated towards the escalation threshold
    /// (Topology::local_miss_limit).
    std::uint32_t domain = 0;
    std::uint32_t domain_slot = 0;
    std::uint32_t local_misses = 0;
    /// Cached telemetry handle (detached no-op unless a sink is set).
    telemetry::Registry::ThreadSlots telem;
    /// Seeded perturbation stream (detached no-op without a policy).
    ScheduleStream sched;
  };
  std::vector<std::unique_ptr<ThreadState>> threads;

  // --- scheduling --------------------------------------------------------

  /// Fuzzing-only yield injection: widens the race window at a scheduling
  /// point so seeded runs explore interleavings a quiet host rarely hits.
  void perturb(ThreadState& st, SchedulePoint point) {
    if (st.sched.yield_before(point)) {
      st.telem.add(telemetry::Counter::kSchedYields);
      std::this_thread::yield();
    }
  }

  /// kTaskGraph rides on the Chase–Lev deques for recording and for
  /// divergence fallback, so everything except kMutexDeque uses them.
  [[nodiscard]] bool lock_free_queues() const noexcept {
    return config.scheduler != SchedulerKind::kMutexDeque;
  }

  static telemetry::Counter divergence_counter(SchedulerNote note) noexcept {
    switch (note) {
      case SchedulerNote::kTaskgraphDivergeStructure:
        return telemetry::Counter::kTaskgraphDivergeStructure;
      case SchedulerNote::kTaskgraphDivergeShortSpawn:
        return telemetry::Counter::kTaskgraphDivergeShortSpawn;
      default:
        return telemetry::Counter::kTaskgraphDivergeResidue;
    }
  }

  /// Keep only the *first* cause: later divergences are usually knock-on
  /// effects of the first one and would bury it.
  void remember_fallback_reason(SchedulerNote note) noexcept {
    std::uint8_t expected = 0;
    fallback_reason.compare_exchange_strong(
        expected, static_cast<std::uint8_t>(note), std::memory_order_relaxed);
  }

  /// One replay divergence: bumps the aggregate and per-reason counters,
  /// records the sticky first cause, and surfaces a trace instant.
  void diverge(ThreadState& st, SchedulerNote note, std::int64_t detail) {
    region_divergences.fetch_add(1, std::memory_order_relaxed);
    st.telem.add(telemetry::Counter::kTaskgraphDivergences);
    st.telem.add(divergence_counter(note));
    remember_fallback_reason(note);
    if (hooks != nullptr) hooks->on_scheduler_note(st.tid, note, detail);
  }

  void enqueue(ThreadState& st, TaskRecord* rec) {
    perturb(st, SchedulePoint::kTaskCreate);
    WorkerQueue& own = *queues[st.tid];
    if (lock_free_queues()) {
      own.deque.push(rec);
      if (st.telem.attached()) {
        st.telem.gauge_max(telemetry::Gauge::kDequeDepth, own.deque.size());
      }
      return;
    }
    std::size_t depth = 0;
    {
      std::scoped_lock lock(own.mutex);
      own.tasks.push_back(rec);
      depth = own.tasks.size();
    }
    st.telem.gauge_max(telemetry::Gauge::kDequeDepth, depth);
  }

  /// One stolen-task acquisition: bumps the always-on attempt counter and,
  /// when a sink is attached, the telemetry steal counters.
  void count_steal(ThreadState& st, bool success) noexcept {
    ++st.steal_attempts;
    st.telem.add(telemetry::Counter::kStealAttempts);
    if (success) st.telem.add(telemetry::Counter::kStealSuccesses);
  }

  /// LIFO pop from the worker's own queue (either scheduler variant).
  TaskRecord* pop_own(ThreadState& st) {
    WorkerQueue& own = *queues[st.tid];
    if (lock_free_queues()) {
      return static_cast<TaskRecord*>(own.deque.pop());
    }
    std::scoped_lock lock(own.mutex);
    if (own.tasks.empty()) return nullptr;
    TaskRecord* t = own.tasks.back();
    own.tasks.pop_back();
    return t;
  }

  /// One FIFO steal from `victim_tid`'s queue (either scheduler variant).
  TaskRecord* steal_one(ThreadId victim_tid) {
    WorkerQueue& victim = *queues[victim_tid];
    if (lock_free_queues()) {
      return static_cast<TaskRecord*>(victim.deque.steal());
    }
    std::scoped_lock lock(victim.mutex);
    if (victim.tasks.empty()) return nullptr;
    TaskRecord* t = victim.tasks.front();
    victim.tasks.pop_front();
    return t;
  }

  /// Stack bound for one batched steal; Topology::steal_batch_max is
  /// clamped to it.
  static constexpr std::size_t kStealBatchCap = 32;

  /// Cross-domain batch steal: take up to steal_batch_max tasks from
  /// `victim_tid` (never more than half of what the victim appears to
  /// hold — steal-half), return the oldest to run now and re-push the
  /// rest onto the thief's own deque, where same-domain neighbours can
  /// find them without crossing the boundary again.  Returns nullptr when
  /// the victim yielded nothing.
  TaskRecord* steal_batch_from(ThreadState& st, ThreadId victim_tid) {
    TaskRecord* items[kStealBatchCap];
    const std::size_t cap = std::min<std::size_t>(
        std::max<std::uint32_t>(config.topology.steal_batch_max, 1),
        kStealBatchCap);
    std::size_t got = 0;
    WorkerQueue& victim = *queues[victim_tid];
    if (lock_free_queues()) {
      void* raw[kStealBatchCap];
      const std::size_t want = std::max<std::size_t>(
          1, std::min(cap, (victim.deque.size() + 1) / 2));
      got = victim.deque.steal_batch(raw, want);
      for (std::size_t i = 0; i < got; ++i) {
        items[i] = static_cast<TaskRecord*>(raw[i]);
      }
    } else {
      // Mutex variant: one lock hold for the whole batch.  Items are
      // buffered and re-pushed after unlocking — taking the thief's own
      // queue mutex while holding the victim's would deadlock against a
      // symmetric steal.
      std::scoped_lock lock(victim.mutex);
      const std::size_t want = std::max<std::size_t>(
          1, std::min(cap, (victim.tasks.size() + 1) / 2));
      while (got < want && !victim.tasks.empty()) {
        items[got++] = victim.tasks.front();
        victim.tasks.pop_front();
      }
    }
    count_steal(st, got > 0);
    if (got == 0) return nullptr;
    st.steals += got;
    st.telem.add(telemetry::Counter::kStealsCrossDomain, got);
    st.telem.add(telemetry::Counter::kStealBatchTasks, got);
    if (got > 1) {
      WorkerQueue& own = *queues[st.tid];
      if (lock_free_queues()) {
        // Push deepest-age first so the next own pop() resumes with the
        // batch's next-oldest task — the same continuation order a FIFO
        // victim drain would produce.
        for (std::size_t i = got; i-- > 1;) own.deque.push(items[i]);
        if (st.telem.attached()) {
          st.telem.gauge_max(telemetry::Gauge::kDequeDepth, own.deque.size());
        }
      } else {
        std::scoped_lock lock(own.mutex);
        for (std::size_t i = got; i-- > 1;) own.tasks.push_back(items[i]);
      }
    }
    return items[0];
  }

  /// Hierarchical victim selection (RealConfig::topology, DESIGN.md §15):
  /// probe the thief's own locality domain first with a seeded
  /// within-domain rotation; only after Topology::local_miss_limit
  /// consecutive empty local sweeps escalate to the remote domains
  /// (seeded domain rotation), where the first victim with work loses a
  /// whole batch.  All rotations draw from the worker's ScheduleStream,
  /// so a given policy seed reproduces the exact victim sequence.
  TaskRecord* steal_round_hierarchical(ThreadState& st) {
    const std::vector<ThreadId>& local = domain_members[st.domain];
    const auto lsize = static_cast<std::uint32_t>(local.size());
    if (lsize > 1) {
      const std::uint32_t lring = lsize - 1;
      const std::uint32_t rotation = st.sched.victim_rotation(lsize);
      for (std::uint32_t i = 0; i < lring; ++i) {
        const std::uint32_t slot =
            (st.domain_slot + 1 + (rotation + i) % lring) % lsize;
        TaskRecord* t = steal_one(local[slot]);
        count_steal(st, t != nullptr);
        if (t != nullptr) {
          ++st.steals;
          st.local_misses = 0;
          st.telem.add(telemetry::Counter::kStealsInDomain);
          return t;
        }
      }
    }
    // A worker alone in its domain has no local victims and escalates on
    // every sweep; everyone else accumulates misses first.
    if (lsize > 1 && ++st.local_misses < config.topology.local_miss_limit) {
      st.telem.add(telemetry::Counter::kStealAborts);
      return nullptr;
    }
    st.local_misses = 0;
    st.telem.add(telemetry::Counter::kStealEscalations);
    const auto ndomains = static_cast<std::uint32_t>(domain_members.size());
    const std::uint32_t dring = ndomains - 1;
    const std::uint32_t drotation = st.sched.victim_rotation(ndomains);
    for (std::uint32_t i = 0; i < dring; ++i) {
      const std::uint32_t dom =
          (st.domain + 1 + (drotation + i) % dring) % ndomains;
      for (const ThreadId victim : domain_members[dom]) {
        if (TaskRecord* t = steal_batch_from(st, victim)) return t;
      }
    }
    st.telem.add(telemetry::Counter::kStealAborts);
    return nullptr;
  }

  /// One full FIFO-steal sweep over the other workers' queues.  The scan
  /// starts at neighbour offset 1 + rotation — rotation is 0 without a
  /// schedule policy, preserving the historical clockwise order.  With a
  /// multi-domain topology the sweep is hierarchical instead (local
  /// domain first, batched escalation); see steal_round_hierarchical.
  TaskRecord* steal_round(ThreadState& st) {
    if (!config.steal || nthreads <= 1) return nullptr;
    if (hier_steal) return steal_round_hierarchical(st);
    const auto ring = static_cast<std::uint32_t>(nthreads - 1);
    const std::uint32_t rotation =
        st.sched.victim_rotation(static_cast<std::uint32_t>(nthreads));
    for (std::uint32_t i = 0; i < ring; ++i) {
      const ThreadId offset = 1 + (rotation + i) % ring;
      TaskRecord* t = steal_one(
          static_cast<ThreadId>((st.tid + offset) %
                                static_cast<ThreadId>(nthreads)));
      count_steal(st, t != nullptr);
      if (t != nullptr) {
        ++st.steals;
        return t;
      }
    }
    st.telem.add(telemetry::Counter::kStealAborts);
    return nullptr;
  }

  /// Ids per claim of the shared instance-id counter in replay mode.
  static constexpr TaskInstanceId kIdBlock = 256;

  /// Root ordinals per claim when the recording had a single root
  /// producer.  Small enough that the end-of-body hole sweep stays
  /// trivial, large enough to amortize the shared RMW away.
  static constexpr std::uint32_t kRootOrdinalBlock = 32;

  /// Fresh task instance id.  Replay regions claim ids in per-thread
  /// blocks so the spawn hot path skips the shared-counter RMW; ids stay
  /// unique (which is all the profiler needs) but are no longer dense.
  TaskInstanceId next_instance_id(ThreadState& st) {
    if (graph_mode != GraphMode::kReplay) {
      return next_id.fetch_add(1, std::memory_order_relaxed);
    }
    if (st.id_next == st.id_end) {
      st.id_next = next_id.fetch_add(kIdBlock, std::memory_order_relaxed);
      st.id_end = st.id_next + kIdBlock;
    }
    return st.id_next++;
  }

  /// True when this worker can never acquire work again in the current
  /// replay region: its static run list is finished and no divergence
  /// has put tasks on the dynamic deques.  A dynamic scheduler can never
  /// conclude this (work might be stolen at any time); the static
  /// schedule makes quiescence a local fact, and the barrier loop uses
  /// it to sleep instead of contributing to a yield storm that starves
  /// the owners still draining their lists on an oversubscribed host.
  [[nodiscard]] bool replay_exhausted(const ThreadState& st) const {
    return graph_mode == GraphMode::kReplay &&
           st.replay_cursor >= schedule.run_lists[st.tid].size() &&
           dynamic_outstanding.load(std::memory_order_relaxed) == 0;
  }

  /// Divergence fallback work in flight: a parked worker should resume
  /// scanning the deques instead of (re-)parking.
  [[nodiscard]] bool replay_divergence_pending() const {
    return dynamic_outstanding.load(std::memory_order_relaxed) > 0;
  }

  /// Replay accounting: static spawns and completions batch into the
  /// per-thread signed `static_delta` (+1 publish, -1 settle) and reach
  /// the shared `outstanding` word only here — on a poll miss and at
  /// barrier entry, as one release fetch_add.  That leaves the static
  /// hot path with zero shared-counter RMWs per task.
  ///
  /// Why a barrier can still trust `outstanding == 0`: a thread's delta
  /// accumulates publishes *before* the settle of the task whose body
  /// made them (program order), and a flush is all-or-nothing, so
  /// `outstanding` can only miss a task's settle together with every
  /// publish from inside that task's body.  Walk any published-unsettled
  /// task up its spawn chain: either some ancestor's publish is already
  /// flushed (outstanding > 0 — no exit), or the chain ends in an
  /// implicit body that has not yet arrived at the barrier (arrived <
  /// needed — no exit; entry flushes before arriving, below).  Either
  /// way a barrier cannot exit while real work remains; a *negative*
  /// transient (settle flushed before its publish) only parks the exit
  /// until the publisher's flush, which its barrier entry guarantees.
  void flush_static_delta(ThreadState& st) {
    if (st.static_delta != 0) {
      outstanding.fetch_add(static_cast<std::uint64_t>(st.static_delta),
                            std::memory_order_release);
      st.static_delta = 0;
      // A flush that empties `outstanding` may be the last event a
      // parked worker waits on.
      if (outstanding.load(std::memory_order_relaxed) == 0) wake_parked();
    }
  }

  /// Nudge parked replay workers to re-check their exit predicate.  The
  /// empty lock/unlock closes the classic lost-wakeup window (a parker
  /// between its predicate check and its wait); the parked()==0 fast
  /// path keeps every non-parking configuration mutex-free.  Parkers
  /// additionally cap their wait, so even a wake lost to memory-order
  /// weirdness only costs one timeout period.
  void wake_parked() {
    if (barrier.parked.load(std::memory_order_seq_cst) == 0) return;
    { std::lock_guard<std::mutex> lk(barrier.park_mu); }
    barrier.park_cv.notify_all();
  }

  TaskRecord* try_acquire(ThreadState& st) {
    perturb(st, SchedulePoint::kAcquire);
    if (graph_mode == GraphMode::kReplay) {
      // Static fast path: one acquire load on the head-of-line slot of
      // this worker's own run list.  No pop, no steal sweep, no CAS —
      // this is where the replay's contention win comes from.
      const std::uint32_t node = replay.poll(st.tid, st.replay_cursor);
      if (node != kGraphNone) return &replay_records[node];
      flush_static_delta(st);
      // The deques only carry work after a divergence; skip them (and
      // their steal probes) while no dynamic task is in flight.
      if (dynamic_outstanding.load(std::memory_order_relaxed) > 0) {
        if (TaskRecord* t = pop_own(st)) return t;
        return steal_round(st);
      }
      return nullptr;
    }
    // Under a schedule policy a worker occasionally inverts the LIFO-local
    // bias and raids other queues before its own — the inversion OpenMP
    // permits at any task scheduling point but a fair scheduler never
    // exercises.
    if (st.sched.attached() && config.steal && nthreads > 1 &&
        st.sched.steal_first()) {
      if (TaskRecord* t = steal_round(st)) return t;
      return pop_own(st);
    }
    if (TaskRecord* t = pop_own(st)) return t;
    return steal_round(st);
  }

  /// Drop one lifetime reference; recycle into the creator's slab when
  /// none remain.  Implicit-task records (ThreadState members,
  /// slab == nullptr) keep their own reference forever and never get here
  /// with refs == 1.
  void release_ref(ThreadState& st, TaskRecord* rec) {
    if (rec->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      TASKPROF_ASSERT(rec->slab != nullptr,
                      "implicit-task record dropped its last reference");
      const bool local = rec->creator == st.tid;
      rec->slab->recycle(rec, local);
      st.telem.add(telemetry::Counter::kSlabRecycles);
      if (!local) st.telem.add(telemetry::Counter::kSlabRemoteRecycles);
    }
  }

  void execute(ThreadState& st, TaskContext& ctx, TaskRecord* rec) {
    if (hooks != nullptr) {
      hooks->on_task_begin(st.tid, rec->id, rec->attrs.region,
                           rec->attrs.parameter);
    }
    st.telem.add(telemetry::Counter::kTasksExecuted);
    if (st.telem.attached()) {
      st.telem.gauge_max(telemetry::Gauge::kTaskStackDepth,
                         st.task_stack.size() + 1);
    }
    st.task_stack.push_back(rec);
    const bool record_timing =
        graph_mode == GraphMode::kRecord && rec->graph_node != kGraphNone &&
        rec->graph_node != kGraphRoot;
    const Ticks body_t0 = record_timing ? clock.now() : 0;
    rec->fn(ctx);
    if (record_timing) {
      // Duration estimate for the partitioner.  Nested tasks executed at
      // this task's scheduling points inflate it; that is acceptable for
      // a load-balancing weight and costs nothing to the replay path.
      recorder->record_duration(rec->graph_node, clock.now() - body_t0);
    }
    st.task_stack.pop_back();
    if (graph_mode == GraphMode::kReplay && rec->graph_node != kGraphNone &&
        rec->graph_node != kGraphRoot && !rec->replay_diverged &&
        rec->replay_ordinal < rec->graph_children) {
      // Short spawn: the recording promised more children than the task
      // produced.  Cancel their subtrees before this task's counters
      // drop, so no run list stays queued behind a slot that can no
      // longer be filled.
      diverge(st, SchedulerNote::kTaskgraphDivergeShortSpawn,
              rec->graph_node);
      replay.cancel_children_from(rec->graph_node, rec->replay_ordinal);
    }
    if (hooks != nullptr) hooks->on_task_end(st.tid, rec->id);
    // parent == nullptr only for detached root replay spawns (see
    // replay_spawn): no child accounting to settle.
    TaskRecord* parent = rec->parent;
    if (rec->deferred) {
      if (parent != nullptr) {
        parent->pending_children.fetch_sub(1, std::memory_order_release);
      }
      if (graph_mode == GraphMode::kReplay && rec->graph_node != kGraphNone) {
        // Static replay task: settles against `outstanding` in batch at
        // the next poll miss or barrier entry (flush_static_delta).
        --st.static_delta;
      } else {
        if (graph_mode == GraphMode::kReplay) {
          dynamic_outstanding.fetch_sub(1, std::memory_order_release);
        }
        outstanding.fetch_sub(1, std::memory_order_release);
      }
    }
    ++st.executed;
    // Reference traffic exists to keep recyclable slab records alive;
    // implicit-task records and static replay records never recycle, so
    // they skip the RMWs entirely.
    if (rec->slab != nullptr) release_ref(st, rec);
    if (parent != nullptr && parent->slab != nullptr) {
      release_ref(st, parent);
    }
    // Resuming an enclosing *explicit* task is a task switch (Fig. 12);
    // returning to the implicit task is implied by on_task_end.
    TaskRecord* enclosing = st.task_stack.back();
    if (hooks != nullptr && enclosing != &st.implicit_record) {
      hooks->on_task_switch(st.tid, enclosing->id);
    }
  }
};

namespace {

/// TaskContext implementation bound to one worker thread.
class RealContext final : public TaskContext {
 public:
  RealContext(RealRuntime::Impl& rt, RealRuntime::Impl::ThreadState& st)
      : rt_(rt), st_(st) {}

  void create_task(TaskFn fn, TaskAttrs attrs) override {
    SchedulerHooks* hooks = rt_.hooks;
    if (hooks != nullptr) {
      hooks->on_task_create_begin(st_.tid, attrs.region, attrs.parameter);
    }
    const TaskInstanceId id = rt_.next_instance_id(st_);
    ++st_.created;
    if (st_.telem.attached()) {
      st_.telem.add(telemetry::Counter::kTasksCreated);
      st_.telem.add(attrs.undeferred
                        ? telemetry::Counter::kTasksUndeferred
                        : telemetry::Counter::kTasksDeferred);
    }
    // Replay: try to serve the spawn from its preallocated static slot.
    if (!attrs.undeferred &&
        rt_.graph_mode == RealRuntime::Impl::GraphMode::kReplay &&
        replay_spawn(fn, attrs, id)) {
      if (hooks != nullptr) {
        hooks->on_task_create_end(st_.tid, id, attrs.region, attrs.parameter);
      }
      return;
    }
    st_.telem.add(telemetry::Counter::kSlabAllocs);
    TaskRecord* rec = st_.slab.allocate();
    rec->fn = std::move(fn);
    rec->attrs = attrs;
    rec->id = id;
    rec->parent = st_.task_stack.back();
    rec->creator = st_.tid;
    rec->graph_node = kGraphNone;
    rec->replay_ordinal = 0;
    rec->replay_diverged = false;
    // The child's back-reference pins recyclable parents only; implicit
    // and static replay records outlive the region anyway (see the
    // matching guard in execute()).
    if (rec->parent->slab != nullptr) {
      rec->parent->refs.fetch_add(1, std::memory_order_relaxed);
    }
    if (attrs.undeferred) {
      // Runs inside the creation construct: the task's stub node lands
      // under the "create task" node of the encountering task.  Never
      // recorded: its ordinal-free position cannot be matched on replay,
      // so its deferred descendants stay dynamic in both phases.
      rec->deferred = false;
      rt_.execute(st_, *this, rec);
      if (hooks != nullptr) {
        hooks->on_task_create_end(st_.tid, id, attrs.region, attrs.parameter);
      }
      return;
    }
    rec->deferred = true;
    if (rt_.graph_mode == RealRuntime::Impl::GraphMode::kRecord &&
        rec->parent->graph_node != kGraphNone) {
      rec->graph_node = rt_.recorder->record_spawn(
          rec->parent->graph_node, attrs.region, attrs.parameter, st_.tid);
    } else if (rt_.graph_mode == RealRuntime::Impl::GraphMode::kReplay) {
      rt_.dynamic_outstanding.fetch_add(1, std::memory_order_relaxed);
      st_.telem.add(telemetry::Counter::kTaskgraphDynamicSpawns);
      rt_.wake_parked();  // parked workers can help steal fallback work
    }
    // Relaxed is sufficient: both counters are published to other threads
    // through the enqueue below (see the memory-ordering audit above).
    rec->parent->pending_children.fetch_add(1, std::memory_order_relaxed);
    rt_.outstanding.fetch_add(1, std::memory_order_relaxed);
    rt_.enqueue(st_, rec);
    if (hooks != nullptr) {
      hooks->on_task_create_end(st_.tid, id, attrs.region, attrs.parameter);
    }
  }

  void taskwait() override {
    SchedulerHooks* hooks = rt_.hooks;
    if (hooks != nullptr) hooks->on_taskwait_begin(st_.tid);
    st_.telem.add(telemetry::Counter::kTaskwaitEntries);
    rt_.perturb(st_, SchedulePoint::kTaskwait);
    TaskRecord* current = st_.task_stack.back();
    if (rt_.graph_mode == RealRuntime::Impl::GraphMode::kRecord &&
        current->graph_node == kGraphRoot) {
      // Replay must keep implicit-task child accounting exact for this
      // graph (the detached-root-spawn optimization is off the table).
      rt_.recorder->note_root_taskwait();
    }
    int spins = 0;
    while (current->pending_children.load(std::memory_order_acquire) > 0) {
      if (TaskRecord* t = rt_.try_acquire(st_)) {
        rt_.execute(st_, *this, t);
        spins = 0;
      } else if (++spins >= rt_.config.spins_before_yield) {
        spins = 0;
        count_yield();
        std::this_thread::yield();
      }
    }
    if (hooks != nullptr) hooks->on_taskwait_end(st_.tid);
  }

  void barrier() override { barrier_impl(/*implicit=*/false); }

  void barrier_impl(bool implicit) {
    TASKPROF_ASSERT(st_.task_stack.back() == &st_.implicit_record,
                    "barrier must be called from the implicit task");
    SchedulerHooks* hooks = rt_.hooks;
    if (hooks != nullptr) hooks->on_barrier_begin(st_.tid, implicit);
    st_.telem.add(telemetry::Counter::kBarrierEntries);
    rt_.perturb(st_, SchedulePoint::kBarrier);
    const std::uint64_t generation = ++st_.barrier_counter;
    const std::uint64_t needed =
        generation * static_cast<std::uint64_t>(rt_.nthreads);
    // Flush before arriving: once this body counts as arrived, any
    // publish it performed must be visible in `outstanding` or the
    // barrier-exit condition could observe a false quiescence (the
    // soundness argument in flush_static_delta leans on this ordering).
    rt_.flush_static_delta(st_);
    rt_.barrier.arrived.fetch_add(1, std::memory_order_acq_rel);
    rt_.wake_parked();  // this arrival may complete a parked generation
    int spins = 0;
    while (true) {
      if (TaskRecord* t = rt_.try_acquire(st_)) {
        rt_.execute(st_, *this, t);
        spins = 0;
        continue;
      }
      // Stable exit condition: every thread has reached this barrier
      // generation and no explicit task is queued or running anywhere
      // ("outstanding" stays > 0 while a popped task executes).  A fast
      // thread may already be in a later generation and have queued new
      // tasks; draining those here is legal (a barrier is a task
      // scheduling point) and the exit only requires that *this*
      // generation's work is gone.
      if (rt_.barrier.arrived.load(std::memory_order_acquire) >= needed &&
          rt_.outstanding.load(std::memory_order_acquire) == 0) {
        break;
      }
      if (++spins >= rt_.config.spins_before_yield) {
        spins = 0;
        count_yield();
        if (rt_.replay_exhausted(st_)) {
          // Nothing can ever arrive for this worker again; park off the
          // run queue instead of yield-storming the owners still
          // working.  Explicit wakes come from barrier arrivals, from
          // the flush that empties `outstanding`, and from a divergence
          // putting dynamic work in flight; the timeout is only a net
          // against a lost wake.
          std::unique_lock<std::mutex> lk(rt_.barrier.park_mu);
          rt_.barrier.parked.fetch_add(1, std::memory_order_seq_cst);
          const bool done =
              rt_.barrier.arrived.load(std::memory_order_acquire) >=
                  needed &&
              rt_.outstanding.load(std::memory_order_acquire) == 0;
          if (!done && !rt_.replay_divergence_pending()) {
            rt_.barrier.park_cv.wait_for(lk, std::chrono::milliseconds(1));
          }
          rt_.barrier.parked.fetch_sub(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    }
    if (hooks != nullptr) hooks->on_barrier_end(st_.tid, implicit);
  }

  bool single() override {
    TASKPROF_ASSERT(st_.task_stack.back() == &st_.implicit_record,
                    "single must be called from the implicit task");
    // Episode numbers are monotonic per thread and all threads encounter
    // singles in the same sequence, so the first thread to attempt
    // episode e always finds the slot's last claim <= e - kSingleShards
    // and wins; every later attempt of e observes a claim >= e.  Exactly
    // one winner per episode, without resets or an episode registry.
    const std::uint64_t episode = ++st_.single_counter;
    std::atomic<std::uint64_t>& slot =
        rt_.single_shards[(episode - 1) % kSingleShards].claimed;
    std::uint64_t seen = slot.load(std::memory_order_acquire);
    while (seen < episode) {
      if (slot.compare_exchange_weak(seen, episode,
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
        st_.telem.add(telemetry::Counter::kSingleWins);
        return true;
      }
    }
    return false;
  }

  void work(Ticks cost) override {
    // Real computation is its own cost; virtual cost is ignored.
    (void)cost;
  }

  void region_enter(RegionHandle region, std::int64_t parameter) override {
    if (SchedulerHooks* hooks = rt_.hooks) {
      hooks->on_region_enter(st_.tid, region, parameter);
    }
  }

  void region_exit(RegionHandle region) override {
    if (SchedulerHooks* hooks = rt_.hooks) {
      hooks->on_region_exit(st_.tid, region);
    }
  }

  [[nodiscard]] ThreadId thread_id() const override { return st_.tid; }
  [[nodiscard]] int num_threads() const override { return rt_.nthreads; }

 private:
  /// Match a deferred spawn against the recorded graph and, on success,
  /// publish it into its preallocated slot (no allocation, no enqueue).
  /// Returns false on divergence: the recorded subtrees that can no
  /// longer be claimed are cancelled and the caller spawns dynamically.
  /// `fn` is moved from only on success.
  bool replay_spawn(TaskFn& fn, const TaskAttrs& attrs, TaskInstanceId id) {
    TaskRecord* parent = st_.task_stack.back();
    const std::uint32_t parent_key = parent->graph_node;
    if (parent_key == kGraphNone || parent->replay_diverged) {
      return false;  // dynamic subtree: nothing to match against
    }
    std::uint32_t ordinal;
    if (parent_key == kGraphRoot) {
      if (rt_.graph->single_root_producer()) {
        // Batched claim: the recorded spawn order came from one thread,
        // so the replay producer claims ordinals a block at a time and
        // hands them out with a plain increment.
        if (st_.root_next == st_.root_end) {
          st_.root_next = rt_.replay.claim_root_ordinals(
              RealRuntime::Impl::kRootOrdinalBlock);
          st_.root_end = st_.root_next + RealRuntime::Impl::kRootOrdinalBlock;
        }
        ordinal = st_.root_next++;
      } else {
        ordinal = rt_.replay.next_root_ordinal();
      }
    } else {
      ordinal = parent->replay_ordinal++;
    }
    std::uint32_t node = kGraphNone;
    if (!rt_.graph->match_spawn(parent_key, ordinal, attrs.region,
                                attrs.parameter, &node)) {
      rt_.diverge(st_, SchedulerNote::kTaskgraphDivergeStructure,
                  parent_key == kGraphRoot ? ordinal : parent_key);
      if (parent_key == kGraphRoot) {
        // Root spawns share one ordinal counter across workers, so only
        // this ordinal's recorded subtree is orphaned — later root
        // ordinals may still match on any worker.
        const std::uint32_t orphan =
            rt_.graph->child_at(kGraphRoot, ordinal);
        if (orphan != kGraphNone) rt_.replay.cancel_subtree(orphan);
      } else {
        // An explicit parent spawns sequentially: once one spawn is off
        // script the rest of its recorded children are unreachable.
        parent->replay_diverged = true;
        rt_.replay.cancel_children_from(parent_key, ordinal);
      }
      return false;
    }
    TaskRecord* rec = &rt_.replay_records[node];
    // Detached root spawn: when the recording saw no taskwait from an
    // implicit task, nothing ever reads an implicit record's
    // pending_children, so root-spawned static tasks skip the parent
    // RMW pair entirely (parent == nullptr; the region barrier tracks
    // them through the batched outstanding delta instead).
    const bool detached =
        parent_key == kGraphRoot && !rt_.graph->root_taskwait();
    // Only the per-instance fields are written here; everything constant
    // for the recording epoch (graph_node, deferred, refs, ...) was
    // initialized once at region setup (see replay_records_dirty).
    // Region boundaries quiesce the record (workers joined), so plain
    // stores are safe; the release publish below makes them visible to
    // the owner worker together.
    rec->fn = std::move(fn);
    rec->attrs = attrs;
    rec->id = id;
    rec->parent = detached ? nullptr : parent;
    rec->replay_ordinal = 0;
    if (!detached) {
      if (parent->slab != nullptr) {
        parent->refs.fetch_add(1, std::memory_order_relaxed);
      }
      // Relaxed increment rides the publish's release store, mirroring
      // how the dynamic path rides the deque push (memory-ordering
      // audit).
      parent->pending_children.fetch_add(1, std::memory_order_relaxed);
    }
    // `outstanding` is batched: +1 here, -1 when the owner finishes the
    // task, flushed at poll misses and barrier entries
    // (flush_static_delta) — the static hot path never RMWs the shared
    // word.
    ++st_.static_delta;
    st_.telem.add(telemetry::Counter::kTaskgraphStaticSpawns);
    rt_.replay.publish(node);
    return true;
  }

  void count_yield() noexcept {
    st_.telem.add(telemetry::Counter::kSchedYields);
  }

  RealRuntime::Impl& rt_;
  RealRuntime::Impl::ThreadState& st_;
};

}  // namespace

RealRuntime::RealRuntime(RealConfig config)
    : impl_(std::make_unique<Impl>(config)) {}

RealRuntime::~RealRuntime() = default;

void RealRuntime::set_hooks(SchedulerHooks* hooks) { impl_->hooks = hooks; }

void RealRuntime::set_telemetry(telemetry::Registry* registry) {
  impl_->telemetry = registry;
}

Ticks RealRuntime::now() const { return impl_->clock.now(); }

TeamStats RealRuntime::parallel(int num_threads, TaskFn body) {
  if (num_threads < 1) {
    throw std::invalid_argument("parallel: num_threads must be >= 1");
  }
  Impl& rt = *impl_;
  rt.nthreads = num_threads;
  rt.queues.clear();
  rt.threads.clear();
  rt.single_shards = std::make_unique<SingleShard[]>(kSingleShards);
  rt.barrier.arrived.store(0);
  rt.outstanding.store(0);
  rt.next_id.store(1);
  rt.dynamic_outstanding.store(0);
  rt.region_divergences.store(0);
  rt.bodies_done.store(0);
  rt.graph_mode = Impl::GraphMode::kOff;
  if (rt.config.scheduler == SchedulerKind::kTaskGraph) {
    if (rt.graph_stale) {
      rt.graph_mode = Impl::GraphMode::kFallback;
    } else if (rt.graph == nullptr) {
      rt.graph_mode = Impl::GraphMode::kRecord;
      rt.recorder = std::make_unique<TaskGraphRecorder>(num_threads);
    } else {
      rt.graph_mode = Impl::GraphMode::kReplay;
      if (rt.schedule.threads != num_threads) {
        rt.schedule = StaticSchedule::build(*rt.graph, num_threads);
      }
      rt.replay.bind(rt.graph.get(), &rt.schedule);
      if (rt.replay_record_count < rt.graph->size()) {
        rt.replay_records = std::make_unique<TaskRecord[]>(rt.graph->size());
        rt.replay_record_count = rt.graph->size();
        rt.replay_records_dirty = true;
      }
      if (rt.replay_records_dirty) {
        // Epoch init: fields that stay constant for the lifetime of this
        // recording are written once here, not on every publish.  The
        // invariants that keep them valid across replay regions:
        // graph_node == index by construction; deferred is always true
        // for a recorded (deferred) spawn; refs is never decremented
        // (slab == nullptr keeps release_ref away); pending_children
        // returns to zero at every region barrier (each increment has a
        // matching pre-barrier decrement); replay_ordinal is re-zeroed
        // per publish (it mutates during the region); replay_diverged
        // can only become true in a region that also marks the graph
        // stale, so a live replay epoch never sees a stale value.
        for (std::size_t i = 0; i < rt.graph->size(); ++i) {
          TaskRecord& rec = rt.replay_records[i];
          rec.graph_node = static_cast<std::uint32_t>(i);
          rec.graph_children =
              rt.graph->child_count(static_cast<std::uint32_t>(i));
          rec.deferred = true;
          rec.slab = nullptr;
          rec.creator = 0;
          rec.replay_diverged = false;
          rec.pending_children.store(0, std::memory_order_relaxed);
          rec.refs.store(kStaticRecordRefs, std::memory_order_relaxed);
        }
        rt.replay_records_dirty = false;
      }
    }
  }
  // Hierarchical stealing only engages when the topology actually splits
  // this team: with every worker in one populated domain the flat sweep
  // is the correct (and bit-identical historical) behaviour.
  rt.domain_members.clear();
  rt.hier_steal = false;
  if (rt.config.topology.multi_domain() && rt.config.steal &&
      num_threads > 1) {
    rt.domain_members.assign(rt.config.topology.domains, {});
    for (int i = 0; i < num_threads; ++i) {
      const auto dom = rt.config.topology.domain_of(
          static_cast<std::uint32_t>(i));
      rt.domain_members[dom].push_back(static_cast<ThreadId>(i));
    }
    std::size_t populated = 0;
    for (const auto& members : rt.domain_members) {
      if (!members.empty()) ++populated;
    }
    rt.hier_steal = populated > 1;
  }
  for (int i = 0; i < num_threads; ++i) {
    rt.queues.push_back(std::make_unique<WorkerQueue>());
    auto st = std::make_unique<Impl::ThreadState>();
    st->tid = static_cast<ThreadId>(i);
    st->implicit_record.id = kImplicitTaskId;
    st->implicit_record.graph_node = kGraphRoot;
    if (rt.config.policy != nullptr) {
      st->sched = rt.config.policy->stream(st->tid);
    }
    if (rt.hier_steal) {
      st->domain =
          rt.config.topology.domain_of(static_cast<std::uint32_t>(i));
      const auto& members = rt.domain_members[st->domain];
      for (std::size_t slot = 0; slot < members.size(); ++slot) {
        if (members[slot] == st->tid) {
          st->domain_slot = static_cast<std::uint32_t>(slot);
          break;
        }
      }
    }
    rt.threads.push_back(std::move(st));
  }
  if (rt.telemetry != nullptr) {
    rt.telemetry->prepare(num_threads);
    // Hand each worker a direct handle to its counter block so the
    // per-event path skips the registry's block-table indirection.
    for (const auto& st : rt.threads) st->telem = rt.telemetry->slots(st->tid);
    switch (rt.graph_mode) {
      case Impl::GraphMode::kRecord:
        rt.threads[0]->telem.add(telemetry::Counter::kTaskgraphRecords);
        break;
      case Impl::GraphMode::kReplay:
        rt.threads[0]->telem.add(telemetry::Counter::kTaskgraphReplays);
        break;
      case Impl::GraphMode::kFallback:
        rt.threads[0]->telem.add(telemetry::Counter::kTaskgraphFallbacks);
        break;
      case Impl::GraphMode::kOff:
        break;
    }
  }

  if (rt.hooks != nullptr) rt.hooks->on_parallel_begin(num_threads);
  const Ticks t0 = rt.clock.now();

  auto worker = [&rt, &body, num_threads](ThreadId tid) {
    Impl::ThreadState& st = *rt.threads[tid];
    st.task_stack.push_back(&st.implicit_record);
    RealContext ctx(rt, st);
    if (rt.hooks != nullptr) rt.hooks->on_implicit_task_begin(tid, rt.clock);
    if (tid == 0 && rt.graph_mode == Impl::GraphMode::kFallback &&
        rt.hooks != nullptr) {
      // Announce *why* this region runs dynamically on a recorded graph:
      // detail carries the original divergence cause.
      rt.hooks->on_scheduler_note(
          0, SchedulerNote::kTaskgraphFallbackStale,
          rt.fallback_reason.load(std::memory_order_relaxed));
    }
    body(ctx);
    if (rt.graph_mode == Impl::GraphMode::kReplay &&
        st.root_next < st.root_end) {
      // Hole sweep: this thread's unused root-ordinal tail can never be
      // claimed by anyone else, so any recorded subtree at one of those
      // ordinals was short-spawned — cancel it before the final barrier
      // strands a run list behind its empty slot.  Ordinals past the
      // recorded root row are just block-claim rounding, not holes.
      bool hole = false;
      for (std::uint32_t o = st.root_next; o < st.root_end; ++o) {
        const std::uint32_t n = rt.graph->child_at(kGraphRoot, o);
        if (n == kGraphNone) continue;
        hole = true;
        rt.replay.cancel_subtree(n);
      }
      if (hole) {
        rt.diverge(st, SchedulerNote::kTaskgraphDivergeShortSpawn,
                   st.root_next);
      }
    }
    if (rt.graph_mode == Impl::GraphMode::kReplay &&
        rt.bodies_done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            num_threads) {
      // Every implicit task's body has returned: no further root spawns
      // can claim ordinals.  The acquire above sees all claims, so any
      // recorded root child beyond the claimed count was short-spawned —
      // cancel those subtrees before the final barrier or their empty
      // slots would strand every run list queued behind them.
      const std::uint32_t claimed = rt.replay.root_ordinals_claimed();
      if (claimed < rt.graph->child_count(kGraphRoot)) {
        rt.diverge(st, SchedulerNote::kTaskgraphDivergeShortSpawn, claimed);
        rt.replay.cancel_children_from(kGraphRoot, claimed);
      }
    }
    ctx.barrier_impl(/*implicit=*/true);
    if (rt.hooks != nullptr) rt.hooks->on_implicit_task_end(tid);
  };

  std::vector<std::thread> extra;
  extra.reserve(static_cast<std::size_t>(num_threads) - 1);
  for (int i = 1; i < num_threads; ++i) {
    extra.emplace_back(worker, static_cast<ThreadId>(i));
  }
  worker(0);
  for (auto& t : extra) t.join();

  const Ticks t1 = rt.clock.now();
  if (rt.hooks != nullptr) rt.hooks->on_parallel_end();

  TeamStats stats;
  stats.parallel_ticks = t1 - t0;
  for (const auto& st : rt.threads) {
    stats.tasks_executed += st->executed;
    stats.tasks_created += st->created;
    stats.steals += st->steals;
    stats.steal_attempts += st->steal_attempts;
    if (rt.telemetry != nullptr) {
      // Quiescent point: the workers joined, so the owner-only carved()
      // reads and the single-writer gauge stores are race-free here.
      rt.telemetry->gauge_max(st->tid, telemetry::Gauge::kSlabRecords,
                              st->slab.carved());
    }
  }
  TASKPROF_ASSERT(rt.outstanding.load() == 0,
                  "tasks outstanding after parallel region");
  if (rt.graph_mode == Impl::GraphMode::kRecord) {
    rt.graph = rt.recorder->freeze();
    rt.recorder.reset();
    rt.schedule.threads = 0;  // force a partition for the first replay
    rt.replay_records_dirty = true;  // new epoch: re-init constant fields
  } else if (rt.graph_mode == Impl::GraphMode::kReplay) {
    // Quiescent sweep: slots still empty mean spawns the engine could
    // not observe going missing (all detectable cases were cancelled).
    if (rt.replay.unspawned_count() > 0) {
      rt.region_divergences.fetch_add(1, std::memory_order_relaxed);
      if (rt.telemetry != nullptr) {
        rt.telemetry->add(0, telemetry::Counter::kTaskgraphDivergences);
        rt.telemetry->add(0, telemetry::Counter::kTaskgraphDivergeResidue);
      }
      rt.remember_fallback_reason(SchedulerNote::kTaskgraphDivergeResidue);
      if (rt.hooks != nullptr) {
        // Post-join, so this fires on the master's track; worker 0's
        // recorder clock is still bound.
        rt.hooks->on_scheduler_note(
            0, SchedulerNote::kTaskgraphDivergeResidue,
            static_cast<std::int64_t>(rt.replay.unspawned_count()));
      }
    }
    if (rt.region_divergences.load(std::memory_order_relaxed) > 0) {
      // The program no longer matches the recording; later regions run
      // fully dynamic (GraphMode::kFallback) until reset_taskgraph().
      rt.graph_stale = true;
    }
  }
  return stats;
}

bool RealRuntime::taskgraph_recorded() const noexcept {
  return impl_->graph != nullptr;
}

bool RealRuntime::taskgraph_stale() const noexcept {
  return impl_->graph_stale;
}

SchedulerNote RealRuntime::taskgraph_fallback_reason() const noexcept {
  return static_cast<SchedulerNote>(
      impl_->fallback_reason.load(std::memory_order_relaxed));
}

std::size_t RealRuntime::taskgraph_size() const noexcept {
  return impl_->graph != nullptr ? impl_->graph->size() : 0;
}

void RealRuntime::reset_taskgraph() noexcept {
  impl_->graph.reset();
  impl_->graph_stale = false;
  impl_->fallback_reason.store(0, std::memory_order_relaxed);
  impl_->schedule.threads = 0;
}

}  // namespace taskprof::rt
