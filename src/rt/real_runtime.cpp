#include "rt/real_runtime.hpp"

#include <atomic>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "common/clock.hpp"

namespace taskprof::rt {

namespace {

/// One explicit (or implicit) task instance known to the scheduler.
struct TaskRecord {
  TaskFn fn;
  TaskAttrs attrs;
  TaskInstanceId id = kImplicitTaskId;
  TaskRecord* parent = nullptr;
  std::atomic<std::uint32_t> pending_children{0};
  /// Lifetime references: 1 for the task itself plus 1 per incomplete
  /// child (a fire-and-forget parent's record must outlive its children,
  /// which decrement pending_children through this pointer).
  std::atomic<std::uint32_t> refs{1};
  ThreadId creator = 0;
  bool deferred = false;  ///< counted in queue/outstanding bookkeeping
};

/// Drop one lifetime reference; delete when none remain.  Implicit-task
/// records (stack-allocated, id == kImplicitTaskId) keep their own
/// reference forever and are never deleted here.
void release_ref(TaskRecord* rec) {
  if (rec->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    delete rec;
  }
}

/// Per-thread task queue.  A plain mutex-protected deque: the benchmark
/// host is heavily oversubscribed, so a simple fair queue beats a clever
/// lock-free deque in robustness, and the paper's contention effects are
/// studied in the simulator anyway.
struct WorkerQueue {
  std::mutex mutex;
  std::deque<TaskRecord*> tasks;
};

struct BarrierEpisode {
  std::atomic<int> arrived{0};
};

}  // namespace

struct RealRuntime::Impl {
  explicit Impl(RealConfig cfg) : config(cfg) {}

  // --- configuration / global state ------------------------------------
  RealConfig config;
  SchedulerHooks* hooks = nullptr;
  SteadyClock clock;

  // --- team state (valid during one parallel region) --------------------
  int nthreads = 0;
  std::vector<std::unique_ptr<WorkerQueue>> queues;
  std::atomic<std::uint64_t> outstanding{0};
  std::atomic<TaskInstanceId> next_id{1};

  std::mutex episode_mutex;
  std::vector<std::unique_ptr<std::atomic<int>>> single_episodes;
  std::vector<std::unique_ptr<BarrierEpisode>> barrier_episodes;

  // --- per-thread state --------------------------------------------------
  struct ThreadState {
    ThreadId tid = 0;
    TaskRecord implicit_record;
    std::vector<TaskRecord*> task_stack;  // bottom = &implicit_record
    std::size_t single_counter = 0;
    std::size_t barrier_counter = 0;
    std::uint64_t executed = 0;
    std::uint64_t steals = 0;
  };
  std::vector<std::unique_ptr<ThreadState>> threads;

  // --- scheduling --------------------------------------------------------

  TaskRecord* try_acquire(ThreadState& st) {
    WorkerQueue& own = *queues[st.tid];
    {
      std::scoped_lock lock(own.mutex);
      if (!own.tasks.empty()) {
        TaskRecord* t = own.tasks.back();
        own.tasks.pop_back();
        return t;
      }
    }
    if (!config.steal) return nullptr;
    for (int offset = 1; offset < nthreads; ++offset) {
      WorkerQueue& victim =
          *queues[(st.tid + static_cast<ThreadId>(offset)) %
                  static_cast<ThreadId>(nthreads)];
      std::scoped_lock lock(victim.mutex);
      if (!victim.tasks.empty()) {
        TaskRecord* t = victim.tasks.front();
        victim.tasks.pop_front();
        ++st.steals;
        return t;
      }
    }
    return nullptr;
  }

  void execute(ThreadState& st, TaskContext& ctx, TaskRecord* rec) {
    if (hooks != nullptr) {
      hooks->on_task_begin(st.tid, rec->id, rec->attrs.region,
                           rec->attrs.parameter);
    }
    st.task_stack.push_back(rec);
    rec->fn(ctx);
    st.task_stack.pop_back();
    if (hooks != nullptr) hooks->on_task_end(st.tid, rec->id);
    TaskRecord* parent = rec->parent;
    if (rec->deferred) {
      parent->pending_children.fetch_sub(1, std::memory_order_release);
      outstanding.fetch_sub(1, std::memory_order_release);
    }
    ++st.executed;
    release_ref(rec);
    release_ref(parent);
    // Resuming an enclosing *explicit* task is a task switch (Fig. 12);
    // returning to the implicit task is implied by on_task_end.
    TaskRecord* enclosing = st.task_stack.back();
    if (hooks != nullptr && enclosing != &st.implicit_record) {
      hooks->on_task_switch(st.tid, enclosing->id);
    }
  }

  std::atomic<int>& single_episode(std::size_t index) {
    std::scoped_lock lock(episode_mutex);
    while (single_episodes.size() <= index) {
      single_episodes.push_back(std::make_unique<std::atomic<int>>(0));
    }
    return *single_episodes[index];
  }

  BarrierEpisode& barrier_episode(std::size_t index) {
    std::scoped_lock lock(episode_mutex);
    while (barrier_episodes.size() <= index) {
      barrier_episodes.push_back(std::make_unique<BarrierEpisode>());
    }
    return *barrier_episodes[index];
  }
};

namespace {

/// TaskContext implementation bound to one worker thread.
class RealContext final : public TaskContext {
 public:
  RealContext(RealRuntime::Impl& rt, RealRuntime::Impl::ThreadState& st)
      : rt_(rt), st_(st) {}

  void create_task(TaskFn fn, TaskAttrs attrs) override {
    SchedulerHooks* hooks = rt_.hooks;
    if (hooks != nullptr) {
      hooks->on_task_create_begin(st_.tid, attrs.region, attrs.parameter);
    }
    const TaskInstanceId id =
        rt_.next_id.fetch_add(1, std::memory_order_relaxed);
    auto* rec = new TaskRecord();
    rec->fn = std::move(fn);
    rec->attrs = attrs;
    rec->id = id;
    rec->parent = st_.task_stack.back();
    rec->creator = st_.tid;
    rec->parent->refs.fetch_add(1, std::memory_order_relaxed);
    if (attrs.undeferred) {
      // Runs inside the creation construct: the task's stub node lands
      // under the "create task" node of the encountering task.
      rec->deferred = false;
      rt_.execute(st_, *this, rec);
      if (hooks != nullptr) {
        hooks->on_task_create_end(st_.tid, id, attrs.region, attrs.parameter);
      }
      return;
    }
    rec->deferred = true;
    rec->parent->pending_children.fetch_add(1, std::memory_order_relaxed);
    rt_.outstanding.fetch_add(1, std::memory_order_relaxed);
    {
      WorkerQueue& own = *rt_.queues[st_.tid];
      std::scoped_lock lock(own.mutex);
      own.tasks.push_back(rec);
    }
    if (hooks != nullptr) {
      hooks->on_task_create_end(st_.tid, id, attrs.region, attrs.parameter);
    }
  }

  void taskwait() override {
    SchedulerHooks* hooks = rt_.hooks;
    if (hooks != nullptr) hooks->on_taskwait_begin(st_.tid);
    TaskRecord* current = st_.task_stack.back();
    int spins = 0;
    while (current->pending_children.load(std::memory_order_acquire) > 0) {
      if (TaskRecord* t = rt_.try_acquire(st_)) {
        rt_.execute(st_, *this, t);
        spins = 0;
      } else if (++spins >= rt_.config.spins_before_yield) {
        spins = 0;
        std::this_thread::yield();
      }
    }
    if (hooks != nullptr) hooks->on_taskwait_end(st_.tid);
  }

  void barrier() override { barrier_impl(/*implicit=*/false); }

  void barrier_impl(bool implicit) {
    TASKPROF_ASSERT(st_.task_stack.back() == &st_.implicit_record,
                    "barrier must be called from the implicit task");
    SchedulerHooks* hooks = rt_.hooks;
    if (hooks != nullptr) hooks->on_barrier_begin(st_.tid, implicit);
    BarrierEpisode& episode = rt_.barrier_episode(st_.barrier_counter++);
    episode.arrived.fetch_add(1, std::memory_order_acq_rel);
    int spins = 0;
    while (true) {
      if (TaskRecord* t = rt_.try_acquire(st_)) {
        rt_.execute(st_, *this, t);
        spins = 0;
        continue;
      }
      // Stable exit condition: every thread has reached this barrier and
      // no explicit task is queued or running anywhere ("outstanding"
      // stays > 0 while a popped task executes).
      if (episode.arrived.load(std::memory_order_acquire) == rt_.nthreads &&
          rt_.outstanding.load(std::memory_order_acquire) == 0) {
        break;
      }
      if (++spins >= rt_.config.spins_before_yield) {
        spins = 0;
        std::this_thread::yield();
      }
    }
    if (hooks != nullptr) hooks->on_barrier_end(st_.tid, implicit);
  }

  bool single() override {
    TASKPROF_ASSERT(st_.task_stack.back() == &st_.implicit_record,
                    "single must be called from the implicit task");
    std::atomic<int>& claimed = rt_.single_episode(st_.single_counter++);
    int expected = 0;
    return claimed.compare_exchange_strong(expected, 1,
                                           std::memory_order_acq_rel);
  }

  void work(Ticks cost) override {
    // Real computation is its own cost; virtual cost is ignored.
    (void)cost;
  }

  void region_enter(RegionHandle region, std::int64_t parameter) override {
    if (SchedulerHooks* hooks = rt_.hooks) {
      hooks->on_region_enter(st_.tid, region, parameter);
    }
  }

  void region_exit(RegionHandle region) override {
    if (SchedulerHooks* hooks = rt_.hooks) {
      hooks->on_region_exit(st_.tid, region);
    }
  }

  [[nodiscard]] ThreadId thread_id() const override { return st_.tid; }
  [[nodiscard]] int num_threads() const override { return rt_.nthreads; }

 private:
  RealRuntime::Impl& rt_;
  RealRuntime::Impl::ThreadState& st_;
};

}  // namespace

RealRuntime::RealRuntime(RealConfig config)
    : impl_(std::make_unique<Impl>(config)) {}

RealRuntime::~RealRuntime() = default;

void RealRuntime::set_hooks(SchedulerHooks* hooks) { impl_->hooks = hooks; }

Ticks RealRuntime::now() const { return impl_->clock.now(); }

TeamStats RealRuntime::parallel(int num_threads, TaskFn body) {
  if (num_threads < 1) {
    throw std::invalid_argument("parallel: num_threads must be >= 1");
  }
  Impl& rt = *impl_;
  rt.nthreads = num_threads;
  rt.queues.clear();
  rt.threads.clear();
  rt.single_episodes.clear();
  rt.barrier_episodes.clear();
  rt.outstanding.store(0);
  rt.next_id.store(1);
  for (int i = 0; i < num_threads; ++i) {
    rt.queues.push_back(std::make_unique<WorkerQueue>());
    auto st = std::make_unique<Impl::ThreadState>();
    st->tid = static_cast<ThreadId>(i);
    st->implicit_record.id = kImplicitTaskId;
    rt.threads.push_back(std::move(st));
  }

  if (rt.hooks != nullptr) rt.hooks->on_parallel_begin(num_threads);
  const Ticks t0 = rt.clock.now();

  auto worker = [&rt, &body](ThreadId tid) {
    Impl::ThreadState& st = *rt.threads[tid];
    st.task_stack.push_back(&st.implicit_record);
    RealContext ctx(rt, st);
    if (rt.hooks != nullptr) rt.hooks->on_implicit_task_begin(tid, rt.clock);
    body(ctx);
    ctx.barrier_impl(/*implicit=*/true);
    if (rt.hooks != nullptr) rt.hooks->on_implicit_task_end(tid);
  };

  std::vector<std::thread> extra;
  extra.reserve(static_cast<std::size_t>(num_threads) - 1);
  for (int i = 1; i < num_threads; ++i) {
    extra.emplace_back(worker, static_cast<ThreadId>(i));
  }
  worker(0);
  for (auto& t : extra) t.join();

  const Ticks t1 = rt.clock.now();
  if (rt.hooks != nullptr) rt.hooks->on_parallel_end();

  TeamStats stats;
  stats.parallel_ticks = t1 - t0;
  for (const auto& st : rt.threads) {
    stats.tasks_executed += st->executed;
    stats.steals += st->steals;
  }
  TASKPROF_ASSERT(rt.outstanding.load() == 0,
                  "tasks outstanding after parallel region");
  return stats;
}

}  // namespace taskprof::rt
