// Wire protocol for continuous profile ingestion (taskprofd).
//
// Producers stream *delta* snapshots to the aggregation daemon over a
// Unix-domain socket.  The transport is a sequence of length-prefixed,
// CRC-guarded frames; a Delta frame's payload wraps a complete,
// versioned `.tpsnap` byte string (src/snapshot), so the snapshot
// format itself is unchanged — delta-ness lives entirely in the frame
// envelope (sequence numbers, base sequence, rebase flag):
//
//   magic[4] "TPIF"
//   u8       frame type
//   u32      payload size (little-endian, <= kMaxFramePayload)
//   u32      CRC-32 of the payload
//   payload
//
// A session is: Hello -> HelloAck, then any number of Delta -> DeltaAck
// (strictly increasing seq, each delta's base_seq naming the seq it was
// computed against) interleaved with Heartbeat echoes, ended by
// Bye -> ByeAck.  A producer that reconnects after losing its ack state
// sends a rebase delta (rebase=1, base_seq=0) carrying its full
// cumulative profile.  Report/export queries reuse the same transport:
// ReportRequest -> ReportReply on a connection that never said Hello.
//
// All failures are typed (IngestError carrying an Errc), mirroring
// src/snapshot's discipline: the daemon never crashes on hostile bytes,
// it answers with an Error frame — the ingest fuzzer drives exactly
// this contract.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace taskprof::ingest {

inline constexpr std::size_t kFrameMagicSize = 4;
inline constexpr char kFrameMagic[kFrameMagicSize] = {'T', 'P', 'I', 'F'};
inline constexpr std::size_t kFrameHeaderSize = kFrameMagicSize + 1 + 4 + 4;
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Upper bound on one frame's payload: generous for real snapshots,
/// tight enough that a hostile size field cannot drive allocation.
inline constexpr std::size_t kMaxFramePayload = 64u << 20;

inline constexpr std::size_t kMaxProducerName = 256;
inline constexpr std::size_t kMaxErrorDetail = 1024;

enum class FrameType : std::uint8_t {
  kHello = 1,          ///< producer -> daemon: open a session
  kHelloAck = 2,       ///< daemon -> producer: session id assigned
  kDelta = 3,          ///< producer -> daemon: one delta snapshot
  kDeltaAck = 4,       ///< daemon -> producer: delta seq durably merged
  kHeartbeat = 5,      ///< either direction: liveness echo
  kBye = 6,            ///< producer -> daemon: clean end of stream
  kByeAck = 7,         ///< daemon -> producer: contribution folded
  kError = 8,          ///< daemon -> producer: typed rejection
  kReportRequest = 9,  ///< query client -> daemon
  kReportReply = 10,   ///< daemon -> query client
};

/// True when `value` names a known frame type.
[[nodiscard]] bool frame_type_valid(std::uint8_t value) noexcept;

/// Why a frame or session was rejected.
enum class Errc : std::uint8_t {
  kIo = 1,          ///< socket read/write/connect failed
  kBadMagic = 2,    ///< frame header does not start with "TPIF"
  kBadType = 3,     ///< unknown frame type byte
  kTruncated = 4,   ///< stream ended inside a frame
  kBadCrc = 5,      ///< payload does not match its checksum
  kMalformed = 6,   ///< CRC-valid payload violates the grammar
  kLimit = 7,       ///< a declared size exceeds the sanity limits
  kBadState = 8,    ///< frame is illegal in the session's current state
  kBadSeq = 9,      ///< delta sequence gap or base mismatch
  kBadVersion = 10, ///< unsupported protocol version in Hello
};

/// Stable lowercase name of an error class, e.g. "bad-seq".
[[nodiscard]] std::string_view errc_name(Errc code) noexcept;

/// True when `value` is a valid on-wire Errc byte.
[[nodiscard]] bool errc_valid(std::uint8_t value) noexcept;

/// Typed rejection.  what() is "<origin>: <errc-name>: <detail>".
class IngestError : public std::runtime_error {
 public:
  IngestError(Errc code, const std::string& origin, const std::string& detail);

  [[nodiscard]] Errc code() const noexcept { return code_; }

 private:
  Errc code_;
};

/// One parsed frame: type plus its CRC-verified payload bytes.
struct Frame {
  FrameType type = FrameType::kError;
  std::vector<std::uint8_t> payload;
};

/// Wrap a payload in a frame header (magic, type, size, CRC).
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    FrameType type, std::span<const std::uint8_t> payload);

/// Incremental frame parser over a byte stream (nonblocking reads feed
/// it arbitrary chunks).  next() yields complete frames; it throws
/// IngestError the moment the buffered prefix cannot be a valid frame
/// (bad magic, unknown type, oversized payload, CRC mismatch), because
/// a byte stream with a corrupt header can never resynchronize.
class FrameReader {
 public:
  explicit FrameReader(std::string origin,
                       std::size_t max_payload = kMaxFramePayload);

  void feed(std::span<const std::uint8_t> bytes);

  /// The next complete frame, or nullopt when more bytes are needed.
  [[nodiscard]] std::optional<Frame> next();

  [[nodiscard]] std::size_t buffered() const noexcept {
    return buffer_.size() - offset_;
  }
  [[nodiscard]] const std::string& origin() const noexcept { return origin_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t offset_ = 0;
  std::string origin_;
  std::size_t max_payload_;
};

// --- Frame payloads ---------------------------------------------------------

struct HelloFrame {
  std::uint32_t protocol_version = kProtocolVersion;
  std::uint64_t process_id = 0;
  std::string producer_name;  ///< free-form label, <= kMaxProducerName
};

struct HelloAckFrame {
  std::uint64_t session_id = 0;
  std::uint64_t last_acked_seq = 0;  ///< 0 for a fresh session
};

struct DeltaFrame {
  std::uint64_t seq = 0;       ///< strictly increasing per session, from 1
  std::uint64_t base_seq = 0;  ///< seq this delta was subtracted against
  bool rebase = false;         ///< full cumulative snapshot, base_seq == 0
  std::vector<std::uint8_t> snapshot;  ///< complete .tpsnap bytes
};

struct DeltaAckFrame {
  std::uint64_t seq = 0;
};

struct HeartbeatFrame {
  std::uint64_t nonce = 0;
};

struct ByeFrame {
  std::uint64_t final_seq = 0;
};

struct ByeAckFrame {
  std::uint64_t final_seq = 0;
};

struct ErrorFrame {
  Errc code = Errc::kMalformed;
  std::string detail;  ///< <= kMaxErrorDetail
};

enum class ReportKind : std::uint8_t {
  kText = 1,      ///< rendered text profile (render_profile)
  kJson = 2,      ///< analysis JSON (render_report_json)
  kSnapshot = 3,  ///< aggregate .tpsnap bytes
  kStats = 4,     ///< daemon ingestion-stats JSON
};

struct ReportRequestFrame {
  ReportKind kind = ReportKind::kText;
};

struct ReportReplyFrame {
  ReportKind kind = ReportKind::kText;
  std::vector<std::uint8_t> body;
};

[[nodiscard]] std::vector<std::uint8_t> encode_hello(const HelloFrame& f);
[[nodiscard]] std::vector<std::uint8_t> encode_hello_ack(const HelloAckFrame& f);
[[nodiscard]] std::vector<std::uint8_t> encode_delta(const DeltaFrame& f);
[[nodiscard]] std::vector<std::uint8_t> encode_delta_ack(const DeltaAckFrame& f);
[[nodiscard]] std::vector<std::uint8_t> encode_heartbeat(const HeartbeatFrame& f);
[[nodiscard]] std::vector<std::uint8_t> encode_bye(const ByeFrame& f);
[[nodiscard]] std::vector<std::uint8_t> encode_bye_ack(const ByeAckFrame& f);
[[nodiscard]] std::vector<std::uint8_t> encode_error(const ErrorFrame& f);
[[nodiscard]] std::vector<std::uint8_t> encode_report_request(
    const ReportRequestFrame& f);
[[nodiscard]] std::vector<std::uint8_t> encode_report_reply(
    const ReportReplyFrame& f);

// Decoders validate the frame's type tag and parse its payload; any
// grammar violation throws IngestError (kMalformed / kLimit).
[[nodiscard]] HelloFrame decode_hello(const Frame& frame,
                                      const std::string& origin);
[[nodiscard]] HelloAckFrame decode_hello_ack(const Frame& frame,
                                             const std::string& origin);
[[nodiscard]] DeltaFrame decode_delta(const Frame& frame,
                                      const std::string& origin);
[[nodiscard]] DeltaAckFrame decode_delta_ack(const Frame& frame,
                                             const std::string& origin);
[[nodiscard]] HeartbeatFrame decode_heartbeat(const Frame& frame,
                                              const std::string& origin);
[[nodiscard]] ByeFrame decode_bye(const Frame& frame,
                                  const std::string& origin);
[[nodiscard]] ByeAckFrame decode_bye_ack(const Frame& frame,
                                         const std::string& origin);
[[nodiscard]] ErrorFrame decode_error(const Frame& frame,
                                      const std::string& origin);
[[nodiscard]] ReportRequestFrame decode_report_request(
    const Frame& frame, const std::string& origin);
[[nodiscard]] ReportReplyFrame decode_report_reply(const Frame& frame,
                                                   const std::string& origin);

}  // namespace taskprof::ingest
