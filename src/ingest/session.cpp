#include "ingest/session.hpp"

#include <limits>

#include "profile/calltree.hpp"

namespace taskprof::ingest {

using snapshot::SnapshotData;
using snapshot::SnapshotError;

namespace {

constexpr std::size_t kNoParent = std::numeric_limits<std::size_t>::max();

constexpr char kEvictedRegionName[] = "[evicted]";

struct NodeRec {
  CallNode* node;
  std::size_t parent;
};

/// Preorder collection with parent indices (siblings in list order).
std::vector<NodeRec> collect_preorder(CallNode* root) {
  std::vector<NodeRec> recs;
  recs.push_back({root, kNoParent});
  std::vector<std::size_t> open = {0};
  CallNode* node = root;
  const auto enter = [&](CallNode* child) {
    recs.push_back({child, open.back()});
    open.push_back(recs.size() - 1);
  };
  for (;;) {
    if (node->first_child != nullptr) {
      node = node->first_child;
      enter(node);
      continue;
    }
    while (node != root && node->next_sibling == nullptr) {
      node = node->parent;
      open.pop_back();
    }
    if (node == root) return recs;
    node = node->next_sibling;
    open.pop_back();
    enter(node);
  }
}

}  // namespace

Session::Session(std::uint64_t id, std::string origin)
    : id_(id), origin_(std::move(origin)), reader_(origin_) {}

void Session::consume(std::span<const std::uint8_t> bytes) noexcept {
  counters_.bytes_consumed += bytes.size();
  reader_.feed(bytes);
  for (;;) {
    std::optional<Frame> frame;
    try {
      frame = reader_.next();
    } catch (const IngestError& error) {
      // A corrupt frame header can never resynchronize: answer once,
      // then stop listening.
      send_error(error.code(), error.what(), true);
      return;
    }
    if (!frame.has_value()) return;
    handle_frame(*frame);
    if (state_ == SessionState::kClosed && !bye_received_) return;
  }
}

void Session::handle_frame(const Frame& frame) noexcept {
  ++counters_.frames;
  try {
    switch (frame.type) {
      case FrameType::kHello:
        on_hello(frame);
        return;
      case FrameType::kDelta:
        on_delta(frame);
        return;
      case FrameType::kHeartbeat:
        on_heartbeat(frame);
        return;
      case FrameType::kBye:
        on_bye(frame);
        return;
      case FrameType::kHelloAck:
      case FrameType::kDeltaAck:
      case FrameType::kByeAck:
      case FrameType::kError:
      case FrameType::kReportRequest:
      case FrameType::kReportReply:
        send_error(Errc::kBadState, "frame type not valid from a producer",
                   false);
        return;
    }
    send_error(Errc::kBadType, "unhandled frame type", false);
  } catch (const IngestError& error) {
    send_error(error.code(), error.what(), false);
  } catch (const SnapshotError& error) {
    send_error(Errc::kMalformed, error.what(), false);
  } catch (const std::exception& error) {
    send_error(Errc::kMalformed, error.what(), false);
  }
}

void Session::on_hello(const Frame& frame) {
  if (state_ != SessionState::kAwaitHello) {
    send_error(Errc::kBadState, "hello on an open session", false);
    return;
  }
  const HelloFrame hello = decode_hello(frame, origin_);
  if (hello.protocol_version != kProtocolVersion) {
    send_error(Errc::kBadVersion,
               "protocol version " + std::to_string(hello.protocol_version),
               false);
    return;
  }
  process_id_ = hello.process_id;
  producer_name_ = hello.producer_name;
  state_ = SessionState::kStreaming;
  send(encode_hello_ack({id_, last_seq_}));
}

void Session::on_delta(const Frame& frame) {
  if (state_ != SessionState::kStreaming) {
    send_error(Errc::kBadState, "delta outside a streaming session", false);
    return;
  }
  const DeltaFrame delta = decode_delta(frame, origin_);
  if (delta.seq <= last_seq_) {
    // Reconnect replay: the producer resent a delta whose ack was
    // lost.  The merge is idempotent because it never happens twice —
    // just restate the ack.
    ++counters_.deltas_duplicate;
    send(encode_delta_ack({delta.seq}));
    return;
  }
  if (delta.seq != last_seq_ + 1) {
    ++counters_.deltas_rejected;
    send_error(Errc::kBadSeq,
               "delta seq " + std::to_string(delta.seq) + " after " +
                   std::to_string(last_seq_),
               false);
    return;
  }
  if (delta.rebase) {
    // Full cumulative snapshot: discard the reconstructed state and
    // start over (the producer lost its ack baseline, or its captures
    // went non-monotone).
    cumulative_ = SnapshotData{};
    has_data_ = false;
    heat_.clear();
    evicted_region_ = kInvalidRegion;
    ++counters_.rebases;
  } else if (delta.base_seq != last_seq_) {
    ++counters_.deltas_rejected;
    send_error(Errc::kBadSeq,
               "delta base " + std::to_string(delta.base_seq) +
                   " does not match acked " + std::to_string(last_seq_),
               false);
    return;
  }

  SnapshotData decoded;
  try {
    decoded = snapshot::decode_snapshot(delta.snapshot, origin_ + " [delta]");
  } catch (const SnapshotError& error) {
    ++counters_.deltas_rejected;
    send_error(Errc::kMalformed, error.what(), false);
    return;
  }
  try {
    const ApplyStats applied =
        apply_delta(cumulative_, decoded, apply_epoch_, &heat_);
    counters_.visits_ingested += applied.visits_added;
    counters_.nodes_created += applied.nodes_created;
  } catch (const SnapshotError& error) {
    ++counters_.deltas_rejected;
    send_error(Errc::kMalformed, error.what(), false);
    return;
  }
  has_data_ = true;
  last_seq_ = delta.seq;
  last_touch_epoch_ = apply_epoch_;
  ++counters_.deltas_applied;
  send(encode_delta_ack({delta.seq}));
}

void Session::on_heartbeat(const Frame& frame) {
  if (state_ == SessionState::kClosed) {
    send_error(Errc::kBadState, "heartbeat on a closed session", false);
    return;
  }
  const HeartbeatFrame beat = decode_heartbeat(frame, origin_);
  ++counters_.heartbeats;
  send(encode_heartbeat(beat));
}

void Session::on_bye(const Frame& frame) {
  if (state_ != SessionState::kStreaming) {
    send_error(Errc::kBadState, "bye outside a streaming session", false);
    return;
  }
  (void)decode_bye(frame, origin_);
  bye_received_ = true;
  state_ = SessionState::kClosed;
  send(encode_bye_ack({last_seq_}));
}

void Session::send(std::vector<std::uint8_t> frame_bytes) {
  output_.insert(output_.end(), frame_bytes.begin(), frame_bytes.end());
}

void Session::send_error(Errc code, const std::string& detail, bool fatal) {
  ++counters_.errors_sent;
  send(encode_error({code, detail}));
  if (fatal) state_ = SessionState::kClosed;
}

std::vector<std::uint8_t> Session::take_output() {
  std::vector<std::uint8_t> out;
  out.swap(output_);
  return out;
}

snapshot::SnapshotData Session::release_cumulative() {
  SnapshotData out = std::move(cumulative_);
  cumulative_ = SnapshotData{};
  has_data_ = false;
  heat_.clear();
  evicted_region_ = kInvalidRegion;
  return out;
}

std::size_t Session::live_node_bytes() const noexcept {
  if (!has_data_) return 0;
  const NodePool& pool = cumulative_.profile.pool;
  return (pool.allocated() - pool.free_count()) * sizeof(CallNode);
}

Session::EvictResult Session::evict_cold(std::uint64_t cutoff_epoch) {
  EvictResult total;
  if (!has_data_) return total;
  if (cumulative_.profile.implicit_root != nullptr) {
    const EvictResult r =
        evict_cold_tree(cumulative_.profile.implicit_root, cutoff_epoch);
    total.subtrees += r.subtrees;
    total.nodes += r.nodes;
    total.visits += r.visits;
  }
  for (CallNode* root : cumulative_.profile.task_roots) {
    const EvictResult r = evict_cold_tree(root, cutoff_epoch);
    total.subtrees += r.subtrees;
    total.nodes += r.nodes;
    total.visits += r.visits;
  }
  counters_.evicted_subtrees += total.subtrees;
  counters_.evicted_nodes += total.nodes;
  counters_.evicted_visits += total.visits;
  return total;
}

Session::EvictResult Session::evict_cold_tree(CallNode* root,
                                              std::uint64_t cutoff_epoch) {
  EvictResult result;
  std::vector<NodeRec> recs = collect_preorder(root);
  if (recs.size() <= 1) return result;

  // A subtree is cold when *every* node in it was last touched before
  // the cutoff; bottom-up via one reverse scan over the preorder.
  std::vector<std::uint8_t> subtree_cold(recs.size(), 1);
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const auto it = heat_.find(recs[i].node);
    const std::uint64_t epoch = it == heat_.end() ? 0 : it->second;
    if (epoch >= cutoff_epoch) subtree_cold[i] = 0;
  }
  for (std::size_t i = recs.size(); i-- > 1;) {
    if (!subtree_cold[i]) subtree_cold[recs[i].parent] = 0;
  }

  NodePool& pool = cumulative_.profile.pool;
  // Fold maximal cold subtrees (skipping anything under an already
  // folded ancestor, tree roots, and previous eviction stubs).
  std::vector<std::uint8_t> removed(recs.size(), 0);
  for (std::size_t i = 1; i < recs.size(); ++i) {
    removed[i] = removed[recs[i].parent];
    if (removed[i] || !subtree_cold[i]) continue;
    CallNode* victim = recs[i].node;
    if (evicted_region_ != kInvalidRegion &&
        victim->region == evicted_region_) {
      continue;  // a stub from an earlier round; nothing to fold it into
    }
    removed[i] = 1;
    if (evicted_region_ == kInvalidRegion) {
      evicted_region_ = cumulative_.registry->register_region(
          kEvictedRegionName, RegionType::kFunction);
    }
    CallNode* parent = victim->parent;
    // The stub inherits the subtree's whole mass: total visits and
    // per-visit statistics of every folded node, plus the subtree
    // root's inclusive time (which already covers its descendants), so
    // the tree's totals are exactly conserved.
    Ticks victim_inclusive = victim->inclusive;
    std::uint64_t victim_visits = 0;
    std::uint64_t victim_nodes = 0;
    DurationStats victim_stats;
    for_each_node(victim, [&](const CallNode& node, int) {
      victim_visits += node.visits;
      ++victim_nodes;
      victim_stats.merge(node.visit_stats);
      heat_.erase(&node);
    });
    pool.release_subtree(victim);
    CallNode* stub = find_or_create_child(pool, parent, evicted_region_,
                                          kNoParameter, false);
    stub->visits += victim_visits;
    stub->inclusive += victim_inclusive;
    stub->visit_stats.merge(victim_stats);
    heat_[stub] = apply_epoch_;
    ++result.subtrees;
    result.nodes += victim_nodes;
    result.visits += victim_visits;
  }
  return result;
}

}  // namespace taskprof::ingest
