// One producer session: protocol state machine + cumulative profile.
//
// A Session owns everything about one producer: the framing parser, the
// hello/delta/bye state machine, the reconstructed cumulative
// SnapshotData, the per-node heat map the shard's LRU eviction reads,
// and the per-session counters.  It is deliberately transport-free —
// consume() eats raw bytes and take_output() yields the reply bytes —
// so the protocol fuzzer and the unit tests drive the exact code the
// daemon runs, minus the sockets.
//
// Error policy (the fuzzer's contract): a framing violation (bad magic,
// bad CRC, unknown type, oversized payload) poisons the byte stream, so
// the session answers with one typed Error frame and closes; a
// *semantic* violation (sequence gap, stale base, malformed snapshot
// payload) answers with a typed Error frame but keeps the session open
// — the producer recovers by rebasing.  Duplicate deltas (reconnect
// replay) are re-acked idempotently, never merged twice.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ingest/delta.hpp"
#include "ingest/protocol.hpp"
#include "snapshot/snapshot.hpp"

namespace taskprof::ingest {

enum class SessionState : std::uint8_t {
  kAwaitHello,  ///< connection open, no Hello yet
  kStreaming,   ///< Hello acked, deltas welcome
  kClosed,      ///< Bye processed or a fatal framing error
};

struct SessionCounters {
  std::uint64_t frames = 0;
  std::uint64_t bytes_consumed = 0;
  std::uint64_t deltas_applied = 0;
  std::uint64_t deltas_duplicate = 0;
  std::uint64_t deltas_rejected = 0;
  std::uint64_t rebases = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t errors_sent = 0;
  std::uint64_t visits_ingested = 0;
  std::uint64_t nodes_created = 0;
  std::uint64_t evicted_subtrees = 0;
  std::uint64_t evicted_nodes = 0;
  std::uint64_t evicted_visits = 0;
};

class Session {
 public:
  Session(std::uint64_t id, std::string origin);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Parse and handle a chunk of transport bytes.  Never throws: every
  /// failure becomes an Error frame in the output buffer (and, for
  /// framing errors, a closed session).
  void consume(std::span<const std::uint8_t> bytes) noexcept;

  /// State machine on one already-parsed frame (the daemon's IO loop
  /// parses frames itself so it can route them).  Never throws.
  void handle_frame(const Frame& frame) noexcept;

  /// Drain the pending reply bytes (acks / errors / heartbeat echoes).
  [[nodiscard]] std::vector<std::uint8_t> take_output();
  [[nodiscard]] bool has_output() const noexcept { return !output_.empty(); }

  [[nodiscard]] SessionState state() const noexcept { return state_; }
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] std::uint64_t last_seq() const noexcept { return last_seq_; }
  [[nodiscard]] bool bye_received() const noexcept { return bye_received_; }
  [[nodiscard]] std::uint64_t process_id() const noexcept { return process_id_; }
  [[nodiscard]] const std::string& producer_name() const noexcept {
    return producer_name_;
  }
  [[nodiscard]] const SessionCounters& counters() const noexcept {
    return counters_;
  }

  /// The reconstructed cumulative profile; nullptr until the first
  /// delta was applied.
  [[nodiscard]] const snapshot::SnapshotData* cumulative() const noexcept {
    return has_data_ ? &cumulative_ : nullptr;
  }

  /// Move the cumulative out (folding a finished session into the
  /// shard aggregate).  The session keeps running but starts empty.
  [[nodiscard]] snapshot::SnapshotData release_cumulative();

  /// Shard epoch stamped onto every node the next delta touches (the
  /// merge scheduler bumps it per applied delta).
  void set_apply_epoch(std::uint64_t epoch) noexcept { apply_epoch_ = epoch; }
  [[nodiscard]] std::uint64_t last_touch_epoch() const noexcept {
    return last_touch_epoch_;
  }

  /// Bytes held live by this session's call-tree nodes (the shard's
  /// memory-budget accounting).
  [[nodiscard]] std::size_t live_node_bytes() const noexcept;

  struct EvictResult {
    std::uint64_t subtrees = 0;
    std::uint64_t nodes = 0;
    std::uint64_t visits = 0;
  };

  /// Fold every maximal subtree whose nodes were all last touched
  /// before `cutoff_epoch` into an "[evicted]" stub child of its
  /// parent, preserving the subtree's visit mass, root-inclusive time,
  /// and per-visit statistics exactly (the eviction-mode differential
  /// test asserts the conservation).  Tree roots are never evicted.
  EvictResult evict_cold(std::uint64_t cutoff_epoch);

 private:
  void on_hello(const Frame& frame);
  void on_delta(const Frame& frame);
  void on_heartbeat(const Frame& frame);
  void on_bye(const Frame& frame);
  void send(std::vector<std::uint8_t> frame_bytes);
  void send_error(Errc code, const std::string& detail, bool fatal);
  EvictResult evict_cold_tree(CallNode* root, std::uint64_t cutoff_epoch);

  std::uint64_t id_;
  std::string origin_;
  SessionState state_ = SessionState::kAwaitHello;
  std::uint64_t process_id_ = 0;
  std::string producer_name_;
  std::uint64_t last_seq_ = 0;
  bool bye_received_ = false;
  bool has_data_ = false;
  snapshot::SnapshotData cumulative_;
  FrameReader reader_;
  std::vector<std::uint8_t> output_;
  SessionCounters counters_;
  HeatMap heat_;
  std::uint64_t apply_epoch_ = 0;
  std::uint64_t last_touch_epoch_ = 0;
  RegionHandle evicted_region_ = kInvalidRegion;
};

}  // namespace taskprof::ingest
