#include "ingest/daemon.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>

#include "ingest/delta.hpp"
#include "profile/calltree.hpp"
#include "report/json_report.hpp"
#include "report/text_report.hpp"
#include "snapshot/merge.hpp"

namespace taskprof::ingest {

using snapshot::SnapshotData;

namespace {

constexpr int kPollTimeoutMs = 200;
constexpr std::size_t kReadChunk = 64 * 1024;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::size_t pool_live_bytes(const AggregateProfile& profile) {
  return (profile.pool.allocated() - profile.pool.free_count()) *
         sizeof(CallNode);
}

}  // namespace

IngestDaemon::IngestDaemon(DaemonOptions options)
    : options_(std::move(options)) {
  if (options_.shards < 1) options_.shards = 1;
  if (options_.session_queue_depth < 1) options_.session_queue_depth = 1;
}

IngestDaemon::~IngestDaemon() { stop(); }

void IngestDaemon::start() {
  if (running()) return;
  if (options_.socket_path.empty()) {
    throw IngestError(Errc::kIo, "taskprofd", "empty socket path");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw IngestError(Errc::kIo, options_.socket_path,
                      "socket path too long for AF_UNIX");
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw IngestError(Errc::kIo, options_.socket_path,
                      std::string("socket: ") + std::strerror(errno));
  }
  set_nonblocking(listen_fd_);
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, options_.listen_backlog) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IngestError(Errc::kIo, options_.socket_path, "bind/listen: " + detail);
  }
  if (::pipe(wake_pipe_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IngestError(Errc::kIo, options_.socket_path,
                      std::string("pipe: ") + std::strerror(errno));
  }
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(wake_pipe_[1]);

  stop_.store(false, std::memory_order_relaxed);
  shards_.clear();
  shards_.reserve(static_cast<std::size_t>(options_.shards));
  for (int i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  for (auto& shard : shards_) {
    shard->worker = std::thread([this, raw = shard.get()] { merge_loop(*raw); });
  }
  io_thread_ = std::thread([this] { io_loop(); });
}

void IngestDaemon::stop() {
  if (!running() && shards_.empty()) return;
  stop_.store(true, std::memory_order_relaxed);
  wake_io();
  if (io_thread_.joinable()) io_thread_.join();
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->mutex);
      shard->stopping = true;
    }
    shard->cv.notify_all();
    if (shard->worker.joinable()) shard->worker.join();
  }
  for (auto& [fd, conn] : conns_) {
    (void)conn;
    ::close(fd);
  }
  conns_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

void IngestDaemon::wake_io() {
  if (wake_pipe_[1] < 0) return;
  const std::uint8_t byte = 1;
  [[maybe_unused]] ssize_t rc = ::write(wake_pipe_[1], &byte, 1);
}

// --- IO thread --------------------------------------------------------------

void IngestDaemon::io_loop() {
  std::vector<pollfd> pfds;
  std::vector<int> fd_order;
  while (!stop_.load(std::memory_order_relaxed)) {
    pfds.clear();
    fd_order.clear();
    pfds.push_back({wake_pipe_[0], POLLIN, 0});
    pfds.push_back({listen_fd_, POLLIN, 0});
    for (auto& [fd, conn] : conns_) {
      short events = 0;
      if (!conn.closing && !conn.stalled) events |= POLLIN;
      if (conn.write_off < conn.write_buf.size()) events |= POLLOUT;
      pfds.push_back({fd, events, 0});
      fd_order.push_back(fd);
    }
    const int ready = ::poll(pfds.data(), pfds.size(), kPollTimeoutMs);
    if (stop_.load(std::memory_order_relaxed)) break;
    if (ready < 0 && errno != EINTR) break;

    if (pfds[0].revents & POLLIN) {
      std::uint8_t scratch[256];
      while (::read(wake_pipe_[0], scratch, sizeof(scratch)) > 0) {
      }
    }
    // Workers acked / erred / drained queues: collect reply bytes and
    // lift read stalls.
    drain_outboxes();

    if (pfds[1].revents & POLLIN) accept_connections();

    std::vector<int> dead;
    for (std::size_t i = 0; i < fd_order.size(); ++i) {
      const int fd = fd_order[i];
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      Conn& conn = it->second;
      const short revents = pfds[i + 2].revents;
      if (revents & (POLLERR | POLLNVAL)) {
        dead.push_back(fd);
        continue;
      }
      if (revents & POLLIN) handle_readable(conn);
      if (conn.fd < 0) {  // handle_readable saw EOF
        dead.push_back(fd);
        continue;
      }
      if (conn.write_off < conn.write_buf.size()) handle_writable(conn);
      if (conn.closing && conn.write_off >= conn.write_buf.size()) {
        dead.push_back(fd);
        continue;
      }
      if ((revents & POLLHUP) && !(revents & POLLIN)) dead.push_back(fd);
    }
    for (int fd : dead) close_conn(fd);
  }
}

void IngestDaemon::accept_connections() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    set_nonblocking(fd);
    const std::uint64_t id =
        next_session_id_.fetch_add(1, std::memory_order_relaxed);
    Conn conn;
    conn.fd = fd;
    const std::string origin = "session " + std::to_string(id);
    conn.reader = std::make_unique<FrameReader>(origin);
    conn.rec = std::make_shared<SessionRec>(id, origin);
    conn.rec->shard = static_cast<std::size_t>(
        id % static_cast<std::uint64_t>(options_.shards));
    sessions_opened_.fetch_add(1, std::memory_order_relaxed);
    conns_.emplace(fd, std::move(conn));
  }
}

void IngestDaemon::handle_readable(Conn& conn) {
  std::uint8_t chunk[kReadChunk];
  for (;;) {
    const ssize_t n = ::read(conn.fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      conn.fd = -1;  // close_conn handles the rest
      return;
    }
    if (n == 0) {
      conn.fd = -1;
      return;
    }
    bytes_received_.fetch_add(static_cast<std::uint64_t>(n),
                              std::memory_order_relaxed);
    conn.reader->feed({chunk, static_cast<std::size_t>(n)});
    for (;;) {
      std::optional<Frame> frame;
      try {
        frame = conn.reader->next();
      } catch (const IngestError& error) {
        // Corrupt framing cannot resynchronize: answer once, flush,
        // close.  The worker still gets a disconnect so the dirty
        // session is retired.
        frames_rejected_.fetch_add(1, std::memory_order_relaxed);
        const auto reply = encode_error({error.code(), error.what()});
        conn.write_buf.insert(conn.write_buf.end(), reply.begin(), reply.end());
        conn.closing = true;
        if (conn.rec->routed) enqueue(conn.rec, std::nullopt);
        return;
      }
      if (!frame.has_value()) break;
      frames_received_.fetch_add(1, std::memory_order_relaxed);
      route_frame(conn, std::move(*frame));
      if (conn.closing) return;
    }
    if (conn.stalled) return;  // let the worker catch up before reading on
  }
}

void IngestDaemon::handle_writable(Conn& conn) {
  while (conn.write_off < conn.write_buf.size()) {
    // MSG_NOSIGNAL: a producer that died mid-reply must surface as an
    // error return here, not as a process-wide SIGPIPE.
    const ssize_t n =
        ::send(conn.fd, conn.write_buf.data() + conn.write_off,
               conn.write_buf.size() - conn.write_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      conn.fd = -1;
      return;
    }
    conn.write_off += static_cast<std::size_t>(n);
  }
  conn.write_buf.clear();
  conn.write_off = 0;
}

void IngestDaemon::route_frame(Conn& conn, Frame frame) {
  if (frame.type == FrameType::kReportRequest) {
    // Query traffic is served by the IO thread itself — report builds
    // take the shard locks briefly but never wait on a worker.
    try {
      const ReportRequestFrame request =
          decode_report_request(frame, conn.reader->origin());
      std::vector<std::uint8_t> body = render_report(request.kind);
      const auto reply =
          encode_report_reply({request.kind, std::move(body)});
      conn.write_buf.insert(conn.write_buf.end(), reply.begin(), reply.end());
      reports_served_.fetch_add(1, std::memory_order_relaxed);
    } catch (const IngestError& error) {
      frames_rejected_.fetch_add(1, std::memory_order_relaxed);
      const auto reply = encode_error({error.code(), error.what()});
      conn.write_buf.insert(conn.write_buf.end(), reply.begin(), reply.end());
    }
    return;
  }
  conn.rec->routed = true;
  const int pending = conn.rec->pending.fetch_add(1, std::memory_order_acq_rel);
  if (pending + 1 >= options_.session_queue_depth && !conn.stalled) {
    conn.stalled = true;
    queue_stalls_.fetch_add(1, std::memory_order_relaxed);
  }
  enqueue(conn.rec, std::move(frame));
}

void IngestDaemon::enqueue(const std::shared_ptr<SessionRec>& rec,
                           std::optional<Frame> frame) {
  Shard& shard = *shards_[rec->shard];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.queue.push_back({rec, std::move(frame)});
  }
  shard.cv.notify_one();
}

void IngestDaemon::close_conn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  if (conn.rec->routed) enqueue(conn.rec, std::nullopt);
  ::close(fd);
  conns_.erase(it);
}

void IngestDaemon::drain_outboxes() {
  for (auto& [fd, conn] : conns_) {
    (void)fd;
    if (conn.rec == nullptr) continue;
    {
      std::lock_guard<std::mutex> lock(conn.rec->out_mutex);
      if (!conn.rec->outbox.empty()) {
        conn.write_buf.insert(conn.write_buf.end(), conn.rec->outbox.begin(),
                              conn.rec->outbox.end());
        conn.rec->outbox.clear();
      }
    }
    if (conn.stalled &&
        conn.rec->pending.load(std::memory_order_acquire) <=
            options_.session_queue_depth / 2) {
      conn.stalled = false;
    }
  }
}

// --- Merge workers ----------------------------------------------------------

void IngestDaemon::merge_loop(Shard& shard) {
  std::unique_lock<std::mutex> lock(shard.mutex);
  for (;;) {
    shard.cv.wait(lock,
                  [&] { return shard.stopping || !shard.queue.empty(); });
    if (shard.queue.empty()) {
      if (shard.stopping) return;
      continue;
    }
    WorkItem item = std::move(shard.queue.front());
    shard.queue.pop_front();
    process_item(shard, item);
    item.rec->pending.fetch_sub(1, std::memory_order_acq_rel);
    Session& session = item.rec->session;
    if (session.has_output()) {
      std::vector<std::uint8_t> out = session.take_output();
      std::lock_guard<std::mutex> out_lock(item.rec->out_mutex);
      item.rec->outbox.insert(item.rec->outbox.end(), out.begin(), out.end());
    }
    wake_io();
  }
}

void IngestDaemon::process_item(Shard& shard, WorkItem& item) {
  SessionRec& rec = *item.rec;
  if (!item.frame.has_value()) {
    // Disconnect.  A cleanly closed session was folded when its Bye was
    // processed; a dirty one keeps or loses its contribution by policy.
    if (rec.in_live) {
      if (options_.keep_partial_sessions) fold_session(shard, rec);
      retire_session(shard, item.rec, false);
    }
    return;
  }
  if (!rec.in_live && !rec.retired) {
    rec.in_live = true;
    shard.live.push_back(item.rec);
  }
  const bool is_delta = item.frame->type == FrameType::kDelta;
  if (is_delta) {
    ++shard.epoch;
    rec.session.set_apply_epoch(shard.epoch);
  }
  rec.session.handle_frame(*item.frame);
  if (rec.session.bye_received() && rec.in_live) {
    fold_session(shard, rec);
    retire_session(shard, item.rec, true);
    return;
  }
  if (is_delta) maybe_evict(shard);
}

void IngestDaemon::fold_session(Shard& shard, SessionRec& rec) {
  if (rec.session.cumulative() == nullptr) return;
  SnapshotData cum = rec.session.release_cumulative();
  if (!shard.has_aggregate) {
    // First contribution: adopt it wholesale, exactly like
    // merge_snapshot_files treats its first file — a single-producer
    // daemon therefore exports byte-identical snapshots.
    shard.aggregate = std::move(cum);
    shard.has_aggregate = true;
  } else {
    snapshot::merge_snapshot_into(shard.aggregate, cum);
  }
}

void IngestDaemon::retire_session(Shard& shard,
                                  const std::shared_ptr<SessionRec>& rec,
                                  bool clean) {
  const SessionCounters& c = rec->session.counters();
  SessionCounters& r = shard.retired;
  r.frames += c.frames;
  r.bytes_consumed += c.bytes_consumed;
  r.deltas_applied += c.deltas_applied;
  r.deltas_duplicate += c.deltas_duplicate;
  r.deltas_rejected += c.deltas_rejected;
  r.rebases += c.rebases;
  r.heartbeats += c.heartbeats;
  r.errors_sent += c.errors_sent;
  r.visits_ingested += c.visits_ingested;
  r.nodes_created += c.nodes_created;
  r.evicted_subtrees += c.evicted_subtrees;
  r.evicted_nodes += c.evicted_nodes;
  r.evicted_visits += c.evicted_visits;
  clean ? ++shard.retired_clean : ++shard.retired_dropped;
  shard.live.erase(std::remove(shard.live.begin(), shard.live.end(), rec),
                   shard.live.end());
  rec->in_live = false;
  rec->retired = true;
}

void IngestDaemon::maybe_evict(Shard& shard) {
  if (options_.memory_budget_bytes == 0) return;
  const std::size_t per_shard = std::max<std::size_t>(
      options_.memory_budget_bytes / static_cast<std::size_t>(options_.shards),
      sizeof(CallNode));
  if (shard_live_bytes(shard) <= per_shard) return;

  // Coldest producers first; within one, everything its latest delta
  // did not touch is fair game.
  std::vector<std::shared_ptr<SessionRec>> order = shard.live;
  std::sort(order.begin(), order.end(),
            [](const std::shared_ptr<SessionRec>& a,
               const std::shared_ptr<SessionRec>& b) {
              return a->session.last_touch_epoch() <
                     b->session.last_touch_epoch();
            });
  for (const auto& rec : order) {
    if (rec->session.live_node_bytes() == 0) continue;
    (void)rec->session.evict_cold(rec->session.last_touch_epoch());
    if (shard_live_bytes(shard) <= per_shard) return;
  }
}

std::size_t IngestDaemon::shard_live_bytes(const Shard& shard) const {
  std::size_t bytes =
      shard.has_aggregate ? pool_live_bytes(shard.aggregate.profile) : 0;
  for (const auto& rec : shard.live) bytes += rec->session.live_node_bytes();
  return bytes;
}

// --- Aggregation & reports --------------------------------------------------

snapshot::SnapshotData IngestDaemon::export_aggregate() const {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) {
    locks.emplace_back(shard->mutex);
  }
  std::vector<const SnapshotData*> sources;
  for (const auto& shard : shards_) {
    if (shard->has_aggregate) sources.push_back(&shard->aggregate);
  }
  std::vector<const SessionRec*> live;
  for (const auto& shard : shards_) {
    for (const auto& rec : shard->live) {
      if (rec->session.cumulative() != nullptr) live.push_back(rec.get());
    }
  }
  std::sort(live.begin(), live.end(), [](const SessionRec* a,
                                         const SessionRec* b) {
    return a->session.id() < b->session.id();
  });
  for (const SessionRec* rec : live) {
    sources.push_back(rec->session.cumulative());
  }

  if (sources.empty()) {
    SnapshotData empty;
    empty.registry = std::make_unique<RegionRegistry>();
    return empty;
  }
  SnapshotData out = clone_snapshot(*sources.front());
  for (std::size_t i = 1; i < sources.size(); ++i) {
    snapshot::merge_snapshot_into(out, *sources[i]);
  }
  return out;
}

std::vector<std::uint8_t> IngestDaemon::render_report(ReportKind kind) const {
  const auto to_bytes = [](const std::string& text) {
    return std::vector<std::uint8_t>(text.begin(), text.end());
  };
  switch (kind) {
    case ReportKind::kStats:
      return to_bytes(render_stats_json());
    case ReportKind::kSnapshot: {
      const SnapshotData data = export_aggregate();
      return snapshot::encode_snapshot(data);
    }
    case ReportKind::kJson: {
      const SnapshotData data = export_aggregate();
      return to_bytes(render_report_json(data.profile, *data.registry));
    }
    case ReportKind::kText: {
      const SnapshotData data = export_aggregate();
      if (data.profile.implicit_root == nullptr &&
          data.profile.task_roots.empty()) {
        return to_bytes("taskprofd: no data ingested yet\n");
      }
      return to_bytes(render_profile(data.profile, *data.registry));
    }
  }
  return to_bytes("taskprofd: unknown report kind\n");
}

DaemonStats IngestDaemon::stats() const {
  DaemonStats out;
  out.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  out.frames_received = frames_received_.load(std::memory_order_relaxed);
  out.frames_rejected = frames_rejected_.load(std::memory_order_relaxed);
  out.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  out.reports_served = reports_served_.load(std::memory_order_relaxed);
  out.queue_stalls = queue_stalls_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    SessionCounters sum = shard->retired;
    for (const auto& rec : shard->live) {
      const SessionCounters& c = rec->session.counters();
      sum.deltas_applied += c.deltas_applied;
      sum.deltas_duplicate += c.deltas_duplicate;
      sum.deltas_rejected += c.deltas_rejected;
      sum.rebases += c.rebases;
      sum.heartbeats += c.heartbeats;
      sum.errors_sent += c.errors_sent;
      sum.visits_ingested += c.visits_ingested;
      sum.nodes_created += c.nodes_created;
      sum.evicted_subtrees += c.evicted_subtrees;
      sum.evicted_nodes += c.evicted_nodes;
      sum.evicted_visits += c.evicted_visits;
    }
    out.sessions_closed_clean += shard->retired_clean;
    out.sessions_dropped += shard->retired_dropped;
    out.deltas_applied += sum.deltas_applied;
    out.deltas_duplicate += sum.deltas_duplicate;
    out.deltas_rejected += sum.deltas_rejected;
    out.rebases += sum.rebases;
    out.heartbeats += sum.heartbeats;
    out.errors_sent += sum.errors_sent;
    out.visits_ingested += sum.visits_ingested;
    out.nodes_created += sum.nodes_created;
    out.evicted_subtrees += sum.evicted_subtrees;
    out.evicted_nodes += sum.evicted_nodes;
    out.evicted_visits += sum.evicted_visits;
    out.live_sessions += shard->live.size();
    out.live_node_bytes += shard_live_bytes(*shard);
  }
  return out;
}

std::string IngestDaemon::render_stats_json() const {
  const DaemonStats s = stats();
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema_version\": 1,\n";
  os << "  \"sessions_opened\": " << s.sessions_opened << ",\n";
  os << "  \"sessions_closed_clean\": " << s.sessions_closed_clean << ",\n";
  os << "  \"sessions_dropped\": " << s.sessions_dropped << ",\n";
  os << "  \"live_sessions\": " << s.live_sessions << ",\n";
  os << "  \"frames_received\": " << s.frames_received << ",\n";
  os << "  \"frames_rejected\": " << s.frames_rejected << ",\n";
  os << "  \"bytes_received\": " << s.bytes_received << ",\n";
  os << "  \"deltas_applied\": " << s.deltas_applied << ",\n";
  os << "  \"deltas_duplicate\": " << s.deltas_duplicate << ",\n";
  os << "  \"deltas_rejected\": " << s.deltas_rejected << ",\n";
  os << "  \"rebases\": " << s.rebases << ",\n";
  os << "  \"heartbeats\": " << s.heartbeats << ",\n";
  os << "  \"errors_sent\": " << s.errors_sent << ",\n";
  os << "  \"visits_ingested\": " << s.visits_ingested << ",\n";
  os << "  \"nodes_created\": " << s.nodes_created << ",\n";
  os << "  \"evicted_subtrees\": " << s.evicted_subtrees << ",\n";
  os << "  \"evicted_nodes\": " << s.evicted_nodes << ",\n";
  os << "  \"evicted_visits\": " << s.evicted_visits << ",\n";
  os << "  \"reports_served\": " << s.reports_served << ",\n";
  os << "  \"queue_stalls\": " << s.queue_stalls << ",\n";
  os << "  \"live_node_bytes\": " << s.live_node_bytes << "\n";
  os << "}\n";
  return os.str();
}

}  // namespace taskprof::ingest
