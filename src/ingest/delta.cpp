#include "ingest/delta.hpp"

#include <limits>

#include "common/assert.hpp"
#include "profile/calltree.hpp"
#include "snapshot/format.hpp"

namespace taskprof::ingest {

using snapshot::Errc;
using snapshot::SnapshotData;
using snapshot::SnapshotError;

namespace {

constexpr std::size_t kNoParent = std::numeric_limits<std::size_t>::max();

/// One cur-tree node paired with its baseline counterpart (nullptr when
/// the node is new since the baseline).
struct PairRec {
  const CallNode* cur;
  const CallNode* base;
  std::size_t parent;  ///< index into the preorder record vector
};

/// Collect `cur_root`'s subtree in preorder (siblings in first-visit
/// order), pairing each node with the baseline node of the same
/// identity.  Iterative over the intrusive links: delta subtraction
/// runs on the producer's flusher thread against arbitrarily deep
/// recursion trees.
std::vector<PairRec> pair_subtrees(const CallNode* cur_root,
                                   const CallNode* base_root) {
  std::vector<PairRec> recs;
  recs.push_back({cur_root, base_root, kNoParent});
  std::vector<std::size_t> open = {0};  // ancestor record indices, back = current
  const CallNode* node = cur_root;
  const auto enter = [&](const CallNode* child) {
    const std::size_t parent_idx = open.back();
    const CallNode* parent_base = recs[parent_idx].base;
    const CallNode* child_base =
        parent_base == nullptr
            ? nullptr
            : find_child(parent_base, child->region, child->parameter,
                         child->is_stub);
    recs.push_back({child, child_base, parent_idx});
    open.push_back(recs.size() - 1);
  };
  for (;;) {
    if (node->first_child != nullptr) {
      node = node->first_child;
      enter(node);
      continue;
    }
    while (node != cur_root && node->next_sibling == nullptr) {
      node = node->parent;
      open.pop_back();
    }
    if (node == cur_root) return recs;
    node = node->next_sibling;
    open.pop_back();  // replace the finished sibling with this one
    enter(node);
  }
}

/// Require base <= cur on every counter a delta difference-encodes.
/// visit_stats are exempt: they ride as the whole current accumulator
/// (replaced on apply), so they may move any direction between flushes.
void check_monotone(const CallNode& cur, const CallNode& base) {
  const bool ok = base.visits <= cur.visits && base.inclusive <= cur.inclusive;
  if (!ok) {
    throw SnapshotError(Errc::kMalformed, "<delta>",
                        "baseline counters exceed the current capture");
  }
}

[[nodiscard]] bool node_changed(const PairRec& rec) {
  if (rec.base == nullptr) return true;
  check_monotone(*rec.cur, *rec.base);
  return rec.cur->visits != rec.base->visits ||
         rec.cur->inclusive != rec.base->inclusive ||
         rec.cur->visit_stats.count != rec.base->visit_stats.count ||
         rec.cur->visit_stats.sum != rec.base->visit_stats.sum ||
         rec.cur->visit_stats.min != rec.base->visit_stats.min ||
         rec.cur->visit_stats.max != rec.base->visit_stats.max;
}

/// Emit the pruned difference tree for one (cur, base) root pair into
/// `out`.  Returns nullptr when nothing under the root changed and
/// `force_root` is false.
CallNode* subtract_tree(NodePool& pool, const CallNode* cur_root,
                        const CallNode* base_root, bool force_root,
                        DeltaResult& totals) {
  std::vector<PairRec> recs = pair_subtrees(cur_root, base_root);
  std::vector<std::uint8_t> changed(recs.size(), 0);
  std::vector<std::uint8_t> include(recs.size(), 0);
  for (std::size_t i = 0; i < recs.size(); ++i) {
    changed[i] = node_changed(recs[i]) ? 1 : 0;
    include[i] = changed[i];
  }
  for (std::size_t i = recs.size(); i-- > 1;) {
    if (include[i]) include[recs[i].parent] = 1;
  }
  if (!include[0] && !force_root) return nullptr;
  include[0] = 1;

  std::vector<CallNode*> built(recs.size(), nullptr);
  for (std::size_t i = 0; i < recs.size(); ++i) {
    if (!include[i]) continue;
    const CallNode& c = *recs[i].cur;
    CallNode* parent = recs[i].parent == kNoParent ? nullptr
                                                   : built[recs[i].parent];
    CallNode* d = pool.allocate(c.region, c.parameter, c.is_stub, parent);
    built[i] = d;
    const CallNode* b = recs[i].base;
    if (b == nullptr) {
      d->visits = c.visits;
      d->inclusive = c.inclusive;
      d->visit_stats = c.visit_stats;
    } else {
      d->visits = c.visits - b->visits;
      d->inclusive = c.inclusive - b->inclusive;
      // visit_stats ride wholesale, not difference-encoded: producers
      // account in-progress visits provisionally, so between captures
      // sum can grow with no new completions and min can *rise* once a
      // long visit completes and replaces its provisional sample.  The
      // codec also cannot express count==0 stats, so a pure sum diff
      // has no wire representation.  Apply replaces instead of merging.
      d->visit_stats = c.visit_stats;
    }
    if (changed[i]) {
      ++totals.changed_nodes;
    } else {
      ++totals.carried_nodes;
    }
    totals.visits_delta += d->visits;
  }
  return built[0];
}

/// Require that `base`'s registry is a handle-aligned prefix of `cur`'s
/// (registries only grow within one producer process).
void check_registry_prefix(const RegionRegistry& cur,
                           const RegionRegistry& base) {
  if (base.size() > cur.size()) {
    throw SnapshotError(Errc::kMalformed, "<delta>",
                        "baseline registry larger than current");
  }
  for (RegionHandle h = 0; h < base.size(); ++h) {
    const RegionInfo& b = base.info(h);
    const RegionInfo& c = cur.info(h);
    if (b.name != c.name || b.type != c.type) {
      throw SnapshotError(Errc::kMalformed, "<delta>",
                          "baseline registry is not a prefix of current");
    }
  }
}

/// Same parallel walk as snapshot::merge's merge_subtree_remapped, plus
/// heat stamping and apply accounting.
void fold_subtree_remapped(NodePool& pool, CallNode* dst, const CallNode* src,
                           const std::vector<RegionHandle>& remap,
                           std::uint64_t epoch, HeatMap* heat,
                           ApplyStats& stats) {
  const CallNode* s = src;
  CallNode* d = dst;
  for (;;) {
    d->visits += s->visits;
    d->inclusive += s->inclusive;
    d->visit_stats = s->visit_stats;
    if (heat != nullptr) (*heat)[d] = epoch;
    ++stats.nodes_touched;
    stats.visits_added += s->visits;
    if (s->first_child != nullptr) {
      s = s->first_child;
      d = find_or_create_child(pool, d, remap[s->region], s->parameter,
                               s->is_stub);
      continue;
    }
    while (s != src && s->next_sibling == nullptr) {
      s = s->parent;
      d = d->parent;
    }
    if (s == src) return;
    s = s->next_sibling;
    d = find_or_create_child(pool, d->parent, remap[s->region], s->parameter,
                             s->is_stub);
  }
}

}  // namespace

SnapshotData clone_snapshot(const SnapshotData& data) {
  return snapshot::decode_snapshot(snapshot::encode_snapshot(data), "<clone>");
}

DeltaResult subtract_snapshot(const SnapshotData& cur,
                              const SnapshotData* base) {
  TASKPROF_ASSERT(cur.registry != nullptr, "subtract without a registry");
  if (base != nullptr) {
    TASKPROF_ASSERT(base->registry != nullptr,
                    "subtract against a baseline without a registry");
    check_registry_prefix(*cur.registry, *base->registry);
  }

  DeltaResult result;
  SnapshotData& delta = result.snapshot;
  delta.registry = std::make_unique<RegionRegistry>();
  for (RegionHandle h = 0; h < cur.registry->size(); ++h) {
    delta.registry->register_region(RegionInfo(cur.registry->info(h)));
  }

  // Envelope scalars ride cumulatively and are replaced on apply.
  delta.meta = cur.meta;
  AggregateProfile& dp = delta.profile;
  const AggregateProfile& cp = cur.profile;
  dp.thread_count = cp.thread_count;
  dp.total_task_switches = cp.total_task_switches;
  dp.total_folded_events = cp.total_folded_events;
  dp.max_concurrent_any_thread = cp.max_concurrent_any_thread;
  dp.max_concurrent_per_thread = cp.max_concurrent_per_thread;
  dp.partial_capture = cp.partial_capture;
  delta.has_telemetry = cur.has_telemetry;
  delta.telemetry = cur.telemetry;

  if (cp.implicit_root != nullptr) {
    const CallNode* base_root =
        base != nullptr ? base->profile.implicit_root : nullptr;
    if (base_root != nullptr &&
        (base_root->region != cp.implicit_root->region ||
         base_root->parameter != cp.implicit_root->parameter)) {
      throw SnapshotError(Errc::kMalformed, "<delta>",
                          "baseline disagrees on the implicit root");
    }
    // The implicit root is always carried so the delta stays a
    // well-formed profile even when only task trees moved.
    dp.implicit_root =
        subtract_tree(dp.pool, cp.implicit_root, base_root, true, result);
  }

  ChildIndex base_roots;
  if (base != nullptr) {
    for (CallNode* root : base->profile.task_roots) base_roots.insert(root);
  }
  for (const CallNode* cur_root : cp.task_roots) {
    const CallNode* base_root =
        base != nullptr ? base_roots.find(cur_root->region,
                                          cur_root->parameter, false)
                        : nullptr;
    CallNode* diff =
        subtract_tree(dp.pool, cur_root, base_root, false, result);
    if (diff != nullptr) dp.task_roots.push_back(diff);
  }
  return result;
}

ApplyStats apply_delta(SnapshotData& acc, const SnapshotData& delta,
                       std::uint64_t epoch, HeatMap* heat) {
  TASKPROF_ASSERT(delta.registry != nullptr, "apply of delta without registry");
  if (acc.registry == nullptr) {
    acc.registry = std::make_unique<RegionRegistry>();
  }

  const std::size_t delta_regions = delta.registry->size();
  std::vector<RegionHandle> remap(delta_regions);
  for (RegionHandle h = 0; h < delta_regions; ++h) {
    remap[h] =
        acc.registry->register_region(RegionInfo(delta.registry->info(h)));
  }

  ApplyStats stats;
  AggregateProfile& ap = acc.profile;
  const AggregateProfile& sp = delta.profile;
  const std::size_t live_before = ap.pool.allocated() - ap.pool.free_count();

  if (sp.implicit_root != nullptr) {
    const RegionHandle root_region = remap[sp.implicit_root->region];
    if (ap.implicit_root == nullptr) {
      ap.implicit_root = ap.pool.allocate(
          root_region, sp.implicit_root->parameter, false, nullptr);
    } else if (ap.implicit_root->region != root_region) {
      throw SnapshotError(Errc::kMalformed, "<apply>",
                          "delta disagrees on the implicit root region");
    }
    fold_subtree_remapped(ap.pool, ap.implicit_root, sp.implicit_root, remap,
                          epoch, heat, stats);
  }

  ChildIndex root_index;
  for (CallNode* root : ap.task_roots) root_index.insert(root);
  for (const CallNode* src_root : sp.task_roots) {
    const RegionHandle region = remap[src_root->region];
    CallNode* dst_root = root_index.find(region, src_root->parameter, false);
    if (dst_root == nullptr) {
      dst_root = ap.pool.allocate(region, src_root->parameter, false, nullptr);
      ap.task_roots.push_back(dst_root);
      root_index.insert(dst_root);
    }
    fold_subtree_remapped(ap.pool, dst_root, src_root, remap, epoch, heat,
                          stats);
  }

  // Envelope scalars: the delta carries the producer's current
  // cumulative values, so replace (several of these concatenate or max
  // under cross-process merge and cannot be difference-encoded).
  ap.thread_count = sp.thread_count;
  ap.total_task_switches = sp.total_task_switches;
  ap.total_folded_events = sp.total_folded_events;
  ap.max_concurrent_any_thread = sp.max_concurrent_any_thread;
  ap.max_concurrent_per_thread = sp.max_concurrent_per_thread;
  ap.partial_capture = sp.partial_capture;
  acc.meta = delta.meta;
  acc.has_telemetry = delta.has_telemetry;
  acc.telemetry = delta.telemetry;

  const std::size_t live_after = ap.pool.allocated() - ap.pool.free_count();
  stats.nodes_created = live_after - live_before;
  return stats;
}

std::uint64_t total_visits(const AggregateProfile& profile) {
  std::uint64_t total = 0;
  const auto add = [&](const CallNode& node, int) { total += node.visits; };
  for_each_node(profile.implicit_root, add);
  for (const CallNode* root : profile.task_roots) for_each_node(root, add);
  return total;
}

Ticks total_root_inclusive(const AggregateProfile& profile) {
  Ticks total = 0;
  if (profile.implicit_root != nullptr) total += profile.implicit_root->inclusive;
  for (const CallNode* root : profile.task_roots) total += root->inclusive;
  return total;
}

}  // namespace taskprof::ingest
