// Delta snapshots: subtract on the producer, apply on the daemon.
//
// A delta is itself a well-formed SnapshotData (it rides the wire as
// ordinary .tpsnap bytes) with split semantics:
//
//  * call trees are difference-encoded: a node appears only when its
//    counters moved since the acked baseline (or it is an ancestor of
//    one that did, carried with zero diffs to keep the path intact);
//    visits and inclusive hold the *difference*, while the whole
//    visit_stats accumulator carries the *current cumulative* value
//    and is replaced on apply — producers account in-progress visits
//    provisionally, so between captures sum can grow with no new
//    completions and min can rise once a long visit completes, which
//    no per-field difference encoding round-trips (and the codec
//    cannot express count==0 stats on the wire anyway);
//  * every profile-wide scalar (thread_count, task switches, folds,
//    concurrency marks, partial flag), the meta block, and the
//    telemetry section carry the current cumulative value and are
//    *replaced* on apply — they are tiny, and several of them
//    (per-thread mark lists, the telemetry matrix) concatenate rather
//    than sum under snapshot::merge, so difference-encoding them
//    cannot round-trip.
//
// Because the tree walk sums the differences and child lists are
// append-only in first-visit order, the daemon's reconstructed session
// cumulative is byte-identical (encode_snapshot) to the producer's —
// the differential tests assert exactly that.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "snapshot/snapshot.hpp"

namespace taskprof::ingest {

/// Deep copy via the canonical codec (SnapshotData is move-only).
[[nodiscard]] snapshot::SnapshotData clone_snapshot(
    const snapshot::SnapshotData& data);

/// A subtracted delta plus what it contains.
struct DeltaResult {
  snapshot::SnapshotData snapshot;
  std::uint64_t changed_nodes = 0;  ///< nodes whose counters moved
  std::uint64_t carried_nodes = 0;  ///< zero-diff ancestors kept for paths
  std::uint64_t visits_delta = 0;   ///< total visit mass in this delta
};

/// Subtract `base` (the last acked cumulative, or nullptr for a rebase /
/// first flush) from `cur`.  `base` must be an earlier capture of the
/// same process: its registry is a handle-aligned prefix of `cur`'s and
/// its visits / inclusive counters are pointwise <= `cur`'s.  Throws
/// snapshot::SnapshotError(kMalformed) when that contract is violated
/// (the producer then falls back to a rebase).
[[nodiscard]] DeltaResult subtract_snapshot(
    const snapshot::SnapshotData& cur,
    const snapshot::SnapshotData* base);

/// Node-heat bookkeeping for the daemon's LRU eviction: every node a
/// delta touches is stamped with the shard epoch of that merge.
using HeatMap = std::unordered_map<const CallNode*, std::uint64_t>;

struct ApplyStats {
  std::uint64_t nodes_touched = 0;
  std::uint64_t nodes_created = 0;
  std::uint64_t visits_added = 0;
};

/// Fold `delta` into the session cumulative `acc`: trees merge the
/// differences (region handles remapped through acc's registry),
/// scalars / meta / telemetry are replaced by the delta's cumulative
/// values.  `heat`, when non-null, records `epoch` for every touched
/// node.  Throws snapshot::SnapshotError(kMalformed) when the delta
/// cannot describe the same program as `acc`.
ApplyStats apply_delta(snapshot::SnapshotData& acc,
                       const snapshot::SnapshotData& delta,
                       std::uint64_t epoch, HeatMap* heat);

/// Total visit count over every node of every tree (the conserved mass
/// the eviction accounting must preserve exactly).
[[nodiscard]] std::uint64_t total_visits(const AggregateProfile& profile);

/// Sum of the root-level inclusive times (implicit root + task roots);
/// folding a subtree into an eviction stub cannot change it.
[[nodiscard]] Ticks total_root_inclusive(const AggregateProfile& profile);

}  // namespace taskprof::ingest
