#include "ingest/client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "ingest/delta.hpp"

namespace taskprof::ingest {

using snapshot::SnapshotData;
using snapshot::SnapshotError;

namespace {

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) return -1;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

IngestClient::IngestClient(ClientOptions options)
    : options_(std::move(options)) {}

IngestClient::~IngestClient() { close(); }

void IngestClient::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  reader_.reset();
  session_id_ = 0;
  last_acked_seq_ = 0;
  have_baseline_ = false;
  baseline_ = SnapshotData{};
}

void IngestClient::connect() {
  close();
  const int attempts = options_.connect_retries < 1 ? 1 : options_.connect_retries;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.retry_delay_ms));
    }
    fd_ = connect_unix(options_.socket_path);
    if (fd_ >= 0) break;
  }
  if (fd_ < 0) {
    throw IngestError(Errc::kIo, options_.socket_path,
                      "connect failed after " + std::to_string(attempts) +
                          " attempts");
  }
  reader_ = std::make_unique<FrameReader>(options_.socket_path);
  try {
    connect_once();
  } catch (...) {
    close();
    throw;
  }
}

void IngestClient::connect_once() {
  HelloFrame hello;
  hello.protocol_version = kProtocolVersion;
  hello.process_id = options_.process_id;
  hello.producer_name = options_.producer_name;
  send_all(encode_hello(hello));
  const Frame reply = read_frame();
  if (reply.type == FrameType::kError) {
    const ErrorFrame error = decode_error(reply, options_.socket_path);
    throw IngestError(error.code, options_.socket_path,
                      "hello rejected: " + error.detail);
  }
  const HelloAckFrame ack = decode_hello_ack(reply, options_.socket_path);
  session_id_ = ack.session_id;
  last_acked_seq_ = ack.last_acked_seq;
}

void IngestClient::send_all(std::span<const std::uint8_t> bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    // MSG_NOSIGNAL: a daemon that closed this session must become a
    // typed kIo (which the caller recovers from), never a SIGPIPE.
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IngestError(Errc::kIo, options_.socket_path,
                        std::string("write: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

Frame IngestClient::read_frame() {
  for (;;) {
    std::optional<Frame> frame = reader_->next();
    if (frame.has_value()) return std::move(*frame);
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, options_.ack_timeout_ms);
    if (ready <= 0) {
      throw IngestError(Errc::kIo, options_.socket_path,
                        ready == 0 ? "timed out awaiting reply"
                                   : std::string("poll: ") +
                                         std::strerror(errno));
    }
    std::uint8_t chunk[16 * 1024];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n <= 0) {
      throw IngestError(Errc::kIo, options_.socket_path,
                        n == 0 ? "daemon closed the connection"
                               : std::string("read: ") + std::strerror(errno));
    }
    reader_->feed({chunk, static_cast<std::size_t>(n)});
  }
}

SendResult IngestClient::send_rebase(const SnapshotData& cur,
                                     bool reconnected) {
  DeltaFrame frame;
  frame.seq = last_acked_seq_ + 1;
  frame.base_seq = 0;
  frame.rebase = true;
  frame.snapshot = snapshot::encode_snapshot(cur);
  send_all(encode_delta(frame));
  const Frame reply = read_frame();
  if (reply.type == FrameType::kError) {
    const ErrorFrame error = decode_error(reply, options_.socket_path);
    throw IngestError(error.code, options_.socket_path,
                      "rebase rejected: " + error.detail);
  }
  const DeltaAckFrame ack = decode_delta_ack(reply, options_.socket_path);
  if (ack.seq != frame.seq) {
    throw IngestError(Errc::kBadSeq, options_.socket_path,
                      "rebase acked wrong seq");
  }
  last_acked_seq_ = frame.seq;
  baseline_ = clone_snapshot(cur);
  have_baseline_ = true;
  ++total_sends_;
  ++total_rebases_;
  SendResult result;
  result.seq = frame.seq;
  result.rebased = true;
  result.reconnected = reconnected;
  result.wire_bytes = frame.snapshot.size();
  return result;
}

SendResult IngestClient::send_snapshot(const SnapshotData& cur) {
  bool reconnected = false;
  if (!connected()) {
    connect();
    reconnected = true;
  }
  if (!have_baseline_) {
    // First flush of this session (or a fresh session after reconnect):
    // ship the full cumulative.
    try {
      return send_rebase(cur, reconnected);
    } catch (const IngestError&) {
      if (reconnected) throw;  // already on the recovery path
      connect();
      return send_rebase(cur, true);
    }
  }

  // Difference-encode against the acked baseline; a non-monotone
  // capture (profilers that refused to quiesce last time) falls back to
  // a rebase, which replaces rather than sums.
  DeltaFrame frame;
  frame.seq = last_acked_seq_ + 1;
  frame.base_seq = last_acked_seq_;
  frame.rebase = false;
  DeltaResult delta;
  try {
    delta = subtract_snapshot(cur, &baseline_);
  } catch (const SnapshotError&) {
    return send_rebase(cur, reconnected);
  }
  frame.snapshot = snapshot::encode_snapshot(delta.snapshot);

  try {
    send_all(encode_delta(frame));
    const Frame reply = read_frame();
    if (reply.type == FrameType::kError) {
      // Sequence dispute or daemon-side rejection: resync by starting a
      // fresh session and rebasing.
      connect();
      return send_rebase(cur, true);
    }
    const DeltaAckFrame ack = decode_delta_ack(reply, options_.socket_path);
    if (ack.seq != frame.seq) {
      connect();
      return send_rebase(cur, true);
    }
  } catch (const IngestError& error) {
    if (error.code() != Errc::kIo && error.code() != Errc::kMalformed) throw;
    connect();
    return send_rebase(cur, true);
  }
  last_acked_seq_ = frame.seq;
  baseline_ = clone_snapshot(cur);
  ++total_sends_;
  SendResult result;
  result.seq = frame.seq;
  result.reconnected = reconnected;
  result.changed_nodes = delta.changed_nodes;
  result.carried_nodes = delta.carried_nodes;
  result.wire_bytes = frame.snapshot.size();
  return result;
}

bool IngestClient::heartbeat() noexcept {
  if (!connected()) return false;
  try {
    HeartbeatFrame beat{++heartbeat_nonce_};
    send_all(encode_heartbeat(beat));
    const Frame reply = read_frame();
    const HeartbeatFrame echo = decode_heartbeat(reply, options_.socket_path);
    return echo.nonce == beat.nonce;
  } catch (...) {
    close();
    return false;
  }
}

void IngestClient::finish(const SnapshotData* final_snapshot) noexcept {
  try {
    if (final_snapshot != nullptr) (void)send_snapshot(*final_snapshot);
    if (!connected()) return;
    send_all(encode_bye({last_acked_seq_}));
    const Frame reply = read_frame();
    (void)decode_bye_ack(reply, options_.socket_path);
  } catch (...) {
    // Dirty close: the daemon drops (or keeps, by policy) the session.
  }
  close();
}

bool IngestFlushSink::ship(const AggregateProfile& profile,
                           const RegionRegistry& registry,
                           const snapshot::SnapshotMeta& meta,
                           const telemetry::Snapshot* telemetry,
                           bool final) noexcept {
  try {
    // Round-trip through the codec: send_snapshot wants an owning
    // SnapshotData, and the flusher only lends us views.
    const std::vector<std::uint8_t> bytes =
        snapshot::encode_snapshot(profile, registry, meta, telemetry);
    const SnapshotData cur = snapshot::decode_snapshot(bytes, "flush sink");
    if (final) {
      client_.finish(&cur);
      return true;
    }
    (void)client_.send_snapshot(cur);
    return true;
  } catch (...) {
    return false;
  }
}

std::vector<std::uint8_t> query_report(const std::string& socket_path,
                                       ReportKind kind, int timeout_ms) {
  const int fd = connect_unix(socket_path);
  if (fd < 0) {
    throw IngestError(Errc::kIo, socket_path, "connect failed");
  }
  std::vector<std::uint8_t> body;
  try {
    const auto request = encode_report_request({kind});
    std::size_t off = 0;
    while (off < request.size()) {
      const ssize_t n =
          ::send(fd, request.data() + off, request.size() - off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw IngestError(Errc::kIo, socket_path,
                          std::string("write: ") + std::strerror(errno));
      }
      off += static_cast<std::size_t>(n);
    }
    FrameReader reader(socket_path);
    for (;;) {
      std::optional<Frame> frame = reader.next();
      if (frame.has_value()) {
        if (frame->type == FrameType::kError) {
          const ErrorFrame error = decode_error(*frame, socket_path);
          throw IngestError(error.code, socket_path,
                            "report rejected: " + error.detail);
        }
        ReportReplyFrame reply = decode_report_reply(*frame, socket_path);
        body = std::move(reply.body);
        break;
      }
      pollfd pfd{fd, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready <= 0) {
        throw IngestError(Errc::kIo, socket_path, "timed out awaiting report");
      }
      std::uint8_t chunk[64 * 1024];
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n <= 0) {
        throw IngestError(Errc::kIo, socket_path,
                          "daemon closed the connection");
      }
      reader.feed({chunk, static_cast<std::size_t>(n)});
    }
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  return body;
}

}  // namespace taskprof::ingest
