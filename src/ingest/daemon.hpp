// taskprofd: the fleet-scale continuous profile ingestion daemon.
//
// One poll(2) IO loop multiplexes every producer connection (the
// RafaGago/ssc group-scheduler shape: many per-session in/out queues
// behind one scheduler).  The IO thread only parses frames; each frame
// is routed to the owning session's *bounded* input queue and drained
// by the shard's merge worker, which runs the session state machine,
// folds deltas into the session's cumulative tree, and hands reply
// frames back to the IO thread through the session outbox.  When a
// session's queue fills, the IO loop simply stops reading that fd —
// kernel socket buffers become the backpressure, and one slow merge
// cannot stall other producers.
//
// Sessions are sharded by id.  A session that ends cleanly (Bye) folds
// its cumulative into the shard aggregate; a dirty disconnect drops the
// session's contribution (default) so the daemon's aggregate equals the
// offline merge of the *survivors'* snapshots — the crash-injection
// soak asserts exactly that.  `keep_partial_sessions` opts into folding
// dirty sessions instead.
//
// Memory budget: when the live call-tree bytes of a shard exceed
// budget/shards, the merge worker evicts cold call paths (least
// recently touched sessions first) by folding them into "[evicted]"
// stubs — totals stay exact, only path detail is lost
// (Session::evict_cold; DESIGN.md §16).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "ingest/protocol.hpp"
#include "ingest/session.hpp"
#include "snapshot/snapshot.hpp"

namespace taskprof::ingest {

struct DaemonOptions {
  std::string socket_path;           ///< Unix-domain socket to listen on
  int shards = 4;                    ///< merge workers / aggregate shards
  std::size_t memory_budget_bytes = 0;  ///< 0 = unbounded (no eviction)
  bool keep_partial_sessions = false;   ///< fold dirty disconnects too
  int session_queue_depth = 16;      ///< bounded per-session input queue
  int listen_backlog = 64;
};

/// Point-in-time ingestion statistics (global + folded per-session).
struct DaemonStats {
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_closed_clean = 0;
  std::uint64_t sessions_dropped = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t frames_rejected = 0;  ///< framing errors answered by IO
  std::uint64_t bytes_received = 0;
  std::uint64_t deltas_applied = 0;
  std::uint64_t deltas_duplicate = 0;
  std::uint64_t deltas_rejected = 0;
  std::uint64_t rebases = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t errors_sent = 0;
  std::uint64_t visits_ingested = 0;
  std::uint64_t nodes_created = 0;
  std::uint64_t evicted_subtrees = 0;
  std::uint64_t evicted_nodes = 0;
  std::uint64_t evicted_visits = 0;
  std::uint64_t reports_served = 0;
  std::uint64_t queue_stalls = 0;  ///< times a full queue paused a reader
  std::uint64_t live_sessions = 0;
  std::uint64_t live_node_bytes = 0;
};

class IngestDaemon {
 public:
  explicit IngestDaemon(DaemonOptions options);
  ~IngestDaemon();

  IngestDaemon(const IngestDaemon&) = delete;
  IngestDaemon& operator=(const IngestDaemon&) = delete;

  /// Bind, listen, and spawn the IO + merge threads.  Throws
  /// IngestError(kIo) when the socket cannot be created.
  void start();

  /// Graceful shutdown: stop accepting, drain queues, join threads,
  /// unlink the socket.  Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return io_thread_.joinable();
  }
  [[nodiscard]] const std::string& socket_path() const noexcept {
    return options_.socket_path;
  }

  [[nodiscard]] DaemonStats stats() const;

  /// The merged fleet view: shard aggregates (retired sessions) plus
  /// every live session's cumulative, folded with snapshot::merge
  /// semantics.  An empty daemon exports an empty-but-valid snapshot.
  [[nodiscard]] snapshot::SnapshotData export_aggregate() const;

  /// Rendered report of the current aggregate (text / analysis JSON /
  /// .tpsnap bytes / stats JSON — what ReportRequest serves).
  [[nodiscard]] std::vector<std::uint8_t> render_report(ReportKind kind) const;

 private:
  /// One producer bound to a connection; the Session inside is owned by
  /// the shard worker once frames start flowing.
  struct SessionRec {
    SessionRec(std::uint64_t id, std::string origin)
        : session(id, std::move(origin)) {}
    Session session;           ///< guarded by the owning shard's mutex
    std::size_t shard = 0;
    bool routed = false;       ///< IO-thread-owned: ever enqueued
    bool in_live = false;      ///< worker-owned: member of shard live set
    bool retired = false;      ///< worker-owned: folded or dropped
    std::atomic<int> pending{0};  ///< queued-but-unprocessed frames
    std::mutex out_mutex;
    std::vector<std::uint8_t> outbox;  ///< worker -> IO reply bytes
  };

  struct WorkItem {
    std::shared_ptr<SessionRec> rec;
    std::optional<Frame> frame;  ///< nullopt = connection disconnected
  };

  struct Shard {
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::deque<WorkItem> queue;           ///< guarded by mutex
    bool stopping = false;                ///< guarded by mutex
    std::vector<std::shared_ptr<SessionRec>> live;  ///< worker-owned
    snapshot::SnapshotData aggregate;     ///< folded retired sessions
    bool has_aggregate = false;
    std::uint64_t epoch = 0;              ///< bumped per applied delta
    SessionCounters retired;              ///< counters of removed sessions
    std::uint64_t retired_clean = 0;
    std::uint64_t retired_dropped = 0;
    std::thread worker;
  };

  struct Conn {
    int fd = -1;
    std::unique_ptr<FrameReader> reader;
    std::shared_ptr<SessionRec> rec;
    std::vector<std::uint8_t> write_buf;
    std::size_t write_off = 0;
    bool stalled = false;   ///< reading paused: session queue full
    bool closing = false;   ///< flush write_buf, then close
  };

  void io_loop();
  void merge_loop(Shard& shard);
  void accept_connections();
  void handle_readable(Conn& conn);
  void handle_writable(Conn& conn);
  void route_frame(Conn& conn, Frame frame);
  void enqueue(const std::shared_ptr<SessionRec>& rec,
               std::optional<Frame> frame);
  void close_conn(int fd);
  void drain_outboxes();
  void wake_io();
  void process_item(Shard& shard, WorkItem& item);
  void fold_session(Shard& shard, SessionRec& rec);
  void retire_session(Shard& shard, const std::shared_ptr<SessionRec>& rec,
                      bool clean);
  void maybe_evict(Shard& shard);
  [[nodiscard]] std::size_t shard_live_bytes(const Shard& shard) const;
  [[nodiscard]] std::string render_stats_json() const;

  DaemonOptions options_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> stop_{false};
  std::thread io_thread_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unordered_map<int, Conn> conns_;  ///< IO-thread-owned, by fd
  std::atomic<std::uint64_t> next_session_id_{1};

  std::atomic<std::uint64_t> sessions_opened_{0};
  std::atomic<std::uint64_t> frames_received_{0};
  std::atomic<std::uint64_t> frames_rejected_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> reports_served_{0};
  std::atomic<std::uint64_t> queue_stalls_{0};
};

}  // namespace taskprof::ingest
