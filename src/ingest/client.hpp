// Producer-side ingestion client: connect, hello, stream deltas.
//
// The client owns the acked-baseline snapshot the next delta is
// subtracted against.  Every failure mode funnels into one recovery
// path — reconnect as a fresh session and send a rebase delta (the full
// cumulative) — which makes the producer stateless-safe: a lost ack, a
// daemon restart, a sequence dispute, or a non-monotone capture all
// resolve the same way, and the daemon's replace-semantics for rebase
// keeps totals exact.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ingest/protocol.hpp"
#include "snapshot/flusher.hpp"
#include "snapshot/snapshot.hpp"

namespace taskprof::ingest {

struct ClientOptions {
  std::string socket_path;
  std::uint64_t process_id = 0;
  std::string producer_name;
  int connect_retries = 20;   ///< attempts before connect() throws
  int retry_delay_ms = 50;    ///< sleep between connect attempts
  int ack_timeout_ms = 5000;  ///< poll timeout awaiting any reply frame
};

/// What one snapshot send did (for telemetry / tests).
struct SendResult {
  std::uint64_t seq = 0;
  bool rebased = false;         ///< full snapshot, not a difference
  bool reconnected = false;     ///< transport was re-established
  std::uint64_t changed_nodes = 0;
  std::uint64_t carried_nodes = 0;
  std::size_t wire_bytes = 0;   ///< encoded snapshot payload size
};

class IngestClient {
 public:
  explicit IngestClient(ClientOptions options);
  ~IngestClient();

  IngestClient(const IngestClient&) = delete;
  IngestClient& operator=(const IngestClient&) = delete;

  /// Connect (with retries) and complete the Hello handshake.  Throws
  /// IngestError(kIo) when the daemon stays unreachable.
  void connect();
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Ship `cur` (the producer's current *cumulative* snapshot) as a
  /// delta against the acked baseline, blocking for the ack.  Any
  /// failure — transport error, timeout, sequence dispute, or a
  /// non-monotone capture — reconnects and rebases.  Throws
  /// IngestError(kIo) only when even the rebase path fails.
  SendResult send_snapshot(const snapshot::SnapshotData& cur);

  /// Round-trip a Heartbeat echo; false when the transport failed (the
  /// next send_snapshot will reconnect).
  bool heartbeat() noexcept;

  /// Optional final snapshot, then Bye -> ByeAck, then close.  Best
  /// effort: transport failures are swallowed (the daemon retires the
  /// session as dirty on disconnect anyway).
  void finish(const snapshot::SnapshotData* final_snapshot) noexcept;

  void close() noexcept;

  [[nodiscard]] std::uint64_t session_id() const noexcept { return session_id_; }
  [[nodiscard]] std::uint64_t last_acked_seq() const noexcept {
    return last_acked_seq_;
  }
  /// Lifetime totals (across reconnects; close() does not reset them).
  [[nodiscard]] std::uint64_t total_sends() const noexcept {
    return total_sends_;
  }
  [[nodiscard]] std::uint64_t total_rebases() const noexcept {
    return total_rebases_;
  }

 private:
  void connect_once();
  void send_all(std::span<const std::uint8_t> bytes);
  [[nodiscard]] Frame read_frame();
  SendResult send_rebase(const snapshot::SnapshotData& cur, bool reconnected);

  ClientOptions options_;
  int fd_ = -1;
  std::unique_ptr<FrameReader> reader_;
  std::uint64_t session_id_ = 0;
  std::uint64_t last_acked_seq_ = 0;
  std::uint64_t heartbeat_nonce_ = 0;
  std::uint64_t total_sends_ = 0;
  std::uint64_t total_rebases_ = 0;
  bool have_baseline_ = false;
  snapshot::SnapshotData baseline_;  ///< cumulative at the last acked seq
};

/// One-shot query: connect, ReportRequest, return the ReportReply body.
/// Throws IngestError on transport failure or a typed daemon rejection.
[[nodiscard]] std::vector<std::uint8_t> query_report(
    const std::string& socket_path, ReportKind kind, int timeout_ms = 10000);

/// SnapshotFlusher sink that streams every capture to taskprofd as a
/// delta (taskprof_cli --ingest=SOCKET).  ship(final=true) also sends
/// Bye, closing the session cleanly so the daemon folds it.
class IngestFlushSink final : public snapshot::FlushSink {
 public:
  explicit IngestFlushSink(ClientOptions options) : client_(std::move(options)) {}

  bool ship(const AggregateProfile& profile, const RegionRegistry& registry,
            const snapshot::SnapshotMeta& meta,
            const telemetry::Snapshot* telemetry, bool final) noexcept override;
  bool heartbeat() noexcept override { return client_.heartbeat(); }

  [[nodiscard]] IngestClient& client() noexcept { return client_; }

 private:
  IngestClient client_;
};

}  // namespace taskprof::ingest
