#include "ingest/protocol.hpp"

#include <cstring>

#include "snapshot/format.hpp"

namespace taskprof::ingest {

namespace {

/// Map a snapshot-layer decode failure onto the ingest taxonomy: the
/// payload already passed its frame CRC, so an overrun or grammar
/// violation means the sender lied, not the wire.
Errc map_snapshot_errc(snapshot::Errc code) noexcept {
  return code == snapshot::Errc::kLimit ? Errc::kLimit : Errc::kMalformed;
}

/// Run a payload parser, converting snapshot::Decoder failures into
/// typed IngestErrors.
template <typename Fn>
auto parse_payload(const Frame& frame, FrameType expected,
                   const std::string& origin, Fn&& fn) {
  if (frame.type != expected) {
    throw IngestError(Errc::kBadType, origin, "unexpected frame type");
  }
  snapshot::Decoder in(frame.payload, origin, snapshot::Errc::kMalformed);
  try {
    auto result = fn(in);
    if (in.remaining() != 0) {
      throw IngestError(Errc::kMalformed, origin, "trailing payload bytes");
    }
    return result;
  } catch (const snapshot::SnapshotError& error) {
    throw IngestError(map_snapshot_errc(error.code()), origin, error.what());
  }
}

std::vector<std::uint8_t> frame_bytes(FrameType type,
                                      const snapshot::Encoder& payload) {
  return encode_frame(type, payload.buffer());
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value >> 16));
  out.push_back(static_cast<std::uint8_t>(value >> 24));
}

std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

bool frame_type_valid(std::uint8_t value) noexcept {
  return value >= static_cast<std::uint8_t>(FrameType::kHello) &&
         value <= static_cast<std::uint8_t>(FrameType::kReportReply);
}

std::string_view errc_name(Errc code) noexcept {
  switch (code) {
    case Errc::kIo: return "io";
    case Errc::kBadMagic: return "bad-magic";
    case Errc::kBadType: return "bad-type";
    case Errc::kTruncated: return "truncated";
    case Errc::kBadCrc: return "bad-crc";
    case Errc::kMalformed: return "malformed";
    case Errc::kLimit: return "limit";
    case Errc::kBadState: return "bad-state";
    case Errc::kBadSeq: return "bad-seq";
    case Errc::kBadVersion: return "bad-version";
  }
  return "unknown";
}

bool errc_valid(std::uint8_t value) noexcept {
  return value >= static_cast<std::uint8_t>(Errc::kIo) &&
         value <= static_cast<std::uint8_t>(Errc::kBadVersion);
}

IngestError::IngestError(Errc code, const std::string& origin,
                         const std::string& detail)
    : std::runtime_error(origin + ": " + std::string(errc_name(code)) + ": " +
                         detail),
      code_(code) {}

std::vector<std::uint8_t> encode_frame(FrameType type,
                                       std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderSize + payload.size());
  for (const char c : kFrameMagic) out.push_back(static_cast<std::uint8_t>(c));
  out.push_back(static_cast<std::uint8_t>(type));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, snapshot::crc32(payload));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

FrameReader::FrameReader(std::string origin, std::size_t max_payload)
    : origin_(std::move(origin)), max_payload_(max_payload) {}

void FrameReader::feed(std::span<const std::uint8_t> bytes) {
  // Compact lazily: keep the consumed prefix until it dominates the
  // buffer so feeding many small chunks stays amortized O(1).
  if (offset_ > 0 && offset_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(offset_));
    offset_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

std::optional<Frame> FrameReader::next() {
  const std::size_t avail = buffered();
  if (avail == 0) return std::nullopt;
  const std::uint8_t* head = buffer_.data() + offset_;
  // Validate the header prefix byte-by-byte as it arrives: a corrupt
  // header can never resynchronize, so fail as early as possible.
  const std::size_t magic_have = std::min(avail, kFrameMagicSize);
  if (std::memcmp(head, kFrameMagic, magic_have) != 0) {
    throw IngestError(Errc::kBadMagic, origin_, "not an ingest frame");
  }
  if (avail > kFrameMagicSize && !frame_type_valid(head[kFrameMagicSize])) {
    throw IngestError(
        Errc::kBadType, origin_,
        "frame type " + std::to_string(int(head[kFrameMagicSize])));
  }
  if (avail < kFrameHeaderSize) return std::nullopt;
  const std::size_t size = get_u32(head + kFrameMagicSize + 1);
  if (size > max_payload_) {
    throw IngestError(Errc::kLimit, origin_,
                      "payload size " + std::to_string(size));
  }
  if (avail < kFrameHeaderSize + size) return std::nullopt;
  const std::uint32_t stored_crc = get_u32(head + kFrameMagicSize + 5);
  const std::span<const std::uint8_t> payload(head + kFrameHeaderSize, size);
  if (snapshot::crc32(payload) != stored_crc) {
    throw IngestError(Errc::kBadCrc, origin_, "payload checksum mismatch");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(head[kFrameMagicSize]);
  frame.payload.assign(payload.begin(), payload.end());
  offset_ += kFrameHeaderSize + size;
  return frame;
}

// --- Payload codecs ---------------------------------------------------------

std::vector<std::uint8_t> encode_hello(const HelloFrame& f) {
  snapshot::Encoder out;
  out.varint(f.protocol_version);
  out.varint(f.process_id);
  out.str(f.producer_name);
  return frame_bytes(FrameType::kHello, out);
}

HelloFrame decode_hello(const Frame& frame, const std::string& origin) {
  return parse_payload(frame, FrameType::kHello, origin,
                       [&](snapshot::Decoder& in) {
    HelloFrame f;
    const std::uint64_t version = in.varint();
    if (version == 0 || version > UINT32_MAX) {
      throw IngestError(Errc::kBadVersion, origin, "protocol version");
    }
    f.protocol_version = static_cast<std::uint32_t>(version);
    f.process_id = in.varint();
    f.producer_name = in.str(kMaxProducerName);
    return f;
  });
}

std::vector<std::uint8_t> encode_hello_ack(const HelloAckFrame& f) {
  snapshot::Encoder out;
  out.varint(f.session_id);
  out.varint(f.last_acked_seq);
  return frame_bytes(FrameType::kHelloAck, out);
}

HelloAckFrame decode_hello_ack(const Frame& frame, const std::string& origin) {
  return parse_payload(frame, FrameType::kHelloAck, origin,
                       [](snapshot::Decoder& in) {
    HelloAckFrame f;
    f.session_id = in.varint();
    f.last_acked_seq = in.varint();
    return f;
  });
}

std::vector<std::uint8_t> encode_delta(const DeltaFrame& f) {
  snapshot::Encoder out;
  out.varint(f.seq);
  out.varint(f.base_seq);
  out.u8(f.rebase ? 1 : 0);
  out.varint(f.snapshot.size());
  out.bytes(f.snapshot.data(), f.snapshot.size());
  return frame_bytes(FrameType::kDelta, out);
}

DeltaFrame decode_delta(const Frame& frame, const std::string& origin) {
  return parse_payload(frame, FrameType::kDelta, origin,
                       [&](snapshot::Decoder& in) {
    DeltaFrame f;
    f.seq = in.varint();
    f.base_seq = in.varint();
    const std::uint8_t rebase = in.u8();
    if (rebase > 1) {
      throw IngestError(Errc::kMalformed, origin, "rebase flag");
    }
    f.rebase = rebase == 1;
    if (f.seq == 0) throw IngestError(Errc::kBadSeq, origin, "delta seq 0");
    if (f.rebase && f.base_seq != 0) {
      throw IngestError(Errc::kBadSeq, origin, "rebase with nonzero base");
    }
    const std::uint64_t size = in.varint();
    if (size != in.remaining()) {
      throw IngestError(Errc::kMalformed, origin,
                        "snapshot length disagrees with payload");
    }
    const auto bytes = in.bytes(static_cast<std::size_t>(size));
    f.snapshot.assign(bytes.begin(), bytes.end());
    return f;
  });
}

std::vector<std::uint8_t> encode_delta_ack(const DeltaAckFrame& f) {
  snapshot::Encoder out;
  out.varint(f.seq);
  return frame_bytes(FrameType::kDeltaAck, out);
}

DeltaAckFrame decode_delta_ack(const Frame& frame, const std::string& origin) {
  return parse_payload(frame, FrameType::kDeltaAck, origin,
                       [](snapshot::Decoder& in) {
    DeltaAckFrame f;
    f.seq = in.varint();
    return f;
  });
}

std::vector<std::uint8_t> encode_heartbeat(const HeartbeatFrame& f) {
  snapshot::Encoder out;
  out.varint(f.nonce);
  return frame_bytes(FrameType::kHeartbeat, out);
}

HeartbeatFrame decode_heartbeat(const Frame& frame,
                                const std::string& origin) {
  return parse_payload(frame, FrameType::kHeartbeat, origin,
                       [](snapshot::Decoder& in) {
    HeartbeatFrame f;
    f.nonce = in.varint();
    return f;
  });
}

std::vector<std::uint8_t> encode_bye(const ByeFrame& f) {
  snapshot::Encoder out;
  out.varint(f.final_seq);
  return frame_bytes(FrameType::kBye, out);
}

ByeFrame decode_bye(const Frame& frame, const std::string& origin) {
  return parse_payload(frame, FrameType::kBye, origin,
                       [](snapshot::Decoder& in) {
    ByeFrame f;
    f.final_seq = in.varint();
    return f;
  });
}

std::vector<std::uint8_t> encode_bye_ack(const ByeAckFrame& f) {
  snapshot::Encoder out;
  out.varint(f.final_seq);
  return frame_bytes(FrameType::kByeAck, out);
}

ByeAckFrame decode_bye_ack(const Frame& frame, const std::string& origin) {
  return parse_payload(frame, FrameType::kByeAck, origin,
                       [](snapshot::Decoder& in) {
    ByeAckFrame f;
    f.final_seq = in.varint();
    return f;
  });
}

std::vector<std::uint8_t> encode_error(const ErrorFrame& f) {
  snapshot::Encoder out;
  out.u8(static_cast<std::uint8_t>(f.code));
  out.str(f.detail.substr(0, kMaxErrorDetail));
  return frame_bytes(FrameType::kError, out);
}

ErrorFrame decode_error(const Frame& frame, const std::string& origin) {
  return parse_payload(frame, FrameType::kError, origin,
                       [&](snapshot::Decoder& in) {
    ErrorFrame f;
    const std::uint8_t code = in.u8();
    if (!errc_valid(code)) {
      throw IngestError(Errc::kMalformed, origin, "error code byte");
    }
    f.code = static_cast<Errc>(code);
    f.detail = in.str(kMaxErrorDetail);
    return f;
  });
}

std::vector<std::uint8_t> encode_report_request(const ReportRequestFrame& f) {
  snapshot::Encoder out;
  out.u8(static_cast<std::uint8_t>(f.kind));
  return frame_bytes(FrameType::kReportRequest, out);
}

ReportRequestFrame decode_report_request(const Frame& frame,
                                         const std::string& origin) {
  return parse_payload(frame, FrameType::kReportRequest, origin,
                       [&](snapshot::Decoder& in) {
    const std::uint8_t kind = in.u8();
    if (kind < static_cast<std::uint8_t>(ReportKind::kText) ||
        kind > static_cast<std::uint8_t>(ReportKind::kStats)) {
      throw IngestError(Errc::kMalformed, origin, "report kind");
    }
    ReportRequestFrame f;
    f.kind = static_cast<ReportKind>(kind);
    return f;
  });
}

std::vector<std::uint8_t> encode_report_reply(const ReportReplyFrame& f) {
  snapshot::Encoder out;
  out.u8(static_cast<std::uint8_t>(f.kind));
  out.varint(f.body.size());
  out.bytes(f.body.data(), f.body.size());
  return frame_bytes(FrameType::kReportReply, out);
}

ReportReplyFrame decode_report_reply(const Frame& frame,
                                     const std::string& origin) {
  return parse_payload(frame, FrameType::kReportReply, origin,
                       [&](snapshot::Decoder& in) {
    const std::uint8_t kind = in.u8();
    if (kind < static_cast<std::uint8_t>(ReportKind::kText) ||
        kind > static_cast<std::uint8_t>(ReportKind::kStats)) {
      throw IngestError(Errc::kMalformed, origin, "report kind");
    }
    ReportReplyFrame f;
    f.kind = static_cast<ReportKind>(kind);
    const std::uint64_t size = in.varint();
    if (size != in.remaining()) {
      throw IngestError(Errc::kMalformed, origin,
                        "body length disagrees with payload");
    }
    const auto bytes = in.bytes(static_cast<std::size_t>(size));
    f.body.assign(bytes.begin(), bytes.end());
    return f;
  });
}

}  // namespace taskprof::ingest
