#include "diagnose/detectors.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <unordered_map>

#include "common/format.hpp"

namespace taskprof::diag {

namespace {

/// Mean exclusive (body) time per instance of a construct.
double exec_mean(const TaskConstructStats& c) {
  return c.instances == 0 ? 0.0
                          : static_cast<double>(c.exclusive_total) /
                                static_cast<double>(c.instances);
}

void add_metric(Diagnosis* d, const char* name, double value,
                const char* unit) {
  d->metrics.push_back(Metric{name, value, unit});
}

/// Unsigned percent ("54.7%") — format_percent is for signed deltas.
std::string percent(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", ratio * 100.0);
  return buf;
}

/// The construct contributing the most critical-path time (the
/// what-to-optimize site when a diagnosis has no sharper anchor).
CallSite dominant_span_site(const DetectorContext& ctx) {
  if (ctx.workspan != nullptr && !ctx.workspan->shares.empty()) {
    return resolve_site(*ctx.input.registry, ctx.workspan->shares[0].region);
  }
  CallSite site;
  site.name = "(unknown)";
  return site;
}

}  // namespace

const char* severity_name(Severity severity) noexcept {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kProblem: return "problem";
  }
  return "?";
}

std::string CallSite::label() const {
  if (file.empty()) return name;
  return name + " (" + file + ":" + std::to_string(line) + ")";
}

CallSite resolve_site(const RegionRegistry& registry, RegionHandle region) {
  CallSite site;
  site.region = region;
  if (region != kInvalidRegion && region < registry.size()) {
    const RegionInfo& info = registry.info(region);
    site.name = info.name;
    site.file = info.file;
    site.line = info.line;
  } else {
    site.name = "region " + std::to_string(region);
  }
  return site;
}

// ---------------------------------------------------------------------------
// creation_storm: tasks created much faster than they start executing,
// piling up an unbounded backlog (Tuft et al.'s "creation storm").  Needs
// the time dimension, so it only runs with a trace.
// ---------------------------------------------------------------------------
void detect_creation_storm(const DetectorContext& ctx,
                           std::vector<Diagnosis>* out) {
  if (ctx.input.trace == nullptr) return;
  const DiagnoseOptions& opt = ctx.options;

  std::uint64_t created = 0;
  std::uint64_t begun = 0;
  std::uint64_t peak_backlog = 0;
  Ticks peak_time = 0;
  ThreadId peak_thread = 0;
  Ticks first_create = 0;
  Ticks last_begin = 0;
  bool any_create = false;
  // Creations attributed per construct while the backlog is elevated —
  // that names the storm's source rather than an innocent bystander.
  const std::uint64_t elevated =
      std::max<std::uint64_t>(ctx.threads > 0
                                  ? static_cast<std::uint64_t>(ctx.threads) * 4
                                  : 4,
                              16);
  std::map<RegionHandle, std::uint64_t> elevated_creates;

  for (const trace::TraceEvent& event : ctx.input.trace->merged()) {
    switch (event.kind) {
      case trace::EventKind::kCreateEnd:
        ++created;
        if (!any_create) {
          first_create = event.time;
          any_create = true;
        }
        if (created - begun > peak_backlog) {
          peak_backlog = created - begun;
          peak_time = event.time;
          peak_thread = event.thread;
        }
        if (created - begun >= elevated) {
          elevated_creates[event.region] += 1;
        }
        break;
      case trace::EventKind::kTaskBegin:
        ++begun;
        last_begin = event.time;
        break;
      default:
        break;
    }
  }
  if (created < opt.storm_min_creations) return;

  const std::uint64_t threshold = std::max(
      opt.storm_backlog_floor,
      opt.storm_backlog_per_thread * static_cast<std::uint64_t>(ctx.threads));
  if (peak_backlog < threshold / 2) return;

  Diagnosis d;
  d.detector = "creation_storm";
  d.severity =
      peak_backlog >= threshold ? Severity::kProblem : Severity::kWarning;
  d.score = static_cast<double>(peak_backlog);
  d.at = peak_time;
  d.thread = peak_thread;

  RegionHandle worst = kInvalidRegion;
  std::uint64_t worst_count = 0;
  for (const auto& [region, count] : elevated_creates) {
    if (count > worst_count) {
      worst = region;
      worst_count = count;
    }
  }
  if (worst != kInvalidRegion) {
    d.sites.push_back(resolve_site(*ctx.input.registry, worst));
  }

  std::ostringstream os;
  os << "creation storm: backlog of ready tasks peaked at "
     << format_count(peak_backlog) << " (" << format_count(created)
     << " created) - tasks are created far faster than they start";
  d.summary = os.str();
  d.remediation =
      "throttle task creation (e.g. a depth/if cut-off or taskloop "
      "grainsize) or let the creating thread execute work itself";
  add_metric(&d, "peak_backlog", static_cast<double>(peak_backlog), "tasks");
  add_metric(&d, "creations", static_cast<double>(created), "tasks");
  add_metric(&d, "backlog_threshold", static_cast<double>(threshold),
             "tasks");
  if (last_begin > first_create && created > 0) {
    const double window_s = static_cast<double>(last_begin - first_create) /
                            static_cast<double>(kTicksPerSec);
    if (window_s > 0) {
      add_metric(&d, "creation_rate", static_cast<double>(created) / window_s,
                 "tasks/s");
    }
  }
  out->push_back(std::move(d));
}

// ---------------------------------------------------------------------------
// serialized_spawn_chain: a deep path of single-child spawns — the task
// graph degenerates into a linked list, so added workers idle.
// ---------------------------------------------------------------------------
void detect_serialized_spawn_chain(const DetectorContext& ctx,
                                   std::vector<Diagnosis>* out) {
  if (ctx.trace_analysis == nullptr || ctx.workspan == nullptr) return;
  if (ctx.threads < 2) return;
  const DiagnoseOptions& opt = ctx.options;
  const trace::TraceAnalysis& analysis = *ctx.trace_analysis;

  std::unordered_map<TaskInstanceId, const trace::TaskLifetime*> by_id;
  std::unordered_map<TaskInstanceId, std::vector<TaskInstanceId>> children;
  for (const trace::TaskLifetime& life : analysis.tasks) {
    by_id.emplace(life.id, &life);
    children[life.parent].push_back(life.id);
  }
  for (auto& [parent, kids] : children) std::sort(kids.begin(), kids.end());
  auto child_count = [&](TaskInstanceId id) -> std::size_t {
    const auto it = children.find(id);
    return it == children.end() ? 0 : it->second.size();
  };

  // Chain starts: tasks that are not themselves a single child of a
  // single-spawning parent.  Walk down while each link spawns exactly one.
  int best_len = 0;
  Ticks best_active = 0;
  TaskInstanceId best_start = 0;
  for (const trace::TaskLifetime& life : analysis.tasks) {
    const auto parent = by_id.find(life.parent);
    if (parent != by_id.end() && child_count(life.parent) == 1) {
      continue;  // interior link; its chain is counted from the start
    }
    int len = 1;
    Ticks active = life.active;
    TaskInstanceId cur = life.id;
    while (child_count(cur) == 1) {
      const TaskInstanceId next = children.at(cur)[0];
      cur = next;
      active += by_id.at(next)->active;
      ++len;
    }
    if (len > best_len || (len == best_len && life.id < best_start)) {
      best_len = len;
      best_active = active;
      best_start = life.id;
    }
  }

  if (best_len < opt.chain_min_depth) return;
  const Ticks work = ctx.workspan->work;
  if (work <= 0 ||
      static_cast<double>(best_active) <
          opt.chain_work_fraction * static_cast<double>(work)) {
    return;
  }

  const trace::TaskLifetime& start = *by_id.at(best_start);
  const double parallelism = ctx.workspan->logical_parallelism();

  Diagnosis d;
  d.detector = "serialized_spawn_chain";
  d.severity = parallelism < 2.0 ? Severity::kProblem : Severity::kWarning;
  d.score = static_cast<double>(best_len);
  d.at = start.begin;
  d.thread = start.first_thread;
  d.sites.push_back(resolve_site(*ctx.input.registry, start.region));

  std::ostringstream os;
  os << "serialized spawn chain: " << best_len
     << " tasks deep, each spawning a single successor - "
     << percent(static_cast<double>(best_active) / static_cast<double>(work))
     << " of all task work is on this chain";
  d.summary = os.str();
  d.remediation =
      "spawn independent subtasks from one parent (fan-out) instead of "
      "chaining one child per task, or convert the chain into a loop";
  add_metric(&d, "chain_length", static_cast<double>(best_len), "tasks");
  add_metric(&d, "chain_active", static_cast<double>(best_active), "ns");
  add_metric(&d, "work", static_cast<double>(work), "ns");
  add_metric(&d, "logical_parallelism", parallelism, "x");
  out->push_back(std::move(d));
}

// ---------------------------------------------------------------------------
// starved_workers: threads parked at scheduling points for most of the
// region because the task structure never produced enough parallelism.
// ---------------------------------------------------------------------------
void detect_starved_workers(const DetectorContext& ctx,
                            std::vector<Diagnosis>* out) {
  if (ctx.trace_analysis == nullptr || ctx.workspan == nullptr) return;
  if (ctx.threads < 2) return;
  const DiagnoseOptions& opt = ctx.options;
  const trace::TraceAnalysis& analysis = *ctx.trace_analysis;
  if (analysis.tasks.size() < 2) return;

  int starved = 0;
  double worst_fraction = 0.0;
  ThreadId worst_thread = 0;
  Ticks total_waiting = 0;
  Ticks total_span = 0;
  for (std::size_t t = 0; t < analysis.threads.size(); ++t) {
    const trace::ThreadUsage& usage = analysis.threads[t];
    total_waiting += usage.waiting;
    total_span += usage.span;
    const double fraction = usage.waiting_fraction();
    if (fraction >= opt.starved_waiting_fraction) {
      ++starved;
      if (fraction > worst_fraction) {
        worst_fraction = fraction;
        worst_thread = static_cast<ThreadId>(t);
      }
    }
  }
  if (starved == 0) return;

  // Starvation is only a finding when parallelism actually fell short of
  // the team — a busy region with one idle tail thread is load imbalance,
  // not starvation.
  const double parallelism = ctx.workspan->logical_parallelism();
  if (parallelism >=
      opt.starved_parallelism_fraction * static_cast<double>(ctx.threads)) {
    return;
  }

  const bool majority = starved * 2 >= ctx.threads;
  const bool heavy =
      total_span > 0 && static_cast<double>(total_waiting) >=
                            0.25 * static_cast<double>(total_span);

  Diagnosis d;
  d.detector = "starved_workers";
  d.severity =
      majority && heavy ? Severity::kProblem : Severity::kWarning;
  d.score = static_cast<double>(starved) * 100.0 + worst_fraction;
  d.thread = worst_thread;
  d.sites.push_back(dominant_span_site(ctx));

  char parallelism_buf[32];
  std::snprintf(parallelism_buf, sizeof parallelism_buf, "%.2f", parallelism);
  std::ostringstream os;
  os << "starved workers: " << starved << " of " << ctx.threads
     << " threads wait at scheduling points for most of the region (worst "
     << percent(worst_fraction)
     << " of span) - logical parallelism is only " << parallelism_buf << "x";
  d.summary = os.str();
  d.remediation =
      "expose more parallelism (split the dominant tasks, raise the "
      "cut-off) or run with fewer threads";
  add_metric(&d, "starved_workers", static_cast<double>(starved), "threads");
  add_metric(&d, "threads", static_cast<double>(ctx.threads), "threads");
  add_metric(&d, "worst_waiting_fraction", worst_fraction, "ratio");
  add_metric(&d, "logical_parallelism", parallelism, "x");
  out->push_back(std::move(d));
}

// ---------------------------------------------------------------------------
// granularity_collapse: the paper's §VI diagnosis, generalized per
// parameter/depth — creation cost overtakes body work, catastrophically
// so in the recursion tail.
// ---------------------------------------------------------------------------
void detect_granularity_collapse(const DetectorContext& ctx,
                                 std::vector<Diagnosis>* out) {
  if (ctx.input.profile == nullptr) return;
  const DiagnoseOptions& opt = ctx.options;
  for (const TaskConstructStats& c : ctx.constructs) {
    if (c.instances == 0 || c.creations == 0) continue;
    const double body = exec_mean(c);
    const double ratio = body > 0 ? c.create_mean / body : 0.0;
    const bool too_small =
        c.inclusive_mean < static_cast<double>(opt.small_task_threshold);
    const bool create_dominates = c.create_mean >= body && body > 0;
    const bool collapsed = ratio >= opt.collapse_problem_ratio &&
                           body < static_cast<double>(opt.collapse_floor);

    // Per-depth refinement: find where the recursion tail collapses even
    // when the aggregate is merely small (paper Table IV's argument).
    std::int64_t collapse_from = kNoParameter;
    std::uint64_t collapsed_instances = 0;
    if (too_small || collapsed) {
      for (const TaskConstructStats& row : parameter_breakdown(
               *ctx.input.profile, *ctx.input.registry, c.region)) {
        if (row.instances == 0) continue;
        const double row_body = exec_mean(row);
        if (row_body < static_cast<double>(opt.collapse_floor) &&
            c.create_mean >= opt.collapse_problem_ratio * row_body) {
          if (collapse_from == kNoParameter) collapse_from = row.parameter;
          collapsed_instances += row.instances;
        }
      }
    }

    const bool problem = collapsed;
    const bool warning = !problem && too_small && create_dominates;
    if (!problem && !warning) continue;

    Diagnosis d;
    d.detector = "granularity_collapse";
    d.severity = problem ? Severity::kProblem : Severity::kWarning;
    d.score = ratio;
    d.sites.push_back(resolve_site(*ctx.input.registry, c.region));

    char ratio_buf[32];
    std::snprintf(ratio_buf, sizeof ratio_buf, "%.1f", ratio);
    std::ostringstream os;
    os << "granularity collapse: task '" << c.name << "' averages "
       << format_ticks(static_cast<Ticks>(body))
       << " of body work against "
       << format_ticks(static_cast<Ticks>(c.create_mean))
       << " creation cost (" << ratio_buf << "x)";
    if (collapse_from != kNoParameter) {
      os << "; collapsed from parameter " << collapse_from << " on ("
         << format_count(collapsed_instances) << " instances)";
    }
    d.summary = os.str();
    d.remediation =
        "stop spawning below the collapse depth (creation cut-off / "
        "final clause) so the tail runs inline";
    add_metric(&d, "create_mean", c.create_mean, "ns");
    add_metric(&d, "body_mean", body, "ns");
    add_metric(&d, "create_to_body_ratio", ratio, "ratio");
    add_metric(&d, "instances", static_cast<double>(c.instances), "tasks");
    if (collapse_from != kNoParameter) {
      add_metric(&d, "collapse_from_parameter",
                 static_cast<double>(collapse_from), "");
      add_metric(&d, "collapsed_instances",
                 static_cast<double>(collapsed_instances), "tasks");
    }
    out->push_back(std::move(d));
  }
}

// ---------------------------------------------------------------------------
// taskwait_serialization: spawn-wait-spawn-wait lockstep — a taskwait
// after every spawn caps concurrency at one task in flight.
// ---------------------------------------------------------------------------
void detect_taskwait_serialization(const DetectorContext& ctx,
                                   std::vector<Diagnosis>* out) {
  if (ctx.input.trace == nullptr) return;
  if (ctx.threads < 2) return;
  const DiagnoseOptions& opt = ctx.options;
  const trace::Trace& trace = *ctx.input.trace;

  // Merged-stream replay: per-thread "executing a task fragment" state
  // (same transitions as trace::analyze_trace) plus taskwait nesting.
  struct ThreadState {
    TaskInstanceId current = kImplicitTaskId;
    int taskwait_depth = 0;
  };
  std::vector<ThreadState> threads(trace.thread_count());
  std::unordered_map<TaskInstanceId, RegionHandle> instance_region;

  int busy = 0;
  int waiting_threads = 0;
  std::uint64_t taskwaits = 0;
  Ticks serial_time = 0;
  Ticks serial_start = 0;
  Ticks longest_serial = 0;
  Ticks longest_serial_start = 0;
  bool in_serial = false;
  Ticks prev_time = 0;
  std::map<RegionHandle, Ticks> serial_by_region;
  RegionHandle serial_current = kInvalidRegion;

  auto serial_now = [&]() { return waiting_threads > 0 && busy <= 1; };
  auto current_serial_region = [&]() -> RegionHandle {
    if (busy != 1) return kInvalidRegion;
    for (const ThreadState& ts : threads) {
      if (ts.current != kImplicitTaskId) {
        const auto it = instance_region.find(ts.current);
        return it == instance_region.end() ? kInvalidRegion : it->second;
      }
    }
    return kInvalidRegion;
  };

  for (const trace::TraceEvent& event : trace.merged()) {
    // Close the elapsed interval against the previous state.
    if (in_serial) {
      serial_time += event.time - prev_time;
      if (serial_current != kInvalidRegion) {
        serial_by_region[serial_current] += event.time - prev_time;
      }
    }
    prev_time = event.time;

    ThreadState& ts = threads[event.thread];
    switch (event.kind) {
      case trace::EventKind::kCreateEnd:
        instance_region[event.task] = event.region;
        break;
      case trace::EventKind::kTaskBegin:
        if (ts.current == kImplicitTaskId) ++busy;
        ts.current = event.task;
        instance_region.emplace(event.task, event.region);
        break;
      case trace::EventKind::kTaskEnd:
        if (ts.current != kImplicitTaskId) --busy;
        ts.current = kImplicitTaskId;
        break;
      case trace::EventKind::kTaskSwitch:
        if (event.task == kImplicitTaskId) {
          if (ts.current != kImplicitTaskId) --busy;
          ts.current = kImplicitTaskId;
        } else {
          if (ts.current == kImplicitTaskId) ++busy;
          ts.current = event.task;
        }
        break;
      case trace::EventKind::kTaskwaitBegin:
        if (ts.taskwait_depth == 0) ++waiting_threads;
        ++ts.taskwait_depth;
        ++taskwaits;
        break;
      case trace::EventKind::kTaskwaitEnd:
        if (ts.taskwait_depth > 0) {
          --ts.taskwait_depth;
          if (ts.taskwait_depth == 0) --waiting_threads;
        }
        break;
      default:
        break;
    }

    const bool serial = serial_now();
    if (serial && !in_serial) {
      serial_start = event.time;
    } else if (!serial && in_serial) {
      const Ticks len = event.time - serial_start;
      if (len > longest_serial) {
        longest_serial = len;
        longest_serial_start = serial_start;
      }
    }
    in_serial = serial;
    serial_current = serial ? current_serial_region() : kInvalidRegion;
  }

  if (taskwaits < opt.serial_min_taskwaits) return;
  const auto [t_begin, t_end] = trace.time_span();
  const Ticks span = t_end - t_begin;
  if (span <= 0) return;
  const double fraction =
      static_cast<double>(serial_time) / static_cast<double>(span);
  if (fraction < opt.serial_fraction_warn) return;

  Diagnosis d;
  d.detector = "taskwait_serialization";
  d.severity = fraction >= opt.serial_fraction_problem ? Severity::kProblem
                                                       : Severity::kWarning;
  d.score = fraction;
  d.at = longest_serial_start;
  d.thread = 0;

  RegionHandle worst = kInvalidRegion;
  Ticks worst_time = 0;
  for (const auto& [region, time] : serial_by_region) {
    if (time > worst_time) {
      worst = region;
      worst_time = time;
    }
  }
  if (worst != kInvalidRegion) {
    d.sites.push_back(resolve_site(*ctx.input.registry, worst));
  }

  d.summary = "taskwait serialization: " + percent(fraction) +
              " of the region runs with at most one task in flight while "
              "a thread blocks in taskwait (" +
              format_count(taskwaits) + " taskwaits)";
  d.remediation =
      "batch spawns before waiting: move the taskwait out of the "
      "per-task loop so siblings overlap";
  add_metric(&d, "serial_fraction", fraction, "ratio");
  add_metric(&d, "serial_time", static_cast<double>(serial_time), "ns");
  add_metric(&d, "taskwaits", static_cast<double>(taskwaits), "count");
  out->push_back(std::move(d));
}

// ---------------------------------------------------------------------------
// replay_fallback: the taskgraph replay scheduler gave up — surface the
// per-reason divergence counters so fallbacks are tell-apart-able.
// ---------------------------------------------------------------------------
void detect_replay_fallback(const DetectorContext& ctx,
                            std::vector<Diagnosis>* out) {
  if (ctx.input.telemetry == nullptr) return;
  const telemetry::Snapshot& snap = *ctx.input.telemetry;
  using telemetry::Counter;
  const std::uint64_t fallbacks = snap.counter(Counter::kTaskgraphFallbacks);
  const std::uint64_t divergences =
      snap.counter(Counter::kTaskgraphDivergences);
  if (fallbacks == 0 && divergences == 0) return;

  const std::uint64_t structure =
      snap.counter(Counter::kTaskgraphDivergeStructure);
  const std::uint64_t short_spawn =
      snap.counter(Counter::kTaskgraphDivergeShortSpawn);
  const std::uint64_t residue =
      snap.counter(Counter::kTaskgraphDivergeResidue);

  Diagnosis d;
  d.detector = "replay_fallback";
  d.severity = Severity::kInfo;
  d.score = static_cast<double>(fallbacks + divergences);

  std::ostringstream os;
  os << "taskgraph replay fell back to dynamic scheduling ("
     << format_count(divergences) << " divergences, "
     << format_count(fallbacks) << " fallback regions; reasons: "
     << format_count(structure) << " structure mismatch, "
     << format_count(short_spawn) << " short spawn, "
     << format_count(residue) << " unspawned residue)";
  d.summary = os.str();
  d.remediation =
      "the workload's task shape varies between regions; use the dynamic "
      "scheduler, or reset_taskgraph() to re-record after shape changes";
  add_metric(&d, "fallback_regions", static_cast<double>(fallbacks),
             "regions");
  add_metric(&d, "divergences", static_cast<double>(divergences), "count");
  add_metric(&d, "diverge_structure", static_cast<double>(structure),
             "count");
  add_metric(&d, "diverge_short_spawn", static_cast<double>(short_spawn),
             "count");
  add_metric(&d, "diverge_residue", static_cast<double>(residue), "count");
  out->push_back(std::move(d));
}

const std::vector<Detector>& detector_registry() {
  static const std::vector<Detector> kRegistry = {
      {"creation_storm", detect_creation_storm},
      {"serialized_spawn_chain", detect_serialized_spawn_chain},
      {"starved_workers", detect_starved_workers},
      {"granularity_collapse", detect_granularity_collapse},
      {"taskwait_serialization", detect_taskwait_serialization},
      {"replay_fallback", detect_replay_fallback},
  };
  return kRegistry;
}

}  // namespace taskprof::diag
