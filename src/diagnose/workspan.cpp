#include "diagnose/workspan.hpp"

#include <algorithm>
#include <unordered_map>

namespace taskprof::diag {

WorkSpanSummary compute_workspan(const trace::TraceAnalysis& analysis,
                                 const RegionRegistry& registry) {
  WorkSpanSummary out;

  // Creation tree: parent instance -> children it created.  Children are
  // sorted by id so the argmax walk below is deterministic.
  std::unordered_map<TaskInstanceId, std::vector<const trace::TaskLifetime*>>
      children;
  std::unordered_map<TaskInstanceId, const trace::TaskLifetime*> by_id;
  for (const trace::TaskLifetime& life : analysis.tasks) {
    out.work += life.active;
    children[life.parent].push_back(&life);
    by_id.emplace(life.id, &life);
  }
  for (auto& [parent, kids] : children) {
    std::sort(kids.begin(), kids.end(),
              [](const trace::TaskLifetime* a, const trace::TaskLifetime* b) {
                return a->id < b->id;
              });
  }

  // Heaviest chain below each instance, memoized; best_child reconstructs
  // the path without storing it per node.
  struct Chain {
    Ticks time = 0;
    int length = 0;
    TaskInstanceId best_child = kImplicitTaskId;  ///< 0 = leaf
  };
  std::unordered_map<TaskInstanceId, Chain> memo;
  auto chain_of = [&](const trace::TaskLifetime& life,
                      auto&& self) -> Chain {
    if (auto it = memo.find(life.id); it != memo.end()) return it->second;
    Chain best;
    if (auto it = children.find(life.id); it != children.end()) {
      for (const trace::TaskLifetime* child : it->second) {
        const Chain sub = self(*child, self);
        if (sub.time > best.time) {
          best.time = sub.time;
          best.length = sub.length;
          best.best_child = child->id;
        }
      }
    }
    const Chain result{life.active + best.time, 1 + best.length,
                       best.best_child};
    memo.emplace(life.id, result);
    return result;
  };

  // The span starts at some task whose parent is not itself an explicit
  // task on the chain: consider every task created by an implicit task a
  // chain root, plus orphans whose parent never completed.
  const trace::TaskLifetime* span_root = nullptr;
  Chain span_chain;
  for (const trace::TaskLifetime& life : analysis.tasks) {
    const bool is_root =
        life.parent == kImplicitTaskId || by_id.count(life.parent) == 0;
    if (!is_root) continue;
    const Chain chain = chain_of(life, chain_of);
    if (chain.time > span_chain.time ||
        (chain.time == span_chain.time &&
         (span_root == nullptr || life.id < span_root->id))) {
      span_chain = chain;
      span_root = &life;
    }
  }
  if (span_root == nullptr) return out;

  out.span = span_chain.time;
  out.span_length = span_chain.length;

  // Reconstruct the chain and attribute per construct.
  std::unordered_map<RegionHandle, ConstructSpanShare> shares;
  const trace::TaskLifetime* node = span_root;
  while (node != nullptr) {
    out.span_tasks.push_back(node->id);
    ConstructSpanShare& share = shares[node->region];
    share.region = node->region;
    share.on_span += node->active;
    share.instances += 1;
    const Chain& chain = memo.at(node->id);
    node = chain.best_child == kImplicitTaskId
               ? nullptr
               : by_id.at(chain.best_child);
  }
  for (auto& [region, share] : shares) {
    if (region != kInvalidRegion && region < registry.size()) {
      share.name = registry.info(region).name;
    } else {
      share.name = "region " + std::to_string(region);
    }
    out.shares.push_back(share);
  }
  std::sort(out.shares.begin(), out.shares.end(),
            [](const ConstructSpanShare& a, const ConstructSpanShare& b) {
              if (a.on_span != b.on_span) return a.on_span > b.on_span;
              return a.region < b.region;
            });
  return out;
}

}  // namespace taskprof::diag
