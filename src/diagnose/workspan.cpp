#include "diagnose/workspan.hpp"

#include <algorithm>

namespace taskprof::diag {

std::string construct_display_name(RegionHandle region,
                                   const RegionRegistry& registry) {
  if (region != kInvalidRegion && region < registry.size()) {
    return registry.info(region).name;
  }
  return "(unattributed)";
}

CreationForest::CreationForest(const trace::TraceAnalysis& analysis) {
  for (const trace::TaskLifetime& life : analysis.tasks) {
    children_[life.parent].push_back(&life);
    by_id_.emplace(life.id, &life);
  }
  // Children sorted by id so argmax walks are deterministic.
  for (auto& [parent, kids] : children_) {
    std::sort(kids.begin(), kids.end(),
              [](const trace::TaskLifetime* a, const trace::TaskLifetime* b) {
                return a->id < b->id;
              });
  }
  // A chain root is a task whose parent is not itself a completed
  // explicit task: created by an implicit task, or orphaned.
  for (const trace::TaskLifetime& life : analysis.tasks) {
    if (life.parent == kImplicitTaskId || by_id_.count(life.parent) == 0) {
      roots_.push_back(&life);
    }
  }
  std::sort(roots_.begin(), roots_.end(),
            [](const trace::TaskLifetime* a, const trace::TaskLifetime* b) {
              return a->id < b->id;
            });
}

const trace::TaskLifetime* CreationForest::find(TaskInstanceId id) const {
  const auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

CreationForest::Chain CreationForest::heaviest_chain(
    const std::function<Ticks(const trace::TaskLifetime&)>& duration) const {
  struct Sub {
    Ticks time = 0;
    int length = 0;
    TaskInstanceId best_child = kImplicitTaskId;  ///< 0 = leaf
  };
  std::unordered_map<TaskInstanceId, Sub> memo;
  memo.reserve(by_id_.size());

  // A subchain is better on strictly more time; on equal time the longer
  // chain wins (so zero-duration subtrees are not silently dropped — the
  // chain always extends to a leaf); remaining ties keep the
  // first-visited child, which is the smallest id by construction.
  const auto better = [](const Sub& a, const Sub& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.length > b.length;
  };

  auto chain_of = [&](const trace::TaskLifetime& life, auto&& self) -> Sub {
    if (auto it = memo.find(life.id); it != memo.end()) return it->second;
    Sub best;
    if (auto it = children_.find(life.id); it != children_.end()) {
      for (const trace::TaskLifetime* child : it->second) {
        Sub sub = self(*child, self);
        sub.best_child = child->id;
        if (better(sub, best)) best = sub;
      }
    }
    const Sub result{duration(life) + best.time, 1 + best.length,
                     best.best_child};
    memo.emplace(life.id, result);
    return result;
  };

  Chain out;
  const trace::TaskLifetime* span_root = nullptr;
  Sub span_sub;
  for (const trace::TaskLifetime* root : roots_) {
    const Sub sub = chain_of(*root, chain_of);
    // Roots are visited in id order, so strict `better` keeps the
    // smallest root id on ties.
    if (span_root == nullptr || better(sub, span_sub)) {
      span_sub = sub;
      span_root = root;
    }
  }
  if (span_root == nullptr) return out;

  out.time = span_sub.time;
  out.length = span_sub.length;
  out.tasks.reserve(static_cast<std::size_t>(span_sub.length));
  const trace::TaskLifetime* node = span_root;
  while (node != nullptr) {
    out.tasks.push_back(node->id);
    const Sub& sub = memo.at(node->id);
    node = sub.best_child == kImplicitTaskId ? nullptr
                                             : by_id_.at(sub.best_child);
  }
  return out;
}

WorkSpanSummary compute_workspan(const trace::TraceAnalysis& analysis,
                                 const RegionRegistry& registry) {
  return compute_workspan(analysis, CreationForest(analysis), registry);
}

WorkSpanSummary compute_workspan(const trace::TraceAnalysis& analysis,
                                 const CreationForest& forest,
                                 const RegionRegistry& registry) {
  WorkSpanSummary out;
  for (const trace::TaskLifetime& life : analysis.tasks) {
    out.work += life.active;
  }

  const CreationForest::Chain chain = forest.heaviest_chain(
      [](const trace::TaskLifetime& life) { return life.active; });
  if (chain.tasks.empty()) return out;

  out.span = chain.time;
  out.span_length = chain.length;
  out.span_tasks = chain.tasks;

  // Attribute chain time per construct.
  std::unordered_map<RegionHandle, ConstructSpanShare> shares;
  for (const TaskInstanceId id : chain.tasks) {
    const trace::TaskLifetime* node = forest.find(id);
    ConstructSpanShare& share = shares[node->region];
    share.region = node->region;
    share.on_span += node->active;
    share.instances += 1;
  }
  for (auto& [region, share] : shares) {
    share.name = construct_display_name(region, registry);
    out.shares.push_back(share);
  }
  std::sort(out.shares.begin(), out.shares.end(),
            [](const ConstructSpanShare& a, const ConstructSpanShare& b) {
              if (a.on_span != b.on_span) return a.on_span > b.on_span;
              return a.region < b.region;
            });
  return out;
}

}  // namespace taskprof::diag
