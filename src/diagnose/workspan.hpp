// Per-task work/span accounting over reconstructed task lifetimes
// (TASKPROF-style).
//
//   work = sum of executed-fragment time over all completed tasks
//   span = the heaviest root-to-leaf chain through the creation tree
//          (each hop parent -> child it created), by active time
//
// Logical parallelism = work / span bounds the speedup any scheduler can
// extract from the task structure; the per-construct span shares say
// *which* task construct owns the critical path — the what-to-optimize
// answer the plain profile cannot give.
//
// The chain machinery is factored into CreationForest so the what-if
// projector (src/whatif) can re-query the heaviest chain under
// hypothetical per-task durations without rebuilding the tree.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "profile/region.hpp"
#include "trace/analysis.hpp"

namespace taskprof::diag {

/// Stable display name for a construct: the registry name when the
/// handle resolves, "(unattributed)" for kInvalidRegion / out-of-range
/// handles (tasks recorded without a region — degenerate traces, manual
/// event streams).
[[nodiscard]] std::string construct_display_name(RegionHandle region,
                                                 const RegionRegistry& registry);

/// The creation tree over a trace analysis's completed tasks, with
/// memo-free repeatable heaviest-chain queries under caller-supplied
/// duration models.  Holds pointers into the TraceAnalysis, which must
/// outlive the forest.
class CreationForest {
 public:
  CreationForest() = default;  ///< empty forest (no tasks)
  explicit CreationForest(const trace::TraceAnalysis& analysis);

  struct Chain {
    Ticks time = 0;
    int length = 0;  ///< tasks on the chain
    /// Chain instance ids, outermost first (empty when no tasks).
    std::vector<TaskInstanceId> tasks;
  };

  /// Heaviest root-to-leaf chain where task t contributes duration(t).
  /// Zero-duration tasks still ride the chain (a chain always extends to
  /// a leaf).  Deterministic: ties on time prefer the longer chain, then
  /// the smaller instance id.
  [[nodiscard]] Chain heaviest_chain(
      const std::function<Ticks(const trace::TaskLifetime&)>& duration) const;

  [[nodiscard]] const trace::TaskLifetime* find(TaskInstanceId id) const;
  [[nodiscard]] bool empty() const noexcept { return roots_.empty(); }

 private:
  std::unordered_map<TaskInstanceId, std::vector<const trace::TaskLifetime*>>
      children_;
  std::unordered_map<TaskInstanceId, const trace::TaskLifetime*> by_id_;
  /// Tasks created by implicit tasks, plus orphans whose parent never
  /// completed; sorted by id.
  std::vector<const trace::TaskLifetime*> roots_;
};

/// One construct's share of the critical path.
struct ConstructSpanShare {
  RegionHandle region = kInvalidRegion;
  std::string name;
  Ticks on_span = 0;       ///< active time this construct contributes
  int instances = 0;       ///< chain members from this construct
};

struct WorkSpanSummary {
  Ticks work = 0;
  Ticks span = 0;
  int span_length = 0;  ///< tasks on the critical chain
  /// Chain instance ids, outermost first (empty when no tasks completed).
  std::vector<TaskInstanceId> span_tasks;
  /// Per-construct critical-path attribution, largest share first.
  std::vector<ConstructSpanShare> shares;

  [[nodiscard]] double logical_parallelism() const noexcept {
    return span == 0 ? 0.0
                     : static_cast<double>(work) / static_cast<double>(span);
  }
};

/// Compute work/span from a finished trace analysis.  Deterministic: ties
/// on chain weight break toward longer chains, then smaller instance ids.
[[nodiscard]] WorkSpanSummary compute_workspan(
    const trace::TraceAnalysis& analysis, const RegionRegistry& registry);

/// Same, reusing an already-built forest over the same analysis.
[[nodiscard]] WorkSpanSummary compute_workspan(
    const trace::TraceAnalysis& analysis, const CreationForest& forest,
    const RegionRegistry& registry);

}  // namespace taskprof::diag
