// Per-task work/span accounting over reconstructed task lifetimes
// (TASKPROF-style).
//
//   work = sum of executed-fragment time over all completed tasks
//   span = the heaviest root-to-leaf chain through the creation tree
//          (each hop parent -> child it created), by active time
//
// Logical parallelism = work / span bounds the speedup any scheduler can
// extract from the task structure; the per-construct span shares say
// *which* task construct owns the critical path — the what-to-optimize
// answer the plain profile cannot give.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "profile/region.hpp"
#include "trace/analysis.hpp"

namespace taskprof::diag {

/// One construct's share of the critical path.
struct ConstructSpanShare {
  RegionHandle region = kInvalidRegion;
  std::string name;
  Ticks on_span = 0;       ///< active time this construct contributes
  int instances = 0;       ///< chain members from this construct
};

struct WorkSpanSummary {
  Ticks work = 0;
  Ticks span = 0;
  int span_length = 0;  ///< tasks on the critical chain
  /// Chain instance ids, outermost first (empty when no tasks completed).
  std::vector<TaskInstanceId> span_tasks;
  /// Per-construct critical-path attribution, largest share first.
  std::vector<ConstructSpanShare> shares;

  [[nodiscard]] double logical_parallelism() const noexcept {
    return span == 0 ? 0.0
                     : static_cast<double>(work) / static_cast<double>(span);
  }
};

/// Compute work/span from a finished trace analysis.  Deterministic: ties
/// on chain weight break toward the smaller instance id.
[[nodiscard]] WorkSpanSummary compute_workspan(
    const trace::TraceAnalysis& analysis, const RegionRegistry& registry);

}  // namespace taskprof::diag
