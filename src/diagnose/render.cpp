#include "diagnose/render.hpp"

#include <cstdio>
#include <ostream>

#include "common/format.hpp"

namespace taskprof::diag {

namespace {

constexpr int kSchemaVersion = 1;

void append_json_string(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void append_double(std::string* out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  *out += buf;
}

}  // namespace

void render_diagnosis_text(const DiagnosisReport& report, std::ostream& os) {
  os << "Diagnosis: " << report.findings.size() << " finding"
     << (report.findings.size() == 1 ? "" : "s") << ", worst severity "
     << severity_name(report.max_severity()) << "\n";

  if (report.has_workspan) {
    const WorkSpanSummary& ws = report.workspan;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", ws.logical_parallelism());
    os << "  work " << format_ticks(ws.work) << ", span "
       << format_ticks(ws.span) << " (" << ws.span_length
       << " tasks) -> logical parallelism " << buf << "x\n";
    for (const ConstructSpanShare& share : ws.shares) {
      char pct[32];
      std::snprintf(pct, sizeof pct, "%.1f%%",
                    ws.span > 0 ? 100.0 * static_cast<double>(share.on_span) /
                                      static_cast<double>(ws.span)
                                : 0.0);
      os << "    span share: " << share.name << " " << pct << " ("
         << share.instances << " on chain)\n";
    }
  }

  for (const Diagnosis& d : report.findings) {
    os << "  [" << severity_name(d.severity) << "] " << d.detector << ": "
       << d.summary << "\n";
    for (const CallSite& site : d.sites) {
      os << "      at " << site.label() << "\n";
    }
    if (!d.remediation.empty()) {
      os << "      fix: " << d.remediation << "\n";
    }
    if (!d.metrics.empty()) {
      os << "     ";
      for (std::size_t i = 0; i < d.metrics.size(); ++i) {
        const Metric& m = d.metrics[i];
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.6g", m.value);
        os << (i == 0 ? " " : ", ") << m.name << "=" << buf;
        if (!m.unit.empty()) os << " " << m.unit;
      }
      os << "\n";
    }
  }
  if (report.findings.empty()) {
    os << "  no findings\n";
  }
}

std::string render_diagnosis_json(const DiagnosisReport& report) {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"schema_version\": ";
  out += std::to_string(kSchemaVersion);
  out += ",\n  \"max_severity\": ";
  append_json_string(&out, severity_name(report.max_severity()));

  if (report.has_workspan) {
    const WorkSpanSummary& ws = report.workspan;
    out += ",\n  \"workspan\": {\n    \"work_ns\": ";
    out += std::to_string(ws.work);
    out += ",\n    \"span_ns\": ";
    out += std::to_string(ws.span);
    out += ",\n    \"span_length\": ";
    out += std::to_string(ws.span_length);
    out += ",\n    \"logical_parallelism\": ";
    append_double(&out, ws.logical_parallelism());
    out += ",\n    \"span_shares\": [";
    for (std::size_t i = 0; i < ws.shares.size(); ++i) {
      const ConstructSpanShare& share = ws.shares[i];
      out += i == 0 ? "\n" : ",\n";
      out += "      {\"construct\": ";
      append_json_string(&out, share.name);
      out += ", \"on_span_ns\": ";
      out += std::to_string(share.on_span);
      out += ", \"instances\": ";
      out += std::to_string(share.instances);
      out += "}";
    }
    out += ws.shares.empty() ? "]\n  }" : "\n    ]\n  }";
  }

  out += ",\n  \"findings\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Diagnosis& d = report.findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\n      \"detector\": ";
    append_json_string(&out, d.detector);
    out += ",\n      \"severity\": ";
    append_json_string(&out, severity_name(d.severity));
    out += ",\n      \"score\": ";
    append_double(&out, d.score);
    out += ",\n      \"summary\": ";
    append_json_string(&out, d.summary);
    out += ",\n      \"remediation\": ";
    append_json_string(&out, d.remediation);
    out += ",\n      \"sites\": [";
    for (std::size_t j = 0; j < d.sites.size(); ++j) {
      const CallSite& site = d.sites[j];
      out += j == 0 ? "" : ", ";
      out += "{\"name\": ";
      append_json_string(&out, site.name);
      out += ", \"file\": ";
      append_json_string(&out, site.file);
      out += ", \"line\": ";
      out += std::to_string(site.line);
      out += "}";
    }
    out += "],\n      \"metrics\": [";
    for (std::size_t j = 0; j < d.metrics.size(); ++j) {
      const Metric& m = d.metrics[j];
      out += j == 0 ? "" : ", ";
      out += "{\"name\": ";
      append_json_string(&out, m.name);
      out += ", \"value\": ";
      append_double(&out, m.value);
      out += ", \"unit\": ";
      append_json_string(&out, m.unit);
      out += "}";
    }
    out += "],\n      \"at_ns\": ";
    out += std::to_string(d.at);
    out += ",\n      \"thread\": ";
    out += std::to_string(d.thread);
    out += "\n    }";
  }
  out += report.findings.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::vector<trace::TraceAnnotation> diagnosis_annotations(
    const DiagnosisReport& report) {
  std::vector<trace::TraceAnnotation> out;
  out.reserve(report.findings.size());
  for (const Diagnosis& d : report.findings) {
    trace::TraceAnnotation note;
    note.name = "diagnosis: " + d.detector;
    note.time = d.at;
    note.thread = d.thread;
    note.args.emplace_back("severity", severity_name(d.severity));
    note.args.emplace_back("detector", d.detector);
    note.args.emplace_back("summary", d.summary);
    if (!d.sites.empty()) {
      note.args.emplace_back("call_path", d.sites.front().label());
    }
    out.push_back(std::move(note));
  }
  return out;
}

}  // namespace taskprof::diag
