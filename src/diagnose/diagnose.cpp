#include "diagnose/diagnose.hpp"

#include <algorithm>

#include "diagnose/detectors.hpp"
#include "trace/analysis.hpp"

namespace taskprof::diag {

Severity DiagnosisReport::max_severity() const noexcept {
  Severity max = Severity::kInfo;
  for (const Diagnosis& d : findings) {
    if (d.severity > max) max = d.severity;
  }
  return max;
}

std::size_t DiagnosisReport::count_at_least(Severity floor) const noexcept {
  std::size_t n = 0;
  for (const Diagnosis& d : findings) {
    if (d.severity >= floor) ++n;
  }
  return n;
}

bool parse_severity(const std::string& text, Severity* out) {
  if (text == "info") {
    *out = Severity::kInfo;
  } else if (text == "warning") {
    *out = Severity::kWarning;
  } else if (text == "problem") {
    *out = Severity::kProblem;
  } else {
    return false;
  }
  return true;
}

DiagnosisReport run_diagnosis(const DiagnosisInput& input,
                              const DiagnoseOptions& options) {
  DiagnosisReport report;
  if (input.registry == nullptr) return report;

  // A profile unlocks the construct-level detectors; a trace alone still
  // feeds the time-domain ones.
  std::vector<TaskConstructStats> constructs;
  SchedulingPointSummary scheduling;
  if (input.profile != nullptr) {
    constructs = task_construct_stats(*input.profile, *input.registry);
    scheduling = scheduling_point_summary(*input.profile, *input.registry);
  }

  trace::TraceAnalysis trace_analysis;
  const bool have_trace =
      input.trace != nullptr && !input.trace->merged().empty();
  if (have_trace) {
    trace_analysis = trace::analyze_trace(*input.trace);
    report.workspan = compute_workspan(trace_analysis, *input.registry);
    report.has_workspan = true;
  }

  DetectorContext ctx{input,
                      options,
                      constructs,
                      scheduling,
                      static_cast<int>(
                          have_trace ? input.trace->thread_count()
                                     : (input.profile != nullptr
                                            ? input.profile->thread_count
                                            : 0)),
                      have_trace ? &trace_analysis : nullptr,
                      report.has_workspan ? &report.workspan : nullptr};

  for (const Detector& detector : detector_registry()) {
    detector.run(ctx, &report.findings);
  }

  // Rank: severity first, then detector-relative score; detector id as the
  // final tie-break keeps the ordering (and the golden JSON) stable.
  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const Diagnosis& a, const Diagnosis& b) {
                     if (a.severity != b.severity) return a.severity > b.severity;
                     if (a.score != b.score) return a.score > b.score;
                     return a.detector < b.detector;
                   });
  return report;
}

}  // namespace taskprof::diag
