// Detrimental-pattern diagnosis engine: from "shows numbers" to "names
// your tasking bug".
//
// The paper's §VI workflow reads granularity problems off the call-path
// profile by hand; Tuft et al. (arXiv 2406.03077) catalog the runtime
// anti-patterns that actually hurt OpenMP tasking, and TASKPROF (Yoga &
// Nagarakatte) shows per-task work/span accounting yields logical
// parallelism and critical-path attribution.  This subsystem combines
// both: it consumes a finalized profile plus (optionally) a recorded
// trace and a telemetry snapshot, computes work/span over reconstructed
// task lifetimes, and runs a registry of detectors — creation storm,
// serialized spawn chain, starved workers, granularity collapse, taskwait
// serialization, replay fallback — each emitting a ranked Diagnosis with
// the offending call path(s), the supporting numbers, and a remediation
// hint.  Renderers (render.hpp) turn the report into text, stable JSON,
// and Chrome-trace instant events.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "diagnose/workspan.hpp"
#include "measure/aggregate.hpp"
#include "profile/region.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/trace.hpp"

namespace taskprof::diag {

enum class Severity : std::uint8_t { kInfo, kWarning, kProblem };

[[nodiscard]] const char* severity_name(Severity severity) noexcept;

/// A call path named by a diagnosis, resolved to its source site at
/// detection time so reports need no registry to render.
struct CallSite {
  RegionHandle region = kInvalidRegion;
  std::string name;
  std::string file;  ///< empty when the region carries no source info
  int line = 0;

  /// "name (file:line)" or just "name".
  [[nodiscard]] std::string label() const;
};

/// One supporting number, named for the report ("peak_backlog", ...).
struct Metric {
  std::string name;
  double value = 0.0;
  std::string unit;  ///< "", "ns", "tasks", "ratio", ...
};

/// One detector verdict.
struct Diagnosis {
  std::string detector;  ///< stable id, e.g. "creation_storm"
  Severity severity = Severity::kInfo;
  /// Detector-relative ranking key (bigger = worse); ties the ordering
  /// of findings with equal severity.
  double score = 0.0;
  std::string summary;      ///< one-line statement of the problem
  std::string remediation;  ///< one-line suggested fix
  std::vector<CallSite> sites;
  std::vector<Metric> metrics;
  Ticks at = 0;          ///< trace-time anchor for timeline markers (0 = none)
  ThreadId thread = 0;   ///< timeline track for the marker
};

/// Detector thresholds.  Defaults are tuned so the seeded anti-pattern
/// corpora fire and clean BOTS runs at sane thread counts stay below
/// kProblem (DESIGN.md §13 documents the calibration).
struct DiagnoseOptions {
  // creation_storm: tasks created far faster than they start executing.
  std::uint64_t storm_min_creations = 256;  ///< ignore tiny runs
  /// Peak creation backlog (created - begun) that fires the detector, as
  /// a per-thread multiple; the absolute floor below also applies.
  std::uint64_t storm_backlog_per_thread = 32;
  std::uint64_t storm_backlog_floor = 192;

  // serialized_spawn_chain: deep single-child spawn paths.
  int chain_min_depth = 8;
  /// Chain active time must cover at least this fraction of total work
  /// (otherwise the chain is a sideshow, not the bottleneck).
  double chain_work_fraction = 0.5;

  // starved_workers: threads parked at scheduling points for most of the
  // region while the task graph offers nothing to steal.
  double starved_waiting_fraction = 0.5;  ///< of the thread's span
  /// Starvation is only a diagnosis when parallelism actually fell
  /// short: logical parallelism below threads * this fraction.
  double starved_parallelism_fraction = 0.5;

  // granularity_collapse: §VI generalized per parameter/depth.
  Ticks small_task_threshold = 10 * kTicksPerUs;  ///< paper's "too small"
  /// Problem requires BOTH: creation dominating execution by this ratio
  /// and mean body time under the floor.  Calibration: fib at test size
  /// has 470 ns bodies, so the 400 ns floor keeps it at a warning at any
  /// thread count (creation cost — and hence the ratio — grows with the
  /// team), while a degenerate tree of ~360 ns bodies at 7.7x is a
  /// problem.
  double collapse_problem_ratio = 6.5;
  Ticks collapse_floor = 400;  ///< ns of mean exclusive body time

  // taskwait_serialization: spawn-wait-spawn-wait lockstep.
  std::uint64_t serial_min_taskwaits = 8;
  /// Fraction of trace span with <=1 task executing while a thread sits
  /// in taskwait.
  double serial_fraction_warn = 0.40;
  double serial_fraction_problem = 0.60;
};

/// Everything a diagnosis run may consume.  `profile` and `registry` are
/// required; `trace` unlocks the time-domain detectors and work/span;
/// `telemetry` unlocks the replay-fallback detector.
struct DiagnosisInput {
  const AggregateProfile* profile = nullptr;
  const RegionRegistry* registry = nullptr;
  const trace::Trace* trace = nullptr;
  const telemetry::Snapshot* telemetry = nullptr;
};

struct DiagnosisReport {
  /// Ranked: severity descending, then score descending.
  std::vector<Diagnosis> findings;
  /// Work/span accounting; meaningful only when has_workspan.
  WorkSpanSummary workspan;
  bool has_workspan = false;

  [[nodiscard]] Severity max_severity() const noexcept;
  [[nodiscard]] std::size_t count_at_least(Severity floor) const noexcept;
};

/// Run every registered detector over `input`.
[[nodiscard]] DiagnosisReport run_diagnosis(const DiagnosisInput& input,
                                            const DiagnoseOptions& options = {});

/// Parse "info" / "warning" / "problem" (CLI --fail-on).  Returns false
/// on unknown names.
[[nodiscard]] bool parse_severity(const std::string& text, Severity* out);

}  // namespace taskprof::diag
