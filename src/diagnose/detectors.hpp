// The detector registry.  Each detector inspects the shared
// DetectorContext and appends zero or more Diagnosis entries; diagnose.cpp
// runs them in registry order and ranks the union.  Detectors must be
// deterministic (stable iteration, explicit tie-breaks) — the golden
// corpus tests compare their JSON byte-for-byte.
#pragma once

#include <vector>

#include "diagnose/diagnose.hpp"
#include "report/analysis.hpp"
#include "trace/analysis.hpp"

namespace taskprof::diag {

/// Precomputed views every detector shares.
struct DetectorContext {
  const DiagnosisInput& input;
  const DiagnoseOptions& options;
  /// From report/analysis over the profile (always present).
  const std::vector<TaskConstructStats>& constructs;
  const SchedulingPointSummary& scheduling;
  int threads = 0;
  /// Only with a trace (nullptr otherwise).
  const trace::TraceAnalysis* trace_analysis = nullptr;
  const WorkSpanSummary* workspan = nullptr;
};

using DetectorFn = void (*)(const DetectorContext&, std::vector<Diagnosis>*);

struct Detector {
  const char* id;
  DetectorFn run;
};

/// All registered detectors, in a stable order.
[[nodiscard]] const std::vector<Detector>& detector_registry();

// Individual detectors (exposed for focused tests).
void detect_creation_storm(const DetectorContext& ctx,
                           std::vector<Diagnosis>* out);
void detect_serialized_spawn_chain(const DetectorContext& ctx,
                                   std::vector<Diagnosis>* out);
void detect_starved_workers(const DetectorContext& ctx,
                            std::vector<Diagnosis>* out);
void detect_granularity_collapse(const DetectorContext& ctx,
                                 std::vector<Diagnosis>* out);
void detect_taskwait_serialization(const DetectorContext& ctx,
                                   std::vector<Diagnosis>* out);
void detect_replay_fallback(const DetectorContext& ctx,
                            std::vector<Diagnosis>* out);

/// Resolve a region to a CallSite via the registry (name + source site).
[[nodiscard]] CallSite resolve_site(const RegionRegistry& registry,
                                    RegionHandle region);

}  // namespace taskprof::diag
