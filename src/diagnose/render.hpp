// Renderers for a DiagnosisReport: human text, stable machine-readable
// JSON (schema_version 1; golden-tested byte-for-byte), and Chrome-trace
// instant-event annotations for the timeline.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "diagnose/diagnose.hpp"
#include "trace/chrome_export.hpp"

namespace taskprof::diag {

/// Human-readable report, one block per finding, ranked worst first.
void render_diagnosis_text(const DiagnosisReport& report, std::ostream& os);

/// Stable JSON.  Key order is fixed and doubles use %.6g so identical
/// reports serialize to identical bytes.
[[nodiscard]] std::string render_diagnosis_json(const DiagnosisReport& report);

/// Diagnosis findings as timeline annotations (Chrome trace instant
/// events); feed to ChromeExportOptions::annotations.  Findings with no
/// trace-time anchor are pinned to t=0.
[[nodiscard]] std::vector<trace::TraceAnnotation> diagnosis_annotations(
    const DiagnosisReport& report);

}  // namespace taskprof::diag
