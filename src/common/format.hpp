// Human-readable formatting of ticks and aligned text tables.
//
// The report writer and every bench binary print call trees and
// paper-style tables; they share these helpers so all output formats
// numbers identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace taskprof {

/// Format ticks with an auto-selected unit: "1.49 us", "25.8 ms", "113 s".
/// Three significant digits, like the numbers quoted in the paper.
[[nodiscard]] std::string format_ticks(Ticks t);

/// Format ticks as seconds with fixed decimals, e.g. "12.345".
[[nodiscard]] std::string format_seconds(Ticks t, int decimals = 3);

/// Format a ratio as a signed percentage, e.g. "+6.2 %", "-1.0 %".
[[nodiscard]] std::string format_percent(double ratio, int decimals = 1);

/// Format a count with thousands separators, e.g. "3,690,000,000".
[[nodiscard]] std::string format_count(std::uint64_t n);

/// Minimal aligned-column table used by benches and the report writer.
///
/// Usage:
///   TextTable t({"code", "mean time", "number of tasks"});
///   t.add_row({"fib", "1.49 us", "3,690,000,000"});
///   std::cout << t.str();
class TextTable {
 public:
  /// Construct with the header row.  Column count is fixed from here on.
  explicit TextTable(std::vector<std::string> header);

  /// Append a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Render with columns padded to their widest cell.  The first column is
  /// left-aligned, all others right-aligned (numeric convention).
  [[nodiscard]] std::string str() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace taskprof
