// Internal invariant checking.
//
// TASKPROF_ASSERT guards invariants of taskprof's own data structures; a
// failure is a bug in taskprof, so it aborts with a diagnostic rather than
// throwing (the measurement layer runs inside scheduler callbacks where
// stack unwinding past foreign frames would be unsafe).  Violations of the
// *public* API contract are reported with exceptions at the API boundary
// instead (see e.g. rt/runtime.hpp).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace taskprof::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) noexcept {
  std::fprintf(stderr, "taskprof: assertion `%s` failed at %s:%d: %s\n", expr,
               file, line, msg);
  std::abort();
}

}  // namespace taskprof::detail

#define TASKPROF_ASSERT(expr, msg)                                     \
  do {                                                                 \
    if (!(expr)) [[unlikely]] {                                        \
      ::taskprof::detail::assert_fail(#expr, __FILE__, __LINE__, msg); \
    }                                                                  \
  } while (false)
