#include "common/format.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/assert.hpp"

namespace taskprof {

namespace {

std::string format_double(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace

std::string format_ticks(Ticks t) {
  const bool negative = t < 0;
  const double abs_ns = std::abs(static_cast<double>(t));
  const char* unit = "ns";
  double value = abs_ns;
  if (abs_ns >= 1e9) {
    unit = "s";
    value = abs_ns / 1e9;
  } else if (abs_ns >= 1e6) {
    unit = "ms";
    value = abs_ns / 1e6;
  } else if (abs_ns >= 1e3) {
    unit = "us";
    value = abs_ns / 1e3;
  }
  // Three significant digits: decimals depend on magnitude.  Nanosecond
  // values are integral ticks, so they never show decimals.
  int decimals = 2;
  if (value >= 100.0 || abs_ns < 1e3) {
    decimals = 0;
  } else if (value >= 10.0) {
    decimals = 1;
  }
  std::string s = format_double(value, decimals);
  return (negative ? "-" : "") + s + " " + unit;
}

std::string format_seconds(Ticks t, int decimals) {
  return format_double(static_cast<double>(t) / 1e9, decimals);
}

std::string format_percent(double ratio, int decimals) {
  const double pct = ratio * 100.0;
  std::string s = format_double(pct, decimals);
  if (pct >= 0.0 && s[0] != '-') s.insert(s.begin(), '+');
  return s + " %";
}

std::string format_count(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first_group = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first_group) % 3 == 0 && i >= first_group) {
      out.push_back(',');
    }
    out.push_back(digits[i]);
  }
  return out;
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  TASKPROF_ASSERT(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  TASKPROF_ASSERT(row.size() == header_.size(),
                  "row width must match header width");
  rows_.push_back(std::move(row));
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << "  ";
      const auto pad = widths[c] - row[c].size();
      if (c == 0) {
        os << row[c] << std::string(pad, ' ');
      } else {
        os << std::string(pad, ' ') << row[c];
      }
    }
    os << '\n';
  };

  emit_row(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace taskprof
