// Fundamental value types shared by every taskprof subsystem.
//
// All time in taskprof is integer ticks; one tick is one nanosecond.  The
// real-thread engine measures ticks with std::chrono::steady_clock, the
// discrete-event simulator advances a virtual tick counter.  Using the same
// integer domain for both lets the measurement layer (src/measure) run
// unchanged on either engine.
#pragma once

#include <cstdint>
#include <limits>

namespace taskprof {

/// Time in nanoseconds (wall-clock or virtual, depending on the engine).
using Ticks = std::int64_t;

/// Identifies a thread (real worker thread or simulated virtual worker)
/// inside one parallel region.  Thread 0 is the master.
using ThreadId = std::uint32_t;

/// Identifies one task *instance* (one execution of a task construct).
/// Unique within a parallel region; never reused while the instance is
/// active.  Instance 0 is reserved for the implicit task.
using TaskInstanceId = std::uint64_t;

/// Opaque handle to a registered source-code region (function, task
/// construct, barrier, ...).  Handles index into the RegionRegistry.
using RegionHandle = std::uint32_t;

/// Sentinel: "no region".
inline constexpr RegionHandle kInvalidRegion =
    std::numeric_limits<RegionHandle>::max();

/// Sentinel: "no task instance".
inline constexpr TaskInstanceId kImplicitTaskId = 0;

/// Sentinel parameter value for call-tree nodes that carry no parameter
/// (see RegionType::kParameter for parameter-based profiling).
inline constexpr std::int64_t kNoParameter =
    std::numeric_limits<std::int64_t>::min();

/// Ticks per microsecond / millisecond / second, for readability.
inline constexpr Ticks kTicksPerUs = 1'000;
inline constexpr Ticks kTicksPerMs = 1'000'000;
inline constexpr Ticks kTicksPerSec = 1'000'000'000;

}  // namespace taskprof
