// Shared hardware-concurrency probe.
//
// std::thread::hardware_concurrency() is explicitly allowed to return 0
// when the value is "not well defined or not computable" — and does so on
// some containers and exotic kernels.  Every place that seeds a default
// from it (worker counts, active-list caps, bench grids) must clamp the
// answer, and they must all clamp it the same way; this helper is that
// single clamp.
#pragma once

#include <thread>

namespace taskprof {

/// std::thread::hardware_concurrency(), clamped to >= 1 so it is always
/// usable as a worker count or a divisor.
[[nodiscard]] inline unsigned hardware_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1U : hw;
}

}  // namespace taskprof
