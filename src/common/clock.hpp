// Clock abstraction decoupling the measurement layer from the time source.
//
// The paper's profiler takes timestamps at every enter/exit/task event.  In
// this reproduction the same measurement code runs against two engines:
//
//  * the real-thread engine, where time is std::chrono::steady_clock, and
//  * the discrete-event simulator, where each virtual worker owns a virtual
//    tick counter.
//
// Clock is deliberately a tiny interface: one call, no state visible to the
// caller.  ManualClock exists for deterministic unit tests that replay the
// event streams of the paper's figures with hand-picked timestamps.
#pragma once

#include <chrono>

#include "common/types.hpp"

namespace taskprof {

/// Source of timestamps for the measurement layer.
///
/// Implementations must be monotonic: successive now() calls on the same
/// thread never decrease.  Thread safety is implementation-defined; the
/// engines hand each worker its own Clock (or a thread-safe one).
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in ticks (nanoseconds).
  [[nodiscard]] virtual Ticks now() const noexcept = 0;
};

/// Wall-clock time via std::chrono::steady_clock.  Thread-safe.
class SteadyClock final : public Clock {
 public:
  [[nodiscard]] Ticks now() const noexcept override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

/// Hand-driven clock for tests.  Not thread-safe.
class ManualClock final : public Clock {
 public:
  ManualClock() = default;
  explicit ManualClock(Ticks start) : now_(start) {}

  [[nodiscard]] Ticks now() const noexcept override { return now_; }

  /// Move time forward by `delta` ticks (delta >= 0).
  void advance(Ticks delta) noexcept { now_ += delta; }

  /// Jump to an absolute time (must not move backwards in normal use).
  void set(Ticks t) noexcept { now_ = t; }

 private:
  Ticks now_ = 0;
};

}  // namespace taskprof
