// Deterministic pseudo-random number generation.
//
// Benchmark workload generators (sort input, health simulation, alignment
// sequences) must be reproducible across runs and engines, so they seed
// their own generator instead of touching global state.  SplitMix64 expands
// a user seed into the state of xoshiro256**, the main generator.
#pragma once

#include <array>
#include <cstdint>

namespace taskprof {

/// SplitMix64: tiny generator used to seed xoshiro256** (recommended by the
/// xoshiro authors; avoids the all-zero-state trap).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator (Blackman & Vigna).
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift reduction
  /// (bound > 0; slight modulo bias is acceptable for workload generation).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace taskprof
