#include "snapshot/snapshot.hpp"

#include <unistd.h>

#include <cstdio>
#include <utility>

#include "common/assert.hpp"
#include "profile/calltree.hpp"

namespace taskprof::snapshot {

namespace {

// Sanity limits: generous for real profiles, tight enough that a
// malformed count cannot drive allocation before its payload runs out.
constexpr std::size_t kMaxSections = 64;
constexpr std::size_t kMaxStringSize = 1u << 20;
constexpr std::size_t kMaxThreads = 1u << 20;
constexpr std::size_t kMaxTelemetryEntries = 4096;

constexpr std::uint64_t kMetaFlagPartial = 1;

constexpr std::uint8_t kNodeFlagStub = 1;
constexpr std::uint8_t kNodeFlagParameter = 2;
constexpr std::uint8_t kNodeFlagStats = 4;
constexpr std::uint8_t kNodeFlagMask =
    kNodeFlagStub | kNodeFlagParameter | kNodeFlagStats;

constexpr std::uint8_t kMaxRegionType =
    static_cast<std::uint8_t>(RegionType::kParameter);

void encode_meta(Encoder& out, const AggregateProfile& profile,
                 const SnapshotMeta& meta) {
  std::uint64_t flags = 0;
  if (profile.partial_capture) flags |= kMetaFlagPartial;
  out.varint(flags);
  out.varint(meta.flush_seq);
  out.varint(meta.process_id);
  out.varint(profile.thread_count);
  out.varint(profile.total_task_switches);
  out.varint(profile.total_folded_events);
  out.varint(profile.max_concurrent_any_thread);
  out.varint(profile.max_concurrent_per_thread.size());
  for (std::size_t mark : profile.max_concurrent_per_thread) {
    out.varint(mark);
  }
}

void decode_meta(Decoder& in, SnapshotData& data) {
  const std::uint64_t flags = in.varint();
  if ((flags & ~kMetaFlagPartial) != 0) {
    in.fail(Errc::kMalformed, "unknown meta flags");
  }
  data.profile.partial_capture = (flags & kMetaFlagPartial) != 0;
  data.meta.flush_seq = in.varint();
  data.meta.process_id = in.varint();
  const std::uint64_t threads = in.varint();
  if (threads > kMaxThreads) in.fail(Errc::kLimit, "thread count");
  data.profile.thread_count = static_cast<std::size_t>(threads);
  data.profile.total_task_switches = in.varint();
  data.profile.total_folded_events = in.varint();
  data.profile.max_concurrent_any_thread =
      static_cast<std::size_t>(in.varint());
  const std::uint64_t marks = in.varint();
  if (marks > kMaxThreads) in.fail(Errc::kLimit, "per-thread mark count");
  data.profile.max_concurrent_per_thread.reserve(
      static_cast<std::size_t>(marks));
  for (std::uint64_t i = 0; i < marks; ++i) {
    data.profile.max_concurrent_per_thread.push_back(
        static_cast<std::size_t>(in.varint()));
  }
}

void encode_regions(Encoder& out, const RegionRegistry& registry) {
  const std::size_t count = registry.size();
  out.varint(count);
  for (RegionHandle h = 0; h < count; ++h) {
    const RegionInfo& info = registry.info(h);
    out.str(info.name);
    out.u8(static_cast<std::uint8_t>(info.type));
    out.str(info.file);
    out.svarint(info.line);
  }
}

void decode_regions(Decoder& in, SnapshotData& data) {
  const std::uint64_t count = in.varint();
  // Each region record is at least 4 bytes, so a count beyond the
  // payload size is a lie regardless of content.
  if (count > in.remaining()) in.fail(Errc::kLimit, "region count");
  data.registry = std::make_unique<RegionRegistry>();
  for (std::uint64_t i = 0; i < count; ++i) {
    RegionInfo info;
    info.name = in.str(kMaxStringSize);
    const std::uint8_t type = in.u8();
    if (type > kMaxRegionType) in.fail(Errc::kMalformed, "region type");
    info.type = static_cast<RegionType>(type);
    info.file = in.str(kMaxStringSize);
    const std::int64_t line = in.svarint();
    if (line < 0 || line > INT32_MAX) in.fail(Errc::kMalformed, "region line");
    info.line = static_cast<int>(line);
    // The registry deduplicates on (name, type); a duplicate entry would
    // silently renumber every later handle, so reject it.
    const RegionHandle handle = data.registry->register_region(std::move(info));
    if (handle != static_cast<RegionHandle>(i)) {
      in.fail(Errc::kMalformed, "duplicate region entry");
    }
  }
}

void encode_tree(Encoder& out, const CallNode* root) {
  for_each_node(root, [&](const CallNode& node, int) {
    out.varint(node.region);
    std::uint8_t flags = 0;
    if (node.is_stub) flags |= kNodeFlagStub;
    if (node.parameter != kNoParameter) flags |= kNodeFlagParameter;
    if (node.visit_stats.count > 0) flags |= kNodeFlagStats;
    out.u8(flags);
    if ((flags & kNodeFlagParameter) != 0) out.svarint(node.parameter);
    out.varint(node.visits);
    out.svarint(node.inclusive);
    if ((flags & kNodeFlagStats) != 0) {
      out.varint(node.visit_stats.count);
      out.svarint(node.visit_stats.sum);
      out.svarint(node.visit_stats.min);
      out.svarint(node.visit_stats.max);
    }
    out.varint(node.n_children);
  });
}

CallNode* decode_node(Decoder& in, NodePool& pool, std::size_t region_count,
                      CallNode* parent, std::uint64_t& n_children) {
  const std::uint64_t region = in.varint();
  if (region >= region_count) in.fail(Errc::kMalformed, "region handle");
  const std::uint8_t flags = in.u8();
  if ((flags & ~kNodeFlagMask) != 0) in.fail(Errc::kMalformed, "node flags");
  std::int64_t parameter = kNoParameter;
  if ((flags & kNodeFlagParameter) != 0) {
    parameter = in.svarint();
    if (parameter == kNoParameter) {
      in.fail(Errc::kMalformed, "non-canonical parameter");
    }
  }
  CallNode* node = pool.allocate(static_cast<RegionHandle>(region), parameter,
                                 (flags & kNodeFlagStub) != 0, parent);
  node->visits = in.varint();
  node->inclusive = in.svarint();
  if ((flags & kNodeFlagStats) != 0) {
    node->visit_stats.count = in.varint();
    if (node->visit_stats.count == 0) {
      in.fail(Errc::kMalformed, "non-canonical stats");
    }
    node->visit_stats.sum = in.svarint();
    node->visit_stats.min = in.svarint();
    node->visit_stats.max = in.svarint();
  }
  n_children = in.varint();
  return node;
}

CallNode* decode_tree(Decoder& in, NodePool& pool, std::size_t region_count) {
  struct Open {
    CallNode* node;
    std::uint64_t pending;  ///< children still to decode
  };
  std::uint64_t pending = 0;
  CallNode* root = decode_node(in, pool, region_count, nullptr, pending);
  std::vector<Open> stack;
  if (pending > 0) stack.push_back({root, pending});
  while (!stack.empty()) {
    Open& top = stack.back();
    if (top.pending == 0) {
      stack.pop_back();
      continue;
    }
    --top.pending;
    CallNode* child =
        decode_node(in, pool, region_count, top.node, pending);
    if (pending > 0) stack.push_back({child, pending});
  }
  return root;
}

void encode_trees(Encoder& out, const AggregateProfile& profile) {
  out.u8(profile.implicit_root != nullptr ? 1 : 0);
  if (profile.implicit_root != nullptr) {
    encode_tree(out, profile.implicit_root);
  }
  out.varint(profile.task_roots.size());
  for (const CallNode* root : profile.task_roots) {
    encode_tree(out, root);
  }
}

void decode_trees(Decoder& in, SnapshotData& data) {
  const std::size_t region_count = data.registry->size();
  const std::uint8_t has_implicit = in.u8();
  if (has_implicit > 1) in.fail(Errc::kMalformed, "implicit-root marker");
  if (has_implicit == 1) {
    data.profile.implicit_root =
        decode_tree(in, data.profile.pool, region_count);
  }
  const std::uint64_t roots = in.varint();
  if (roots > in.remaining()) in.fail(Errc::kLimit, "task-root count");
  data.profile.task_roots.reserve(static_cast<std::size_t>(roots));
  for (std::uint64_t i = 0; i < roots; ++i) {
    data.profile.task_roots.push_back(
        decode_tree(in, data.profile.pool, region_count));
  }
}

void encode_telemetry(Encoder& out, const telemetry::Snapshot& snapshot) {
  out.varint(static_cast<std::uint64_t>(snapshot.threads));
  out.varint(telemetry::kCounterCount);
  for (std::size_t i = 0; i < telemetry::kCounterCount; ++i) {
    out.str(telemetry::counter_name(static_cast<telemetry::Counter>(i)));
    out.varint(snapshot.counters[i]);
  }
  out.varint(telemetry::kGaugeCount);
  for (std::size_t i = 0; i < telemetry::kGaugeCount; ++i) {
    out.str(telemetry::gauge_name(static_cast<telemetry::Gauge>(i)));
    out.varint(snapshot.gauges[i]);
  }
  // Per-thread counter matrix; columns follow the counter-name list
  // written above, in order.
  out.varint(snapshot.per_thread.size());
  for (const auto& row : snapshot.per_thread) {
    for (std::size_t i = 0; i < telemetry::kCounterCount; ++i) {
      out.varint(row[i]);
    }
  }
}

void decode_telemetry(Decoder& in, SnapshotData& data) {
  data.has_telemetry = true;
  data.telemetry.threads = static_cast<int>(in.varint());
  // Entries are name-keyed so a reader survives counter renumbering;
  // names it does not know are skipped.
  const std::uint64_t counters = in.varint();
  if (counters > kMaxTelemetryEntries) in.fail(Errc::kLimit, "counter count");
  // column_of[j]: which Counter the j-th on-disk column feeds (-1: an
  // unknown name, its values are read and dropped).
  std::vector<int> column_of(counters, -1);
  for (std::uint64_t i = 0; i < counters; ++i) {
    const std::string name = in.str(kMaxStringSize);
    const std::uint64_t value = in.varint();
    for (std::size_t c = 0; c < telemetry::kCounterCount; ++c) {
      if (name == telemetry::counter_name(static_cast<telemetry::Counter>(c))) {
        data.telemetry.counters[c] = value;
        column_of[i] = static_cast<int>(c);
        break;
      }
    }
  }
  const std::uint64_t gauges = in.varint();
  if (gauges > kMaxTelemetryEntries) in.fail(Errc::kLimit, "gauge count");
  for (std::uint64_t i = 0; i < gauges; ++i) {
    const std::string name = in.str(kMaxStringSize);
    const std::uint64_t value = in.varint();
    for (std::size_t g = 0; g < telemetry::kGaugeCount; ++g) {
      if (name == telemetry::gauge_name(static_cast<telemetry::Gauge>(g))) {
        data.telemetry.gauges[g] = value;
        break;
      }
    }
  }
  const std::uint64_t rows = in.varint();
  if (rows > kMaxThreads) in.fail(Errc::kLimit, "per-thread row count");
  data.telemetry.per_thread.resize(rows);
  for (std::uint64_t r = 0; r < rows; ++r) {
    for (std::uint64_t j = 0; j < counters; ++j) {
      const std::uint64_t value = in.varint();
      if (column_of[j] >= 0) {
        data.telemetry.per_thread[r][static_cast<std::size_t>(
            column_of[j])] = value;
      }
    }
  }
}

void append_section(Encoder& out, SectionId id, const Encoder& payload) {
  out.u32(static_cast<std::uint32_t>(id));
  out.u64(payload.size());
  out.u32(crc32(payload.buffer()));
  out.bytes(payload.buffer().data(), payload.size());
}

}  // namespace

std::vector<std::uint8_t> encode_snapshot(const AggregateProfile& profile,
                                          const RegionRegistry& registry,
                                          const SnapshotMeta& meta,
                                          const telemetry::Snapshot* telemetry) {
  Encoder meta_s;
  encode_meta(meta_s, profile, meta);
  Encoder regions_s;
  encode_regions(regions_s, registry);
  Encoder trees_s;
  encode_trees(trees_s, profile);
  Encoder telemetry_s;
  if (telemetry != nullptr) encode_telemetry(telemetry_s, *telemetry);

  Encoder out;
  out.bytes(kMagic, kMagicSize);
  out.u32(kFormatVersion);
  out.u32(telemetry != nullptr ? 4 : 3);
  append_section(out, SectionId::kMeta, meta_s);
  append_section(out, SectionId::kRegions, regions_s);
  append_section(out, SectionId::kTrees, trees_s);
  if (telemetry != nullptr) {
    append_section(out, SectionId::kTelemetry, telemetry_s);
  }
  return out.buffer();
}

std::vector<std::uint8_t> encode_snapshot(const SnapshotData& data) {
  TASKPROF_ASSERT(data.registry != nullptr, "snapshot without a registry");
  return encode_snapshot(data.profile, *data.registry, data.meta,
                         data.has_telemetry ? &data.telemetry : nullptr);
}

SnapshotData decode_snapshot(std::span<const std::uint8_t> bytes,
                             const std::string& origin) {
  Decoder top(bytes, origin, Errc::kTruncated);
  const auto magic = top.bytes(kMagicSize);
  for (std::size_t i = 0; i < kMagicSize; ++i) {
    if (magic[i] != static_cast<std::uint8_t>(kMagic[i])) {
      top.fail(Errc::kBadMagic, "not a .tpsnap file");
    }
  }
  const std::uint32_t version = top.u32();
  if (version == 0) top.fail(Errc::kMalformed, "version 0");
  if (version > kFormatVersion) {
    top.fail(Errc::kFutureVersion,
             "format version " + std::to_string(version) +
                 " is newer than supported " + std::to_string(kFormatVersion));
  }
  const std::uint32_t section_count = top.u32();
  if (section_count > kMaxSections) top.fail(Errc::kLimit, "section count");

  struct Section {
    std::uint32_t id;
    std::span<const std::uint8_t> payload;
  };
  std::vector<Section> sections;
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const std::uint32_t id = top.u32();
    const std::uint64_t size = top.u64();
    const std::uint32_t stored_crc = top.u32();
    if (size > top.remaining()) {
      top.fail(Errc::kTruncated, "section payload cut short");
    }
    const auto payload = top.bytes(static_cast<std::size_t>(size));
    if (crc32(payload) != stored_crc) {
      top.fail(Errc::kBadCrc,
               "section " + std::to_string(id) + " checksum mismatch");
    }
    for (const Section& seen : sections) {
      if (seen.id == id) {
        top.fail(Errc::kDuplicateSection,
                 "section " + std::to_string(id) + " appears twice");
      }
    }
    sections.push_back({id, payload});
  }
  if (top.remaining() != 0) {
    top.fail(Errc::kTrailingData, "bytes after the last section");
  }

  const auto find = [&](SectionId id) -> const Section* {
    for (const Section& s : sections) {
      if (s.id == static_cast<std::uint32_t>(id)) return &s;
    }
    return nullptr;
  };
  const auto require = [&](SectionId id) -> const Section& {
    const Section* s = find(id);
    if (s == nullptr) {
      top.fail(Errc::kMissingSection, "no section " + std::to_string(
                                          static_cast<std::uint32_t>(id)));
    }
    return *s;
  };

  SnapshotData data;
  {
    Decoder in(require(SectionId::kMeta).payload, origin + " [meta]",
               Errc::kMalformed);
    decode_meta(in, data);
    if (in.remaining() != 0) in.fail(Errc::kMalformed, "trailing bytes");
  }
  {
    Decoder in(require(SectionId::kRegions).payload, origin + " [regions]",
               Errc::kMalformed);
    decode_regions(in, data);
    if (in.remaining() != 0) in.fail(Errc::kMalformed, "trailing bytes");
  }
  {
    Decoder in(require(SectionId::kTrees).payload, origin + " [trees]",
               Errc::kMalformed);
    decode_trees(in, data);
    if (in.remaining() != 0) in.fail(Errc::kMalformed, "trailing bytes");
  }
  if (const Section* s = find(SectionId::kTelemetry)) {
    Decoder in(s->payload, origin + " [telemetry]", Errc::kMalformed);
    decode_telemetry(in, data);
    if (in.remaining() != 0) in.fail(Errc::kMalformed, "trailing bytes");
  }
  return data;
}

void atomic_write_file(const std::string& path,
                       std::span<const std::uint8_t> bytes) {
  // Same directory as the target so the rename cannot cross filesystems;
  // pid-suffixed so concurrent writers of one path cannot clobber each
  // other's temp file.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw SnapshotError(Errc::kIo, path, "cannot open temp file " + tmp);
  }
  const bool wrote =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size() &&
      std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  if (std::fclose(f) != 0 || !wrote) {
    std::remove(tmp.c_str());
    throw SnapshotError(Errc::kIo, path, "short write to temp file");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SnapshotError(Errc::kIo, path, "rename over target failed");
  }
}

void write_snapshot_file(const std::string& path,
                         const AggregateProfile& profile,
                         const RegionRegistry& registry,
                         const SnapshotMeta& meta,
                         const telemetry::Snapshot* telemetry) {
  const std::vector<std::uint8_t> bytes =
      encode_snapshot(profile, registry, meta, telemetry);
  atomic_write_file(path, bytes);
}

void write_snapshot_file(const std::string& path, const SnapshotData& data) {
  atomic_write_file(path, encode_snapshot(data));
}

SnapshotData read_snapshot_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw SnapshotError(Errc::kIo, path, "cannot open file");
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    throw SnapshotError(Errc::kIo, path, "read failed");
  }
  return decode_snapshot(bytes, path);
}

}  // namespace taskprof::snapshot
