// Serialization of whole profiles: AggregateProfile + RegionRegistry
// (+ optional telemetry) <-> .tpsnap bytes, plus atomic file I/O.
//
// The on-disk registry preserves handle order, and RegionRegistry
// deduplicates on (name, type) — so re-registering the entries in file
// order into a fresh registry reproduces the exact handles the tree
// section refers to.  Call trees are stored in preorder with per-node
// child counts; the reader validates every region handle, flag bit, and
// length against the section payload before it materializes nodes, and
// rejects anything non-canonical so decode(encode(x)) == x byte for
// byte.
//
// write_snapshot_file() is atomic: the bytes go to a same-directory temp
// file which is fsync'ed and then rename(2)'d over the target, so a
// reader (or a crash) can only ever observe the previous complete
// snapshot or the new complete snapshot, never a torn mix.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "measure/aggregate.hpp"
#include "profile/region.hpp"
#include "snapshot/format.hpp"
#include "telemetry/telemetry.hpp"

namespace taskprof::snapshot {

/// Snapshot-wide scalars that are not part of the profile itself.
struct SnapshotMeta {
  std::uint64_t flush_seq = 0;   ///< ordinal of the flush that wrote this
  std::uint64_t process_id = 0;  ///< writing process (0 after mixed merge)
};

/// A decoded snapshot: the profile, the registry its handles refer to,
/// and whatever optional sections the file carried.
struct SnapshotData {
  SnapshotMeta meta;
  std::unique_ptr<RegionRegistry> registry;
  AggregateProfile profile;
  bool has_telemetry = false;
  telemetry::Snapshot telemetry;

  SnapshotData() = default;
  SnapshotData(SnapshotData&&) = default;
  SnapshotData& operator=(SnapshotData&&) = default;
};

/// Serialize a profile to .tpsnap bytes.  `telemetry` may be nullptr.
[[nodiscard]] std::vector<std::uint8_t> encode_snapshot(
    const AggregateProfile& profile, const RegionRegistry& registry,
    const SnapshotMeta& meta,
    const telemetry::Snapshot* telemetry = nullptr);

/// Canonical re-encode of a decoded snapshot (round-trip identity).
[[nodiscard]] std::vector<std::uint8_t> encode_snapshot(
    const SnapshotData& data);

/// Parse .tpsnap bytes.  Throws SnapshotError on any structural problem;
/// on return every region handle in the trees is valid in the returned
/// registry.  `origin` names the source in error messages.
[[nodiscard]] SnapshotData decode_snapshot(
    std::span<const std::uint8_t> bytes,
    const std::string& origin = "<memory>");

/// Atomically write `bytes` to `path` (same-directory temp file + fsync
/// + rename).  Throws SnapshotError(Errc::kIo) on failure.
void atomic_write_file(const std::string& path,
                       std::span<const std::uint8_t> bytes);

void write_snapshot_file(const std::string& path,
                         const AggregateProfile& profile,
                         const RegionRegistry& registry,
                         const SnapshotMeta& meta,
                         const telemetry::Snapshot* telemetry = nullptr);

void write_snapshot_file(const std::string& path, const SnapshotData& data);

[[nodiscard]] SnapshotData read_snapshot_file(const std::string& path);

}  // namespace taskprof::snapshot
