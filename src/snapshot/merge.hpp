// Cross-process snapshot collation (`taskprof_cli merge`).
//
// Snapshots from different processes (or different runs) name regions
// with different handles; merging first re-registers the source's
// regions into the destination registry — deduplicating on (name, type),
// exactly like a kernel re-registering its regions — and then merges the
// call trees with every source handle remapped, summing visits and
// inclusive times and folding the per-visit min/max/count statistics.
// Profile-wide scalars sum (threads, task switches, folds) or take the
// maximum (concurrency high-water marks); telemetry counters sum and
// gauges max.  The result projects identically to a profile produced by
// one process that had run all the work (the merge-correctness test
// proves this with src/check's differ).
#pragma once

#include <string>
#include <vector>

#include "snapshot/snapshot.hpp"

namespace taskprof::snapshot {

/// Fold `src` into `dst` in place.  Throws SnapshotError(kMalformed)
/// when the snapshots cannot describe the same program (implicit roots
/// with different region identities).
void merge_snapshot_into(SnapshotData& dst, const SnapshotData& src);

/// Read every file and fold them left to right into the first.
[[nodiscard]] SnapshotData merge_snapshot_files(
    const std::vector<std::string>& paths);

}  // namespace taskprof::snapshot
