#include "snapshot/flusher.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdlib>

namespace taskprof::snapshot {

FlushSchedule::FlushSchedule(FlushScheduleOptions options)
    : options_(options), rng_(options.seed) {
  if (options_.backoff_multiplier < 1.0) options_.backoff_multiplier = 1.0;
  if (options_.max_backoff_exponent < 0) options_.max_backoff_exponent = 0;
  options_.jitter_fraction = std::clamp(options_.jitter_fraction, 0.0, 1.0);
}

void FlushSchedule::record(FlushOutcome outcome) noexcept {
  switch (outcome) {
    case FlushOutcome::kWritten:
      consecutive_failures_ = 0;
      return;
    case FlushOutcome::kSkipped:
      // Benign: an empty capture is not a reason to flush less often.
      return;
    case FlushOutcome::kFailed:
      if (consecutive_failures_ < options_.max_backoff_exponent) {
        ++consecutive_failures_;
      }
      return;
  }
}

Ticks FlushSchedule::next_delay() noexcept {
  double delay = static_cast<double>(options_.interval) *
                 std::pow(options_.backoff_multiplier, consecutive_failures_);
  if (options_.jitter_fraction > 0.0) {
    // Uniform in [1 - f, 1 + f): fleet producers started together drift
    // apart instead of flushing in lockstep.
    const double unit = rng_.next_double() * 2.0 - 1.0;
    delay *= 1.0 + options_.jitter_fraction * unit;
  }
  if (delay < 1.0) delay = 1.0;
  return static_cast<Ticks>(delay);
}

namespace {

std::atomic<SnapshotFlusher*> g_crash_flusher{nullptr};
std::atomic<bool> g_hooks_installed{false};

void crash_flush_handler(int sig) {
  // Exchange, not load: a second signal during the flush must not
  // re-enter it.  flush_now itself try_locks, so a signal landing while
  // the background thread writes degrades to "keep what is on disk".
  if (SnapshotFlusher* flusher = g_crash_flusher.exchange(nullptr)) {
    flusher->flush_now();
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

void atexit_flush() {
  if (SnapshotFlusher* flusher =
          g_crash_flusher.load(std::memory_order_acquire)) {
    flusher->flush_now();  // no-op once flush_final has run
  }
}

}  // namespace

SnapshotFlusher::SnapshotFlusher(const Instrumentor& instrumentor,
                                 const RegionRegistry& registry,
                                 FlusherOptions options)
    : instrumentor_(&instrumentor),
      registry_(&registry),
      options_(std::move(options)) {
  if (options_.process_id == 0) {
    options_.process_id = static_cast<std::uint64_t>(::getpid());
  }
}

SnapshotFlusher::~SnapshotFlusher() {
  stop();
  // Disarm the crash hooks if they still point here: atexit runs after
  // this object's storage is gone.
  SnapshotFlusher* self = this;
  g_crash_flusher.compare_exchange_strong(self, nullptr);
}

void SnapshotFlusher::start() {
  if (thread_.joinable()) return;
  {
    std::scoped_lock lock(cv_mutex_);
    stop_requested_ = false;
  }
  thread_ = std::thread(&SnapshotFlusher::run, this);
}

void SnapshotFlusher::stop() noexcept {
  {
    std::scoped_lock lock(cv_mutex_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void SnapshotFlusher::run() {
  FlushSchedule schedule({options_.interval, options_.jitter_fraction,
                          options_.backoff_multiplier,
                          options_.max_backoff_exponent,
                          options_.schedule_seed});
  // A run that dies inside its first interval still leaves a file.
  schedule.record(flush_tick());
  std::unique_lock lock(cv_mutex_);
  for (;;) {
    if (options_.interval > 0) {
      const Ticks delay = schedule.next_delay();
      if (cv_.wait_for(lock, std::chrono::nanoseconds(delay),
                       [this] { return stop_requested_; })) {
        return;
      }
    } else {
      cv_.wait(lock, [this] { return stop_requested_; });
      return;
    }
    lock.unlock();
    schedule.record(flush_tick());
    lock.lock();
  }
}

bool SnapshotFlusher::flush_now() noexcept {
  return flush_tick() == FlushOutcome::kWritten;
}

FlushOutcome SnapshotFlusher::flush_tick() noexcept {
  std::unique_lock lock(flush_mutex_, std::try_to_lock);
  if (!lock.owns_lock()) return FlushOutcome::kSkipped;
  if (final_written_.load(std::memory_order_acquire)) {
    return FlushOutcome::kSkipped;
  }
  try {
    Instrumentor::CaptureResult captured = instrumentor_->capture_snapshot();
    bool skip = false;
    if (captured.profile.implicit_root == nullptr) {
      // Nothing measured yet: an empty profile is worth less than no
      // file, and strictly less than whatever is already on disk.
      skip = true;
    } else if (captured.profilers_captured == 0 &&
               captured.profilers_live > 0 &&
               flushes_.load(std::memory_order_relaxed) > 0) {
      // Every live profiler refused to quiesce: keep the data-bearing
      // snapshot already on disk instead of overwriting it with less.
      skip = true;
    }
    if (skip) {
      if (options_.sink != nullptr && options_.heartbeat_on_empty) {
        options_.sink->heartbeat();
      }
      return FlushOutcome::kSkipped;
    }
    return write_locked(captured.profile, false) ? FlushOutcome::kWritten
                                                 : FlushOutcome::kFailed;
  } catch (const std::exception& error) {
    last_error_ = error.what();
    return FlushOutcome::kFailed;
  }
}

bool SnapshotFlusher::flush_final() noexcept {
  std::scoped_lock lock(flush_mutex_);
  try {
    const AggregateProfile profile = instrumentor_->aggregate();
    const bool written = write_locked(profile, true);
    if (written) final_written_.store(true, std::memory_order_release);
    return written;
  } catch (const std::exception& error) {
    last_error_ = error.what();
    return false;
  }
}

bool SnapshotFlusher::write_locked(const AggregateProfile& profile,
                                   bool final) {
  SnapshotMeta meta;
  meta.flush_seq = flushes_.load(std::memory_order_relaxed) + 1;
  meta.process_id = options_.process_id;
  telemetry::Snapshot telemetry_snapshot;
  const telemetry::Snapshot* telemetry_ptr = nullptr;
  if (options_.telemetry != nullptr) {
    telemetry_snapshot = options_.telemetry->snapshot();
    telemetry_ptr = &telemetry_snapshot;
  }
  bool ok = true;
  if (!options_.path.empty()) {
    try {
      write_snapshot_file(options_.path, profile, *registry_, meta,
                          telemetry_ptr);
    } catch (const std::exception& error) {
      last_error_ = error.what();
      ok = false;
    }
  }
  if (options_.sink != nullptr) {
    if (!options_.sink->ship(profile, *registry_, meta, telemetry_ptr,
                             final)) {
      last_error_ = "flush sink rejected the snapshot";
      ok = false;
    }
  }
  if (!ok) return false;
  last_error_.clear();
  flushes_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::string SnapshotFlusher::last_error() const {
  std::scoped_lock lock(flush_mutex_);
  return last_error_;
}

void install_crash_flush(SnapshotFlusher* flusher) {
  g_crash_flusher.store(flusher, std::memory_order_release);
  if (flusher != nullptr && !g_hooks_installed.exchange(true)) {
    std::signal(SIGINT, crash_flush_handler);
    std::signal(SIGTERM, crash_flush_handler);
    std::atexit(atexit_flush);
  }
}

}  // namespace taskprof::snapshot
