#include "snapshot/flusher.hpp"

#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdlib>

namespace taskprof::snapshot {

namespace {

std::atomic<SnapshotFlusher*> g_crash_flusher{nullptr};
std::atomic<bool> g_hooks_installed{false};

void crash_flush_handler(int sig) {
  // Exchange, not load: a second signal during the flush must not
  // re-enter it.  flush_now itself try_locks, so a signal landing while
  // the background thread writes degrades to "keep what is on disk".
  if (SnapshotFlusher* flusher = g_crash_flusher.exchange(nullptr)) {
    flusher->flush_now();
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

void atexit_flush() {
  if (SnapshotFlusher* flusher =
          g_crash_flusher.load(std::memory_order_acquire)) {
    flusher->flush_now();  // no-op once flush_final has run
  }
}

}  // namespace

SnapshotFlusher::SnapshotFlusher(const Instrumentor& instrumentor,
                                 const RegionRegistry& registry,
                                 FlusherOptions options)
    : instrumentor_(&instrumentor),
      registry_(&registry),
      options_(std::move(options)) {
  if (options_.process_id == 0) {
    options_.process_id = static_cast<std::uint64_t>(::getpid());
  }
}

SnapshotFlusher::~SnapshotFlusher() {
  stop();
  // Disarm the crash hooks if they still point here: atexit runs after
  // this object's storage is gone.
  SnapshotFlusher* self = this;
  g_crash_flusher.compare_exchange_strong(self, nullptr);
}

void SnapshotFlusher::start() {
  if (thread_.joinable()) return;
  {
    std::scoped_lock lock(cv_mutex_);
    stop_requested_ = false;
  }
  thread_ = std::thread(&SnapshotFlusher::run, this);
}

void SnapshotFlusher::stop() noexcept {
  {
    std::scoped_lock lock(cv_mutex_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void SnapshotFlusher::run() {
  flush_now();  // a run that dies inside its first interval leaves a file
  std::unique_lock lock(cv_mutex_);
  for (;;) {
    if (options_.interval > 0) {
      if (cv_.wait_for(lock, std::chrono::nanoseconds(options_.interval),
                       [this] { return stop_requested_; })) {
        return;
      }
    } else {
      cv_.wait(lock, [this] { return stop_requested_; });
      return;
    }
    lock.unlock();
    flush_now();
    lock.lock();
  }
}

bool SnapshotFlusher::flush_now() noexcept {
  std::unique_lock lock(flush_mutex_, std::try_to_lock);
  if (!lock.owns_lock()) return false;
  if (final_written_.load(std::memory_order_acquire)) return false;
  try {
    Instrumentor::CaptureResult captured = instrumentor_->capture_snapshot();
    if (captured.profile.implicit_root == nullptr) {
      // Nothing measured yet: an empty profile is worth less than no
      // file, and strictly less than whatever is already on disk.
      return false;
    }
    if (captured.profilers_captured == 0 && captured.profilers_live > 0 &&
        flushes_.load(std::memory_order_relaxed) > 0) {
      // Every live profiler refused to quiesce: keep the data-bearing
      // snapshot already on disk instead of overwriting it with less.
      return false;
    }
    return write_locked(captured.profile);
  } catch (const std::exception& error) {
    last_error_ = error.what();
    return false;
  }
}

bool SnapshotFlusher::flush_final() noexcept {
  std::scoped_lock lock(flush_mutex_);
  try {
    const AggregateProfile profile = instrumentor_->aggregate();
    const bool written = write_locked(profile);
    if (written) final_written_.store(true, std::memory_order_release);
    return written;
  } catch (const std::exception& error) {
    last_error_ = error.what();
    return false;
  }
}

bool SnapshotFlusher::write_locked(const AggregateProfile& profile) {
  SnapshotMeta meta;
  meta.flush_seq = flushes_.load(std::memory_order_relaxed) + 1;
  meta.process_id = options_.process_id;
  telemetry::Snapshot telemetry_snapshot;
  const telemetry::Snapshot* telemetry_ptr = nullptr;
  if (options_.telemetry != nullptr) {
    telemetry_snapshot = options_.telemetry->snapshot();
    telemetry_ptr = &telemetry_snapshot;
  }
  try {
    write_snapshot_file(options_.path, profile, *registry_, meta,
                        telemetry_ptr);
  } catch (const std::exception& error) {
    last_error_ = error.what();
    return false;
  }
  last_error_.clear();
  flushes_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::string SnapshotFlusher::last_error() const {
  std::scoped_lock lock(flush_mutex_);
  return last_error_;
}

void install_crash_flush(SnapshotFlusher* flusher) {
  g_crash_flusher.store(flusher, std::memory_order_release);
  if (flusher != nullptr && !g_hooks_installed.exchange(true)) {
    std::signal(SIGINT, crash_flush_handler);
    std::signal(SIGTERM, crash_flush_handler);
    std::atexit(atexit_flush);
  }
}

}  // namespace taskprof::snapshot
