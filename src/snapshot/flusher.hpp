// Periodic in-run snapshot flushing.
//
// A SnapshotFlusher owns a background thread that captures the
// instrumentor's partial profile (Instrumentor::capture_snapshot) every
// `interval` nanoseconds and writes it atomically to one target path —
// each flush rename(2)s over the previous one, so the file on disk is
// always the last *complete* snapshot.  A SIGKILLed run therefore
// leaves at most `interval` of work unaccounted for; nothing survives a
// crash except what was already flushed, which is the whole point.
//
// Flush policy: the first flush happens immediately on start() (a run
// that dies in its first interval still leaves a file), and a capture
// that produced nothing while profilers exist is skipped rather than
// overwriting a data-bearing snapshot with an empty one.  After the run
// completes and Instrumentor::finalize() ran, flush_final() replaces
// the last partial snapshot with the clean full profile.
//
// install_crash_flush() additionally arms best-effort last-gasp
// flushing: SIGINT/SIGTERM handlers and an atexit hook that write one
// final snapshot before the process dies.  "Best effort" is literal —
// the flush allocates, so it is not async-signal-safe in the letter of
// POSIX; it is a salvage path, not the correctness story (that is the
// periodic flush + atomic rename, which needs no cooperation from the
// dying process at all — SIGKILL cannot be caught).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "instrument/instrumentor.hpp"
#include "profile/region.hpp"
#include "snapshot/snapshot.hpp"
#include "telemetry/telemetry.hpp"

namespace taskprof::snapshot {

/// What one periodic flush tick accomplished — the schedule's input.
enum class FlushOutcome : std::uint8_t {
  kWritten,  ///< at least one target got the snapshot
  kSkipped,  ///< benign no-op (empty capture, final already written)
  kFailed,   ///< a target errored; the schedule backs off
};

struct FlushScheduleOptions {
  Ticks interval = 0;            ///< base ns between flushes
  double jitter_fraction = 0.0;  ///< uniform ±fraction of the interval,
                                 ///< de-synchronizing fleet producers
  double backoff_multiplier = 2.0;  ///< per consecutive failure
  int max_backoff_exponent = 6;     ///< cap: interval * mult^max
  std::uint64_t seed = 0x5eedf1a5;  ///< jitter RNG (deterministic tests)
};

/// Pure flush-cadence policy: base interval, seeded jitter, exponential
/// backoff on consecutive failures.  Time-free by construction (it
/// returns delays, it never sleeps), so the unit test drives it against
/// a fake clock.
class FlushSchedule {
 public:
  explicit FlushSchedule(FlushScheduleOptions options);

  /// Feed the outcome of the flush that just ran.  kFailed deepens the
  /// backoff, kWritten resets it, kSkipped (benign) leaves it alone.
  void record(FlushOutcome outcome) noexcept;

  /// Delay until the next flush: interval * backoff, jittered, >= 1ns.
  [[nodiscard]] Ticks next_delay() noexcept;

  [[nodiscard]] int consecutive_failures() const noexcept {
    return consecutive_failures_;
  }

 private:
  FlushScheduleOptions options_;
  int consecutive_failures_ = 0;
  Xoshiro256 rng_;
};

/// Destination for captured snapshots beyond the .tpsnap file — the
/// ingest client implements this to stream deltas to taskprofd (the
/// hook lives here so taskprof_snapshot need not link taskprof_ingest).
class FlushSink {
 public:
  virtual ~FlushSink() = default;

  /// Ship one cumulative capture.  `final` marks the clean post-run
  /// profile (flush_final).  Must not throw.
  virtual bool ship(const AggregateProfile& profile,
                    const RegionRegistry& registry, const SnapshotMeta& meta,
                    const telemetry::Snapshot* telemetry, bool final) noexcept = 0;

  /// Liveness signal for a tick that had nothing new to ship.
  virtual bool heartbeat() noexcept { return true; }
};

struct FlusherOptions {
  std::string path;          ///< target .tpsnap file ("" with a sink:
                             ///< stream-only, no file writes)
  Ticks interval = 0;        ///< ns between periodic flushes (0: only
                             ///< explicit flush_now/flush_final calls)
  const telemetry::Registry* telemetry = nullptr;  ///< optional section
  std::uint64_t process_id = 0;                    ///< 0: use getpid()
  FlushSink* sink = nullptr;   ///< optional streaming destination
  bool heartbeat_on_empty = true;  ///< sink heartbeat on skipped ticks
  double jitter_fraction = 0.0;    ///< see FlushScheduleOptions
  double backoff_multiplier = 2.0;
  int max_backoff_exponent = 6;
  std::uint64_t schedule_seed = 0x5eedf1a5;
};

class SnapshotFlusher {
 public:
  /// `instrumentor` and `registry` must outlive the flusher.  The
  /// instrumentor must have been built with MeasureOptions::
  /// snapshot_every > 0, or every capture will come back empty.
  SnapshotFlusher(const Instrumentor& instrumentor,
                  const RegionRegistry& registry, FlusherOptions options);
  ~SnapshotFlusher();

  SnapshotFlusher(const SnapshotFlusher&) = delete;
  SnapshotFlusher& operator=(const SnapshotFlusher&) = delete;

  /// Start the background thread: one immediate flush, then one per
  /// interval until stop().
  void start();

  /// Stop and join the background thread (idempotent).
  void stop() noexcept;

  /// Capture and write one partial snapshot now.  Returns false when
  /// nothing was written (another flush in progress, empty capture
  /// skipped, final snapshot already written, or an I/O error —
  /// see last_error()).  Never throws: the flusher must be safe to call
  /// from the background thread and the crash hooks.
  bool flush_now() noexcept;

  /// Write the clean full profile (call after Instrumentor::finalize()).
  /// Later flush_now() calls become no-ops so a stale partial capture
  /// can never overwrite the final profile.
  bool flush_final() noexcept;

  /// Completed writes so far.
  [[nodiscard]] std::uint64_t flush_count() const noexcept {
    return flushes_.load(std::memory_order_relaxed);
  }

  /// Message of the most recent failed write ("" if none).
  [[nodiscard]] std::string last_error() const;

 private:
  void run();
  FlushOutcome flush_tick() noexcept;
  bool write_locked(const AggregateProfile& profile, bool final);

  const Instrumentor* instrumentor_;
  const RegionRegistry* registry_;
  FlusherOptions options_;

  std::thread thread_;
  std::mutex cv_mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;  ///< guarded by cv_mutex_

  mutable std::mutex flush_mutex_;  ///< serializes capture+write; crash
                                    ///< hooks try_lock instead of blocking
  std::atomic<std::uint64_t> flushes_{0};
  std::atomic<bool> final_written_{false};
  std::string last_error_;  ///< guarded by flush_mutex_
};

/// Arm (or, with nullptr, disarm) the process-wide crash hooks:
/// SIGINT/SIGTERM handlers that flush `flusher` once and re-raise, and
/// an atexit hook that flushes unless flush_final() already ran.  One
/// flusher at a time; the flusher's destructor disarms itself.
void install_crash_flush(SnapshotFlusher* flusher);

}  // namespace taskprof::snapshot
