// Periodic in-run snapshot flushing.
//
// A SnapshotFlusher owns a background thread that captures the
// instrumentor's partial profile (Instrumentor::capture_snapshot) every
// `interval` nanoseconds and writes it atomically to one target path —
// each flush rename(2)s over the previous one, so the file on disk is
// always the last *complete* snapshot.  A SIGKILLed run therefore
// leaves at most `interval` of work unaccounted for; nothing survives a
// crash except what was already flushed, which is the whole point.
//
// Flush policy: the first flush happens immediately on start() (a run
// that dies in its first interval still leaves a file), and a capture
// that produced nothing while profilers exist is skipped rather than
// overwriting a data-bearing snapshot with an empty one.  After the run
// completes and Instrumentor::finalize() ran, flush_final() replaces
// the last partial snapshot with the clean full profile.
//
// install_crash_flush() additionally arms best-effort last-gasp
// flushing: SIGINT/SIGTERM handlers and an atexit hook that write one
// final snapshot before the process dies.  "Best effort" is literal —
// the flush allocates, so it is not async-signal-safe in the letter of
// POSIX; it is a salvage path, not the correctness story (that is the
// periodic flush + atomic rename, which needs no cooperation from the
// dying process at all — SIGKILL cannot be caught).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "common/types.hpp"
#include "instrument/instrumentor.hpp"
#include "profile/region.hpp"
#include "snapshot/snapshot.hpp"
#include "telemetry/telemetry.hpp"

namespace taskprof::snapshot {

struct FlusherOptions {
  std::string path;          ///< target .tpsnap file
  Ticks interval = 0;        ///< ns between periodic flushes (0: only
                             ///< explicit flush_now/flush_final calls)
  const telemetry::Registry* telemetry = nullptr;  ///< optional section
  std::uint64_t process_id = 0;                    ///< 0: use getpid()
};

class SnapshotFlusher {
 public:
  /// `instrumentor` and `registry` must outlive the flusher.  The
  /// instrumentor must have been built with MeasureOptions::
  /// snapshot_every > 0, or every capture will come back empty.
  SnapshotFlusher(const Instrumentor& instrumentor,
                  const RegionRegistry& registry, FlusherOptions options);
  ~SnapshotFlusher();

  SnapshotFlusher(const SnapshotFlusher&) = delete;
  SnapshotFlusher& operator=(const SnapshotFlusher&) = delete;

  /// Start the background thread: one immediate flush, then one per
  /// interval until stop().
  void start();

  /// Stop and join the background thread (idempotent).
  void stop() noexcept;

  /// Capture and write one partial snapshot now.  Returns false when
  /// nothing was written (another flush in progress, empty capture
  /// skipped, final snapshot already written, or an I/O error —
  /// see last_error()).  Never throws: the flusher must be safe to call
  /// from the background thread and the crash hooks.
  bool flush_now() noexcept;

  /// Write the clean full profile (call after Instrumentor::finalize()).
  /// Later flush_now() calls become no-ops so a stale partial capture
  /// can never overwrite the final profile.
  bool flush_final() noexcept;

  /// Completed writes so far.
  [[nodiscard]] std::uint64_t flush_count() const noexcept {
    return flushes_.load(std::memory_order_relaxed);
  }

  /// Message of the most recent failed write ("" if none).
  [[nodiscard]] std::string last_error() const;

 private:
  void run();
  bool write_locked(const AggregateProfile& profile);

  const Instrumentor* instrumentor_;
  const RegionRegistry* registry_;
  FlusherOptions options_;

  std::thread thread_;
  std::mutex cv_mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;  ///< guarded by cv_mutex_

  mutable std::mutex flush_mutex_;  ///< serializes capture+write; crash
                                    ///< hooks try_lock instead of blocking
  std::atomic<std::uint64_t> flushes_{0};
  std::atomic<bool> final_written_{false};
  std::string last_error_;  ///< guarded by flush_mutex_
};

/// Arm (or, with nullptr, disarm) the process-wide crash hooks:
/// SIGINT/SIGTERM handlers that flush `flusher` once and re-raise, and
/// an atexit hook that flushes unless flush_final() already ran.  One
/// flusher at a time; the flusher's destructor disarms itself.
void install_crash_flush(SnapshotFlusher* flusher);

}  // namespace taskprof::snapshot
