#include "snapshot/format.hpp"

#include <array>

namespace taskprof::snapshot {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

}  // namespace

std::string_view errc_name(Errc code) noexcept {
  switch (code) {
    case Errc::kIo: return "io";
    case Errc::kBadMagic: return "bad-magic";
    case Errc::kFutureVersion: return "future-version";
    case Errc::kTruncated: return "truncated";
    case Errc::kBadCrc: return "bad-crc";
    case Errc::kMalformed: return "malformed";
    case Errc::kDuplicateSection: return "duplicate-section";
    case Errc::kMissingSection: return "missing-section";
    case Errc::kTrailingData: return "trailing-data";
    case Errc::kLimit: return "limit";
  }
  return "unknown";
}

SnapshotError::SnapshotError(Errc code, const std::string& origin,
                             const std::string& detail)
    : std::runtime_error(origin + ": " + std::string(errc_name(code)) + ": " +
                         detail),
      code_(code) {}

std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::uint8_t byte : bytes) {
    crc = kCrcTable[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void Encoder::u8(std::uint8_t value) { buffer_.push_back(value); }

void Encoder::u32(std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

void Encoder::u64(std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

void Encoder::varint(std::uint64_t value) {
  while (value >= 0x80) {
    buffer_.push_back(static_cast<std::uint8_t>(value) | 0x80u);
    value >>= 7;
  }
  buffer_.push_back(static_cast<std::uint8_t>(value));
}

void Encoder::svarint(std::int64_t value) {
  const std::uint64_t u = static_cast<std::uint64_t>(value);
  varint((u << 1) ^ static_cast<std::uint64_t>(value >> 63));
}

void Encoder::str(std::string_view value) {
  varint(value.size());
  bytes(value.data(), value.size());
}

void Encoder::bytes(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buffer_.insert(buffer_.end(), p, p + size);
}

Decoder::Decoder(std::span<const std::uint8_t> bytes, std::string origin,
                 Errc overrun)
    : bytes_(bytes), origin_(std::move(origin)), overrun_(overrun) {}

void Decoder::fail(Errc code, const std::string& detail) const {
  throw SnapshotError(code, origin_,
                      detail + " (at byte " + std::to_string(offset_) + ")");
}

std::uint8_t Decoder::u8() {
  if (remaining() < 1) fail(overrun_, "unexpected end of data");
  return bytes_[offset_++];
}

std::uint32_t Decoder::u32() {
  if (remaining() < 4) fail(overrun_, "unexpected end of data");
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(bytes_[offset_ + i]) << (8 * i);
  }
  offset_ += 4;
  return value;
}

std::uint64_t Decoder::u64() {
  if (remaining() < 8) fail(overrun_, "unexpected end of data");
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(bytes_[offset_ + i]) << (8 * i);
  }
  offset_ += 8;
  return value;
}

std::uint64_t Decoder::varint() {
  std::uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    const std::uint8_t byte = u8();
    const std::uint64_t payload = byte & 0x7Fu;
    if (shift == 63 && payload > 1) fail(Errc::kMalformed, "varint overflow");
    value |= payload << shift;
    if ((byte & 0x80u) == 0) {
      // Canonical form only: a zero continuation byte re-encodes shorter.
      if (payload == 0 && shift != 0) {
        fail(Errc::kMalformed, "non-minimal varint");
      }
      return value;
    }
  }
  fail(Errc::kMalformed, "varint longer than 10 bytes");
}

std::int64_t Decoder::svarint() {
  const std::uint64_t u = varint();
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

std::string Decoder::str(std::size_t max_size) {
  const std::uint64_t size = varint();
  if (size > max_size) fail(Errc::kLimit, "string length exceeds limit");
  const auto span = bytes(static_cast<std::size_t>(size));
  return std::string(reinterpret_cast<const char*>(span.data()), span.size());
}

std::span<const std::uint8_t> Decoder::bytes(std::size_t size) {
  if (remaining() < size) fail(overrun_, "unexpected end of data");
  const auto out = bytes_.subspan(offset_, size);
  offset_ += size;
  return out;
}

}  // namespace taskprof::snapshot
