// Wire-format primitives for crash-safe profile snapshots (.tpsnap).
//
// A snapshot file is the on-disk form of an AggregateProfile plus the
// RegionRegistry it refers to (and, optionally, a telemetry snapshot):
//
//   magic[8] "TPSNAP\n\0"
//   u32      format version (little-endian; readers reject newer files)
//   u32      section count
//   repeated { u32 id, u64 payload size, u32 CRC-32 of payload, payload }
//
// Every byte after the 16-byte header is covered by a section CRC, so a
// torn write or a flipped bit is detected before any payload is parsed.
// Payloads use LEB128 varints (zigzag for signed values); encoders emit
// exactly one canonical form and decoders reject everything else, which
// is what makes write -> read -> re-write byte-identical (the round-trip
// golden tests rely on it).
//
// All failures are typed: the reader never asserts, never reads out of
// bounds, and never returns a half-built object — it throws
// SnapshotError carrying an Errc that tests (and the fuzz corpus) match
// on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace taskprof::snapshot {

/// File magic ("TPSNAP\n\0"): the newline catches ASCII-mode mangling,
/// the NUL catches C-string truncation.
inline constexpr std::size_t kMagicSize = 8;
inline constexpr char kMagic[kMagicSize] = {'T', 'P', 'S', 'N',
                                            'A', 'P', '\n', '\0'};

/// Current format version.  Readers accept any version <= this one;
/// newer files are rejected with Errc::kFutureVersion (see DESIGN.md for
/// the compatibility policy).
inline constexpr std::uint32_t kFormatVersion = 1;

/// Section identifiers.  Unknown ids are skipped (their CRC is still
/// verified), so future versions can add sections without breaking old
/// readers.
enum class SectionId : std::uint32_t {
  kMeta = 1,       ///< profile-wide scalars (thread count, flags, ...)
  kRegions = 2,    ///< region registry (handle order preserved)
  kTrees = 3,      ///< implicit tree + merged task trees, preorder
  kTelemetry = 4,  ///< optional telemetry counters/gauges
};

/// Why a snapshot was rejected.
enum class Errc {
  kIo,               ///< open/read/write/rename failed
  kBadMagic,         ///< first 8 bytes are not a snapshot header
  kFutureVersion,    ///< written by a newer format revision
  kTruncated,        ///< file ends inside the header or a section
  kBadCrc,           ///< section payload does not match its checksum
  kMalformed,        ///< CRC-valid payload violates the format grammar
  kDuplicateSection, ///< the same section id appears twice
  kMissingSection,   ///< a mandatory section is absent
  kTrailingData,     ///< bytes remain after the last declared section
  kLimit,            ///< a declared count exceeds the sanity limits
};

/// Stable lowercase name of an error class, e.g. "bad-crc".
[[nodiscard]] std::string_view errc_name(Errc code) noexcept;

/// Typed rejection.  what() is "<origin>: <errc-name>: <detail>".
class SnapshotError : public std::runtime_error {
 public:
  SnapshotError(Errc code, const std::string& origin,
                const std::string& detail);

  [[nodiscard]] Errc code() const noexcept { return code_; }

 private:
  Errc code_;
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `bytes`.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept;

/// Append-only little-endian encoder.
class Encoder {
 public:
  void u8(std::uint8_t value);
  void u32(std::uint32_t value);
  void u64(std::uint64_t value);
  /// LEB128 (7 bits per byte, high bit = continue).
  void varint(std::uint64_t value);
  /// Zigzag-mapped varint for signed values.
  void svarint(std::int64_t value);
  /// varint length prefix + raw bytes.
  void str(std::string_view value);
  void bytes(const void* data, std::size_t size);

  [[nodiscard]] const std::vector<std::uint8_t>& buffer() const noexcept {
    return buffer_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Bounds-checked little-endian decoder over a borrowed byte span.
///
/// Every read throws SnapshotError on overrun; `overrun` distinguishes
/// the file-level cursor (overruns mean the file was cut short:
/// kTruncated) from section payloads (the payload passed its CRC, so an
/// overrun means the grammar lied about a length: kMalformed).
class Decoder {
 public:
  Decoder(std::span<const std::uint8_t> bytes, std::string origin,
          Errc overrun);

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  /// Rejects non-minimal encodings and values beyond 64 bits
  /// (kMalformed): the canonical-form guarantee cuts both ways.
  [[nodiscard]] std::uint64_t varint();
  [[nodiscard]] std::int64_t svarint();
  /// Length-prefixed string; `max_size` guards against absurd lengths
  /// (Errc::kLimit).
  [[nodiscard]] std::string str(std::size_t max_size);
  [[nodiscard]] std::span<const std::uint8_t> bytes(std::size_t size);

  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - offset_;
  }
  [[nodiscard]] const std::string& origin() const noexcept { return origin_; }

  /// Throw a SnapshotError at the current position.
  [[noreturn]] void fail(Errc code, const std::string& detail) const;

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t offset_ = 0;
  std::string origin_;
  Errc overrun_;
};

}  // namespace taskprof::snapshot
