#include "snapshot/merge.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "profile/calltree.hpp"

namespace taskprof::snapshot {

namespace {

/// merge_subtree with every source region handle translated through
/// `remap` (same iterative parallel-preorder walk; O(1) space).
void merge_subtree_remapped(NodePool& pool, CallNode* dst, const CallNode* src,
                            const std::vector<RegionHandle>& remap) {
  const CallNode* s = src;
  CallNode* d = dst;
  for (;;) {
    d->visits += s->visits;
    d->inclusive += s->inclusive;
    d->visit_stats.merge(s->visit_stats);
    if (s->first_child != nullptr) {
      s = s->first_child;
      d = find_or_create_child(pool, d, remap[s->region], s->parameter,
                               s->is_stub);
      continue;
    }
    while (s != src && s->next_sibling == nullptr) {
      s = s->parent;
      d = d->parent;
    }
    if (s == src) return;
    s = s->next_sibling;
    d = find_or_create_child(pool, d->parent, remap[s->region], s->parameter,
                             s->is_stub);
  }
}

}  // namespace

void merge_snapshot_into(SnapshotData& dst, const SnapshotData& src) {
  TASKPROF_ASSERT(dst.registry != nullptr && src.registry != nullptr,
                  "merge of snapshot without a registry");

  // Region handle translation: re-register every source region into the
  // destination registry (dedupe on name/type gives stable handles).
  const std::size_t src_regions = src.registry->size();
  std::vector<RegionHandle> remap(src_regions);
  for (RegionHandle h = 0; h < src_regions; ++h) {
    remap[h] = dst.registry->register_region(RegionInfo(src.registry->info(h)));
  }

  AggregateProfile& dp = dst.profile;
  const AggregateProfile& sp = src.profile;

  if (sp.implicit_root != nullptr) {
    const RegionHandle root_region = remap[sp.implicit_root->region];
    if (dp.implicit_root == nullptr) {
      dp.implicit_root = dp.pool.allocate(
          root_region, sp.implicit_root->parameter, false, nullptr);
    } else if (dp.implicit_root->region != root_region) {
      throw SnapshotError(Errc::kMalformed, "<merge>",
                          "snapshots disagree on the implicit root region");
    }
    merge_subtree_remapped(dp.pool, dp.implicit_root, sp.implicit_root, remap);
  }

  // Indexed root lookup, as in aggregate_profiles: per-depth parameter
  // profiling can carry hundreds of roots per snapshot.
  ChildIndex root_index;
  for (CallNode* root : dp.task_roots) root_index.insert(root);
  for (const CallNode* src_root : sp.task_roots) {
    const RegionHandle region = remap[src_root->region];
    CallNode* dst_root = root_index.find(region, src_root->parameter, false);
    if (dst_root == nullptr) {
      dst_root = dp.pool.allocate(region, src_root->parameter, false, nullptr);
      dp.task_roots.push_back(dst_root);
      root_index.insert(dst_root);
    }
    merge_subtree_remapped(dp.pool, dst_root, src_root, remap);
  }

  dp.thread_count += sp.thread_count;
  dp.total_task_switches += sp.total_task_switches;
  dp.total_folded_events += sp.total_folded_events;
  dp.max_concurrent_any_thread =
      std::max(dp.max_concurrent_any_thread, sp.max_concurrent_any_thread);
  dp.max_concurrent_per_thread.insert(dp.max_concurrent_per_thread.end(),
                                      sp.max_concurrent_per_thread.begin(),
                                      sp.max_concurrent_per_thread.end());
  dp.partial_capture = dp.partial_capture || sp.partial_capture;

  dst.meta.flush_seq = std::max(dst.meta.flush_seq, src.meta.flush_seq);
  if (dst.meta.process_id != src.meta.process_id) dst.meta.process_id = 0;

  if (src.has_telemetry) {
    if (!dst.has_telemetry) {
      dst.telemetry = src.telemetry;
      dst.has_telemetry = true;
    } else {
      telemetry::merge_into(dst.telemetry, src.telemetry);
    }
  }
}

SnapshotData merge_snapshot_files(const std::vector<std::string>& paths) {
  TASKPROF_ASSERT(!paths.empty(), "merge of zero snapshots");
  SnapshotData merged = read_snapshot_file(paths.front());
  for (std::size_t i = 1; i < paths.size(); ++i) {
    const SnapshotData next = read_snapshot_file(paths[i]);
    merge_snapshot_into(merged, next);
  }
  return merged;
}

}  // namespace taskprof::snapshot
