#include "check/fuzz.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <memory>
#include <utility>

#include "check/differential.hpp"
#include "check/invariants.hpp"
#include "check/random_tree.hpp"
#include "common/rng.hpp"
#include "instrument/instrumentor.hpp"
#include "rt/hooks.hpp"
#include "rt/real_runtime.hpp"
#include "rt/schedule_policy.hpp"
#include "rt/sim_runtime.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/chrome_export.hpp"
#include "trace/recorder.hpp"

namespace taskprof::check {

namespace {

/// One engine execution of a case: profile + invariants + projection.
struct EngineRun {
  ProfileProjection projection;
  std::vector<std::string> problems;
};

/// Run the case's program on `runtime` with measurement and telemetry
/// attached; `extra` (optional) is fanned in alongside the instrumentor
/// (the replay path hangs a TraceRecorder here).
EngineRun run_engine(const FuzzCase& c, rt::Runtime& runtime,
                     const char* engine_name,
                     rt::SchedulerHooks* extra = nullptr) {
  EngineRun out;
  RegionRegistry registry;
  Instrumentor instr(registry);
  telemetry::Registry telem;
  rt::FanoutHooks fanout({&instr});
  if (extra != nullptr) fanout.add(extra);
  runtime.set_hooks(&fanout);
  runtime.set_telemetry(&telem);

  rt::TeamStats stats;
  std::uint64_t checksum = 0;
  bool self_check_ok = true;
  if (c.kernel == kRandomKernel) {
    RandomTaskTree tree(registry);
    stats = tree.run(runtime, c.seed, c.threads);
    // The tree shape is a pure function of the seed, so the task count is
    // the random program's cross-engine checksum.
    checksum = stats.tasks_created;
  } else {
    std::unique_ptr<bots::Kernel> kernel = bots::make_kernel(c.kernel);
    if (kernel == nullptr) {
      out.problems.push_back(std::string("[") + engine_name +
                             "] unknown kernel '" + c.kernel + "'");
      runtime.set_hooks(nullptr);
      runtime.set_telemetry(nullptr);
      return out;
    }
    bots::KernelConfig config;
    config.threads = c.threads;
    config.size = c.size;
    const bots::KernelResult result = kernel->run(runtime, registry, config);
    stats = result.stats;
    checksum = result.checksum;
    self_check_ok = result.ok;
  }

  runtime.set_hooks(nullptr);
  runtime.set_telemetry(nullptr);
  instr.finalize();
  const AggregateProfile profile = instr.aggregate();
  const telemetry::Snapshot snapshot = telem.snapshot();

  const InvariantReport report =
      check_profile(profile, registry, &stats, &snapshot);
  for (const std::string& violation : report.violations) {
    out.problems.push_back(std::string("[") + engine_name + " invariant] " +
                           violation);
  }

  out.projection = project_profile(profile, registry, stats);
  out.projection.engine = engine_name;
  out.projection.checksum = checksum;
  out.projection.self_check_ok = self_check_ok;
  return out;
}

EngineRun run_sim_engine(const FuzzCase& c,
                         rt::SchedulerHooks* extra = nullptr) {
  rt::SchedulePolicy policy(c.seed);
  rt::SimConfig config;
  config.policy = &policy;
  rt::SimRuntime sim(config);
  return run_engine(c, sim, "sim", extra);
}

EngineRun run_real_engine(const FuzzCase& c) {
  rt::SchedulePolicy policy(c.seed);
  rt::RealConfig config;
  config.policy = &policy;
  rt::RealRuntime real(config);
  return run_engine(c, real, "real");
}

void log_line(std::FILE* log, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void log_line(std::FILE* log, const char* fmt, ...) {
  if (log == nullptr) return;
  std::va_list args;
  va_start(args, fmt);
  std::vfprintf(log, fmt, args);
  va_end(args);
  std::fputc('\n', log);
  std::fflush(log);
}

/// Shrink a failing case: smallest thread count (among `thread_options`
/// plus 1) that still fails with the same seed, then the smallest size
/// class.  Every candidate run is logged so a flaky shrink is visible.
CaseOutcome shrink_case(CaseOutcome failing,
                        const std::vector<int>& thread_options, bool run_sim,
                        bool run_real, std::FILE* log) {
  std::vector<int> candidates{1};
  candidates.insert(candidates.end(), thread_options.begin(),
                    thread_options.end());
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  for (int threads : candidates) {
    if (threads >= failing.c.threads) break;
    FuzzCase candidate = failing.c;
    candidate.threads = threads;
    CaseOutcome outcome = run_case(candidate, run_sim, run_real);
    log_line(log, "  shrink: threads=%d -> %s", threads,
             outcome.ok() ? "passes" : "still fails");
    if (!outcome.ok()) {
      failing = std::move(outcome);
      break;
    }
  }
  if (failing.c.size != bots::SizeClass::kTest) {
    FuzzCase candidate = failing.c;
    candidate.size = bots::SizeClass::kTest;
    CaseOutcome outcome = run_case(candidate, run_sim, run_real);
    log_line(log, "  shrink: size=test -> %s",
             outcome.ok() ? "passes" : "still fails");
    if (!outcome.ok()) failing = std::move(outcome);
  }
  return failing;
}

}  // namespace

CaseOutcome run_case(const FuzzCase& c, bool run_sim, bool run_real) {
  CaseOutcome outcome;
  outcome.c = c;

  EngineRun sim;
  EngineRun real;
  if (run_sim) {
    sim = run_sim_engine(c);
    outcome.problems.insert(outcome.problems.end(), sim.problems.begin(),
                            sim.problems.end());
  }
  if (run_real) {
    real = run_real_engine(c);
    outcome.problems.insert(outcome.problems.end(), real.problems.begin(),
                            real.problems.end());
  }
  if (run_sim && run_real) {
    for (const std::string& diff :
         diff_projections(sim.projection, real.projection)) {
      outcome.problems.push_back("[differential] " + diff);
    }
  }
  return outcome;
}

FuzzReport fuzz_schedules(const FuzzOptions& options, std::FILE* log) {
  FuzzReport report;
  for (const std::string& kernel : options.kernels) {
    for (int threads : options.threads) {
      // Seeds are split deterministically per (kernel, threads) pair so
      // adding a kernel to the sweep does not shift every other seed.
      std::uint64_t pair_salt = options.base_seed;
      for (char ch : kernel) {
        pair_salt = pair_salt * 1099511628211ULL ^
                    static_cast<std::uint64_t>(ch);
      }
      pair_salt ^= static_cast<std::uint64_t>(threads) << 32;
      SplitMix64 split(pair_salt);
      std::uint64_t pair_failures = 0;
      for (int i = 0; i < options.seeds; ++i) {
        FuzzCase c;
        c.kernel = kernel;
        c.threads = threads;
        c.seed = split.next();
        c.size = options.size;
        CaseOutcome outcome = run_case(c, options.run_sim, options.run_real);
        ++report.cases_run;
        if (outcome.ok()) continue;
        ++pair_failures;
        log_line(log, "FAIL kernel=%s threads=%d seed=0x%016" PRIx64,
                 kernel.c_str(), threads, c.seed);
        for (const std::string& p : outcome.problems) {
          log_line(log, "  %s", p.c_str());
        }
        if (options.shrink) {
          outcome = shrink_case(std::move(outcome), options.threads,
                                options.run_sim, options.run_real, log);
        }
        log_line(log, "  replay: %s",
                 replay_command(outcome.c).c_str());
        report.failures.push_back(std::move(outcome));
      }
      log_line(log, "kernel=%s threads=%d: %d seeds, %" PRIu64 " failures",
               kernel.c_str(), threads, options.seeds, pair_failures);
    }
  }
  return report;
}

ReplayResult replay_seed(const FuzzCase& c) {
  ReplayResult out;

  auto one_run = [&c](std::string* rendered) -> std::size_t {
    trace::TraceRecorder recorder;
    RegionRegistry registry;  // rendering needs the region names
    rt::SchedulePolicy policy(c.seed);
    rt::SimConfig config;
    config.policy = &policy;
    rt::SimRuntime sim(config);
    EngineRun run = run_engine(c, sim, "sim", &recorder);
    (void)run;
    const std::size_t events = recorder.event_count();
    trace::ChromeExportOptions options;
    const trace::Trace trace = recorder.take();
    *rendered = render_chrome_trace(trace, options);
    return events;
  };
  // The recorder must see the same registry the instrumentor fills, so
  // replay renders with handle labels only (registry = nullptr): the
  // comparison is over event structure and timestamps, which is what the
  // seed promises to reproduce.

  std::string first;
  std::string second;
  out.event_count = one_run(&first);
  one_run(&second);
  out.trace_identical = (first == second);
  if (!out.trace_identical) {
    out.problems.push_back(
        "replay diverged: two sim runs with the same seed rendered "
        "different Chrome traces");
  }

  // A full differential pass on the replayed seed (sim invariants, real
  // engine, projection diff) so the replay reports the original failure
  // too, not just determinism.
  CaseOutcome outcome = run_case(c, /*run_sim=*/true, /*run_real=*/true);
  out.problems.insert(out.problems.end(), outcome.problems.begin(),
                      outcome.problems.end());
  out.chrome_trace = std::move(first);
  return out;
}

std::string replay_command(const FuzzCase& c) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "fuzz_schedules --replay 0x%016" PRIx64
                " --kernels %s --threads %d --size %s",
                c.seed, c.kernel.c_str(), c.threads, size_name(c.size));
  return buf;
}

const char* size_name(bots::SizeClass size) noexcept {
  switch (size) {
    case bots::SizeClass::kTest: return "test";
    case bots::SizeClass::kSmall: return "small";
    case bots::SizeClass::kMedium: return "medium";
  }
  return "?";
}

bool parse_size(const std::string& text, bots::SizeClass* out) noexcept {
  if (text == "test") {
    *out = bots::SizeClass::kTest;
  } else if (text == "small") {
    *out = bots::SizeClass::kSmall;
  } else if (text == "medium") {
    *out = bots::SizeClass::kMedium;
  } else {
    return false;
  }
  return true;
}

}  // namespace taskprof::check
