#include "check/invariants.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "profile/calltree.hpp"

namespace taskprof::check {

namespace {

constexpr std::size_t kMaxViolations = 100;

/// Collects violations with printf formatting and a suppression cap (a
/// single corrupt merge can taint thousands of nodes; the first hundred
/// lines identify it).
class Collector {
 public:
  explicit Collector(InvariantReport& report) : report_(report) {}

  [[gnu::format(printf, 3, 4)]] void fail(const char* tag, const char* fmt,
                                          ...) {
    ++total_;
    if (total_ > kMaxViolations) return;
    char buf[512];
    int off = std::snprintf(buf, sizeof buf, "[%s] ", tag);
    std::va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf + off, sizeof buf - static_cast<std::size_t>(off), fmt,
                   args);
    va_end(args);
    report_.violations.emplace_back(buf);
  }

  void finish() {
    if (total_ > kMaxViolations) {
      report_.violations.push_back(
          "[suppressed] " + std::to_string(total_ - kMaxViolations) +
          " further violations");
    }
  }

 private:
  InvariantReport& report_;
  std::size_t total_ = 0;
};

/// Per-tree accumulation used by the cross-tree conservation checks.
struct TreeTotals {
  Ticks stub_inclusive = 0;          ///< summed over stub nodes
  std::uint64_t create_visits = 0;   ///< visits of kTaskCreate nodes
  std::uint64_t taskwait_visits = 0;
  std::uint64_t barrier_visits = 0;  ///< kBarrier + kImplicitBarrier
  std::uint64_t stub_count = 0;
};

const char* node_name(const CallNode& node, const RegionRegistry& registry) {
  if (node.region >= registry.size()) return "<invalid region>";
  return registry.info(node.region).name.c_str();
}

/// Checks that apply to every node of every tree.
void check_node(const CallNode& node, const RegionRegistry& registry,
                bool in_implicit_tree, const MeasureOptions& options,
                Collector& out, TreeTotals& totals) {
  const char* name = node_name(node, registry);
  if (node.region >= registry.size()) {
    out.fail("region-handle", "node has region handle %u outside registry",
             node.region);
    return;  // type-based checks are meaningless for this node
  }
  const RegionType type = registry.info(node.region).type;

  // Parent backlink integrity: merge must preserve the intrusive links.
  // The same pass validates the maintained child metadata (counter, tail
  // pointer) and the lookup accelerators (hot_child, child_index) against
  // the sibling list, which stays the source of truth.
  std::size_t counted_children = 0;
  const CallNode* tail = nullptr;
  bool hot_child_found = node.hot_child == nullptr;
  for (const CallNode* child = node.first_child; child != nullptr;
       child = child->next_sibling) {
    if (child->parent != &node) {
      out.fail("tree-links", "child '%s' of '%s' has a stale parent link",
               node_name(*child, registry), name);
    }
    ++counted_children;
    tail = child;
    if (child == node.hot_child) hot_child_found = true;
    if (node.child_index != nullptr &&
        node.child_index->find(child->region, child->parameter,
                               child->is_stub) != child) {
      out.fail("child-index",
               "node '%s': child '%s' missing from the promoted index", name,
               node_name(*child, registry));
    }
  }
  if (node.n_children != counted_children) {
    out.fail("child-metadata",
             "node '%s': n_children %u != %zu children in the sibling list",
             name, node.n_children, counted_children);
  }
  if (node.last_child != tail) {
    out.fail("child-metadata", "node '%s': last_child does not point at the "
             "sibling-list tail", name);
  }
  if (!hot_child_found) {
    out.fail("child-metadata",
             "node '%s': hot_child points outside the child list", name);
  }
  if (node.child_index != nullptr &&
      node.child_index->size() != counted_children) {
    out.fail("child-index", "node '%s': index holds %zu entries for %zu "
             "children", name, node.child_index->size(), counted_children);
  }
  // Sibling identity uniqueness: a correct merge folds same-identity
  // children together; duplicates mean instances were attached, not merged.
  for (const CallNode* a = node.first_child; a != nullptr;
       a = a->next_sibling) {
    for (const CallNode* b = a->next_sibling; b != nullptr;
         b = b->next_sibling) {
      if (a->region == b->region && a->parameter == b->parameter &&
          a->is_stub == b->is_stub) {
        out.fail("merge-identity",
                 "node '%s' has duplicate children '%s' (parameter %" PRId64
                 ")",
                 name, node_name(*a, registry), a->parameter);
      }
    }
  }

  // A node exists because it was entered at least once.
  if (node.visits == 0) {
    out.fail("visits", "node '%s' exists but records zero visits", name);
  }

  // No negative or double-counted durations: inclusive covers the
  // children, so exclusive = inclusive - sum(children) must be >= 0.
  if (node.inclusive < 0) {
    out.fail("negative-time", "node '%s' has negative inclusive %" PRId64,
             name, node.inclusive);
  }
  if (node.exclusive() < 0) {
    out.fail("double-count",
             "node '%s': children sum to %" PRId64
             " > inclusive %" PRId64 " (time counted twice)",
             name, node.children_inclusive(), node.inclusive);
  }

  // Per-construct inclusive time must equal the sum of its fragment
  // times: the per-visit statistics were fed from the same clock reads.
  if (node.visit_stats.count != node.visits) {
    out.fail("fragment-count",
             "node '%s': %" PRIu64 " visits but %" PRIu64
             " recorded fragments",
             name, node.visits, node.visit_stats.count);
  }
  if (node.visit_stats.sum != node.inclusive) {
    out.fail("fragment-sum",
             "node '%s': fragment sum %" PRId64 " != inclusive %" PRId64,
             name, node.visit_stats.sum, node.inclusive);
  }
  if (node.visit_stats.count > 0) {
    const DurationStats& s = node.visit_stats;
    if (s.min > s.max || s.sum < s.min || s.sum > s.max * static_cast<Ticks>(
                                                             s.count)) {
      out.fail("fragment-range",
               "node '%s': min %" PRId64 " / max %" PRId64 " / sum %" PRId64
               " / count %" PRIu64 " inconsistent",
               name, s.min, s.max, s.sum, s.count);
    }
  }

  // Stub placement (paper §IV-B4): stubs exist only when enabled, only in
  // the implicit tree, only under scheduling points, and only as leaves
  // (task execution continues in the instance tree, never under the stub).
  if (node.is_stub) {
    ++totals.stub_count;
    totals.stub_inclusive += node.inclusive;
    if (!options.stub_nodes) {
      out.fail("stub-placement", "stub '%s' with stub_nodes disabled", name);
    }
    if (!in_implicit_tree && !options.creation_site_attribution) {
      out.fail("stub-placement", "stub '%s' inside a merged task tree", name);
    }
    if (node.parent == nullptr) {
      out.fail("stub-placement", "stub '%s' is a tree root", name);
    } else if (node.parent->region < registry.size() &&
               !is_scheduling_point(registry.info(node.parent->region).type)) {
      out.fail("stub-placement",
               "stub '%s' under '%s' (%s), not a scheduling point", name,
               node_name(*node.parent, registry),
               std::string(region_type_name(
                               registry.info(node.parent->region).type))
                   .c_str());
    }
    if (node.first_child != nullptr) {
      out.fail("stub-placement", "stub '%s' has children", name);
    }
  }

  switch (type) {
    case RegionType::kTaskCreate:
      totals.create_visits += node.visits;
      break;
    case RegionType::kTaskwait:
      totals.taskwait_visits += node.visits;
      break;
    case RegionType::kBarrier:
    case RegionType::kImplicitBarrier:
      totals.barrier_visits += node.visits;
      break;
    default:
      break;
  }
}

}  // namespace

std::string InvariantReport::to_string() const {
  std::string out;
  for (const std::string& v : violations) {
    if (!out.empty()) out += '\n';
    out += v;
  }
  return out;
}

InvariantReport check_profile(const AggregateProfile& profile,
                              const RegionRegistry& registry,
                              const rt::TeamStats* stats,
                              const telemetry::Snapshot* telemetry,
                              const MeasureOptions& options) {
  InvariantReport report;
  Collector out(report);

  if (profile.implicit_root == nullptr) {
    out.fail("structure", "profile has no implicit root");
    out.finish();
    return report;
  }

  TreeTotals totals;
  Ticks task_tree_inclusive = 0;
  std::uint64_t task_root_visits = 0;

  for_each_node(profile.implicit_root, [&](const CallNode& node, int) {
    ++report.nodes_checked;
    check_node(node, registry, /*in_implicit_tree=*/true, options, out,
               totals);
  });
  for (const CallNode* root : profile.task_roots) {
    if (root == nullptr) {
      out.fail("structure", "null merged task root");
      continue;
    }
    if (root->region < registry.size() &&
        registry.info(root->region).type != RegionType::kTask) {
      out.fail("structure", "merged task root '%s' is not a task construct",
               node_name(*root, registry));
    }
    task_tree_inclusive += root->inclusive;
    task_root_visits += root->visits;
    for_each_node(root, [&](const CallNode& node, int) {
      ++report.nodes_checked;
      check_node(node, registry, /*in_implicit_tree=*/false, options, out,
                 totals);
    });
  }

  // The merged implicit root accumulates one visit per thread.
  if (profile.implicit_root->visits != profile.thread_count) {
    out.fail("merge-conservation",
             "implicit root visits %" PRIu64 " != thread count %zu",
             profile.implicit_root->visits, profile.thread_count);
  }
  if (profile.max_concurrent_per_thread.size() != profile.thread_count) {
    out.fail("structure",
             "per-thread concurrency marks: %zu entries for %zu threads",
             profile.max_concurrent_per_thread.size(), profile.thread_count);
  } else {
    std::size_t max_seen = 0;
    for (std::size_t mark : profile.max_concurrent_per_thread) {
      if (mark > max_seen) max_seen = mark;
    }
    if (max_seen != profile.max_concurrent_any_thread) {
      out.fail("structure",
               "max_concurrent_any_thread %zu != max over threads %zu",
               profile.max_concurrent_any_thread, max_seen);
    }
  }

  // Time conservation between the two views of task execution: every tick
  // a task ran is bracketed by a stub visit in the implicit tree and by
  // the task's own instance tree, from the same clock reads.  A partial
  // capture breaks exactly this pairing — in-flight instances are absent
  // from the merged task trees while their stub frames were closed at the
  // capture instant — so the cross-tree comparison is skipped for it (the
  // per-node checks above still hold).
  if (options.stub_nodes && options.pause_on_suspend &&
      !options.creation_site_attribution && !profile.partial_capture) {
    if (totals.stub_inclusive != task_tree_inclusive) {
      out.fail("conservation",
               "stub time %" PRId64 " != merged task-tree time %" PRId64,
               totals.stub_inclusive, task_tree_inclusive);
    }
  }

  // Engine stats and telemetry describe the run up to *now*, the profile
  // describes the run up to its capture instant; for a mid-run partial
  // capture those two points differ, so the cross-checks against them are
  // meaningful only for a finalized profile.
  if (stats != nullptr && !profile.partial_capture) {
    // Visits conserved across merge: every executed instance contributes
    // exactly one visit to its construct's merged root.
    if (task_root_visits != stats->tasks_executed) {
      out.fail("merge-conservation",
               "merged task-root visits %" PRIu64
               " != tasks executed %" PRIu64,
               task_root_visits, stats->tasks_executed);
    }
    // Creation vs. execution: every created task ran to completion inside
    // the region (the implicit barrier drains the queues), and every
    // creation passed through a "create" region node.
    if (stats->tasks_created != stats->tasks_executed) {
      out.fail("engine-stats",
               "tasks created %" PRIu64 " != tasks executed %" PRIu64
               " after region end",
               stats->tasks_created, stats->tasks_executed);
    }
    if (totals.create_visits != stats->tasks_created) {
      out.fail("creation-attribution",
               "create-region visits %" PRIu64 " != tasks created %" PRIu64,
               totals.create_visits, stats->tasks_created);
    }
    if (stats->steals > stats->steal_attempts) {
      out.fail("engine-stats",
               "steals %" PRIu64 " > steal attempts %" PRIu64, stats->steals,
               stats->steal_attempts);
    }
    if (stats->tasks_executed > 0 &&
        (profile.max_concurrent_any_thread < 1 ||
         profile.max_concurrent_any_thread > stats->tasks_executed)) {
      out.fail("concurrency-bound",
               "max concurrent instances %zu outside [1, %" PRIu64 "]",
               profile.max_concurrent_any_thread, stats->tasks_executed);
    }
  }

  if (telemetry != nullptr && !profile.partial_capture) {
    const auto counter = [&](telemetry::Counter c) {
      return telemetry->counter(c);
    };
    using C = telemetry::Counter;
    if (stats != nullptr) {
      if (counter(C::kTasksExecuted) != stats->tasks_executed) {
        out.fail("telemetry",
                 "tasks_executed counter %" PRIu64 " != engine stats %" PRIu64,
                 counter(C::kTasksExecuted), stats->tasks_executed);
      }
      if (counter(C::kTasksCreated) != stats->tasks_created) {
        out.fail("telemetry",
                 "tasks_created counter %" PRIu64 " != engine stats %" PRIu64,
                 counter(C::kTasksCreated), stats->tasks_created);
      }
    }
    if (counter(C::kTasksDeferred) + counter(C::kTasksUndeferred) !=
        counter(C::kTasksCreated)) {
      out.fail("telemetry",
               "deferred %" PRIu64 " + undeferred %" PRIu64
               " != created %" PRIu64,
               counter(C::kTasksDeferred), counter(C::kTasksUndeferred),
               counter(C::kTasksCreated));
    }
    if (counter(C::kStealSuccesses) > counter(C::kStealAttempts)) {
      out.fail("telemetry",
               "steal successes %" PRIu64 " > attempts %" PRIu64,
               counter(C::kStealSuccesses), counter(C::kStealAttempts));
    }
    // Scheduling-point entries pair 1:1 with the construct nodes' visits
    // (both are driven by the same engine callbacks).
    if (counter(C::kTaskwaitEntries) != totals.taskwait_visits) {
      out.fail("telemetry",
               "taskwait entries %" PRIu64 " != taskwait node visits %" PRIu64,
               counter(C::kTaskwaitEntries), totals.taskwait_visits);
    }
    if (counter(C::kBarrierEntries) != totals.barrier_visits) {
      out.fail("telemetry",
               "barrier entries %" PRIu64 " != barrier node visits %" PRIu64,
               counter(C::kBarrierEntries), totals.barrier_visits);
    }
  }

  out.finish();
  return report;
}

}  // namespace taskprof::check
