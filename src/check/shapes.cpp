#include "check/shapes.hpp"

#include "check/random_tree.hpp"
#include "instrument/instrumentor.hpp"
#include "rt/sim_runtime.hpp"
#include "trace/recorder.hpp"

namespace taskprof::check {

namespace {

// Sim cost model for reference: create_local = 150, create_service = 260,
// dequeue_service = 220 ticks.  Scenario numbers below are chosen against
// those costs so each pattern clears its detector threshold with margin.

/// kSerializedSpawnChain: each link works, spawns exactly one successor,
/// and waits for it — the creation tree is a 40-deep linked list carrying
/// all the work, so logical parallelism pins near 1.
void chain_link(rt::TaskContext& ctx, RegionHandle region, int remaining) {
  rt::TaskAttrs attrs;
  attrs.region = region;
  ctx.create_task(
      [region, remaining](rt::TaskContext& c) {
        c.work(3'000);
        if (remaining > 1) {
          chain_link(c, region, remaining - 1);
          c.taskwait();
        }
      },
      attrs);
}

}  // namespace

const char* anti_pattern_name(AntiPattern pattern) noexcept {
  switch (pattern) {
    case AntiPattern::kCreationStorm: return "creation_storm";
    case AntiPattern::kSerializedSpawnChain: return "serialized_spawn_chain";
    case AntiPattern::kStarvedWorkers: return "starved_workers";
    case AntiPattern::kGranularityCollapse: return "granularity_collapse";
    case AntiPattern::kTaskwaitSerialization: return "taskwait_serialization";
    case AntiPattern::kClean: return "clean";
  }
  return "?";
}

const char* anti_pattern_detector(AntiPattern pattern) noexcept {
  return pattern == AntiPattern::kClean ? "" : anti_pattern_name(pattern);
}

ShapeRun run_anti_pattern(AntiPattern pattern) {
  ShapeRun out;
  out.registry = std::make_unique<RegionRegistry>();
  RegionRegistry& registry = *out.registry;

  rt::SimRuntime runtime;
  Instrumentor instrumentor(registry, MeasureOptions{});
  trace::TraceRecorder recorder;
  telemetry::Registry telem;
  rt::FanoutHooks fanout;
  fanout.add(&instrumentor);
  fanout.add(&recorder);
  runtime.set_hooks(&fanout);
  runtime.set_telemetry(&telem);

  switch (pattern) {
    case AntiPattern::kCreationStorm: {
      // One thread creates 2000 tasks at ~150 ticks apiece while the only
      // other thread retires them at ~5000 ticks apiece: the ready backlog
      // climbs into the thousands (threshold at 2 threads: 192).
      out.threads = 2;
      const RegionHandle task =
          registry.register_region("storm_task", RegionType::kTask);
      out.task_region = task;
      runtime.parallel(out.threads, [&](rt::TaskContext& ctx) {
        if (!ctx.single()) return;
        rt::TaskAttrs attrs;
        attrs.region = task;
        for (int i = 0; i < 2'000; ++i) {
          ctx.create_task([](rt::TaskContext& c) { c.work(5'000); }, attrs);
        }
      });
      break;
    }
    case AntiPattern::kSerializedSpawnChain: {
      out.threads = 2;
      const RegionHandle task =
          registry.register_region("chain_task", RegionType::kTask);
      out.task_region = task;
      runtime.parallel(out.threads, [&](rt::TaskContext& ctx) {
        if (!ctx.single()) return;
        chain_link(ctx, task, 40);
        ctx.taskwait();
      });
      break;
    }
    case AntiPattern::kStarvedWorkers: {
      // Two 2 ms tasks on an 8-thread team: six threads spend the whole
      // region waiting at the barrier, and work/span caps parallelism at 2.
      out.threads = 8;
      const RegionHandle task =
          registry.register_region("starve_task", RegionType::kTask);
      out.task_region = task;
      runtime.parallel(out.threads, [&](rt::TaskContext& ctx) {
        if (!ctx.single()) return;
        rt::TaskAttrs attrs;
        attrs.region = task;
        for (int i = 0; i < 2; ++i) {
          ctx.create_task([](rt::TaskContext& c) { c.work(2'000'000); },
                          attrs);
        }
        ctx.taskwait();
      });
      break;
    }
    case AntiPattern::kGranularityCollapse: {
      // Complete binary tree, depth 10: 2046 tasks of 10 ticks body work
      // against ~150 ticks creation cost — ratio ~15x with bodies far
      // under the 150 ns floor.
      out.threads = 4;
      UniformTree tree(registry, /*work=*/10);
      out.task_region = tree.task_region();
      runtime.parallel(out.threads, [&](rt::TaskContext& ctx) {
        if (!ctx.single()) return;
        tree.body(ctx, /*depth=*/10, /*fanout=*/2);
      });
      break;
    }
    case AntiPattern::kTaskwaitSerialization: {
      // Spawn-wait lockstep: 24 sequential (spawn, taskwait) rounds keep
      // at most one task in flight while the spawner blocks.
      out.threads = 4;
      const RegionHandle task =
          registry.register_region("lockstep_task", RegionType::kTask);
      out.task_region = task;
      runtime.parallel(out.threads, [&](rt::TaskContext& ctx) {
        if (!ctx.single()) return;
        rt::TaskAttrs attrs;
        attrs.region = task;
        for (int i = 0; i < 24; ++i) {
          ctx.create_task([](rt::TaskContext& c) { c.work(8'000); }, attrs);
          ctx.taskwait();
        }
      });
      break;
    }
    case AntiPattern::kClean: {
      // Healthy fan-out: 363 tasks of 4000 ticks in a fanout-3 tree —
      // enough creations to arm every detector's minimums without
      // tripping any of them.
      out.threads = 4;
      UniformTree tree(registry, /*work=*/4'000);
      out.task_region = tree.task_region();
      runtime.parallel(out.threads, [&](rt::TaskContext& ctx) {
        if (!ctx.single()) return;
        tree.body(ctx, /*depth=*/5, /*fanout=*/3);
      });
      break;
    }
  }

  runtime.set_hooks(nullptr);
  runtime.set_telemetry(nullptr);
  instrumentor.finalize();
  out.profile = instrumentor.aggregate();
  out.trace = recorder.take();
  out.telemetry = telem.snapshot();
  return out;
}

}  // namespace taskprof::check
