// fuzz_schedules: the schedule-fuzzing / differential-checking driver.
//
//   fuzz_schedules --seeds 256 --kernels fib,nqueens --threads 1,4,8
//   fuzz_schedules --replay 0x<seed> --kernels fib --threads 4
//
// Sweeps N seeds per (kernel, thread-count) pair through the sim and real
// engines under the seeded SchedulePolicy, checks every profile's
// structural invariants, diffs the engines' order-insensitive projections,
// shrinks failing seeds and prints a replay command per failure.  Exit
// code 0 = clean sweep, 1 = failures, 2 = usage error.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "check/fuzz.hpp"

namespace {

using taskprof::check::FuzzCase;
using taskprof::check::FuzzOptions;

void usage(std::FILE* to) {
  std::fputs(
      "usage: fuzz_schedules [options]\n"
      "  --seeds N          seeds per (kernel, threads) pair  [16]\n"
      "  --base-seed S      sweep base seed (decimal or 0x hex)\n"
      "  --kernels a,b      BOTS kernels and/or 'random'      [fib]\n"
      "  --threads 1,4,8    team sizes to sweep               [1,2,4]\n"
      "  --size CLASS       test | small | medium             [test]\n"
      "  --engine WHICH     both | sim | real                 [both]\n"
      "  --no-shrink        keep the first failing configuration\n"
      "  --log FILE         append the sweep log / failing seeds to FILE\n"
      "  --replay SEED      re-run one seed: deterministic sim replay\n"
      "                     (Chrome-trace diff) + full differential pass;\n"
      "                     uses the first --kernels / --threads entry\n"
      "  --chrome-out FILE  with --replay: write the replayed trace\n",
      to);
}

bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(text.c_str(), &end, 0);  // base 0: accepts 0x...
  return end != nullptr && *end == '\0';
}

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> items;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    if (end > start) items.push_back(text.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return items;
}

}  // namespace

int main(int argc, char** argv) {
  FuzzOptions options;
  bool have_replay = false;
  std::uint64_t replay_seed_value = 0;
  std::string log_path;
  std::string chrome_out;

  std::vector<std::string> args(argv + 1, argv + argc);
  auto take_value = [&args](std::size_t* i, const std::string& flag,
                            std::string* value) -> bool {
    const std::string& arg = args[*i];
    // Accept both "--flag value" and "--flag=value".
    if (arg == flag) {
      if (*i + 1 >= args.size()) return false;
      *value = args[++*i];
      return true;
    }
    if (arg.size() > flag.size() + 1 && arg.compare(0, flag.size(), flag) == 0 &&
        arg[flag.size()] == '=') {
      *value = arg.substr(flag.size() + 1);
      return true;
    }
    return false;
  };

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    std::string value;
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    }
    if (arg == "--no-shrink") {
      options.shrink = false;
      continue;
    }
    if (take_value(&i, "--seeds", &value)) {
      options.seeds = std::atoi(value.c_str());
      if (options.seeds <= 0) {
        std::fprintf(stderr, "fuzz_schedules: bad --seeds '%s'\n",
                     value.c_str());
        return 2;
      }
      continue;
    }
    if (take_value(&i, "--base-seed", &value)) {
      if (!parse_u64(value, &options.base_seed)) {
        std::fprintf(stderr, "fuzz_schedules: bad --base-seed '%s'\n",
                     value.c_str());
        return 2;
      }
      continue;
    }
    if (take_value(&i, "--kernels", &value)) {
      options.kernels = split_list(value);
      continue;
    }
    if (take_value(&i, "--threads", &value)) {
      options.threads.clear();
      for (const std::string& item : split_list(value)) {
        const int threads = std::atoi(item.c_str());
        if (threads <= 0) {
          std::fprintf(stderr, "fuzz_schedules: bad --threads entry '%s'\n",
                       item.c_str());
          return 2;
        }
        options.threads.push_back(threads);
      }
      continue;
    }
    if (take_value(&i, "--size", &value)) {
      if (!taskprof::check::parse_size(value, &options.size)) {
        std::fprintf(stderr, "fuzz_schedules: bad --size '%s'\n",
                     value.c_str());
        return 2;
      }
      continue;
    }
    if (take_value(&i, "--engine", &value)) {
      options.run_sim = (value == "both" || value == "sim");
      options.run_real = (value == "both" || value == "real");
      if (!options.run_sim && !options.run_real) {
        std::fprintf(stderr, "fuzz_schedules: bad --engine '%s'\n",
                     value.c_str());
        return 2;
      }
      continue;
    }
    if (take_value(&i, "--log", &value)) {
      log_path = value;
      continue;
    }
    if (take_value(&i, "--chrome-out", &value)) {
      chrome_out = value;
      continue;
    }
    if (take_value(&i, "--replay", &value)) {
      if (!parse_u64(value, &replay_seed_value)) {
        std::fprintf(stderr, "fuzz_schedules: bad --replay seed '%s'\n",
                     value.c_str());
        return 2;
      }
      have_replay = true;
      continue;
    }
    std::fprintf(stderr, "fuzz_schedules: unknown argument '%s'\n",
                 arg.c_str());
    usage(stderr);
    return 2;
  }

  if (options.kernels.empty() || options.threads.empty()) {
    std::fprintf(stderr, "fuzz_schedules: empty kernel or thread list\n");
    return 2;
  }

  std::FILE* log = nullptr;
  if (!log_path.empty()) {
    log = std::fopen(log_path.c_str(), "a");
    if (log == nullptr) {
      std::fprintf(stderr, "fuzz_schedules: cannot open log '%s'\n",
                   log_path.c_str());
      return 2;
    }
  }

  int exit_code = 0;
  if (have_replay) {
    FuzzCase c;
    c.kernel = options.kernels.front();
    c.threads = options.threads.front();
    c.seed = replay_seed_value;
    c.size = options.size;
    std::printf("replaying kernel=%s threads=%d size=%s seed=0x%016" PRIx64
                "\n",
                c.kernel.c_str(), c.threads,
                taskprof::check::size_name(c.size), c.seed);
    const taskprof::check::ReplayResult result =
        taskprof::check::replay_seed(c);
    std::printf("deterministic replay: %s (%zu events)\n",
                result.trace_identical ? "event order identical"
                                       : "DIVERGED",
                result.event_count);
    for (const std::string& p : result.problems) {
      std::printf("  %s\n", p.c_str());
    }
    if (!chrome_out.empty()) {
      std::FILE* f = std::fopen(chrome_out.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "fuzz_schedules: cannot write '%s'\n",
                     chrome_out.c_str());
        exit_code = 2;
      } else {
        std::fwrite(result.chrome_trace.data(), 1,
                    result.chrome_trace.size(), f);
        std::fclose(f);
        std::printf("chrome trace written to %s\n", chrome_out.c_str());
      }
    }
    if (!result.ok()) exit_code = 1;
    std::printf("replay %s\n", result.ok() ? "PASS" : "FAIL");
  } else {
    const taskprof::check::FuzzReport report =
        taskprof::check::fuzz_schedules(options, log != nullptr ? log
                                                                : stdout);
    std::printf("fuzz_schedules: %" PRIu64 " cases, %zu failing\n",
                report.cases_run, report.failures.size());
    for (const taskprof::check::CaseOutcome& failure : report.failures) {
      std::printf("FAIL kernel=%s threads=%d seed=0x%016" PRIx64 "\n",
                  failure.c.kernel.c_str(), failure.c.threads,
                  failure.c.seed);
      for (const std::string& p : failure.problems) {
        std::printf("  %s\n", p.c_str());
      }
      std::printf("  replay: %s\n",
                  taskprof::check::replay_command(failure.c).c_str());
    }
    if (!report.ok()) exit_code = 1;
  }

  if (log != nullptr) std::fclose(log);
  return exit_code;
}
