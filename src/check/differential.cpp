#include "check/differential.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <string_view>
#include <tuple>

#include "profile/calltree.hpp"

namespace taskprof::check {

namespace {

constexpr std::string_view kCreatePrefix = "create ";

[[gnu::format(printf, 1, 2)]] std::string fmt(const char* format, ...) {
  char buf[512];
  std::va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof buf, format, args);
  va_end(args);
  return buf;
}

std::string key_name(const ConstructCount& c) {
  if (c.parameter == kNoParameter) return c.name;
  return c.name + "(" + std::to_string(c.parameter) + ")";
}

}  // namespace

ProfileProjection project_profile(const AggregateProfile& profile,
                                  const RegionRegistry& registry,
                                  const rt::TeamStats& stats) {
  ProfileProjection proj;
  proj.tasks_executed = stats.tasks_executed;
  proj.tasks_created = stats.tasks_created;
  proj.max_concurrent = profile.max_concurrent_any_thread;
  proj.threads = profile.thread_count;

  std::map<std::pair<std::string, std::int64_t>, ConstructCount> constructs;

  for (const CallNode* root : profile.task_roots) {
    if (root == nullptr || root->region >= registry.size()) continue;
    const RegionInfo& info = registry.info(root->region);
    ConstructCount& entry =
        constructs[{info.name, root->parameter}];
    entry.name = info.name;
    entry.parameter = root->parameter;
    entry.instances += root->visits;
  }

  // Creation counts live wherever the creating construct ran: implicit
  // trees and task trees both.  kTaskCreate regions are named
  // "create <construct>"; creation nodes carry the created task's
  // parameter, matching the merged roots' keys.
  auto scan_creates = [&](const CallNode* root) {
    for_each_node(root, [&](const CallNode& node, int) {
      if (node.region >= registry.size()) return;
      const RegionInfo& info = registry.info(node.region);
      if (info.type != RegionType::kTaskCreate) return;
      std::string construct = info.name;
      if (construct.size() > kCreatePrefix.size() &&
          std::string_view(construct).substr(0, kCreatePrefix.size()) ==
              kCreatePrefix) {
        construct = construct.substr(kCreatePrefix.size());
      }
      ConstructCount& entry = constructs[{construct, node.parameter}];
      entry.name = construct;
      entry.parameter = node.parameter;
      entry.creations += node.visits;
    });
  };
  scan_creates(profile.implicit_root);
  for (const CallNode* root : profile.task_roots) scan_creates(root);

  proj.constructs.reserve(constructs.size());
  for (auto& [key, value] : constructs) proj.constructs.push_back(value);
  return proj;
}

std::vector<std::string> diff_projections(const ProfileProjection& a,
                                          const ProfileProjection& b) {
  std::vector<std::string> diffs;
  const char* an = a.engine.empty() ? "lhs" : a.engine.c_str();
  const char* bn = b.engine.empty() ? "rhs" : b.engine.c_str();

  if (a.tasks_executed != b.tasks_executed) {
    diffs.push_back(fmt("tasks executed: %s=%" PRIu64 " %s=%" PRIu64, an,
                        a.tasks_executed, bn, b.tasks_executed));
  }
  if (a.tasks_created != b.tasks_created) {
    diffs.push_back(fmt("tasks created: %s=%" PRIu64 " %s=%" PRIu64, an,
                        a.tasks_created, bn, b.tasks_created));
  }
  if (a.checksum != b.checksum) {
    diffs.push_back(fmt("checksum: %s=%" PRIu64 " %s=%" PRIu64, an,
                        a.checksum, bn, b.checksum));
  }
  if (!a.self_check_ok) diffs.push_back(fmt("%s failed its self-check", an));
  if (!b.self_check_ok) diffs.push_back(fmt("%s failed its self-check", bn));

  // Concurrency is schedule-dependent, but its bounds are not.
  for (const ProfileProjection* p : {&a, &b}) {
    const char* pn = p->engine.empty() ? "engine" : p->engine.c_str();
    if (p->tasks_executed > 0 &&
        (p->max_concurrent < 1 || p->max_concurrent > p->tasks_executed)) {
      diffs.push_back(
          fmt("%s: max concurrent instances %zu outside [1, %" PRIu64 "]",
              pn, p->max_concurrent, p->tasks_executed));
    }
  }

  // Per-construct comparison: both lists are sorted by (name, parameter).
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < a.constructs.size() || ib < b.constructs.size()) {
    const ConstructCount* ca =
        ia < a.constructs.size() ? &a.constructs[ia] : nullptr;
    const ConstructCount* cb =
        ib < b.constructs.size() ? &b.constructs[ib] : nullptr;
    int order = 0;
    if (ca == nullptr) {
      order = 1;
    } else if (cb == nullptr) {
      order = -1;
    } else if (std::tie(ca->name, ca->parameter) <
               std::tie(cb->name, cb->parameter)) {
      order = -1;
    } else if (std::tie(cb->name, cb->parameter) <
               std::tie(ca->name, ca->parameter)) {
      order = 1;
    }
    if (order < 0) {
      diffs.push_back(fmt("construct '%s' only in %s",
                          key_name(*ca).c_str(), an));
      ++ia;
      continue;
    }
    if (order > 0) {
      diffs.push_back(fmt("construct '%s' only in %s",
                          key_name(*cb).c_str(), bn));
      ++ib;
      continue;
    }
    if (ca->instances != cb->instances) {
      diffs.push_back(fmt("construct '%s' instances: %s=%" PRIu64
                          " %s=%" PRIu64,
                          key_name(*ca).c_str(), an, ca->instances, bn,
                          cb->instances));
    }
    if (ca->creations != cb->creations) {
      diffs.push_back(fmt("construct '%s' creations: %s=%" PRIu64
                          " %s=%" PRIu64,
                          key_name(*ca).c_str(), an, ca->creations, bn,
                          cb->creations));
    }
    ++ia;
    ++ib;
  }
  return diffs;
}

}  // namespace taskprof::check
