#include "check/random_tree.hpp"

#include "common/rng.hpp"

namespace taskprof::check {

RandomTaskTree::RandomTaskTree(RegionRegistry& registry, TreeShape shape)
    : shape_(shape),
      task_a_(registry.register_region("rand_task_a", RegionType::kTask)),
      task_b_(registry.register_region("rand_task_b", RegionType::kTask)),
      user_(registry.register_region("user_fn", RegionType::kFunction)) {}

void RandomTaskTree::spawn(rt::TaskContext& ctx, std::uint64_t path_seed,
                           int depth) const {
  Xoshiro256 rng(path_seed);
  // Draw order is part of the generator's identity: seeds produce the
  // same trees as the original test_property generator, and the knobs
  // added later (undeferred, taskwait placement) draw strictly after the
  // original five decisions.
  const int children =
      depth >= shape_.max_depth
          ? 0
          : static_cast<int>(rng.next_below(
                static_cast<std::uint64_t>(shape_.max_fanout)));
  const bool untied = rng.next_double() < shape_.untied_fraction;
  const bool use_b = rng.next_double() < shape_.second_construct_fraction;
  const bool parameterized = rng.next_double() < shape_.parameter_fraction;
  const Ticks work =
      shape_.work_min + static_cast<Ticks>(rng.next_below(
                            static_cast<std::uint64_t>(shape_.work_span)));
  const bool enter_user = rng.next_double() < shape_.user_region_fraction;
  const bool undeferred = rng.next_double() < shape_.undeferred_fraction;
  const bool wait_for_children =
      rng.next_double() < shape_.taskwait_fraction;

  rt::TaskAttrs attrs;
  attrs.region = use_b ? task_b_ : task_a_;
  attrs.parameter = parameterized ? depth : kNoParameter;
  attrs.binding = untied ? rt::TaskBinding::kUntied : rt::TaskBinding::kTied;
  attrs.undeferred = undeferred;

  ctx.create_task(
      [this, path_seed, depth, children, work, enter_user,
       wait_for_children](rt::TaskContext& c) {
        if (enter_user) c.region_enter(user_);
        c.work(work);
        for (int i = 0; i < children; ++i) {
          spawn(c, path_seed * 31 + static_cast<std::uint64_t>(i) + 1,
                depth + 1);
        }
        if (children > 0 && wait_for_children) c.taskwait();
        c.work(work / 2);
        if (enter_user) c.region_exit(user_);
      },
      attrs);
}

rt::TeamStats RandomTaskTree::run(rt::Runtime& runtime, std::uint64_t seed,
                                  int threads, int roots) const {
  return runtime.parallel(threads, [&](rt::TaskContext& ctx) {
    if (!ctx.single()) return;
    for (int i = 0; i < roots; ++i) {
      spawn(ctx, seed * 1000 + static_cast<std::uint64_t>(i), 0);
    }
    ctx.taskwait();
  });
}

UniformTree::UniformTree(RegionRegistry& registry, Ticks work)
    : work_(work),
      task_(registry.register_region("uniform_task", RegionType::kTask)) {}

void UniformTree::body(rt::TaskContext& ctx, int depth, int fanout) const {
  ctx.work(work_);
  if (depth <= 0) return;
  for (int i = 0; i < fanout; ++i) {
    rt::TaskAttrs attrs;
    attrs.region = task_;
    ctx.create_task(
        [this, depth, fanout](rt::TaskContext& c) {
          body(c, depth - 1, fanout);
        },
        attrs);
  }
  ctx.taskwait();
}

std::uint64_t UniformTree::task_count(int depth, int fanout) noexcept {
  std::uint64_t total = 0;
  std::uint64_t level = 1;
  for (int k = 1; k <= depth; ++k) {
    level *= static_cast<std::uint64_t>(fanout);
    total += level;
  }
  return total;
}

}  // namespace taskprof::check
