// Schedule fuzzing: sweep seeds x kernels x thread counts through both
// engines, check every profile's invariants, diff the engines'
// projections, shrink failures, and replay seeds deterministically.
//
// Seed protocol: one 64-bit seed fully determines a case's perturbation
// (rt::SchedulePolicy) and — for the "random" pseudo-kernel — the program
// shape.  On the sim engine a seed reproduces the exact interleaving, so
// replay_seed() runs a case twice and byte-compares the rendered Chrome
// traces; on the real engine the seed biases the races, so a failing seed
// is replayed as a fresh differential run.  Failing cases shrink to the
// smallest thread count (then problem size) that still fails, and every
// failure carries a ready-to-paste replay command line.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bots/kernel.hpp"

namespace taskprof::check {

/// Name of the non-BOTS pseudo-kernel backed by RandomTaskTree.
inline constexpr const char* kRandomKernel = "random";

/// One point of the fuzz sweep.
struct FuzzCase {
  std::string kernel = "fib";  ///< BOTS kernel name or kRandomKernel
  int threads = 2;
  std::uint64_t seed = 0;
  bots::SizeClass size = bots::SizeClass::kTest;
};

/// Result of running one case (on one or both engines).
struct CaseOutcome {
  FuzzCase c;
  /// Empty when the case passed; otherwise one line per invariant
  /// violation / projection difference, tagged with the engine.
  std::vector<std::string> problems;

  [[nodiscard]] bool ok() const noexcept { return problems.empty(); }
};

struct FuzzOptions {
  std::vector<std::string> kernels{"fib"};
  std::vector<int> threads{1, 2, 4};
  int seeds = 16;                      ///< seeds per (kernel, threads) pair
  std::uint64_t base_seed = 0x5eedc0de;
  bots::SizeClass size = bots::SizeClass::kTest;
  bool run_sim = true;
  bool run_real = true;
  bool shrink = true;
};

struct FuzzReport {
  std::uint64_t cases_run = 0;
  std::vector<CaseOutcome> failures;  ///< shrunk, with replay commands

  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
};

/// Run one case: sim and/or real engine with the seeded policy, invariant
/// checks on each profile, and (when both engines ran) the differential
/// projection diff.
[[nodiscard]] CaseOutcome run_case(const FuzzCase& c, bool run_sim,
                                   bool run_real);

/// The sweep.  Progress and failures go to `log` (may be nullptr).
[[nodiscard]] FuzzReport fuzz_schedules(const FuzzOptions& options,
                                        std::FILE* log);

/// Deterministic replay: run the case twice on the sim engine with the
/// seeded policy and byte-compare the rendered Chrome traces (identical
/// event order required), plus the usual invariant checks.
struct ReplayResult {
  bool trace_identical = false;
  std::size_t event_count = 0;
  std::string chrome_trace;  ///< first run's rendering (for --chrome-out)
  std::vector<std::string> problems;

  [[nodiscard]] bool ok() const noexcept {
    return trace_identical && problems.empty();
  }
};
[[nodiscard]] ReplayResult replay_seed(const FuzzCase& c);

/// Command line that reproduces `c` with the fuzz_schedules binary.
[[nodiscard]] std::string replay_command(const FuzzCase& c);

/// SizeClass <-> string ("test", "small", "medium").
[[nodiscard]] const char* size_name(bots::SizeClass size) noexcept;
[[nodiscard]] bool parse_size(const std::string& text,
                              bots::SizeClass* out) noexcept;

}  // namespace taskprof::check
