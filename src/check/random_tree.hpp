// Property-based task-tree generators, shared by tests/test_property.cpp
// and the schedule fuzzer.
//
// RandomTaskTree grows a random tree of tasks whose every decision
// (fan-out, tied/untied, parameters, taskwait placement, work amount) is a
// pure function of the node's *path seed* — the program shape is therefore
// identical on both engines and under any schedule perturbation, which is
// what makes the sim/real differential comparison (src/check/differential)
// meaningful for random programs.  UniformTree is the deterministic
// complement: a complete fanout^depth tree with a closed-form task count,
// for tests that assert exact totals.
#pragma once

#include <cstdint>

#include "profile/region.hpp"
#include "rt/runtime.hpp"

namespace taskprof::check {

/// Distribution knobs for RandomTaskTree.  The defaults reproduce the
/// historical RandomProgram of tests/test_property.cpp.
struct TreeShape {
  int max_depth = 4;
  /// Children per task are drawn uniformly from [0, max_fanout).
  int max_fanout = 4;
  double untied_fraction = 0.3;
  /// Fraction of tasks using the second construct ("rand_task_b").
  double second_construct_fraction = 0.4;
  /// Fraction of tasks carrying their depth as a profile parameter.
  double parameter_fraction = 0.3;
  /// Fraction of task bodies wrapped in an instrumented user region.
  double user_region_fraction = 0.5;
  /// Probability that a spawning task waits for its children; the rest
  /// fire-and-forget (the implicit barrier collects them).
  double taskwait_fraction = 1.0;
  /// Fraction of tasks created undeferred (OpenMP `if(0)`), executing
  /// inline inside the creation construct.
  double undeferred_fraction = 0.0;
  Ticks work_min = 100;
  Ticks work_span = 5'000;  ///< work drawn from [work_min, work_min + span)
};

/// Seeded random task tree over two task constructs and one user region.
class RandomTaskTree {
 public:
  /// Registers the generator's regions in `registry` (idempotent: the
  /// registry dedups identical name/type pairs).
  explicit RandomTaskTree(RegionRegistry& registry, TreeShape shape = {});

  /// Create one random subtree rooted at a task whose decisions derive
  /// from `path_seed`.  Must be called from inside a parallel region.
  void spawn(rt::TaskContext& ctx, std::uint64_t path_seed, int depth) const;

  /// Convenience driver: one parallel region in which a single thread
  /// spawns `roots` top-level random trees and taskwaits.
  rt::TeamStats run(rt::Runtime& runtime, std::uint64_t seed, int threads,
                    int roots = 6) const;

  [[nodiscard]] RegionHandle task_a() const noexcept { return task_a_; }
  [[nodiscard]] RegionHandle task_b() const noexcept { return task_b_; }
  [[nodiscard]] RegionHandle user_region() const noexcept { return user_; }
  [[nodiscard]] const TreeShape& shape() const noexcept { return shape_; }

 private:
  TreeShape shape_;
  RegionHandle task_a_;
  RegionHandle task_b_;
  RegionHandle user_;
};

/// Complete task tree: every task up to `depth` spawns `fanout` children
/// and taskwaits; every task works `work` ticks.  fanout = 1 degenerates
/// into the suspended-chain scenario of paper §V-B.
class UniformTree {
 public:
  explicit UniformTree(RegionRegistry& registry, Ticks work = 400);

  /// Run the tree body: call from the implicit task (or a task body).
  void body(rt::TaskContext& ctx, int depth, int fanout) const;

  /// Number of explicit tasks body() creates: sum of fanout^k, k=1..depth.
  [[nodiscard]] static std::uint64_t task_count(int depth,
                                                int fanout) noexcept;

  [[nodiscard]] RegionHandle task_region() const noexcept { return task_; }

 private:
  Ticks work_;
  RegionHandle task_;
};

}  // namespace taskprof::check
