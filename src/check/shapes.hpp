// Seeded anti-pattern task-tree shapes for the diagnosis engine's test
// corpus.  Each shape is a small deterministic program (sim engine,
// virtual time) constructed to provably contain — or provably not
// contain — one of the detrimental patterns the src/diagnose detectors
// name.  tests/test_diagnose.cpp asserts the right detector fires with
// the right call path; tests/corpus/diagnose/*.case pin the full JSON
// reports byte-for-byte.
#pragma once

#include <memory>

#include "measure/aggregate.hpp"
#include "profile/region.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/trace.hpp"

namespace taskprof::check {

enum class AntiPattern : std::uint8_t {
  kCreationStorm,         ///< one thread floods the queue with slow tasks
  kSerializedSpawnChain,  ///< each task spawns exactly one successor
  kStarvedWorkers,        ///< two big tasks on a wide team
  kGranularityCollapse,   ///< bodies far cheaper than task creation
  kTaskwaitSerialization, ///< spawn one, wait, spawn one, wait, ...
  kClean,                 ///< healthy fan-out tree; must stay problem-free
};

inline constexpr AntiPattern kAllAntiPatterns[] = {
    AntiPattern::kCreationStorm,         AntiPattern::kSerializedSpawnChain,
    AntiPattern::kStarvedWorkers,        AntiPattern::kGranularityCollapse,
    AntiPattern::kTaskwaitSerialization, AntiPattern::kClean,
};

/// Stable scenario name ("creation_storm", ..., "clean").
[[nodiscard]] const char* anti_pattern_name(AntiPattern pattern) noexcept;

/// Id of the detector expected to flag the scenario ("" for kClean).
[[nodiscard]] const char* anti_pattern_detector(AntiPattern pattern) noexcept;

/// Everything a diagnosis consumes from one scenario run.
struct ShapeRun {
  std::unique_ptr<RegionRegistry> registry;
  AggregateProfile profile;
  trace::Trace trace;
  telemetry::Snapshot telemetry;
  int threads = 0;
  /// The construct the diagnosis should point at.
  RegionHandle task_region = kInvalidRegion;
};

/// Run the scenario on the deterministic sim engine with profile, trace,
/// and telemetry capture attached.  Identical calls produce identical
/// traces (and therefore byte-identical diagnosis JSON).
[[nodiscard]] ShapeRun run_anti_pattern(AntiPattern pattern);

}  // namespace taskprof::check
