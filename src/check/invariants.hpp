// Structural invariant checker for completed profiles.
//
// The Fig. 12 task-profiling algorithm promises structural guarantees
// that hold for *every* legal schedule: stub nodes appear only under
// scheduling points of the implicit task, the time recorded in the
// implicit tree's stubs equals the time recorded in the merged task
// trees, visits are conserved across the instance-tree merge, durations
// are never negative or double-counted, and the scheduler's telemetry
// counters agree with the call tree.  check_profile() walks a finalized
// AggregateProfile and reports every violated guarantee as a string —
// it never asserts, so the fuzzer (src/check/fuzz.hpp) can collect
// violations across seeds and shrink the failing case.
//
// The checks assume the default MeasureOptions (stub nodes on,
// execution-site attribution); pass the options actually used so checks
// that do not apply are skipped.
#pragma once

#include <string>
#include <vector>

#include "measure/aggregate.hpp"
#include "measure/task_profiler.hpp"
#include "profile/region.hpp"
#include "rt/runtime.hpp"
#include "telemetry/telemetry.hpp"

namespace taskprof::check {

/// Outcome of one check_profile() walk.
struct InvariantReport {
  /// One human-readable line per violated invariant, each prefixed with a
  /// stable tag ("[stub-placement] ...", "[conservation] ...").
  std::vector<std::string> violations;
  std::size_t nodes_checked = 0;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }

  /// All violations joined with newlines ("" when ok).
  [[nodiscard]] std::string to_string() const;
};

/// Walk `profile` and verify the paper's structural guarantees.  `stats`
/// and `telemetry` are optional; when given, cross-layer consistency
/// (engine counters vs. call tree vs. telemetry) is verified too.  The
/// telemetry snapshot must cover exactly the measured run(s).
///
/// Profiles flagged partial_capture (mid-run crash-safe snapshots) keep
/// every per-node structural check but skip the whole-run cross-checks
/// that a capture instant cannot satisfy: stub-vs-task-tree time
/// conservation and the engine-stats / telemetry comparisons.
[[nodiscard]] InvariantReport check_profile(
    const AggregateProfile& profile, const RegionRegistry& registry,
    const rt::TeamStats* stats = nullptr,
    const telemetry::Snapshot* telemetry = nullptr,
    const MeasureOptions& options = {});

}  // namespace taskprof::check
