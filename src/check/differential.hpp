// Order-insensitive profile projections for sim/real differential checks.
//
// The two engines schedule the same program very differently (virtual
// discrete-event time vs. racing OS threads), so their profiles cannot be
// compared tick-for-tick.  What *must* agree for a schedule-independent
// program is the projection onto counts and attribution structure:
// per-construct executed-instance counts, per-construct creation counts,
// total tasks created/executed, the kernel's self-verified checksum, and
// the concurrency bounds.  project_profile() extracts that projection;
// diff_projections() reports every disagreement as a string.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "measure/aggregate.hpp"
#include "profile/region.hpp"
#include "rt/runtime.hpp"

namespace taskprof::check {

/// Per-task-construct counts, keyed by (name, parameter) of the merged
/// task root.
struct ConstructCount {
  std::string name;
  std::int64_t parameter = kNoParameter;
  std::uint64_t instances = 0;  ///< merged root visits (= executions)
  std::uint64_t creations = 0;  ///< visits of the paired "create" region
};

/// Schedule-independent projection of one engine run.
struct ProfileProjection {
  std::string engine;  ///< label used in diff messages ("sim", "real")
  std::vector<ConstructCount> constructs;  ///< sorted by (name, parameter)
  std::uint64_t tasks_executed = 0;
  std::uint64_t tasks_created = 0;
  std::uint64_t checksum = 0;   ///< kernel result value (0 if none)
  bool self_check_ok = true;    ///< kernel self-verification outcome
  std::size_t max_concurrent = 0;
  std::size_t threads = 0;
};

/// Extract the projection from a finalized profile.  Creation counts are
/// matched to constructs by stripping the instrumentor's "create " name
/// prefix from kTaskCreate regions.
[[nodiscard]] ProfileProjection project_profile(
    const AggregateProfile& profile, const RegionRegistry& registry,
    const rt::TeamStats& stats);

/// Compare two projections of the same program; returns one line per
/// disagreement (empty when the engines agree).
[[nodiscard]] std::vector<std::string> diff_projections(
    const ProfileProjection& a, const ProfileProjection& b);

}  // namespace taskprof::check
