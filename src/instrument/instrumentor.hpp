// The instrumentation adapter: OPARI2/POMP2 stand-in.
//
// In the paper, OPARI2 rewrites the source so every OpenMP construct
// reports POMP2 events into Score-P.  Here the runtime engines emit
// scheduler events natively (rt::SchedulerHooks); the Instrumentor is the
// listener that translates them into the measurement layer's Enter / Exit
// / TaskBegin / TaskEnd / TaskSwitch calls and owns the per-thread
// profilers.
//
// Usage:
//   RegionRegistry registry;
//   Instrumentor instr(registry);
//   runtime.set_hooks(&instr);
//   runtime.parallel(4, body);
//   runtime.set_hooks(nullptr);
//   instr.finalize();
//   AggregateProfile profile = instr.aggregate();
#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "measure/aggregate.hpp"
#include "measure/task_profiler.hpp"
#include "profile/region.hpp"
#include "rt/hooks.hpp"

namespace taskprof {

class Instrumentor final : public rt::SchedulerHooks {
 public:
  /// `registry` must outlive the instrumentor; construct regions
  /// ("parallel", "implicit barrier", "taskwait", ...) are registered in
  /// it here.
  explicit Instrumentor(RegionRegistry& registry, MeasureOptions options = {});
  ~Instrumentor() override;

  /// Score-P-style measurement filtering: exclude a *user* region
  /// (RegionType::kFunction) from measurement — its enter/exit events are
  /// dropped, so its time folds into the parent node.  The standard
  /// mitigation when instrumentation of hot tiny functions dominates (the
  /// paper's fib scenario).  Task constructs and scheduling points cannot
  /// be filtered (the Fig. 12 algorithm needs them).  Call before
  /// measurement starts.
  void filter_region(RegionHandle region);

  Instrumentor(const Instrumentor&) = delete;
  Instrumentor& operator=(const Instrumentor&) = delete;

  // --- rt::SchedulerHooks --------------------------------------------------

  void on_parallel_begin(int num_threads) override;
  void on_parallel_end() override;
  void on_implicit_task_begin(ThreadId thread, const Clock& clock) override;
  void on_implicit_task_end(ThreadId thread) override;
  void on_task_create_begin(ThreadId thread, RegionHandle region,
                            std::int64_t parameter) override;
  void on_task_create_end(ThreadId thread, TaskInstanceId created,
                          RegionHandle region,
                          std::int64_t parameter) override;
  void on_task_begin(ThreadId thread, TaskInstanceId id, RegionHandle region,
                     std::int64_t parameter) override;
  void on_task_end(ThreadId thread, TaskInstanceId id) override;
  void on_task_switch(ThreadId thread, TaskInstanceId id) override;
  void on_task_migrate(ThreadId from, ThreadId to, TaskInstanceId id) override;
  void on_taskwait_begin(ThreadId thread) override;
  void on_taskwait_end(ThreadId thread) override;
  void on_barrier_begin(ThreadId thread, bool implicit) override;
  void on_barrier_end(ThreadId thread, bool implicit) override;
  void on_region_enter(ThreadId thread, RegionHandle region,
                       std::int64_t parameter) override;
  void on_region_exit(ThreadId thread, RegionHandle region) override;

  // --- Results --------------------------------------------------------------

  /// Close the implicit roots of all thread profilers.  Call after the
  /// last parallel region, while the engine's clocks are still valid.
  void finalize();

  /// Per-thread profile views (valid while the instrumentor lives).
  [[nodiscard]] std::vector<ThreadProfileView> views() const;

  /// Merged whole-program profile.
  [[nodiscard]] AggregateProfile aggregate() const;

  /// Mid-run crash-safe capture (src/snapshot): pause each live profiler
  /// at an event boundary (ThreadTaskProfiler::capture), copy its trees,
  /// and aggregate the copies into a partial profile.  Requires
  /// MeasureOptions::snapshot_every > 0 (profilers refuse to capture
  /// otherwise) and must be called from a thread that drives no
  /// profiler's events — the snapshot flusher's background thread.
  struct CaptureResult {
    AggregateProfile profile;            ///< partial_capture == true
    std::size_t profilers_live = 0;      ///< profilers that exist
    std::size_t profilers_captured = 0;  ///< profilers copied successfully
  };
  [[nodiscard]] CaptureResult capture_snapshot() const;

  /// Reset the per-thread concurrency high-water marks (the paper records
  /// the maximum per parallel region).
  void reset_concurrency_marks();

  /// Memory footprint of the measurement system (paper §V-B): call-tree
  /// nodes across all thread pools.  `nodes` is the high-water mark of
  /// live nodes (instance trees recycle through the free lists).
  struct MemoryStats {
    std::size_t nodes = 0;       ///< nodes ever carved (high-water)
    std::size_t free_nodes = 0;  ///< currently parked for reuse
    std::size_t bytes = 0;       ///< nodes * sizeof(CallNode)
  };
  [[nodiscard]] MemoryStats memory_stats() const;

  /// Direct access for tests; nullptr when the thread never ran.
  [[nodiscard]] ThreadTaskProfiler* profiler(ThreadId thread) noexcept;

  // --- Construct region handles ---------------------------------------------

  [[nodiscard]] RegionHandle implicit_task_region() const noexcept {
    return implicit_task_;
  }
  [[nodiscard]] RegionHandle parallel_region() const noexcept {
    return parallel_;
  }
  [[nodiscard]] RegionHandle implicit_barrier_region() const noexcept {
    return implicit_barrier_;
  }
  [[nodiscard]] RegionHandle barrier_region() const noexcept {
    return barrier_;
  }
  [[nodiscard]] RegionHandle taskwait_region() const noexcept {
    return taskwait_;
  }

  /// The "create task" region paired with a task-construct region
  /// (registered on demand: one creation region per construct).
  [[nodiscard]] RegionHandle create_region_for(RegionHandle task_region);

 private:
  ThreadTaskProfiler& profiler_for(ThreadId thread, const Clock& clock);

  RegionRegistry* registry_;
  MeasureOptions options_;

  RegionHandle implicit_task_;
  RegionHandle parallel_;
  RegionHandle implicit_barrier_;
  RegionHandle barrier_;
  RegionHandle taskwait_;

  // Indexed by ThreadId; slots are pre-sized single-threadedly in
  // on_parallel_begin, then each worker touches only its own slot.
  // profilers_mutex_ serializes the points where the table itself
  // changes (resize, slot creation) against capture_snapshot()'s
  // iteration from the flusher thread; per-event accesses read an
  // already-created slot and take no lock.
  std::vector<std::unique_ptr<ThreadTaskProfiler>> profilers_;
  mutable std::mutex profilers_mutex_;

  mutable std::mutex create_map_mutex_;
  std::unordered_map<RegionHandle, RegionHandle> create_regions_;

  // Filtered user regions (read-only during measurement).
  std::vector<bool> filtered_;
  [[nodiscard]] bool is_filtered(RegionHandle region) const noexcept {
    return region < filtered_.size() && filtered_[region];
  }
};

}  // namespace taskprof
