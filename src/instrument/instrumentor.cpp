#include "instrument/instrumentor.hpp"

#include "common/assert.hpp"

namespace taskprof {

Instrumentor::Instrumentor(RegionRegistry& registry, MeasureOptions options)
    : registry_(&registry), options_(options) {
  implicit_task_ =
      registry.register_region("implicit task", RegionType::kImplicitTask);
  parallel_ = registry.register_region("parallel", RegionType::kParallel);
  implicit_barrier_ = registry.register_region(
      "implicit barrier", RegionType::kImplicitBarrier);
  barrier_ = registry.register_region("barrier", RegionType::kBarrier);
  taskwait_ = registry.register_region("taskwait", RegionType::kTaskwait);
}

Instrumentor::~Instrumentor() = default;

void Instrumentor::on_parallel_begin(int num_threads) {
  if (profilers_.size() < static_cast<std::size_t>(num_threads)) {
    std::scoped_lock lock(profilers_mutex_);
    profilers_.resize(static_cast<std::size_t>(num_threads));
  }
}

void Instrumentor::on_parallel_end() {}

void Instrumentor::on_implicit_task_begin(ThreadId thread,
                                          const Clock& clock) {
  ThreadTaskProfiler& prof = profiler_for(thread, clock);
  prof.enter(parallel_);
}

void Instrumentor::on_implicit_task_end(ThreadId thread) {
  ThreadTaskProfiler* prof = profiler(thread);
  TASKPROF_ASSERT(prof != nullptr, "implicit end without begin");
  prof->exit(parallel_);
}

void Instrumentor::on_task_create_begin(ThreadId thread, RegionHandle region,
                                        std::int64_t parameter) {
  ThreadTaskProfiler* prof = profiler(thread);
  TASKPROF_ASSERT(prof != nullptr, "event on unknown thread");
  prof->enter(create_region_for(region), parameter);
}

void Instrumentor::on_task_create_end(ThreadId thread, TaskInstanceId created,
                                      RegionHandle region,
                                      std::int64_t parameter) {
  (void)parameter;
  ThreadTaskProfiler* prof = profiler(thread);
  TASKPROF_ASSERT(prof != nullptr, "event on unknown thread");
  prof->note_task_created(created);
  prof->exit(create_region_for(region));
}

void Instrumentor::on_task_begin(ThreadId thread, TaskInstanceId id,
                                 RegionHandle region,
                                 std::int64_t parameter) {
  ThreadTaskProfiler* prof = profiler(thread);
  TASKPROF_ASSERT(prof != nullptr, "event on unknown thread");
  prof->task_begin(region, id, parameter);
}

void Instrumentor::on_task_end(ThreadId thread, TaskInstanceId id) {
  ThreadTaskProfiler* prof = profiler(thread);
  TASKPROF_ASSERT(prof != nullptr, "event on unknown thread");
  prof->task_end(id);
}

void Instrumentor::on_task_switch(ThreadId thread, TaskInstanceId id) {
  ThreadTaskProfiler* prof = profiler(thread);
  TASKPROF_ASSERT(prof != nullptr, "event on unknown thread");
  prof->task_switch(id);
}

void Instrumentor::on_task_migrate(ThreadId from, ThreadId to,
                                   TaskInstanceId id) {
  ThreadTaskProfiler* src = profiler(from);
  ThreadTaskProfiler* dst = profiler(to);
  TASKPROF_ASSERT(src != nullptr && dst != nullptr,
                  "migration between unknown threads");
  dst->adopt_instance(src->detach_instance(id));
}

void Instrumentor::on_taskwait_begin(ThreadId thread) {
  ThreadTaskProfiler* prof = profiler(thread);
  TASKPROF_ASSERT(prof != nullptr, "event on unknown thread");
  prof->enter(taskwait_);
}

void Instrumentor::on_taskwait_end(ThreadId thread) {
  ThreadTaskProfiler* prof = profiler(thread);
  TASKPROF_ASSERT(prof != nullptr, "event on unknown thread");
  prof->exit(taskwait_);
}

void Instrumentor::on_barrier_begin(ThreadId thread, bool implicit) {
  ThreadTaskProfiler* prof = profiler(thread);
  TASKPROF_ASSERT(prof != nullptr, "event on unknown thread");
  prof->enter(implicit ? implicit_barrier_ : barrier_);
}

void Instrumentor::on_barrier_end(ThreadId thread, bool implicit) {
  ThreadTaskProfiler* prof = profiler(thread);
  TASKPROF_ASSERT(prof != nullptr, "event on unknown thread");
  prof->exit(implicit ? implicit_barrier_ : barrier_);
}

void Instrumentor::on_region_enter(ThreadId thread, RegionHandle region,
                                   std::int64_t parameter) {
  if (is_filtered(region)) return;
  ThreadTaskProfiler* prof = profiler(thread);
  TASKPROF_ASSERT(prof != nullptr, "event on unknown thread");
  prof->enter(region, parameter);
}

void Instrumentor::on_region_exit(ThreadId thread, RegionHandle region) {
  if (is_filtered(region)) return;
  ThreadTaskProfiler* prof = profiler(thread);
  TASKPROF_ASSERT(prof != nullptr, "event on unknown thread");
  prof->exit(region);
}

void Instrumentor::filter_region(RegionHandle region) {
  TASKPROF_ASSERT(registry_->info(region).type == RegionType::kFunction,
                  "only user function regions can be filtered");
  if (filtered_.size() <= region) filtered_.resize(region + 1, false);
  filtered_[region] = true;
}

void Instrumentor::finalize() {
  for (auto& prof : profilers_) {
    if (prof != nullptr) prof->finalize();
  }
}

std::vector<ThreadProfileView> Instrumentor::views() const {
  std::vector<ThreadProfileView> out;
  for (const auto& prof : profilers_) {
    if (prof != nullptr) out.push_back(prof->view());
  }
  return out;
}

AggregateProfile Instrumentor::aggregate() const {
  const std::vector<ThreadProfileView> all = views();
  return aggregate_profiles(all);
}

Instrumentor::CaptureResult Instrumentor::capture_snapshot() const {
  std::scoped_lock lock(profilers_mutex_);
  CaptureResult result;
  NodePool scratch;
  std::vector<ThreadTaskProfiler::CaptureView> captured;
  for (const auto& prof : profilers_) {
    if (prof == nullptr) continue;
    ++result.profilers_live;
    ThreadTaskProfiler::CaptureView view;
    if (prof->capture(scratch, view)) captured.push_back(std::move(view));
  }
  result.profilers_captured = captured.size();
  std::vector<ThreadProfileView> views;
  views.reserve(captured.size());
  for (const ThreadTaskProfiler::CaptureView& c : captured) {
    ThreadProfileView view;
    view.thread = c.thread;
    view.implicit_root = c.implicit_root;
    view.task_roots.assign(c.task_roots.begin(), c.task_roots.end());
    view.max_concurrent_instances = c.max_concurrent_instances;
    view.task_switches = c.task_switches;
    view.folded_events = c.folded_events;
    views.push_back(std::move(view));
  }
  result.profile = aggregate_profiles(views);
  result.profile.partial_capture = true;
  return result;
}

Instrumentor::MemoryStats Instrumentor::memory_stats() const {
  MemoryStats stats;
  for (const auto& prof : profilers_) {
    if (prof == nullptr) continue;
    stats.nodes += prof->pool().allocated();
    stats.free_nodes += prof->pool().free_count();
  }
  stats.bytes = stats.nodes * sizeof(CallNode);
  return stats;
}

void Instrumentor::reset_concurrency_marks() {
  for (auto& prof : profilers_) {
    if (prof != nullptr) prof->reset_max_concurrent();
  }
}

ThreadTaskProfiler* Instrumentor::profiler(ThreadId thread) noexcept {
  if (thread >= profilers_.size()) return nullptr;
  return profilers_[thread].get();
}

RegionHandle Instrumentor::create_region_for(RegionHandle task_region) {
  std::scoped_lock lock(create_map_mutex_);
  if (auto it = create_regions_.find(task_region);
      it != create_regions_.end()) {
    return it->second;
  }
  const RegionInfo& info = registry_->info(task_region);
  const RegionHandle handle = registry_->register_region(
      "create " + info.name, RegionType::kTaskCreate);
  create_regions_.emplace(task_region, handle);
  return handle;
}

ThreadTaskProfiler& Instrumentor::profiler_for(ThreadId thread,
                                               const Clock& clock) {
  TASKPROF_ASSERT(thread < profilers_.size(),
                  "thread id outside the announced team size");
  auto& slot = profilers_[thread];
  if (slot == nullptr) {
    // Lock held across construction so capture_snapshot never observes
    // a half-built profiler; only the owning thread creates its slot.
    std::scoped_lock lock(profilers_mutex_);
    slot = std::make_unique<ThreadTaskProfiler>(thread, clock, implicit_task_,
                                                options_);
  } else {
    slot->set_clock(clock);
  }
  return *slot;
}

}  // namespace taskprof
