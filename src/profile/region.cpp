#include "profile/region.hpp"

#include <memory>

#include "common/assert.hpp"

namespace taskprof {

std::string_view region_type_name(RegionType type) noexcept {
  switch (type) {
    case RegionType::kFunction: return "function";
    case RegionType::kParallel: return "parallel";
    case RegionType::kImplicitBarrier: return "implicit barrier";
    case RegionType::kBarrier: return "barrier";
    case RegionType::kTaskwait: return "taskwait";
    case RegionType::kTaskCreate: return "create task";
    case RegionType::kTask: return "task";
    case RegionType::kImplicitTask: return "implicit task";
    case RegionType::kParameter: return "parameter";
  }
  return "unknown";
}

RegionHandle RegionRegistry::register_region(RegionInfo info) {
  std::scoped_lock lock(mutex_);
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    if (regions_[i]->type == info.type && regions_[i]->name == info.name) {
      return static_cast<RegionHandle>(i);
    }
  }
  regions_.push_back(std::make_unique<RegionInfo>(std::move(info)));
  return static_cast<RegionHandle>(regions_.size() - 1);
}

const RegionInfo& RegionRegistry::info(RegionHandle handle) const {
  std::scoped_lock lock(mutex_);
  TASKPROF_ASSERT(handle < regions_.size(), "invalid region handle");
  return *regions_[handle];
}

std::size_t RegionRegistry::size() const {
  std::scoped_lock lock(mutex_);
  return regions_.size();
}

}  // namespace taskprof
