// Call-tree nodes, the node pool, and tree operations.
//
// A call tree is built from intrusive nodes (parent / first-child /
// next-sibling links) allocated from a NodePool.  Pools are per-thread:
// as in Score-P, "every thread operates on a separate section of
// preallocated memory and constructs a separate call tree", avoiding
// locking on the hot path (paper §IV-A).
//
// Task-instance trees are transient: created when an instance starts
// executing, merged into the per-construct tree when it completes, then
// recycled through the pool's free list (paper §V-B: "released
// task-instance tree nodes are reused").
//
// Child lookup is accelerated two ways (the per-enter cost used to be an
// O(siblings) scan, which dominates for parameter-profiled nodes with
// hundreds of siblings — e.g. per-depth nqueens, paper Table IV):
//
//  * every node carries a `hot_child` pointer to the child most recently
//    found under it — loops that re-enter the same callee hit in O(1);
//  * once a node's fan-out reaches kChildIndexFanout, find-or-create
//    promotes it to an open-addressed ChildIndex mapping (region,
//    parameter, is_stub) identity to the child node.  The sibling list
//    stays the source of truth (first-visit order is preserved); the
//    index is a pure accelerator and is recycled with the node.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "profile/metrics.hpp"
#include "profile/region.hpp"

namespace taskprof {

class ChildIndex;

/// Fan-out at which find_or_create_child promotes a node's child list to
/// an open-addressed ChildIndex (below it, the linear scan is cheaper
/// than hashing).  Exposed for tests.
inline constexpr std::size_t kChildIndexFanout = 8;

/// One node of a call tree.  Identity within its parent is the triple
/// (region, parameter, is_stub); metrics accumulate over all visits of the
/// call path ending at this node.
///
/// Field order is deliberate: everything an enter/exit event touches —
/// the identity triple read while scanning a sibling list, the child
/// links followed to find the callee, and the visit/inclusive
/// accumulators — shares the first cache line.  Cold bookkeeping
/// (per-visit min/mean/max, parent backlink, list tail, child index)
/// lives behind it.
struct CallNode {
  // --- hot: read/written by every enter/exit ------------------------------
  RegionHandle region = kInvalidRegion;
  std::uint32_t n_children = 0;  ///< maintained child count (O(1) fan-out)
  std::int64_t parameter = kNoParameter;  ///< kNoParameter unless under a parameter region
  CallNode* next_sibling = nullptr;
  CallNode* first_child = nullptr;
  CallNode* hot_child = nullptr;  ///< child most recently found under this node
  std::uint64_t visits = 0;       ///< number of enter events
  Ticks inclusive = 0;            ///< total inclusive time over all visits
  bool is_stub = false;  ///< task-execution stub under a scheduling point

  // --- cold: traversal/merge bookkeeping and per-visit statistics ---------
  DurationStats visit_stats;  ///< per-visit inclusive durations (min/mean/max)
  CallNode* parent = nullptr;
  CallNode* last_child = nullptr;   ///< tail of the child list (O(1) append)
  ChildIndex* child_index = nullptr;  ///< non-null once fan-out was promoted

  /// Sum of the children's inclusive times.
  [[nodiscard]] Ticks children_inclusive() const noexcept;

  /// Exclusive time: inclusive minus children's inclusive.  With
  /// execution-site attribution this is always >= 0 (paper Fig. 3 shows the
  /// negative values that creation-site attribution would produce).
  [[nodiscard]] Ticks exclusive() const noexcept {
    return inclusive - children_inclusive();
  }

  /// Number of direct children (maintained counter, O(1)).
  [[nodiscard]] std::size_t child_count() const noexcept { return n_children; }
};

static_assert(offsetof(CallNode, is_stub) < 64 &&
                  offsetof(CallNode, inclusive) < 64 &&
                  offsetof(CallNode, hot_child) < 64,
              "enter/exit-touched fields must share the first cache line");

/// Open-addressed (linear-probe) map from child identity to the child
/// node.  Slots hold bare CallNode pointers; the identity triple is read
/// from the node itself, so the table is one pointer per slot and needs
/// no separate key storage.  No erase: a promoted node's index is
/// rebuilt from the sibling list on the (cold) unlink path and recycled
/// wholesale with the subtree.
class ChildIndex {
 public:
  [[nodiscard]] CallNode* find(RegionHandle region, std::int64_t parameter,
                               bool is_stub) const noexcept;

  /// Insert a child; the caller guarantees the identity is not present.
  void insert(CallNode* child);

  /// Drop all entries, keeping the slot capacity for reuse.
  void clear() noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return count_; }

 private:
  void grow();
  [[nodiscard]] static std::uint64_t hash(RegionHandle region,
                                          std::int64_t parameter,
                                          bool is_stub) noexcept;

  std::vector<CallNode*> slots_;  ///< power-of-two capacity, nullptr = empty
  std::size_t count_ = 0;
};

/// Chunked allocator with a free list for CallNode.
///
/// Not thread-safe by design (one pool per thread).  release_subtree()
/// recycles a whole tree in one walk; nodes come back from the free list in
/// subsequent allocate() calls.  The pool also owns the ChildIndex objects
/// promoted onto its nodes, recycling them alongside the nodes.
class NodePool {
 public:
  NodePool() = default;
  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;
  // Movable: node addresses live inside the chunks and stay valid.
  NodePool(NodePool&&) = default;
  NodePool& operator=(NodePool&&) = default;

  /// Allocate a zeroed node and link it as the last child of `parent`
  /// (pass nullptr for a root).  O(1): the parent keeps a tail pointer.
  CallNode* allocate(RegionHandle region, std::int64_t parameter, bool is_stub,
                     CallNode* parent);

  /// Return `root` and its whole subtree to the free list.  `root` is
  /// unlinked from its parent first (if any).  The walk is iterative over
  /// the intrusive links in O(1) space — each node's child list is
  /// spliced onto the work list through its tail pointer — so releasing
  /// the arbitrarily deep trees of cut-off-free task recursion cannot
  /// overflow the stack (and allocates nothing).
  void release_subtree(CallNode* root);

  /// Build (or rebuild) `parent`'s child index from its sibling list.
  void build_child_index(CallNode* parent);

  /// Toggle the hot_child / ChildIndex acceleration used by
  /// find_or_create_child on this pool's nodes (default on).  Off, the
  /// lookup is the plain first-visit-ordered sibling scan — kept for the
  /// fast-path-vs-general A/B in tests and bench_event_hotpath.
  void set_lookup_acceleration(bool on) noexcept {
    lookup_acceleration_ = on;
  }
  [[nodiscard]] bool lookup_acceleration() const noexcept {
    return lookup_acceleration_;
  }

  /// Total nodes ever carved from chunks (high-water mark of live nodes).
  [[nodiscard]] std::size_t allocated() const noexcept { return allocated_; }

  /// Nodes currently parked on the free list.
  [[nodiscard]] std::size_t free_count() const noexcept { return free_count_; }

 private:
  static constexpr std::size_t kChunkSize = 256;

  ChildIndex* acquire_index();
  void recycle_index(ChildIndex* index);

  std::vector<std::unique_ptr<CallNode[]>> chunks_;
  std::size_t next_in_chunk_ = kChunkSize;  // forces first chunk allocation
  CallNode* free_list_ = nullptr;           // linked through next_sibling
  std::size_t allocated_ = 0;
  std::size_t free_count_ = 0;
  bool lookup_acceleration_ = true;

  std::vector<std::unique_ptr<ChildIndex>> index_storage_;
  std::vector<ChildIndex*> index_free_;
};

/// Find the direct child of `parent` with the given identity, or nullptr.
/// Uses the promoted child index when present, else scans the sibling
/// list; never allocates and never mutates the tree.
[[nodiscard]] CallNode* find_child(const CallNode* parent, RegionHandle region,
                                   std::int64_t parameter = kNoParameter,
                                   bool is_stub = false) noexcept;

/// Find-or-create the child with the given identity (allocating from
/// `pool`), preserving first-visit order among siblings.  This is the
/// per-enter hot path: it consults `parent`'s hot_child cache first,
/// then the child index (when promoted), and promotes the index once the
/// fan-out reaches kChildIndexFanout — all skipped when the pool's
/// lookup acceleration is off.
CallNode* find_or_create_child(NodePool& pool, CallNode* parent,
                               RegionHandle region,
                               std::int64_t parameter = kNoParameter,
                               bool is_stub = false);

/// Merge `src`'s metrics and subtree into `dst` (same identity assumed for
/// the roots).  Missing nodes are created in `pool`; `src` is left intact.
/// Iterative over the intrusive links (O(1) space): deep instance trees
/// from cut-off-free recursion must not overflow the C++ stack.
void merge_subtree(NodePool& pool, CallNode* dst, const CallNode* src);

/// Preorder traversal.  `fn` is called as fn(node, depth).
///
/// Iterative via the intrusive links (first_child to descend,
/// next_sibling / parent to backtrack): O(1) space and no call recursion,
/// so report generation over the arbitrarily deep trees of cut-off-free
/// task recursion (nqueens, fib) cannot overflow the stack.
template <typename Fn>
void for_each_node(const CallNode* root, Fn&& fn, int depth = 0) {
  if (root == nullptr) return;
  const CallNode* node = root;
  for (;;) {
    fn(*node, depth);
    if (node->first_child != nullptr) {
      node = node->first_child;
      ++depth;
      continue;
    }
    while (node != root && node->next_sibling == nullptr) {
      node = node->parent;
      --depth;
    }
    if (node == root) return;
    node = node->next_sibling;
  }
}

/// Count the nodes of a subtree.
[[nodiscard]] std::size_t subtree_size(const CallNode* root) noexcept;

/// Locate a node by the path of region handles from (and excluding) `root`.
/// Returns nullptr when the path does not exist.  Test/report convenience.
[[nodiscard]] CallNode* find_path(CallNode* root,
                                  std::initializer_list<RegionHandle> path,
                                  bool stub_leaf = false) noexcept;

}  // namespace taskprof
