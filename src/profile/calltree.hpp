// Call-tree nodes, the node pool, and tree operations.
//
// A call tree is built from intrusive nodes (parent / first-child /
// next-sibling links) allocated from a NodePool.  Pools are per-thread:
// as in Score-P, "every thread operates on a separate section of
// preallocated memory and constructs a separate call tree", avoiding
// locking on the hot path (paper §IV-A).
//
// Task-instance trees are transient: created when an instance starts
// executing, merged into the per-construct tree when it completes, then
// recycled through the pool's free list (paper §V-B: "released
// task-instance tree nodes are reused").
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "profile/metrics.hpp"
#include "profile/region.hpp"

namespace taskprof {

/// One node of a call tree.  Identity within its parent is the triple
/// (region, parameter, is_stub); metrics accumulate over all visits of the
/// call path ending at this node.
struct CallNode {
  RegionHandle region = kInvalidRegion;
  std::int64_t parameter = kNoParameter;  ///< kNoParameter unless under a parameter region
  bool is_stub = false;  ///< task-execution stub under a scheduling point

  CallNode* parent = nullptr;
  CallNode* first_child = nullptr;
  CallNode* next_sibling = nullptr;

  std::uint64_t visits = 0;   ///< number of enter events
  Ticks inclusive = 0;        ///< total inclusive time over all visits
  DurationStats visit_stats;  ///< per-visit inclusive durations (min/mean/max)

  /// Sum of the children's inclusive times.
  [[nodiscard]] Ticks children_inclusive() const noexcept;

  /// Exclusive time: inclusive minus children's inclusive.  With
  /// execution-site attribution this is always >= 0 (paper Fig. 3 shows the
  /// negative values that creation-site attribution would produce).
  [[nodiscard]] Ticks exclusive() const noexcept {
    return inclusive - children_inclusive();
  }

  /// Number of direct children.
  [[nodiscard]] std::size_t child_count() const noexcept;
};

/// Chunked allocator with a free list for CallNode.
///
/// Not thread-safe by design (one pool per thread).  release_subtree()
/// recycles a whole tree in one walk; nodes come back from the free list in
/// subsequent allocate() calls.
class NodePool {
 public:
  NodePool() = default;
  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;
  // Movable: node addresses live inside the chunks and stay valid.
  NodePool(NodePool&&) = default;
  NodePool& operator=(NodePool&&) = default;

  /// Allocate a zeroed node and link it as the last child of `parent`
  /// (pass nullptr for a root).
  CallNode* allocate(RegionHandle region, std::int64_t parameter, bool is_stub,
                     CallNode* parent);

  /// Return `root` and its whole subtree to the free list.  `root` is
  /// unlinked from its parent first (if any).
  void release_subtree(CallNode* root);

  /// Total nodes ever carved from chunks (high-water mark of live nodes).
  [[nodiscard]] std::size_t allocated() const noexcept { return allocated_; }

  /// Nodes currently parked on the free list.
  [[nodiscard]] std::size_t free_count() const noexcept { return free_count_; }

 private:
  static constexpr std::size_t kChunkSize = 256;

  std::vector<std::unique_ptr<CallNode[]>> chunks_;
  std::size_t next_in_chunk_ = kChunkSize;  // forces first chunk allocation
  CallNode* free_list_ = nullptr;           // linked through next_sibling
  std::size_t allocated_ = 0;
  std::size_t free_count_ = 0;
};

/// Find the direct child of `parent` with the given identity, or nullptr.
[[nodiscard]] CallNode* find_child(CallNode* parent, RegionHandle region,
                                   std::int64_t parameter = kNoParameter,
                                   bool is_stub = false) noexcept;

/// Find-or-create the child with the given identity (allocating from
/// `pool`), preserving first-visit order among siblings.
CallNode* find_or_create_child(NodePool& pool, CallNode* parent,
                               RegionHandle region,
                               std::int64_t parameter = kNoParameter,
                               bool is_stub = false);

/// Merge `src`'s metrics and subtree into `dst` (same identity assumed for
/// the roots).  Missing nodes are created in `pool`; `src` is left intact.
void merge_subtree(NodePool& pool, CallNode* dst, const CallNode* src);

/// Preorder traversal.  `fn` is called as fn(node, depth).
///
/// Iterative via the intrusive links (first_child to descend,
/// next_sibling / parent to backtrack): O(1) space and no call recursion,
/// so report generation over the arbitrarily deep trees of cut-off-free
/// task recursion (nqueens, fib) cannot overflow the stack.
template <typename Fn>
void for_each_node(const CallNode* root, Fn&& fn, int depth = 0) {
  if (root == nullptr) return;
  const CallNode* node = root;
  for (;;) {
    fn(*node, depth);
    if (node->first_child != nullptr) {
      node = node->first_child;
      ++depth;
      continue;
    }
    while (node != root && node->next_sibling == nullptr) {
      node = node->parent;
      --depth;
    }
    if (node == root) return;
    node = node->next_sibling;
  }
}

/// Count the nodes of a subtree.
[[nodiscard]] std::size_t subtree_size(const CallNode* root) noexcept;

/// Locate a node by the path of region handles from (and excluding) `root`.
/// Returns nullptr when the path does not exist.  Test/report convenience.
[[nodiscard]] CallNode* find_path(CallNode* root,
                                  std::initializer_list<RegionHandle> path,
                                  bool stub_leaf = false) noexcept;

}  // namespace taskprof
