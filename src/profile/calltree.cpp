#include "profile/calltree.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace taskprof {

Ticks CallNode::children_inclusive() const noexcept {
  Ticks total = 0;
  for (const CallNode* c = first_child; c != nullptr; c = c->next_sibling) {
    total += c->inclusive;
  }
  return total;
}

// --- ChildIndex -------------------------------------------------------------

std::uint64_t ChildIndex::hash(RegionHandle region, std::int64_t parameter,
                               bool is_stub) noexcept {
  // SplitMix64 finalizer over the packed identity: parameters are often
  // small consecutive integers (recursion depths), so the raw triple
  // clusters badly without mixing.
  std::uint64_t x = (static_cast<std::uint64_t>(region) << 1) |
                    static_cast<std::uint64_t>(is_stub);
  x ^= static_cast<std::uint64_t>(parameter) * 0x9E3779B97F4A7C15ull;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

CallNode* ChildIndex::find(RegionHandle region, std::int64_t parameter,
                           bool is_stub) const noexcept {
  if (slots_.empty()) return nullptr;
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(hash(region, parameter, is_stub)) &
                  mask;
  while (CallNode* node = slots_[i]) {
    if (node->region == region && node->parameter == parameter &&
        node->is_stub == is_stub) {
      return node;
    }
    i = (i + 1) & mask;
  }
  return nullptr;
}

void ChildIndex::insert(CallNode* child) {
  // Grow at 3/4 load to keep probe chains short.
  if (slots_.empty() || (count_ + 1) * 4 > slots_.size() * 3) grow();
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(
                      hash(child->region, child->parameter, child->is_stub)) &
                  mask;
  while (slots_[i] != nullptr) i = (i + 1) & mask;
  slots_[i] = child;
  ++count_;
}

void ChildIndex::clear() noexcept {
  std::fill(slots_.begin(), slots_.end(), nullptr);
  count_ = 0;
}

void ChildIndex::grow() {
  std::vector<CallNode*> old = std::move(slots_);
  slots_.assign(old.empty() ? 2 * kChildIndexFanout : old.size() * 2, nullptr);
  const std::size_t mask = slots_.size() - 1;
  for (CallNode* node : old) {
    if (node == nullptr) continue;
    std::size_t i = static_cast<std::size_t>(
                        hash(node->region, node->parameter, node->is_stub)) &
                    mask;
    while (slots_[i] != nullptr) i = (i + 1) & mask;
    slots_[i] = node;
  }
}

// --- NodePool ---------------------------------------------------------------

CallNode* NodePool::allocate(RegionHandle region, std::int64_t parameter,
                             bool is_stub, CallNode* parent) {
  CallNode* node = nullptr;
  if (free_list_ != nullptr) {
    node = free_list_;
    free_list_ = node->next_sibling;
    --free_count_;
  } else {
    if (next_in_chunk_ == kChunkSize) {
      chunks_.push_back(std::make_unique<CallNode[]>(kChunkSize));
      next_in_chunk_ = 0;
    }
    node = &chunks_.back()[next_in_chunk_++];
    ++allocated_;
  }
  *node = CallNode{};
  node->region = region;
  node->parameter = parameter;
  node->is_stub = is_stub;
  node->parent = parent;
  if (parent != nullptr) {
    if (parent->first_child == nullptr) {
      parent->first_child = node;
    } else {
      parent->last_child->next_sibling = node;
    }
    parent->last_child = node;
    ++parent->n_children;
    // A promoted parent's index must stay complete regardless of which
    // code path adds the child.
    if (parent->child_index != nullptr) parent->child_index->insert(node);
  }
  return node;
}

void NodePool::release_subtree(CallNode* root) {
  if (root == nullptr) return;
  // Unlink from the parent's child list.
  if (CallNode* parent = root->parent; parent != nullptr) {
    if (parent->first_child == root) {
      parent->first_child = root->next_sibling;
      if (parent->last_child == root) parent->last_child = nullptr;
    } else {
      CallNode* prev = parent->first_child;
      while (prev != nullptr && prev->next_sibling != root) {
        prev = prev->next_sibling;
      }
      TASKPROF_ASSERT(prev != nullptr, "node not found in parent's children");
      prev->next_sibling = root->next_sibling;
      if (parent->last_child == root) parent->last_child = prev;
    }
    --parent->n_children;
    if (parent->hot_child == root) parent->hot_child = nullptr;
    if (parent->child_index != nullptr) {
      // The open-addressed index has no erase (tombstones would pollute
      // the hot probe chains for the benefit of this cold path); rebuild
      // it from the surviving siblings, or drop it below the promotion
      // threshold.
      if (parent->n_children >= kChildIndexFanout) {
        build_child_index(parent);
      } else {
        recycle_index(parent->child_index);
        parent->child_index = nullptr;
      }
    }
    root->parent = nullptr;
  }
  root->next_sibling = nullptr;
  // Iterative postorder-free walk in O(1) space: treat next_sibling as
  // the work-list link and splice each node's child list in via its tail
  // pointer.  No recursion, no heap-allocated stack (the previous
  // std::vector stack contradicted the rationale documented on
  // for_each_node and could still overflow the heap on huge trees).
  CallNode* work = root;
  while (work != nullptr) {
    CallNode* node = work;
    work = work->next_sibling;
    if (node->first_child != nullptr) {
      node->last_child->next_sibling = work;
      work = node->first_child;
      node->first_child = nullptr;
    }
    if (node->child_index != nullptr) {
      recycle_index(node->child_index);
      node->child_index = nullptr;
    }
    node->next_sibling = free_list_;
    free_list_ = node;
    ++free_count_;
  }
}

void NodePool::build_child_index(CallNode* parent) {
  ChildIndex* index =
      parent->child_index != nullptr ? parent->child_index : acquire_index();
  index->clear();
  for (CallNode* c = parent->first_child; c != nullptr; c = c->next_sibling) {
    index->insert(c);
  }
  parent->child_index = index;
}

ChildIndex* NodePool::acquire_index() {
  if (!index_free_.empty()) {
    ChildIndex* index = index_free_.back();
    index_free_.pop_back();
    return index;
  }
  index_storage_.push_back(std::make_unique<ChildIndex>());
  return index_storage_.back().get();
}

void NodePool::recycle_index(ChildIndex* index) {
  index->clear();
  index_free_.push_back(index);
}

// --- Lookup -----------------------------------------------------------------

CallNode* find_child(const CallNode* parent, RegionHandle region,
                     std::int64_t parameter, bool is_stub) noexcept {
  if (parent == nullptr) return nullptr;
  if (parent->child_index != nullptr) {
    return parent->child_index->find(region, parameter, is_stub);
  }
  for (CallNode* c = parent->first_child; c != nullptr; c = c->next_sibling) {
    if (c->region == region && c->parameter == parameter &&
        c->is_stub == is_stub) {
      return c;
    }
  }
  return nullptr;
}

CallNode* find_or_create_child(NodePool& pool, CallNode* parent,
                               RegionHandle region, std::int64_t parameter,
                               bool is_stub) {
  TASKPROF_ASSERT(parent != nullptr, "parent required");
  const bool accelerate = pool.lookup_acceleration();
  if (accelerate) {
    // Last-hit cache: loops re-entering the same callee and the stub
    // enter/exit ping-pong hit here without touching the sibling list.
    CallNode* hot = parent->hot_child;
    if (hot != nullptr && hot->region == region &&
        hot->parameter == parameter && hot->is_stub == is_stub) {
      return hot;
    }
  }
  if (CallNode* existing = find_child(parent, region, parameter, is_stub)) {
    if (accelerate) parent->hot_child = existing;
    return existing;
  }
  CallNode* node = pool.allocate(region, parameter, is_stub, parent);
  if (accelerate) {
    parent->hot_child = node;
    if (parent->child_index == nullptr &&
        parent->n_children >= kChildIndexFanout) {
      pool.build_child_index(parent);
    }
  }
  return node;
}

void merge_subtree(NodePool& pool, CallNode* dst, const CallNode* src) {
  TASKPROF_ASSERT(dst != nullptr && src != nullptr, "merge needs both trees");
  // Parallel preorder walk over the intrusive links: `d` always mirrors
  // `s` in the destination tree.  O(1) space — the recursive version
  // overflowed the C++ stack on the cut-off-free recursion depths this
  // profiler exists to measure.
  const CallNode* s = src;
  CallNode* d = dst;
  for (;;) {
    d->visits += s->visits;
    d->inclusive += s->inclusive;
    d->visit_stats.merge(s->visit_stats);
    if (s->first_child != nullptr) {
      s = s->first_child;
      d = find_or_create_child(pool, d, s->region, s->parameter, s->is_stub);
      continue;
    }
    while (s != src && s->next_sibling == nullptr) {
      s = s->parent;
      d = d->parent;
    }
    if (s == src) return;
    s = s->next_sibling;
    d = find_or_create_child(pool, d->parent, s->region, s->parameter,
                             s->is_stub);
  }
}

std::size_t subtree_size(const CallNode* root) noexcept {
  std::size_t n = 0;
  for_each_node(root, [&n](const CallNode&, int) { ++n; });
  return n;
}

CallNode* find_path(CallNode* root, std::initializer_list<RegionHandle> path,
                    bool stub_leaf) noexcept {
  CallNode* node = root;
  std::size_t index = 0;
  const std::size_t last = path.size() == 0 ? 0 : path.size() - 1;
  for (RegionHandle region : path) {
    const bool want_stub = stub_leaf && index == last;
    node = find_child(node, region, kNoParameter, want_stub);
    if (node == nullptr) return nullptr;
    ++index;
  }
  return node;
}

}  // namespace taskprof
