#include "profile/calltree.hpp"

#include "common/assert.hpp"

namespace taskprof {

Ticks CallNode::children_inclusive() const noexcept {
  Ticks total = 0;
  for (const CallNode* c = first_child; c != nullptr; c = c->next_sibling) {
    total += c->inclusive;
  }
  return total;
}

std::size_t CallNode::child_count() const noexcept {
  std::size_t n = 0;
  for (const CallNode* c = first_child; c != nullptr; c = c->next_sibling) ++n;
  return n;
}

CallNode* NodePool::allocate(RegionHandle region, std::int64_t parameter,
                             bool is_stub, CallNode* parent) {
  CallNode* node = nullptr;
  if (free_list_ != nullptr) {
    node = free_list_;
    free_list_ = node->next_sibling;
    --free_count_;
  } else {
    if (next_in_chunk_ == kChunkSize) {
      chunks_.push_back(std::make_unique<CallNode[]>(kChunkSize));
      next_in_chunk_ = 0;
    }
    node = &chunks_.back()[next_in_chunk_++];
    ++allocated_;
  }
  *node = CallNode{};
  node->region = region;
  node->parameter = parameter;
  node->is_stub = is_stub;
  node->parent = parent;
  if (parent != nullptr) {
    if (parent->first_child == nullptr) {
      parent->first_child = node;
    } else {
      CallNode* tail = parent->first_child;
      while (tail->next_sibling != nullptr) tail = tail->next_sibling;
      tail->next_sibling = node;
    }
  }
  return node;
}

void NodePool::release_subtree(CallNode* root) {
  if (root == nullptr) return;
  // Unlink from the parent's child list.
  if (CallNode* parent = root->parent; parent != nullptr) {
    if (parent->first_child == root) {
      parent->first_child = root->next_sibling;
    } else {
      CallNode* prev = parent->first_child;
      while (prev != nullptr && prev->next_sibling != root) {
        prev = prev->next_sibling;
      }
      TASKPROF_ASSERT(prev != nullptr, "node not found in parent's children");
      prev->next_sibling = root->next_sibling;
    }
    root->next_sibling = nullptr;
    root->parent = nullptr;
  }
  // Iterative postorder-free walk: detach children onto a work stack.
  std::vector<CallNode*> stack{root};
  while (!stack.empty()) {
    CallNode* node = stack.back();
    stack.pop_back();
    for (CallNode* c = node->first_child; c != nullptr;) {
      CallNode* next = c->next_sibling;
      stack.push_back(c);
      c = next;
    }
    node->first_child = nullptr;
    node->next_sibling = free_list_;
    free_list_ = node;
    ++free_count_;
  }
}

CallNode* find_child(CallNode* parent, RegionHandle region,
                     std::int64_t parameter, bool is_stub) noexcept {
  if (parent == nullptr) return nullptr;
  for (CallNode* c = parent->first_child; c != nullptr; c = c->next_sibling) {
    if (c->region == region && c->parameter == parameter &&
        c->is_stub == is_stub) {
      return c;
    }
  }
  return nullptr;
}

CallNode* find_or_create_child(NodePool& pool, CallNode* parent,
                               RegionHandle region, std::int64_t parameter,
                               bool is_stub) {
  TASKPROF_ASSERT(parent != nullptr, "parent required");
  if (CallNode* existing = find_child(parent, region, parameter, is_stub)) {
    return existing;
  }
  return pool.allocate(region, parameter, is_stub, parent);
}

void merge_subtree(NodePool& pool, CallNode* dst, const CallNode* src) {
  TASKPROF_ASSERT(dst != nullptr && src != nullptr, "merge needs both trees");
  dst->visits += src->visits;
  dst->inclusive += src->inclusive;
  dst->visit_stats.merge(src->visit_stats);
  for (const CallNode* c = src->first_child; c != nullptr;
       c = c->next_sibling) {
    CallNode* dst_child =
        find_or_create_child(pool, dst, c->region, c->parameter, c->is_stub);
    merge_subtree(pool, dst_child, c);
  }
}

std::size_t subtree_size(const CallNode* root) noexcept {
  std::size_t n = 0;
  for_each_node(root, [&n](const CallNode&, int) { ++n; });
  return n;
}

CallNode* find_path(CallNode* root, std::initializer_list<RegionHandle> path,
                    bool stub_leaf) noexcept {
  CallNode* node = root;
  std::size_t index = 0;
  const std::size_t last = path.size() == 0 ? 0 : path.size() - 1;
  for (RegionHandle region : path) {
    const bool want_stub = stub_leaf && index == last;
    node = find_child(node, region, kNoParameter, want_stub);
    if (node == nullptr) return nullptr;
    ++index;
  }
  return node;
}

}  // namespace taskprof
