// Source-code regions and the region registry.
//
// Every call-tree node refers to a region: a function, an OpenMP-style
// construct (parallel, barrier, taskwait, task-create, task body) or a
// parameter region (used for the paper's Table IV per-recursion-depth
// profiling).  Regions are registered once and addressed by small integer
// handles; the registry is the only string-holding structure on the
// measurement path.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace taskprof {

/// Classifies a region.  The measurement layer treats scheduling-point
/// regions specially: stub nodes for task execution appear beneath them.
enum class RegionType : std::uint8_t {
  kFunction,         ///< instrumented user function
  kParallel,         ///< parallel region (runs the implicit tasks)
  kImplicitBarrier,  ///< barrier at the end of a parallel region
  kBarrier,          ///< explicit barrier
  kTaskwait,         ///< taskwait construct
  kTaskCreate,       ///< task-creation region (paper: "create task")
  kTask,             ///< explicit task body (one per task construct)
  kImplicitTask,     ///< root region of a thread's implicit task
  kParameter,        ///< parameter sub-region (e.g. "depth=3")
};

/// Human-readable name of a region type, e.g. "taskwait".
[[nodiscard]] std::string_view region_type_name(RegionType type) noexcept;

/// True for constructs at which the runtime may schedule another task and
/// under whose node a task-execution stub node may therefore appear.
[[nodiscard]] constexpr bool is_scheduling_point(RegionType type) noexcept {
  return type == RegionType::kImplicitBarrier || type == RegionType::kBarrier ||
         type == RegionType::kTaskwait || type == RegionType::kTaskCreate;
}

/// Static description of one region.
struct RegionInfo {
  std::string name;          ///< e.g. "nqueens_task", "foo"
  RegionType type = RegionType::kFunction;
  std::string file;          ///< source file (may be empty)
  int line = 0;              ///< source line (0 if unknown)
};

/// Registry mapping RegionHandle -> RegionInfo.
///
/// Registration is thread-safe; lookup returns a reference that stays valid
/// for the registry's lifetime (regions are never removed).  Identical
/// (name, type) pairs are deduplicated so kernels may re-register their
/// regions on every run.
class RegionRegistry {
 public:
  RegionRegistry() = default;
  RegionRegistry(const RegionRegistry&) = delete;
  RegionRegistry& operator=(const RegionRegistry&) = delete;

  /// Register a region (or return the existing handle for an identical
  /// name/type pair).
  RegionHandle register_region(RegionInfo info);

  /// Shorthand for the common case.
  RegionHandle register_region(std::string name, RegionType type) {
    return register_region(RegionInfo{std::move(name), type, {}, 0});
  }

  /// Look up a handle.  Precondition: handle was returned by this registry.
  [[nodiscard]] const RegionInfo& info(RegionHandle handle) const;

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  // Deque-like stability is guaranteed by storing pointers.
  std::vector<std::unique_ptr<RegionInfo>> regions_;
};

}  // namespace taskprof
