// Per-node metric accumulation.
//
// Each call-tree node stores, per the paper (§IV-A), "the sum, the minimum,
// the maximum and the number of samples" of the measured metric, which is
// inclusive time per visit.  DurationStats packages exactly that quadruple.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>

#include "common/types.hpp"

namespace taskprof {

/// Sum / min / max / count accumulator over tick durations.
struct DurationStats {
  Ticks sum = 0;
  Ticks min = std::numeric_limits<Ticks>::max();
  Ticks max = std::numeric_limits<Ticks>::min();
  std::uint64_t count = 0;

  /// Record one sample.
  void add(Ticks value) noexcept {
    sum += value;
    min = std::min(min, value);
    max = std::max(max, value);
    ++count;
  }

  /// Fold another accumulator in (used when merging task-instance trees).
  void merge(const DurationStats& other) noexcept {
    if (other.count == 0) return;
    sum += other.sum;
    min = std::min(min, other.min);
    max = std::max(max, other.max);
    count += other.count;
  }

  /// Arithmetic mean; 0 when empty.
  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }

  [[nodiscard]] bool empty() const noexcept { return count == 0; }

  void reset() noexcept { *this = DurationStats{}; }
};

}  // namespace taskprof
