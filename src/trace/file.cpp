#include "trace/file.hpp"

#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>

namespace taskprof::trace {

namespace {

constexpr char kMagic[8] = {'T', 'P', 'T', 'R', 'C', '1', '\n', '\0'};

struct FileCloser {
  void operator()(std::FILE* file) const noexcept {
    if (file != nullptr) std::fclose(file);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

[[noreturn]] void fail(const std::string& path, const char* what) {
  throw std::runtime_error("trace file '" + path + "': " + what);
}

void write_bytes(std::FILE* file, const void* data, std::size_t size,
                 const std::string& path) {
  if (std::fwrite(data, 1, size, file) != size) fail(path, "write failed");
}

void read_bytes(std::FILE* file, void* data, std::size_t size,
                const std::string& path) {
  if (std::fread(data, 1, size, file) != size) {
    fail(path, "truncated or unreadable");
  }
}

template <typename T>
void write_value(std::FILE* file, T value, const std::string& path) {
  write_bytes(file, &value, sizeof(T), path);
}

template <typename T>
T read_value(std::FILE* file, const std::string& path) {
  T value{};
  read_bytes(file, &value, sizeof(T), path);
  return value;
}

void write_event(std::FILE* file, const TraceEvent& event,
                 const std::string& path) {
  write_value<std::int64_t>(file, event.time, path);
  write_value<std::uint32_t>(file, event.thread, path);
  write_value<std::uint8_t>(file, static_cast<std::uint8_t>(event.kind),
                            path);
  write_value<std::uint64_t>(file, event.task, path);
  write_value<std::uint32_t>(file, event.region, path);
  write_value<std::int64_t>(file, event.parameter, path);
  write_value<std::uint32_t>(file, event.peer, path);
}

TraceEvent read_event(std::FILE* file, const std::string& path) {
  TraceEvent event;
  event.time = read_value<std::int64_t>(file, path);
  event.thread = read_value<std::uint32_t>(file, path);
  const auto kind = read_value<std::uint8_t>(file, path);
  if (kind > static_cast<std::uint8_t>(EventKind::kWork)) {
    fail(path, "invalid event kind");
  }
  event.kind = static_cast<EventKind>(kind);
  event.task = read_value<std::uint64_t>(file, path);
  event.region = read_value<std::uint32_t>(file, path);
  event.parameter = read_value<std::int64_t>(file, path);
  event.peer = read_value<std::uint32_t>(file, path);
  return event;
}

}  // namespace

void write_trace_file(const std::string& path, const Trace& trace) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) fail(path, "cannot open for writing");
  write_bytes(file.get(), kMagic, sizeof(kMagic), path);
  write_value<std::uint64_t>(file.get(), trace.thread_count(), path);
  for (ThreadId thread = 0; thread < trace.thread_count(); ++thread) {
    const auto& events = trace.thread_events(thread);
    write_value<std::uint64_t>(file.get(), events.size(), path);
    for (const TraceEvent& event : events) {
      write_event(file.get(), event, path);
    }
  }
  if (std::fflush(file.get()) != 0) fail(path, "flush failed");
}

Trace read_trace_file(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) fail(path, "cannot open for reading");
  char magic[sizeof(kMagic)];
  read_bytes(file.get(), magic, sizeof(magic), path);
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    fail(path, "bad magic (not a taskprof trace, or wrong version)");
  }
  const auto thread_count = read_value<std::uint64_t>(file.get(), path);
  if (thread_count > 1'000'000) fail(path, "implausible thread count");
  std::vector<std::vector<TraceEvent>> per_thread(thread_count);
  for (auto& stream : per_thread) {
    const auto count = read_value<std::uint64_t>(file.get(), path);
    stream.reserve(count > (1u << 20) ? (1u << 20) : count);
    for (std::uint64_t i = 0; i < count; ++i) {
      stream.push_back(read_event(file.get(), path));
    }
  }
  // Trailing garbage indicates corruption.
  char extra;
  if (std::fread(&extra, 1, 1, file.get()) != 0) {
    fail(path, "trailing data after events");
  }
  return Trace(std::move(per_thread));
}

}  // namespace taskprof::trace
