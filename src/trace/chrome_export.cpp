#include "trace/chrome_export.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace taskprof::trace {

namespace {

constexpr int kPid = 1;  ///< single process; threads are the tracks

/// Incremental trace-event emitter.  Every event is one line inside the
/// "traceEvents" array — trivially greppable and diffable, and the tests
/// lean on that shape.
class EventWriter {
 public:
  explicit EventWriter(const std::string& process_name) {
    out_.reserve(16 * 1024);
    out_ += "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
    // Process metadata first, then thread metadata as callers add tracks.
    begin_event("process_name", 'M', kNoTs, 0);
    raw_arg("\"name\": ");
    string_value(process_name);
    end_event();
  }

  void thread_metadata(ThreadId tid) {
    begin_event("thread_name", 'M', kNoTs, tid);
    raw_arg("\"name\": ");
    string_value("worker " + std::to_string(tid));
    end_event();
    begin_event("thread_sort_index", 'M', kNoTs, tid);
    raw_arg("\"sort_index\": " + std::to_string(tid));
    end_event();
  }

  /// Duration / instant / counter events.  `ts` is in ticks (ns) already
  /// normalized to the trace start.  Pass args via the arg helpers between
  /// begin_event and end_event.
  void begin_event(const std::string& name, char phase, Ticks ts,
                   ThreadId tid) {
    if (!first_) out_ += ",\n";
    first_ = false;
    out_ += "{\"name\": ";
    append_json_string(name);
    out_ += ", \"ph\": \"";
    out_ += phase;
    out_ += "\", \"pid\": ";
    out_ += std::to_string(kPid);
    out_ += ", \"tid\": ";
    out_ += std::to_string(tid);
    if (ts != kNoTs) {
      char buf[48];
      // trace-event ts is in microseconds; keep ns resolution.
      std::snprintf(buf, sizeof buf, "%.3f",
                    static_cast<double>(ts) / 1000.0);
      out_ += ", \"ts\": ";
      out_ += buf;
    }
    if (phase == 'i') out_ += ", \"s\": \"t\"";  // thread-scoped instant
    args_open_ = false;
  }

  void arg(const char* key, std::uint64_t value) {
    open_args();
    out_ += '"';
    out_ += key;
    out_ += "\": ";
    out_ += std::to_string(value);
  }

  void arg(const char* key, std::int64_t value) {
    open_args();
    out_ += '"';
    out_ += key;
    out_ += "\": ";
    out_ += std::to_string(value);
  }

  void arg(const char* key, const std::string& value) {
    open_args();
    out_ += '"';
    out_ += key;
    out_ += "\": ";
    append_json_string(value);
  }

  /// Raw key/value payload for metadata events ("args": { <raw> }).
  void raw_arg(const std::string& raw) {
    open_args();
    out_ += raw;
  }

  void string_value(const std::string& s) { append_json_string(s); }

  void end_event() {
    if (args_open_) out_ += '}';
    out_ += '}';
  }

  [[nodiscard]] std::string finish() {
    out_ += "\n]}\n";
    return std::move(out_);
  }

  static constexpr Ticks kNoTs = std::numeric_limits<Ticks>::min();

 private:
  void open_args() {
    if (args_open_) {
      out_ += ", ";
      return;
    }
    out_ += ", \"args\": {";
    args_open_ = true;
  }

  void append_json_string(const std::string& s) {
    out_ += '"';
    for (char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(c));
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  bool first_ = true;
  bool args_open_ = false;
};

/// Creation-side facts about a task instance, learned in the first pass.
struct TaskOrigin {
  RegionHandle region = kInvalidRegion;
  ThreadId creator = 0;
  bool known = false;
};

std::string region_label(const RegionRegistry* registry,
                         RegionHandle region) {
  if (region == kInvalidRegion) return "task";
  if (registry != nullptr && region < registry->size()) {
    return registry->info(region).name;
  }
  return "region " + std::to_string(region);
}

/// An open duration slice on a thread's stack.
struct OpenSlice {
  TaskInstanceId task = kImplicitTaskId;
  bool is_task = false;  ///< a task-execution slice (closable by switch)
};

}  // namespace

std::string render_chrome_trace(const Trace& trace,
                                const ChromeExportOptions& options) {
  const auto [t_begin, t_end] = trace.time_span();
  EventWriter writer(options.process_name);

  // Pass 1 (merged stream): task origins, for steal detection and for
  // naming resumed-task slices whose begin event carries no region.
  std::unordered_map<TaskInstanceId, TaskOrigin> origins;
  for (const TraceEvent& event : trace.merged()) {
    if (event.kind == EventKind::kCreateEnd &&
        event.task != kImplicitTaskId) {
      TaskOrigin& origin = origins[event.task];
      origin.region = event.region;
      origin.creator = event.thread;
      origin.known = true;
    } else if (event.kind == EventKind::kTaskBegin &&
               event.task != kImplicitTaskId) {
      TaskOrigin& origin = origins[event.task];
      if (origin.region == kInvalidRegion) origin.region = event.region;
    }
  }
  auto task_label = [&](TaskInstanceId task) {
    const auto it = origins.find(task);
    const RegionHandle region =
        it == origins.end() ? kInvalidRegion : it->second.region;
    return region_label(options.registry, region);
  };

  // Pass 2: per-thread streams -> duration/instant events.  Each stream is
  // time-ordered and (by the engines' nested-execution discipline)
  // properly bracketed, so a per-thread slice stack suffices.
  for (ThreadId tid = 0; tid < trace.thread_count(); ++tid) {
    writer.thread_metadata(tid);
    std::vector<OpenSlice> open;
    Ticks last_ts = 0;
    auto close_innermost_task = [&](Ticks ts) {
      if (open.empty() || !open.back().is_task) return false;
      writer.begin_event("", 'E', ts, tid);
      writer.end_event();
      open.pop_back();
      return true;
    };
    for (const TraceEvent& event : trace.thread_events(tid)) {
      const Ticks ts = event.time - t_begin;
      last_ts = ts;
      switch (event.kind) {
        case EventKind::kParallelBegin:
        case EventKind::kParallelEnd:
          break;  // not per-thread track material
        case EventKind::kImplicitBegin:
          writer.begin_event("implicit task", 'B', ts, tid);
          writer.end_event();
          open.push_back({kImplicitTaskId, false});
          break;
        case EventKind::kImplicitEnd:
        case EventKind::kTaskwaitEnd:
        case EventKind::kBarrierEnd:
        case EventKind::kCreateEnd:
        case EventKind::kRegionExit:
          if (!open.empty()) {
            open.pop_back();
            writer.begin_event("", 'E', ts, tid);
            writer.end_event();
          }
          if (event.kind == EventKind::kCreateEnd) {
            // Mark the newly created instance on its creator's track.
            writer.begin_event("create", 'i', ts, tid);
            writer.arg("task", static_cast<std::uint64_t>(event.task));
            writer.end_event();
          }
          break;
        case EventKind::kCreateBegin:
          writer.begin_event("create " + region_label(options.registry,
                                                      event.region),
                             'B', ts, tid);
          writer.end_event();
          open.push_back({kImplicitTaskId, false});
          break;
        case EventKind::kTaskwaitBegin:
          writer.begin_event("taskwait", 'B', ts, tid);
          writer.end_event();
          open.push_back({kImplicitTaskId, false});
          break;
        case EventKind::kBarrierBegin:
          writer.begin_event("barrier", 'B', ts, tid);
          writer.end_event();
          open.push_back({kImplicitTaskId, false});
          break;
        case EventKind::kRegionEnter:
          writer.begin_event(region_label(options.registry, event.region),
                             'B', ts, tid);
          writer.end_event();
          open.push_back({kImplicitTaskId, false});
          break;
        case EventKind::kTaskBegin: {
          const auto it = origins.find(event.task);
          const bool stolen = it != origins.end() && it->second.known &&
                              it->second.creator != tid;
          if (stolen) {
            writer.begin_event("steal", 'i', ts, tid);
            writer.arg("task", static_cast<std::uint64_t>(event.task));
            writer.arg("from",
                       static_cast<std::uint64_t>(it->second.creator));
            writer.end_event();
          }
          writer.begin_event(region_label(options.registry, event.region),
                             'B', ts, tid);
          writer.arg("task", static_cast<std::uint64_t>(event.task));
          if (event.parameter != kNoParameter) {
            writer.arg("parameter", event.parameter);
          }
          if (stolen) writer.arg("stolen", std::string("true"));
          writer.end_event();
          open.push_back({event.task, true});
          break;
        }
        case EventKind::kTaskEnd:
          close_innermost_task(ts);
          break;
        case EventKind::kTaskSwitch:
          if (event.task == kImplicitTaskId) {
            // Suspend back to the implicit task (untied park, sim).
            if (close_innermost_task(ts)) {
              writer.begin_event("suspend", 'i', ts, tid);
              writer.end_event();
            }
          } else if (std::any_of(open.begin(), open.end(),
                                 [&event](const OpenSlice& slice) {
                                   return slice.is_task &&
                                          slice.task == event.task;
                                 })) {
            // Resumption of the still-open enclosing task after a nested
            // child finished: the slice never closed, just mark it.
            writer.begin_event("switch", 'i', ts, tid);
            writer.arg("task", static_cast<std::uint64_t>(event.task));
            writer.end_event();
          } else {
            // Resumption of a suspended (possibly migrated-in) task.
            writer.begin_event(task_label(event.task) + " (resumed)", 'B',
                               ts, tid);
            writer.arg("task", static_cast<std::uint64_t>(event.task));
            writer.end_event();
            open.push_back({event.task, true});
          }
          break;
        case EventKind::kMigrate:
          writer.begin_event("migrate", 'i', ts, tid);
          writer.arg("task", static_cast<std::uint64_t>(event.task));
          writer.arg("to", static_cast<std::uint64_t>(event.peer));
          writer.end_event();
          break;
        case EventKind::kSchedulerNote: {
          const auto note = static_cast<rt::SchedulerNote>(event.parameter);
          writer.begin_event(
              std::string("scheduler: ") + rt::scheduler_note_name(note),
              'i', ts, tid);
          writer.arg("note", std::string(rt::scheduler_note_name(note)));
          writer.arg("detail", static_cast<std::uint64_t>(event.task));
          writer.end_event();
          break;
        }
        case EventKind::kWork:
          // Declared-work bookkeeping, not a visual slice; the enclosing
          // task slice already covers the time.
          break;
      }
    }
    // Close anything left open (truncated traces) so B/E stay balanced.
    while (!open.empty()) {
      writer.begin_event("", 'E', last_ts, tid);
      writer.end_event();
      open.pop_back();
    }
  }

  // Derived counter tracks over the merged stream.
  if (options.counter_tracks) {
    std::int64_t created = 0;
    std::int64_t begun = 0;
    std::int64_t executing = 0;
    auto counter = [&](const char* name, Ticks ts, std::int64_t value) {
      writer.begin_event(name, 'C', ts, 0);
      writer.arg("value", std::max<std::int64_t>(value, 0));
      writer.end_event();
    };
    for (const TraceEvent& event : trace.merged()) {
      const Ticks ts = event.time - t_begin;
      switch (event.kind) {
        case EventKind::kCreateEnd:
          ++created;
          counter("tasks queued", ts, created - begun);
          break;
        case EventKind::kTaskBegin:
          ++begun;
          ++executing;
          counter("tasks queued", ts, created - begun);
          counter("tasks executing", ts, executing);
          break;
        case EventKind::kTaskEnd:
          --executing;
          counter("tasks executing", ts, executing);
          break;
        default:
          break;
      }
    }
  }

  // Caller-supplied annotations (diagnosis findings etc.) as instants.
  if (options.annotations != nullptr) {
    for (const TraceAnnotation& note : *options.annotations) {
      writer.begin_event(note.name, 'i', note.time - t_begin, note.thread);
      for (const auto& [key, value] : note.args) {
        writer.arg(key.c_str(), value);
      }
      writer.end_event();
    }
  }

  // Final scheduler-telemetry counters as flat tracks across the span.
  if (options.telemetry != nullptr) {
    const telemetry::Snapshot& snap = *options.telemetry;
    for (std::size_t i = 0; i < telemetry::kCounterCount; ++i) {
      if (snap.counters[i] == 0) continue;
      const std::string name =
          "telemetry " +
          std::string(telemetry::counter_name(
              static_cast<telemetry::Counter>(i)));
      writer.begin_event(name, 'C', 0, 0);
      writer.arg("value", std::uint64_t{0});
      writer.end_event();
      writer.begin_event(name, 'C', t_end - t_begin, 0);
      writer.arg("value", snap.counters[i]);
      writer.end_event();
    }
  }

  return writer.finish();
}

void write_chrome_trace(const std::string& path, const Trace& trace,
                        const ChromeExportOptions& options) {
  const std::string doc = render_chrome_trace(trace, options);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("chrome_export: cannot open " + path);
  }
  const std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  const int rc = std::fclose(f);
  if (written != doc.size() || rc != 0) {
    throw std::runtime_error("chrome_export: short write to " + path);
  }
}

}  // namespace taskprof::trace
