// TraceRecorder: a scheduler-event listener that records timestamped
// events per thread.  Attach alongside the profiler through
// rt::FanoutHooks for simultaneous profiling + tracing (Score-P style).
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "rt/hooks.hpp"
#include "trace/trace.hpp"

namespace taskprof::trace {

class TraceRecorder final : public rt::SchedulerHooks {
 public:
  TraceRecorder() = default;

  // -- rt::SchedulerHooks ---------------------------------------------------
  void on_parallel_begin(int num_threads) override;
  void on_parallel_end() override;
  void on_implicit_task_begin(ThreadId thread, const Clock& clock) override;
  void on_implicit_task_end(ThreadId thread) override;
  void on_task_create_begin(ThreadId thread, RegionHandle region,
                            std::int64_t parameter) override;
  void on_task_create_end(ThreadId thread, TaskInstanceId created,
                          RegionHandle region,
                          std::int64_t parameter) override;
  void on_task_begin(ThreadId thread, TaskInstanceId id, RegionHandle region,
                     std::int64_t parameter) override;
  void on_task_end(ThreadId thread, TaskInstanceId id) override;
  void on_task_switch(ThreadId thread, TaskInstanceId id) override;
  void on_task_migrate(ThreadId from, ThreadId to, TaskInstanceId id) override;
  void on_task_work(ThreadId thread, Ticks cost) override;
  void on_taskwait_begin(ThreadId thread) override;
  void on_taskwait_end(ThreadId thread) override;
  void on_barrier_begin(ThreadId thread, bool implicit) override;
  void on_barrier_end(ThreadId thread, bool implicit) override;
  void on_region_enter(ThreadId thread, RegionHandle region,
                       std::int64_t parameter) override;
  void on_region_exit(ThreadId thread, RegionHandle region) override;
  void on_scheduler_note(ThreadId thread, rt::SchedulerNote note,
                         std::int64_t detail) override;

  // -- Results ----------------------------------------------------------------

  /// Move the recorded events out (the recorder resets and can record
  /// another measurement).
  [[nodiscard]] Trace take();

  [[nodiscard]] std::size_t event_count() const;

 private:
  struct ThreadStream {
    const Clock* clock = nullptr;
    std::vector<TraceEvent> events;
  };

  void record(ThreadId thread, EventKind kind,
              TaskInstanceId task = kImplicitTaskId,
              RegionHandle region = kInvalidRegion,
              std::int64_t parameter = kNoParameter, ThreadId peer = 0);
  ThreadStream& stream(ThreadId thread);

  // Pre-sized in on_parallel_begin; each worker then touches only its own
  // slot, so recording is lock-free on the hot path (mirrors the
  // per-thread memory rule of the measurement system).
  std::vector<std::unique_ptr<ThreadStream>> streams_;
  std::mutex resize_mutex_;
};

}  // namespace taskprof::trace
