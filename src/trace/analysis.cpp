#include "trace/analysis.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>

#include "common/assert.hpp"
#include "common/format.hpp"

namespace taskprof::trace {

namespace {

/// Per-thread replay state.
struct ThreadReplay {
  TaskInstanceId current = kImplicitTaskId;
  Ticks fragment_start = 0;
  Ticks implicit_begin = 0;
  bool in_implicit = false;

  /// Open scheduling-point regions; last_activity tracks the end of the
  /// last executed fragment (or the region entry) for gap classification.
  struct SyncFrame {
    Ticks last_activity = 0;
  };
  std::vector<SyncFrame> sync_stack;
};

}  // namespace

TraceAnalysis analyze_trace(const Trace& trace,
                            const AnalysisOptions& options) {
  TraceAnalysis out;
  out.threads.resize(trace.thread_count());

  std::unordered_map<TaskInstanceId, TaskLifetime> lifetimes;
  std::vector<ThreadReplay> replay(trace.thread_count());

  auto classify_gap = [&](ThreadId thread, Ticks gap) {
    if (gap <= 0) return;
    out.sync_total += gap;
    if (gap <= options.management_gap_threshold) {
      out.sync_management += gap;
      out.threads[thread].management += gap;
    } else {
      out.sync_waiting += gap;
      out.threads[thread].waiting += gap;
    }
  };

  auto close_fragment = [&](ThreadReplay& state, ThreadId thread,
                            Ticks now) {
    if (state.current == kImplicitTaskId) return;
    const Ticks duration = now - state.fragment_start;
    TaskLifetime& life = lifetimes[state.current];
    life.active += duration;
    out.threads[thread].busy += duration;
    out.threads[thread].fragments += 1;
    if (!state.sync_stack.empty()) {
      state.sync_stack.back().last_activity = now;
    }
    state.current = kImplicitTaskId;
  };

  auto open_fragment = [&](ThreadReplay& state, ThreadId thread,
                           TaskInstanceId id, Ticks now) {
    if (!state.sync_stack.empty()) {
      classify_gap(thread, now - state.sync_stack.back().last_activity);
      state.sync_stack.back().last_activity = now;
    }
    state.current = id;
    state.fragment_start = now;
    TaskLifetime& life = lifetimes[id];
    life.fragments += 1;
    if (!life.started) {
      life.started = true;
      life.begin = now;
      life.first_thread = thread;
    }
    (void)thread;
  };

  // Replay per-thread streams (each is time-ordered by construction).
  for (ThreadId thread = 0; thread < trace.thread_count(); ++thread) {
    ThreadReplay& state = replay[thread];
    for (const TraceEvent& event : trace.thread_events(thread)) {
      switch (event.kind) {
        case EventKind::kImplicitBegin:
          state.implicit_begin = event.time;
          state.in_implicit = true;
          break;
        case EventKind::kImplicitEnd:
          // Migrated untied tasks leave unmatched sync entries behind
          // (their taskwait exits on another thread); drop them.
          state.sync_stack.clear();
          out.threads[thread].span += event.time - state.implicit_begin;
          state.in_implicit = false;
          break;
        case EventKind::kCreateEnd: {
          TaskLifetime& life = lifetimes[event.task];
          life.id = event.task;
          life.region = event.region;
          life.parameter = event.parameter;
          life.creator = thread;
          life.created = event.time;
          life.parent = state.current;
          break;
        }
        case EventKind::kTaskBegin:
          close_fragment(state, thread, event.time);
          open_fragment(state, thread, event.task, event.time);
          break;
        case EventKind::kTaskEnd: {
          TASKPROF_ASSERT(state.current == event.task,
                          "trace replay: ending task is not current");
          close_fragment(state, thread, event.time);
          TaskLifetime& life = lifetimes[event.task];
          life.end = event.time;
          life.completed = true;
          break;
        }
        case EventKind::kTaskSwitch:
          close_fragment(state, thread, event.time);
          if (event.task != kImplicitTaskId) {
            open_fragment(state, thread, event.task, event.time);
          }
          break;
        case EventKind::kMigrate:
          lifetimes[event.task].migrations += 1;
          break;
        case EventKind::kWork:
          // Declared ctx.work() ticks; attribute to the task the thread
          // is running.  Implicit-task work has no lifetime to land on.
          if (state.current != kImplicitTaskId &&
              event.parameter != kNoParameter) {
            lifetimes[state.current].work += event.parameter;
          }
          break;
        case EventKind::kTaskwaitBegin:
        case EventKind::kBarrierBegin:
          state.sync_stack.push_back(
              ThreadReplay::SyncFrame{event.time});
          break;
        case EventKind::kTaskwaitEnd:
        case EventKind::kBarrierEnd: {
          // A migrated untied task's taskwait may end on a different
          // thread than it began; such unmatched exits are skipped (the
          // decomposition is exact for tied tasks, approximate across
          // migrations).
          if (state.sync_stack.empty()) break;
          classify_gap(thread,
                       event.time - state.sync_stack.back().last_activity);
          state.sync_stack.pop_back();
          if (!state.sync_stack.empty()) {
            state.sync_stack.back().last_activity = event.time;
          }
          break;
        }
        case EventKind::kParallelBegin:
        case EventKind::kParallelEnd:
        case EventKind::kCreateBegin:
        case EventKind::kRegionEnter:
        case EventKind::kRegionExit:
        case EventKind::kSchedulerNote:
          break;
      }
    }
  }

  // Collect lifetimes and aggregates.
  for (auto& [id, life] : lifetimes) {
    if (!life.completed) continue;
    out.total_active += life.active;
    if (life.created != 0 || life.begin >= life.created) {
      out.queue_latency.add(life.begin - life.created);
    }
    out.instance_fragments.add(life.fragments);
    out.tasks.push_back(life);
  }
  std::sort(out.tasks.begin(), out.tasks.end(),
            [](const TaskLifetime& a, const TaskLifetime& b) {
              return a.begin < b.begin;
            });

  // Longest dependency chain over the creation tree.
  std::unordered_map<TaskInstanceId, std::vector<const TaskLifetime*>>
      children;
  for (const TaskLifetime& life : out.tasks) {
    children[life.parent].push_back(&life);
  }
  struct ChainResult {
    Ticks time = 0;
    int length = 0;
  };
  // Iterative post-order over the forest rooted at implicit creations.
  std::unordered_map<TaskInstanceId, ChainResult> memo;
  auto chain_of = [&](const TaskLifetime& life, auto&& self) -> ChainResult {
    if (auto it = memo.find(life.id); it != memo.end()) return it->second;
    ChainResult best;
    if (auto it = children.find(life.id); it != children.end()) {
      for (const TaskLifetime* child : it->second) {
        const ChainResult sub = self(*child, self);
        if (sub.time > best.time) best = sub;
      }
    }
    const ChainResult result{life.active + best.time, 1 + best.length};
    memo.emplace(life.id, result);
    return result;
  };
  for (const TaskLifetime& life : out.tasks) {
    const ChainResult chain = chain_of(life, chain_of);
    if (chain.time > out.critical_chain_time) {
      out.critical_chain_time = chain.time;
      out.critical_chain_length = chain.length;
    }
  }
  return out;
}

std::string render_analysis(const TraceAnalysis& analysis,
                            const RegionRegistry& registry) {
  std::ostringstream os;

  // Per-construct summary.
  struct ConstructAgg {
    std::uint64_t instances = 0;
    Ticks active = 0;
    DurationStats latency;
    std::uint64_t fragments = 0;
    std::uint64_t migrations = 0;
  };
  std::map<RegionHandle, ConstructAgg> constructs;
  for (const TaskLifetime& life : analysis.tasks) {
    ConstructAgg& agg = constructs[life.region];
    agg.instances += 1;
    agg.active += life.active;
    agg.latency.add(life.begin - life.created);
    agg.fragments += static_cast<std::uint64_t>(life.fragments);
    agg.migrations += static_cast<std::uint64_t>(life.migrations);
  }
  TextTable table({"task construct", "instances", "active total",
                   "mean queue latency", "fragments", "migrations"});
  for (const auto& [region, agg] : constructs) {
    table.add_row({registry.info(region).name, format_count(agg.instances),
                   format_ticks(agg.active),
                   format_ticks(static_cast<Ticks>(agg.latency.mean())),
                   format_count(agg.fragments),
                   format_count(agg.migrations)});
  }
  os << table.str();

  os << "\nsynchronization-time decomposition (paper SS VII):\n";
  os << "  total non-executing time at scheduling points: "
     << format_ticks(analysis.sync_total) << '\n';
  os << "  management (short gaps between fragments):     "
     << format_ticks(analysis.sync_management) << '\n';
  os << "  waiting for work (long gaps):                  "
     << format_ticks(analysis.sync_waiting) << '\n';
  os << "  management / task-execution ratio:             "
     << format_percent(analysis.management_to_execution_ratio()) << '\n';

  os << "\nlongest dependency chain: " << analysis.critical_chain_length
     << " tasks, " << format_ticks(analysis.critical_chain_time)
     << " active time\n";

  os << "\nthreads:\n";
  for (std::size_t t = 0; t < analysis.threads.size(); ++t) {
    const ThreadUsage& usage = analysis.threads[t];
    os << "  thread " << t << ": busy " << format_ticks(usage.busy) << " of "
       << format_ticks(usage.span) << " ("
       << format_percent(usage.utilization()) << ", "
       << format_count(usage.fragments) << " fragments, waiting "
       << format_ticks(usage.waiting) << ")\n";
  }
  return os.str();
}

std::string render_timeline(const Trace& trace, std::size_t buckets) {
  const auto [begin, end] = trace.time_span();
  if (end <= begin || buckets == 0) return "(empty trace)\n";
  const double bucket_width =
      static_cast<double>(end - begin) / static_cast<double>(buckets);

  std::ostringstream os;
  os << "timeline: " << format_ticks(end - begin) << " across " << buckets
     << " buckets ('#' executing tasks, '.' other)\n";
  for (ThreadId thread = 0; thread < trace.thread_count(); ++thread) {
    // busy[i] = fraction of bucket i spent in task fragments.
    std::vector<double> busy(buckets, 0.0);
    TaskInstanceId current = kImplicitTaskId;
    Ticks fragment_start = 0;
    auto mark = [&](Ticks from, Ticks to) {
      if (to <= from) return;
      const double first =
          static_cast<double>(from - begin) / bucket_width;
      const double last = static_cast<double>(to - begin) / bucket_width;
      for (std::size_t i = static_cast<std::size_t>(first);
           i <= static_cast<std::size_t>(last) && i < buckets; ++i) {
        const double bucket_lo = static_cast<double>(i) * bucket_width;
        const double bucket_hi = bucket_lo + bucket_width;
        const double overlap =
            std::min(bucket_hi, static_cast<double>(to - begin)) -
            std::max(bucket_lo, static_cast<double>(from - begin));
        if (overlap > 0) busy[i] += overlap / bucket_width;
      }
    };
    for (const TraceEvent& event : trace.thread_events(thread)) {
      switch (event.kind) {
        case EventKind::kTaskBegin:
        case EventKind::kTaskSwitch:
          if (current != kImplicitTaskId) mark(fragment_start, event.time);
          current = event.kind == EventKind::kTaskSwitch &&
                            event.task == kImplicitTaskId
                        ? kImplicitTaskId
                        : event.task;
          fragment_start = event.time;
          break;
        case EventKind::kTaskEnd:
          if (current != kImplicitTaskId) mark(fragment_start, event.time);
          current = kImplicitTaskId;
          break;
        default:
          break;
      }
    }
    os << "t" << thread << " |";
    for (double fraction : busy) {
      os << (fraction > 0.5 ? '#' : (fraction > 0.05 ? '+' : '.'));
    }
    os << "|\n";
  }
  return os.str();
}

}  // namespace taskprof::trace
