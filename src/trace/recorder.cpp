#include "trace/recorder.hpp"

#include "common/assert.hpp"

namespace taskprof::trace {

void TraceRecorder::on_parallel_begin(int num_threads) {
  std::scoped_lock lock(resize_mutex_);
  while (streams_.size() < static_cast<std::size_t>(num_threads)) {
    streams_.push_back(std::make_unique<ThreadStream>());
  }
}

void TraceRecorder::on_parallel_end() {}

void TraceRecorder::on_implicit_task_begin(ThreadId thread,
                                           const Clock& clock) {
  ThreadStream& s = stream(thread);
  s.clock = &clock;
  record(thread, EventKind::kImplicitBegin);
}

void TraceRecorder::on_implicit_task_end(ThreadId thread) {
  record(thread, EventKind::kImplicitEnd);
}

void TraceRecorder::on_task_create_begin(ThreadId thread, RegionHandle region,
                                         std::int64_t parameter) {
  record(thread, EventKind::kCreateBegin, kImplicitTaskId, region, parameter);
}

void TraceRecorder::on_task_create_end(ThreadId thread,
                                       TaskInstanceId created,
                                       RegionHandle region,
                                       std::int64_t parameter) {
  record(thread, EventKind::kCreateEnd, created, region, parameter);
}

void TraceRecorder::on_task_begin(ThreadId thread, TaskInstanceId id,
                                  RegionHandle region,
                                  std::int64_t parameter) {
  record(thread, EventKind::kTaskBegin, id, region, parameter);
}

void TraceRecorder::on_task_end(ThreadId thread, TaskInstanceId id) {
  record(thread, EventKind::kTaskEnd, id);
}

void TraceRecorder::on_task_switch(ThreadId thread, TaskInstanceId id) {
  record(thread, EventKind::kTaskSwitch, id);
}

void TraceRecorder::on_task_migrate(ThreadId from, ThreadId to,
                                    TaskInstanceId id) {
  record(from, EventKind::kMigrate, id, kInvalidRegion, kNoParameter, to);
}

void TraceRecorder::on_task_work(ThreadId thread, Ticks cost) {
  record(thread, EventKind::kWork, kImplicitTaskId, kInvalidRegion, cost);
}

void TraceRecorder::on_taskwait_begin(ThreadId thread) {
  record(thread, EventKind::kTaskwaitBegin);
}

void TraceRecorder::on_taskwait_end(ThreadId thread) {
  record(thread, EventKind::kTaskwaitEnd);
}

void TraceRecorder::on_barrier_begin(ThreadId thread, bool implicit) {
  (void)implicit;
  record(thread, EventKind::kBarrierBegin);
}

void TraceRecorder::on_barrier_end(ThreadId thread, bool implicit) {
  (void)implicit;
  record(thread, EventKind::kBarrierEnd);
}

void TraceRecorder::on_region_enter(ThreadId thread, RegionHandle region,
                                    std::int64_t parameter) {
  record(thread, EventKind::kRegionEnter, kImplicitTaskId, region, parameter);
}

void TraceRecorder::on_region_exit(ThreadId thread, RegionHandle region) {
  record(thread, EventKind::kRegionExit, kImplicitTaskId, region);
}

void TraceRecorder::on_scheduler_note(ThreadId thread, rt::SchedulerNote note,
                                      std::int64_t detail) {
  // Notes may fire before the thread's implicit task begins (e.g. a
  // stale-graph fallback announced at region entry); record with the last
  // known timestamp (0 at stream start) rather than asserting.
  ThreadStream& s = stream(thread);
  Ticks now = 0;
  if (s.clock != nullptr) {
    now = s.clock->now();
  } else if (!s.events.empty()) {
    now = s.events.back().time;
  }
  s.events.push_back(TraceEvent{now, thread, EventKind::kSchedulerNote,
                                static_cast<TaskInstanceId>(detail),
                                kInvalidRegion,
                                static_cast<std::int64_t>(note), 0});
}

Trace TraceRecorder::take() {
  std::vector<std::vector<TraceEvent>> per_thread;
  per_thread.reserve(streams_.size());
  for (auto& s : streams_) {
    per_thread.push_back(std::move(s->events));
    s->events.clear();
    s->clock = nullptr;
  }
  return Trace(std::move(per_thread));
}

std::size_t TraceRecorder::event_count() const {
  std::size_t total = 0;
  for (const auto& s : streams_) total += s->events.size();
  return total;
}

void TraceRecorder::record(ThreadId thread, EventKind kind,
                           TaskInstanceId task, RegionHandle region,
                           std::int64_t parameter, ThreadId peer) {
  ThreadStream& s = stream(thread);
  TASKPROF_ASSERT(s.clock != nullptr,
                  "trace event before the thread's implicit task began");
  s.events.push_back(
      TraceEvent{s.clock->now(), thread, kind, task, region, parameter, peer});
}

TraceRecorder::ThreadStream& TraceRecorder::stream(ThreadId thread) {
  TASKPROF_ASSERT(thread < streams_.size(),
                  "trace event from an unannounced thread");
  return *streams_[thread];
}

}  // namespace taskprof::trace
