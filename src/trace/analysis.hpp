// Trace analyses: the paper's §VII future work, implemented.
//
// From a recorded event trace these analyses derive what the profile
// alone cannot:
//
//  * management-vs-waiting decomposition of synchronization time — the
//    paper: "it is not yet possible to distinguish if this time is
//    required for management, or if it is waiting time on the completion
//    of some tasks"; here, gaps between executed task fragments inside a
//    scheduling point are classified by length (short gap = task
//    management / switching, long gap = starvation), giving "the ratio of
//    overall management time to exclusive execution time for tasks";
//  * per-instance queue latency (creation -> begin) and fragmentation;
//  * per-thread utilization; and
//  * the longest task dependency chain, which the paper proposes as "a
//    good estimate for the number of concurrent tasks" (§V-B) — the
//    estimate can be checked against the profiler's measured maximum.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "profile/metrics.hpp"
#include "profile/region.hpp"
#include "trace/trace.hpp"

namespace taskprof::trace {

/// Reconstructed lifetime of one explicit task instance.
struct TaskLifetime {
  TaskInstanceId id = 0;
  RegionHandle region = kInvalidRegion;
  std::int64_t parameter = kNoParameter;
  /// Creating instance (kImplicitTaskId when created by an implicit task).
  TaskInstanceId parent = kImplicitTaskId;
  ThreadId creator = 0;
  Ticks created = 0;  ///< create_end timestamp
  ThreadId first_thread = 0;
  Ticks begin = 0;    ///< first fragment start
  Ticks end = 0;      ///< completion
  Ticks active = 0;   ///< sum of executed-fragment durations
  /// Declared ctx.work() ticks executed by this task (kWork events;
  /// 0 for traces from engines that do not emit them).
  Ticks work = 0;
  int fragments = 0;
  int migrations = 0;
  bool started = false;
  bool completed = false;
};

struct ThreadUsage {
  Ticks span = 0;            ///< implicit-task begin .. end
  Ticks busy = 0;            ///< time executing explicit-task fragments
  Ticks management = 0;      ///< this thread's short scheduling-point gaps
  Ticks waiting = 0;         ///< this thread's long scheduling-point gaps
  std::uint64_t fragments = 0;
  [[nodiscard]] double utilization() const noexcept {
    return span == 0 ? 0.0
                     : static_cast<double>(busy) / static_cast<double>(span);
  }
  /// Fraction of the thread's span spent starved at scheduling points.
  [[nodiscard]] double waiting_fraction() const noexcept {
    return span == 0 ? 0.0
                     : static_cast<double>(waiting) /
                           static_cast<double>(span);
  }
};

struct AnalysisOptions {
  /// Gaps at scheduling points up to this length count as management
  /// (dequeue/switch work); longer gaps count as waiting for work.
  Ticks management_gap_threshold = 3 * kTicksPerUs;
};

struct TraceAnalysis {
  std::vector<TaskLifetime> tasks;  ///< completed instances, by begin time
  std::vector<ThreadUsage> threads;

  Ticks total_active = 0;            ///< sum of task fragment time
  DurationStats queue_latency;       ///< per instance: begin - created
  DurationStats instance_fragments;  ///< fragments per instance

  // Synchronization decomposition (§VII).
  Ticks sync_total = 0;       ///< non-executing time inside taskwait/barrier
  Ticks sync_management = 0;  ///< short gaps: switch/dequeue management
  Ticks sync_waiting = 0;     ///< long gaps: no work available
  /// (management at sync points) / (task execution time).
  [[nodiscard]] double management_to_execution_ratio() const noexcept {
    return total_active == 0 ? 0.0
                             : static_cast<double>(sync_management) /
                                   static_cast<double>(total_active);
  }

  // Longest dependency chain (creation tree), by active time.
  Ticks critical_chain_time = 0;
  int critical_chain_length = 0;  ///< instances on the chain
};

/// Run all analyses over a trace.
[[nodiscard]] TraceAnalysis analyze_trace(const Trace& trace,
                                          const AnalysisOptions& options = {});

/// Human-readable report: per-construct table + decomposition + threads.
[[nodiscard]] std::string render_analysis(const TraceAnalysis& analysis,
                                          const RegionRegistry& registry);

/// Compact textual timeline (one line per thread, one glyph per time
/// bucket: '#' executing tasks, '.' idle/waiting, 'm' mixed).  Debugging
/// and teaching aid, paper Vampir-style visualization in miniature.
[[nodiscard]] std::string render_timeline(const Trace& trace,
                                          std::size_t buckets = 80);

}  // namespace taskprof::trace
