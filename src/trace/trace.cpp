#include "trace/trace.hpp"

#include <algorithm>

namespace taskprof::trace {

std::string_view event_kind_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kParallelBegin: return "parallel_begin";
    case EventKind::kParallelEnd: return "parallel_end";
    case EventKind::kImplicitBegin: return "implicit_begin";
    case EventKind::kImplicitEnd: return "implicit_end";
    case EventKind::kCreateBegin: return "create_begin";
    case EventKind::kCreateEnd: return "create_end";
    case EventKind::kTaskBegin: return "task_begin";
    case EventKind::kTaskEnd: return "task_end";
    case EventKind::kTaskSwitch: return "task_switch";
    case EventKind::kMigrate: return "migrate";
    case EventKind::kTaskwaitBegin: return "taskwait_begin";
    case EventKind::kTaskwaitEnd: return "taskwait_end";
    case EventKind::kBarrierBegin: return "barrier_begin";
    case EventKind::kBarrierEnd: return "barrier_end";
    case EventKind::kRegionEnter: return "region_enter";
    case EventKind::kRegionExit: return "region_exit";
    case EventKind::kSchedulerNote: return "scheduler_note";
    case EventKind::kWork: return "work";
  }
  return "unknown";
}

Trace::Trace(std::vector<std::vector<TraceEvent>> per_thread)
    : per_thread_(std::move(per_thread)) {}

const std::vector<TraceEvent>& Trace::merged() const {
  if (!merged_valid_) {
    merged_.clear();
    for (const auto& stream : per_thread_) {
      merged_.insert(merged_.end(), stream.begin(), stream.end());
    }
    std::stable_sort(merged_.begin(), merged_.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       if (a.time != b.time) return a.time < b.time;
                       return a.thread < b.thread;
                     });
    merged_valid_ = true;
  }
  return merged_;
}

std::size_t Trace::event_count() const noexcept {
  std::size_t total = 0;
  for (const auto& stream : per_thread_) total += stream.size();
  return total;
}

std::pair<Ticks, Ticks> Trace::time_span() const {
  Ticks begin = 0;
  Ticks end = 0;
  bool first = true;
  for (const auto& stream : per_thread_) {
    for (const TraceEvent& event : stream) {
      if (first) {
        begin = end = event.time;
        first = false;
      } else {
        begin = std::min(begin, event.time);
        end = std::max(end, event.time);
      }
    }
  }
  return {begin, end};
}

}  // namespace taskprof::trace
