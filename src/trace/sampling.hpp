// Post-mortem sampling: what a sampling profiler (the paper's §II
// HPCToolkit comparison) would have seen of the same execution.
//
// The trace is sampled at a fixed period; each sample records which task
// construct (if any) the thread was executing.  This reproduces the
// paper's §II argument quantitatively: sampling estimates *aggregate*
// time per construct well at high rates, but it cannot identify task
// *instances* — no per-instance min/mean/max, no instance counts, no
// creation times — which is exactly the information the granularity
// analysis of §VI needs.
#pragma once

#include <map>

#include "trace/trace.hpp"

namespace taskprof::trace {

struct SampleHistogram {
  Ticks period = 0;
  std::uint64_t total_samples = 0;
  /// Samples taken while the thread executed a task of the construct.
  std::map<RegionHandle, std::uint64_t> task_samples;
  /// Samples outside any explicit task (implicit work, barriers, idling).
  std::uint64_t other_samples = 0;

  /// Estimated total execution time of a construct: samples x period.
  [[nodiscard]] Ticks estimated_time(RegionHandle region) const {
    const auto it = task_samples.find(region);
    return it == task_samples.end()
               ? 0
               : static_cast<Ticks>(it->second) * period;
  }
};

/// Sample every thread of the trace at `period` ticks (global phase 0).
[[nodiscard]] SampleHistogram sample_trace(const Trace& trace, Ticks period);

}  // namespace taskprof::trace
