// Chrome trace-event JSON export: render a trace::Trace as a timeline
// that chrome://tracing and Perfetto (ui.perfetto.dev) open directly.
//
// The paper's authors viewed profiles in CUBE and had no timeline at all;
// the trace subsystem records one, and this exporter makes it visible in
// the standard browser tooling:
//
//  * one track per worker thread (thread_name metadata, sorted by id);
//  * duration events (ph B/E) for task execution, implicit tasks, task
//    creation, taskwait/barrier scheduling points, and user regions;
//  * instant events (ph i) for task creates, steals (a task beginning on
//    a thread other than its creator), suspends, and untied migrations;
//  * counter tracks (ph C) for tasks-queued / tasks-executing derived
//    from the event stream, plus the final scheduler-telemetry counters
//    when a telemetry::Snapshot is supplied.
//
// Timestamps are normalized to the first event and emitted in
// microseconds (the trace-event format's unit) at nanosecond resolution.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "profile/region.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/trace.hpp"

namespace taskprof::trace {

/// An extra instant event layered onto the exported timeline — e.g. a
/// diagnosis finding pinned next to the behavior it names.  Kept generic
/// (name + string args) so higher layers can annotate without this
/// subsystem depending on them.
struct TraceAnnotation {
  std::string name;
  Ticks time = 0;       ///< absolute trace time (same domain as the events)
  ThreadId thread = 0;  ///< track to pin the instant to
  std::vector<std::pair<std::string, std::string>> args;
};

struct ChromeExportOptions {
  /// Region names for event labels; nullptr labels by handle number.
  const RegionRegistry* registry = nullptr;
  /// Final scheduler-telemetry counters to append as counter tracks.
  const telemetry::Snapshot* telemetry = nullptr;
  /// Extra instant events (diagnoses, markers) to layer onto the export.
  const std::vector<TraceAnnotation>* annotations = nullptr;
  /// Emit the derived tasks-queued / tasks-executing counter tracks.
  bool counter_tracks = true;
  /// Process label shown in the UI.
  std::string process_name = "taskprof";
};

/// Render `trace` as a trace-event JSON document (an object with a
/// "traceEvents" array, one event per line).
[[nodiscard]] std::string render_chrome_trace(
    const Trace& trace, const ChromeExportOptions& options = {});

/// Write render_chrome_trace output to `path`.  Throws std::runtime_error
/// on I/O failure.
void write_chrome_trace(const std::string& path, const Trace& trace,
                        const ChromeExportOptions& options = {});

}  // namespace taskprof::trace
