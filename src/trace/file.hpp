// Binary trace files: persist recorded traces for post-mortem analysis
// (the Scalasca/OTF2 workflow: measure once, analyze many times).
//
// Format (little-endian, version 1):
//   magic   "TPTRC1\n\0"                      8 bytes
//   u64     thread_count
//   per thread: u64 event_count, then events:
//     i64 time, u32 thread, u8 kind, u64 task, u32 region,
//     i64 parameter, u32 peer                 (37 bytes packed)
#pragma once

#include <string>

#include "trace/trace.hpp"

namespace taskprof::trace {

/// Write `trace` to `path`.  Throws std::runtime_error on I/O failure.
void write_trace_file(const std::string& path, const Trace& trace);

/// Read a trace written by write_trace_file.  Throws std::runtime_error
/// on I/O failure, bad magic, or a truncated/corrupt file.
[[nodiscard]] Trace read_trace_file(const std::string& path);

}  // namespace taskprof::trace
