// Event traces: timestamped scheduler-event streams.
//
// The paper closes with "automated trace analysis ... might provide some
// additional information" (§VII): the profile cannot distinguish
// management time from waiting time at synchronization points, nor follow
// dependency chains.  This subsystem records the scheduler events (the
// same stream the profiler consumes) with timestamps, per thread, for the
// analyses in trace/analysis.hpp — the reproduction's implementation of
// that future work.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace taskprof::trace {

enum class EventKind : std::uint8_t {
  kParallelBegin,
  kParallelEnd,
  kImplicitBegin,
  kImplicitEnd,
  kCreateBegin,
  kCreateEnd,
  kTaskBegin,
  kTaskEnd,
  kTaskSwitch,   ///< resumption of `task` (kImplicitTaskId = back to implicit)
  kMigrate,      ///< task moved; `thread` = source, `peer` = destination
  kTaskwaitBegin,
  kTaskwaitEnd,
  kBarrierBegin,
  kBarrierEnd,
  kRegionEnter,
  kRegionExit,
  kSchedulerNote,  ///< out-of-band scheduler condition; `parameter` =
                   ///< rt::SchedulerNote code, `task` = note detail
  kWork,  ///< declared virtual work on `thread`'s running task;
          ///< `parameter` = effective ticks (simulator engines only)
};

[[nodiscard]] std::string_view event_kind_name(EventKind kind) noexcept;

struct TraceEvent {
  Ticks time = 0;
  ThreadId thread = 0;
  EventKind kind = EventKind::kTaskBegin;
  TaskInstanceId task = kImplicitTaskId;  ///< subject instance
  RegionHandle region = kInvalidRegion;
  std::int64_t parameter = kNoParameter;
  ThreadId peer = 0;  ///< migration destination
};

/// A finished trace: per-thread streams (each time-ordered by
/// construction) plus a merged, globally time-ordered view.
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<std::vector<TraceEvent>> per_thread);

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return per_thread_.size();
  }
  [[nodiscard]] const std::vector<TraceEvent>& thread_events(
      ThreadId thread) const {
    return per_thread_[thread];
  }
  /// All events, sorted by (time, thread); built lazily on first use.
  [[nodiscard]] const std::vector<TraceEvent>& merged() const;

  [[nodiscard]] std::size_t event_count() const noexcept;

  /// Time span covered: [begin, end] over all events (0,0 when empty).
  [[nodiscard]] std::pair<Ticks, Ticks> time_span() const;

 private:
  std::vector<std::vector<TraceEvent>> per_thread_;
  mutable std::vector<TraceEvent> merged_;
  mutable bool merged_valid_ = false;
};

}  // namespace taskprof::trace
