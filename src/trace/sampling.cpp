#include "trace/sampling.hpp"

#include <unordered_map>

#include "common/assert.hpp"

namespace taskprof::trace {

SampleHistogram sample_trace(const Trace& trace, Ticks period) {
  TASKPROF_ASSERT(period > 0, "sampling period must be positive");
  SampleHistogram out;
  out.period = period;
  const auto [begin, end] = trace.time_span();
  if (end <= begin) return out;

  for (ThreadId thread = 0; thread < trace.thread_count(); ++thread) {
    // Replay this thread's stream, emitting samples that fall between
    // consecutive events with the state current at that moment.
    RegionHandle current_region = kInvalidRegion;  // construct being run
    std::unordered_map<TaskInstanceId, RegionHandle> instance_regions;
    Ticks next_sample = begin;
    bool alive = false;  // between implicit begin and end

    auto emit_until = [&](Ticks until) {
      while (next_sample < until) {
        if (alive) {
          ++out.total_samples;
          if (current_region != kInvalidRegion) {
            ++out.task_samples[current_region];
          } else {
            ++out.other_samples;
          }
        }
        next_sample += period;
      }
    };

    for (const TraceEvent& event : trace.thread_events(thread)) {
      emit_until(event.time);
      switch (event.kind) {
        case EventKind::kImplicitBegin:
          alive = true;
          break;
        case EventKind::kImplicitEnd:
          alive = false;
          break;
        case EventKind::kCreateEnd:
          instance_regions[event.task] = event.region;
          break;
        case EventKind::kTaskBegin:
          instance_regions[event.task] = event.region;
          current_region = event.region;
          break;
        case EventKind::kTaskEnd:
          current_region = kInvalidRegion;
          break;
        case EventKind::kTaskSwitch:
          if (event.task == kImplicitTaskId) {
            current_region = kInvalidRegion;
          } else if (auto it = instance_regions.find(event.task);
                     it != instance_regions.end()) {
            current_region = it->second;
          }
          break;
        default:
          break;
      }
    }
    emit_until(end);
  }
  return out;
}

}  // namespace taskprof::trace
