#include "measure/aggregate.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace taskprof {

const CallNode* AggregateProfile::task_root(
    RegionHandle region) const noexcept {
  for (const CallNode* root : task_roots) {
    if (root->region == region) return root;
  }
  return nullptr;
}

AggregateProfile aggregate_profiles(
    std::span<const ThreadProfileView> views) {
  AggregateProfile out;
  out.thread_count = views.size();
  ChildIndex root_index;
  for (const ThreadProfileView& view : views) {
    out.total_task_switches += view.task_switches;
    out.total_folded_events += view.folded_events;
    out.max_concurrent_per_thread.push_back(view.max_concurrent_instances);
    out.max_concurrent_any_thread = std::max(out.max_concurrent_any_thread,
                                             view.max_concurrent_instances);
    if (view.implicit_root != nullptr) {
      if (out.implicit_root == nullptr) {
        out.implicit_root = out.pool.allocate(view.implicit_root->region,
                                              view.implicit_root->parameter,
                                              false, nullptr);
      }
      TASKPROF_ASSERT(out.implicit_root->region == view.implicit_root->region,
                      "threads disagree on the implicit root region");
      merge_subtree(out.pool, out.implicit_root, view.implicit_root);
    }
    for (const CallNode* src_root : view.task_roots) {
      // Indexed root lookup: with per-depth parameter profiling a view can
      // carry hundreds of roots, and the old linear rescan per source root
      // made aggregation O(R^2) in the root count.
      CallNode* dst_root =
          root_index.find(src_root->region, src_root->parameter, false);
      if (dst_root == nullptr) {
        dst_root = out.pool.allocate(src_root->region, src_root->parameter,
                                     false, nullptr);
        out.task_roots.push_back(dst_root);
        root_index.insert(dst_root);
      }
      merge_subtree(out.pool, dst_root, src_root);
    }
  }
  return out;
}

}  // namespace taskprof
