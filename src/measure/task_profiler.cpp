#include "measure/task_profiler.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/assert.hpp"

namespace taskprof {

// Worker side of the crash-safe capture handshake.  Guards the body of
// every mutating event method.  The event-open declaration (odd
// sequence number) happens *before* the pause-flag check: the flusher
// stores the flag and then waits for an even sequence, both seq_cst, so
// in the single total order either the flusher's even-read precedes our
// increment — then our flag-load must observe the flag and we retract
// and spin — or our increment precedes it and the flusher keeps
// waiting.  Either way no event body overlaps the flusher's copy, with
// no lock on the worker side and nothing at all when disarmed.
class ThreadTaskProfiler::EventScope {
 public:
  explicit EventScope(const ThreadTaskProfiler& profiler) noexcept
      : profiler_(profiler) {
    if (!profiler_.capture_enabled_) return;
    for (;;) {
      profiler_.event_seq_.fetch_add(1, std::memory_order_seq_cst);
      if (!profiler_.capture_pause_.load(std::memory_order_seq_cst)) return;
      profiler_.event_seq_.fetch_add(1, std::memory_order_seq_cst);
      while (profiler_.capture_pause_.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    }
  }
  ~EventScope() {
    if (!profiler_.capture_enabled_) return;
    profiler_.event_seq_.fetch_add(1, std::memory_order_release);
  }
  EventScope(const EventScope&) = delete;
  EventScope& operator=(const EventScope&) = delete;

 private:
  const ThreadTaskProfiler& profiler_;
};

namespace {

/// Deep copy of a subtree into `pool` (metrics included, accelerator
/// state not).  Same iterative parallel-preorder walk as merge_subtree.
CallNode* copy_subtree(NodePool& pool, const CallNode* src) {
  const auto copy_metrics = [](CallNode* dst, const CallNode* from) {
    dst->visits = from->visits;
    dst->inclusive = from->inclusive;
    dst->visit_stats = from->visit_stats;
  };
  CallNode* root =
      pool.allocate(src->region, src->parameter, src->is_stub, nullptr);
  copy_metrics(root, src);
  const CallNode* s = src;
  CallNode* d = root;
  for (;;) {
    if (s->first_child != nullptr) {
      s = s->first_child;
      d = pool.allocate(s->region, s->parameter, s->is_stub, d);
      copy_metrics(d, s);
      continue;
    }
    while (s != src && s->next_sibling == nullptr) {
      s = s->parent;
      d = d->parent;
    }
    if (s == src) return root;
    s = s->next_sibling;
    d = pool.allocate(s->region, s->parameter, s->is_stub, d->parent);
    copy_metrics(d, s);
  }
}

}  // namespace

ThreadTaskProfiler::ThreadTaskProfiler(ThreadId thread, const Clock& clock,
                                       RegionHandle implicit_region,
                                       MeasureOptions options)
    : thread_(thread), clock_(&clock), options_(options) {
  pool_.set_lookup_acceleration(options_.child_lookup_acceleration);
  capture_enabled_ = options_.snapshot_every > 0;
  implicit_root_ =
      pool_.allocate(implicit_region, kNoParameter, false, nullptr);
  implicit_root_->visits = 1;
  last_event_ticks_ = clock_->now();
  implicit_stack_.push_back(ImplicitFrame{implicit_root_, last_event_ticks_});
}

ThreadTaskProfiler::~ThreadTaskProfiler() = default;

void ThreadTaskProfiler::enter(RegionHandle region, std::int64_t parameter) {
  EventScope guard(*this);
  const Ticks now = clock_->now();
  last_event_ticks_ = now;
  const std::size_t limit = options_.max_tree_depth;
  if (current_ == nullptr) {
    if (limit != 0 &&
        (implicit_folded_ > 0 || implicit_stack_.size() >= limit)) {
      ++implicit_folded_;
      ++total_folds_;
      return;
    }
    CallNode* parent = implicit_stack_.back().node;
    CallNode* node =
        find_or_create_child(pool_, parent, region, parameter, false);
    ++node->visits;
    implicit_stack_.push_back(ImplicitFrame{node, now});
  } else {
    TaskInstanceState& inst = *current_;
    TASKPROF_ASSERT(!inst.stack.empty(), "task instance has no open root");
    if (limit != 0 && (inst.folded > 0 || inst.stack.size() >= limit)) {
      ++inst.folded;
      ++total_folds_;
      return;
    }
    CallNode* parent = inst.stack.back().node;
    if (parent == nullptr) {
      // First enter inside a lazily-materialized instance: build the
      // instance-tree root now (see task_begin).
      TASKPROF_ASSERT(inst.stack.size() == 1 && inst.root == nullptr,
                      "unmaterialized frame below the instance root");
      inst.root = inst.home_pool->allocate(inst.task_region, inst.parameter,
                                           false, nullptr);
      ++inst.root->visits;
      inst.stack.front().node = inst.root;
      parent = inst.root;
    }
    CallNode* node = find_or_create_child(*inst.home_pool, parent, region,
                                          parameter, false);
    ++node->visits;
    inst.stack.push_back(
        TaskInstanceState::Frame{node, now, inst.suspended_total});
  }
}

void ThreadTaskProfiler::exit(RegionHandle region) {
  EventScope guard(*this);
  const Ticks now = clock_->now();
  last_event_ticks_ = now;
  if (current_ == nullptr) {
    if (implicit_folded_ > 0) {
      --implicit_folded_;
      return;
    }
    TASKPROF_ASSERT(implicit_stack_.size() > 1,
                    "exit would pop the implicit root; use finalize()");
    ImplicitFrame frame = implicit_stack_.back();
    TASKPROF_ASSERT(frame.node->region == region && !frame.node->is_stub,
                    "exit region does not match innermost open region");
    const Ticks duration = now - frame.enter_time;
    frame.node->inclusive += duration;
    frame.node->visit_stats.add(duration);
    implicit_stack_.pop_back();
  } else {
    TaskInstanceState& inst = *current_;
    if (inst.folded > 0) {
      --inst.folded;
      return;
    }
    TASKPROF_ASSERT(inst.stack.size() > 1,
                    "exit would pop the task root; task_end does that");
    TaskInstanceState::Frame frame = inst.stack.back();
    TASKPROF_ASSERT(frame.node->region == region,
                    "exit region does not match innermost open region");
    Ticks duration = now - frame.enter_time;
    if (options_.pause_on_suspend) {
      duration -= inst.suspended_total - frame.suspended_at_enter;
    }
    frame.node->inclusive += duration;
    frame.node->visit_stats.add(duration);
    inst.stack.pop_back();
  }
}

void ThreadTaskProfiler::task_begin(RegionHandle task_region,
                                    TaskInstanceId id,
                                    std::int64_t parameter) {
  EventScope guard(*this);
  TASKPROF_ASSERT(id != kImplicitTaskId, "instance id 0 is the implicit task");
  TASKPROF_ASSERT(find_instance(id) == nullptr, "instance id already active");
  const Ticks now = clock_->now();
  last_event_ticks_ = now;

  // "Create task instance specific data" (Fig. 12, TaskBegin).
  std::unique_ptr<TaskInstanceState> state;
  if (!instance_freelist_.empty()) {
    state = std::move(instance_freelist_.back());
    instance_freelist_.pop_back();
  } else {
    state = std::make_unique<TaskInstanceState>();
  }
  state->id = id;
  state->task_region = task_region;
  state->parameter = parameter;
  state->home_pool = &pool_;
  state->home_thread = thread_;
  // Lazy instance-tree materialization: most instances of non-cut-off
  // recursion never enter a region, so their tree would be the root node
  // alone.  Defer allocating it until the first child enter; a leaf
  // instance then folds straight into the merged node at task_end
  // without ever touching the pool.
  state->root = options_.leaf_fast_path
                    ? nullptr
                    : pool_.allocate(task_region, parameter, false, nullptr);
  if (options_.creation_site_attribution && creation_sites_ != nullptr) {
    if (auto it = creation_sites_->find(id); it != creation_sites_->end()) {
      state->creation_node = it->second;
      creation_sites_->erase(it);
    }
  }

  instances_.push_back(std::move(state));
  TaskInstanceState* inst = instances_.back().get();
  max_active_ = std::max(max_active_, instances_.size());

  // TaskSwitch(task instance) then Enter(task instance, task region).
  switch_to(inst, now);
  if (inst->root != nullptr) ++inst->root->visits;
  inst->stack.push_back(TaskInstanceState::Frame{inst->root, now, 0});
}

void ThreadTaskProfiler::task_end(TaskInstanceId id) {
  EventScope guard(*this);
  const Ticks now = clock_->now();
  last_event_ticks_ = now;
  TASKPROF_ASSERT(current_ != nullptr && current_->id == id,
                  "task_end requires the ending task to be current");
  TaskInstanceState& inst = *current_;
  TASKPROF_ASSERT(inst.folded == 0, "folded frames open at task end");
  TASKPROF_ASSERT(inst.stack.size() == 1,
                  "unbalanced enter/exit inside task instance");

  // Exit(task instance, task region).
  TaskInstanceState::Frame frame = inst.stack.back();
  Ticks duration = now - frame.enter_time;
  if (options_.pause_on_suspend) {
    duration -= inst.suspended_total - frame.suspended_at_enter;
  }
  if (frame.node != nullptr) {
    frame.node->inclusive += duration;
    frame.node->visit_stats.add(duration);
  }
  inst.stack.pop_back();

  // TaskSwitch(implicit task).
  switch_to(nullptr, now);

  // "Merge task tree into global profile of thread."  A still-null root
  // means the instance stayed a leaf; `duration` is its whole life.
  merge_and_recycle(take_instance(id), duration);
}

void ThreadTaskProfiler::task_switch(TaskInstanceId id) {
  EventScope guard(*this);
  const Ticks now = clock_->now();
  last_event_ticks_ = now;
  if (id == kImplicitTaskId) {
    switch_to(nullptr, now);
    return;
  }
  TaskInstanceState* inst = find_instance(id);
  TASKPROF_ASSERT(inst != nullptr, "task_switch to unknown instance");
  switch_to(inst, now);
}

void ThreadTaskProfiler::note_task_created(TaskInstanceId id) {
  EventScope guard(*this);
  if (!options_.creation_site_attribution) return;
  // Only implicit-task creation sites are stable for the lifetime of the
  // created instance (instance trees are merged and recycled); see header.
  if (current_ != nullptr) return;
  if (creation_sites_ == nullptr) {
    creation_sites_ =
        std::make_unique<std::unordered_map<TaskInstanceId, CallNode*>>();
  }
  (*creation_sites_)[id] = implicit_stack_.back().node;
}

std::unique_ptr<TaskInstanceState> ThreadTaskProfiler::detach_instance(
    TaskInstanceId id) {
  EventScope guard(*this);
  TASKPROF_ASSERT(current_ == nullptr || current_->id != id,
                  "cannot detach the running instance");
  auto state = take_instance(id);
  TASKPROF_ASSERT(state != nullptr, "detach of unknown instance");
  return state;
}

void ThreadTaskProfiler::adopt_instance(
    std::unique_ptr<TaskInstanceState> state) {
  EventScope guard(*this);
  TASKPROF_ASSERT(state != nullptr, "adopt requires an instance");
  TASKPROF_ASSERT(find_instance(state->id) == nullptr,
                  "instance id already active on this thread");
  instances_.push_back(std::move(state));
  max_active_ = std::max(max_active_, instances_.size());
}

void ThreadTaskProfiler::finalize() {
  EventScope guard(*this);
  TASKPROF_ASSERT(current_ == nullptr,
                  "finalize while an explicit task is current");
  TASKPROF_ASSERT(instances_.empty(), "finalize with active task instances");
  const Ticks now = clock_->now();
  last_event_ticks_ = now;
  while (!implicit_stack_.empty()) {
    ImplicitFrame frame = implicit_stack_.back();
    const Ticks duration = now - frame.enter_time;
    frame.node->inclusive += duration;
    frame.node->visit_stats.add(duration);
    implicit_stack_.pop_back();
  }
}

ThreadProfileView ThreadTaskProfiler::view() const {
  ThreadProfileView out;
  out.thread = thread_;
  out.implicit_root = implicit_root_;
  out.task_roots.assign(task_roots_.begin(), task_roots_.end());
  out.max_concurrent_instances = max_active_;
  out.task_switches = task_switches_;
  out.folded_events = total_folds_;
  return out;
}

TaskInstanceId ThreadTaskProfiler::current_task() const noexcept {
  return current_ == nullptr ? kImplicitTaskId : current_->id;
}

bool ThreadTaskProfiler::capture(NodePool& into, CaptureView& out) const {
  if (!capture_enabled_) return false;
  capture_pause_.store(true, std::memory_order_seq_cst);
  // Wait for the worker to leave its current event body (even sequence
  // number).  Once we observe an even value, any event that starts
  // afterwards must see the pause flag (its seq_cst increment follows
  // our seq_cst read in the total order, so its flag load follows our
  // flag store) and spins — the copy below runs in mutual exclusion.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(100);
  bool quiesced = false;
  for (;;) {
    if ((event_seq_.load(std::memory_order_seq_cst) & 1) == 0) {
      quiesced = true;
      break;
    }
    if (std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::yield();
  }
  if (!quiesced) {
    // Worker wedged inside an event (should not happen; events are
    // bounded) — skip this flush rather than stall the flusher.
    capture_pause_.store(false, std::memory_order_release);
    return false;
  }

  CallNode* implicit_copy = copy_subtree(into, implicit_root_);
  std::vector<CallNode*> root_copies;
  root_copies.reserve(task_roots_.size());
  for (const CallNode* root : task_roots_) {
    root_copies.push_back(copy_subtree(into, root));
  }

  // Close the open implicit frames in the *copy* at the last event
  // timestamp: each open node gets its in-progress fragment, so the
  // copy satisfies the fragment-count/-sum invariants without touching
  // the live tree (the live frames close normally at exit/finalize).
  bool closed = true;
  const Ticks now = last_event_ticks_;
  CallNode* cursor = implicit_copy;
  for (std::size_t i = 0; i < implicit_stack_.size(); ++i) {
    const ImplicitFrame& frame = implicit_stack_[i];
    if (i > 0) {
      cursor = find_child(cursor, frame.node->region, frame.node->parameter,
                          frame.node->is_stub);
      if (cursor == nullptr) {
        closed = false;
        break;
      }
    }
    const Ticks elapsed = now - frame.enter_time;
    cursor->inclusive += elapsed;
    cursor->visit_stats.add(elapsed);
  }

  // Read the scalar counters before releasing the pause: the instant
  // the flag drops, workers resume mutating them.
  const auto max_active = max_active_;
  const auto task_switches = task_switches_;
  const auto total_folds = total_folds_;
  capture_pause_.store(false, std::memory_order_release);

  if (!closed) {
    into.release_subtree(implicit_copy);
    for (CallNode* root : root_copies) into.release_subtree(root);
    return false;
  }
  out.thread = thread_;
  out.implicit_root = implicit_copy;
  out.task_roots = std::move(root_copies);
  out.max_concurrent_instances = max_active;
  out.task_switches = task_switches;
  out.folded_events = total_folds;
  return true;
}

void ThreadTaskProfiler::enter_stub(const TaskInstanceState& instance,
                                    Ticks now) {
  CallNode* parent = implicit_stack_.back().node;
  CallNode* node = find_or_create_child(pool_, parent, instance.task_region,
                                        instance.parameter, /*is_stub=*/true);
  ++node->visits;
  implicit_stack_.push_back(ImplicitFrame{node, now});
}

void ThreadTaskProfiler::exit_stub(Ticks now) {
  TASKPROF_ASSERT(implicit_stack_.size() > 1, "no stub frame open");
  ImplicitFrame frame = implicit_stack_.back();
  TASKPROF_ASSERT(frame.node->is_stub, "innermost implicit frame is no stub");
  const Ticks duration = now - frame.enter_time;
  frame.node->inclusive += duration;
  frame.node->visit_stats.add(duration);
  implicit_stack_.pop_back();
}

void ThreadTaskProfiler::switch_to(TaskInstanceState* target, Ticks now) {
  if (target == current_) return;
  ++task_switches_;
  if (current_ != nullptr) {
    // "Exit(implicit task, root region of current task); stop time
    // measurement on all open regions of current task" (Fig. 12).
    if (options_.stub_nodes) exit_stub(now);
    current_->suspended = true;
    current_->suspend_start = now;
  }
  current_ = target;
  if (target != nullptr) {
    if (target->suspended) {
      if (options_.pause_on_suspend) {
        target->suspended_total += now - target->suspend_start;
      }
      target->suspended = false;
    }
    // "Enter(implicit task, root region of task instance)" (Fig. 12).
    if (options_.stub_nodes) enter_stub(*target, now);
  }
}

void ThreadTaskProfiler::merge_and_recycle(
    std::unique_ptr<TaskInstanceState> instance, Ticks leaf_duration) {
  TASKPROF_ASSERT(instance != nullptr, "merge of null instance");
  CallNode* target = nullptr;
  if (options_.creation_site_attribution &&
      instance->creation_node != nullptr) {
    target = find_or_create_child(pool_, instance->creation_node,
                                  instance->task_region, instance->parameter,
                                  false);
  } else {
    target = merged_root_for(instance->task_region, instance->parameter);
  }
  CallNode* root = instance->root;
  if (root == nullptr) {
    // Leaf fast path: the instance never entered a region, so its tree
    // was never materialized (see task_begin) — the dominant case for
    // non-cut-off BOTS recursion.  One visit of `leaf_duration` folds
    // straight into the merged node; no tree walk, no pool traffic.
    ++target->visits;
    target->inclusive += leaf_duration;
    target->visit_stats.add(leaf_duration);
  } else {
    if (options_.leaf_fast_path && root->first_child == nullptr) {
      // Materialized but still a single node: one add + stats merge, no
      // find-or-create descent.
      target->visits += root->visits;
      target->inclusive += root->inclusive;
      target->visit_stats.merge(root->visit_stats);
    } else {
      merge_subtree(pool_, target, root);
    }
    instance->home_pool->release_subtree(root);
  }
  instance->reset();
  instance_freelist_.push_back(std::move(instance));
}

TaskInstanceState* ThreadTaskProfiler::find_instance(
    TaskInstanceId id) noexcept {
  // The running instance first: task_switch events overwhelmingly target
  // either the current task or the one just touched.  On the taskgraph
  // replay static path (run-to-completion in run-list order) this plus
  // the last-hit slot below answer every lookup without scanning, which
  // keeps the profiler O(1) per event while replaying.
  if (current_ != nullptr && current_->id == id) {
    return current_;
  }
  if (last_hit_ < instances_.size() && instances_[last_hit_]->id == id) {
    return instances_[last_hit_].get();
  }
  // Backward scan: with LIFO scheduling the sought instance is almost
  // always the most recently added one.
  for (std::size_t i = instances_.size(); i-- > 0;) {
    if (instances_[i]->id == id) {
      last_hit_ = i;
      return instances_[i].get();
    }
  }
  return nullptr;
}

std::unique_ptr<TaskInstanceState> ThreadTaskProfiler::take_instance(
    TaskInstanceId id) {
  if (find_instance(id) == nullptr) return nullptr;
  if (last_hit_ >= instances_.size() || instances_[last_hit_]->id != id) {
    // find_instance answered from the current_ fast path (callers assert
    // they never take the running instance, but stay robust): locate the
    // slot so the swap below removes the right entry.
    for (std::size_t i = instances_.size(); i-- > 0;) {
      if (instances_[i]->id == id) {
        last_hit_ = i;
        break;
      }
    }
  }
  // Swap-and-pop: instance order carries no meaning (lookups only), and
  // the heap addresses current_ and callers hold stay valid.
  std::swap(instances_[last_hit_], instances_.back());
  std::unique_ptr<TaskInstanceState> out = std::move(instances_.back());
  instances_.pop_back();
  last_hit_ = 0;
  return out;
}

CallNode* ThreadTaskProfiler::merged_root_for(RegionHandle region,
                                              std::int64_t parameter) {
  // Last-hit first: completions of the same construct come in runs
  // (LIFO scheduling drains one recursion's tasks together).
  if (CallNode* last = last_merged_root_;
      last != nullptr && last->region == region &&
      last->parameter == parameter) {
    return last;
  }
  CallNode* root = nullptr;
  if (merged_root_index_active_) {
    root = merged_root_index_.find(region, parameter, false);
  } else {
    for (CallNode* existing : task_roots_) {
      if (existing->region == region && existing->parameter == parameter) {
        root = existing;
        break;
      }
    }
  }
  if (root == nullptr) {
    root = pool_.allocate(region, parameter, false, nullptr);
    task_roots_.push_back(root);
    if (merged_root_index_active_) {
      merged_root_index_.insert(root);
    } else if (options_.child_lookup_acceleration &&
               task_roots_.size() >= kChildIndexFanout) {
      for (CallNode* existing : task_roots_) {
        merged_root_index_.insert(existing);
      }
      merged_root_index_active_ = true;
    }
  }
  last_merged_root_ = root;
  return root;
}

}  // namespace taskprof
